"""Unit tests for repro.theory.jl (distortion helpers)."""

import numpy as np
import pytest

from repro.theory.jl import distortion, distortion_samples, empirical_failure_rate
from repro.transforms import create_transform


class TestDistortion:
    def test_identity_is_one(self):
        x = np.array([1.0, 2.0, 3.0])
        assert distortion(x, x) == pytest.approx(1.0)

    def test_scaling_squares(self):
        x = np.array([1.0, 0.0])
        assert distortion(x, 2.0 * x) == pytest.approx(4.0)

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError, match="non-zero"):
            distortion(np.zeros(3), np.ones(3))


class TestEmpiricalFailureRate:
    def _factory(self, seed):
        return create_transform("achlioptas", 64, 128, seed=seed)

    def test_large_k_rarely_fails(self):
        x = np.random.default_rng(0).standard_normal(64)
        rate = empirical_failure_rate(self._factory, x, alpha=0.45, trials=60)
        assert rate <= 0.1

    def test_tiny_k_fails_often(self):
        def tiny(seed):
            return create_transform("gaussian", 64, 2, seed=seed)

        x = np.random.default_rng(0).standard_normal(64)
        rate = empirical_failure_rate(tiny, x, alpha=0.05, trials=60)
        assert rate > 0.5

    def test_trials_validated(self):
        x = np.ones(64)
        with pytest.raises(ValueError):
            empirical_failure_rate(self._factory, x, alpha=0.2, trials=0)


class TestDistortionSamples:
    def test_sample_count(self):
        x = np.random.default_rng(1).standard_normal(64)
        samples = distortion_samples(self._factory, x, trials=10)
        assert samples.shape == (10,)

    def test_samples_depend_on_seed_offset(self):
        x = np.random.default_rng(1).standard_normal(64)
        a = distortion_samples(self._factory, x, trials=5, seed=0)
        b = distortion_samples(self._factory, x, trials=5, seed=100)
        assert not np.allclose(a, b)

    def test_samples_reproducible(self):
        x = np.random.default_rng(1).standard_normal(64)
        a = distortion_samples(self._factory, x, trials=5, seed=3)
        b = distortion_samples(self._factory, x, trials=5, seed=3)
        assert np.allclose(a, b)

    def _factory(self, seed):
        return create_transform("achlioptas", 64, 128, seed=seed)
