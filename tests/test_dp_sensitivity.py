"""Tests for sensitivity analysis (Definition 3)."""

import math

import numpy as np
import pytest

from repro.dp.sensitivity import (
    is_neighboring,
    sensitivity_profile,
    worst_case_neighbors,
)
from repro.transforms import create_transform


class TestIsNeighboring:
    def test_identical_vectors(self):
        x = np.ones(4)
        assert is_neighboring(x, x)

    def test_unit_l1_shift(self):
        x = np.zeros(4)
        y = x.copy()
        y[2] = 1.0
        assert is_neighboring(x, y)

    def test_split_shift_still_neighboring(self):
        x = np.zeros(4)
        y = np.array([0.5, -0.5, 0.0, 0.0])
        assert is_neighboring(x, y)

    def test_beyond_unit_rejected(self):
        x = np.zeros(4)
        y = np.array([1.0, 0.5, 0.0, 0.0])
        assert not is_neighboring(x, y)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            is_neighboring(np.zeros(3), np.zeros(4))


class TestSensitivityProfile:
    def test_sjlt_closed_form(self):
        t = create_transform("sjlt", 64, 32, seed=0, sparsity=4)
        profile = sensitivity_profile(t)
        assert profile.closed_form
        assert profile.l1 == pytest.approx(math.sqrt(4))
        assert profile.l2 == pytest.approx(1.0)

    def test_gaussian_scan(self):
        t = create_transform("gaussian", 64, 32, seed=0)
        profile = sensitivity_profile(t)
        assert not profile.closed_form
        dense = t.to_dense()
        assert profile.l2 == pytest.approx(np.linalg.norm(dense, axis=0).max())
        assert profile.l1 == pytest.approx(np.abs(dense).sum(axis=0).max())

    def test_for_order_accessor(self):
        t = create_transform("sjlt", 64, 32, seed=0, sparsity=4)
        profile = sensitivity_profile(t)
        assert profile.for_order(1) == profile.l1
        assert profile.for_order(2) == profile.l2
        with pytest.raises(ValueError):
            profile.for_order(3)


class TestWorstCaseNeighbors:
    @pytest.mark.parametrize("p", [1, 2])
    def test_pair_achieves_sensitivity(self, p):
        t = create_transform("gaussian", 48, 16, seed=3)
        x, x_prime = worst_case_neighbors(t, p=p)
        shift = t.apply(x_prime) - t.apply(x)
        norm = float(np.sum(np.abs(shift) ** p) ** (1.0 / p))
        assert norm == pytest.approx(t.sensitivity(p))

    def test_pair_is_neighboring(self):
        t = create_transform("sjlt", 48, 16, seed=1, sparsity=4)
        x, x_prime = worst_case_neighbors(t)
        assert is_neighboring(x, x_prime)

    def test_blocked_scan_matches_unblocked(self):
        t = create_transform("gaussian", 50, 16, seed=2)
        a = worst_case_neighbors(t, p=2, block_size=7)
        b = worst_case_neighbors(t, p=2, block_size=1000)
        assert np.array_equal(a[1], b[1])
