"""Tests for the Blocki et al. secret projection and the Upadhyay attack."""

import math

import numpy as np
import pytest

from repro.dp.audit import delta_at_epsilon
from repro.dp.secret_projection import (
    SecretGaussianProjection,
    attack_advantage,
    privacy_loss_samples_secret,
    secret_projection_epsilon,
    sparsity_attack,
)
from repro.transforms.sjlt import SJLT


class TestRelease:
    def test_norm_floor_enforced(self):
        mech = SecretGaussianProjection(32, norm_floor=10.0, delta=1e-6)
        with pytest.raises(ValueError, match="norm floor"):
            mech.release(np.ones(64))  # ||x|| = 8 < 10

    def test_release_shape(self):
        mech = SecretGaussianProjection(32, norm_floor=1.0, delta=1e-6)
        out = mech.release(np.ones(64), rng=np.random.default_rng(0))
        assert out.values.shape == (32,)

    def test_fresh_matrix_per_release(self):
        mech = SecretGaussianProjection(32, norm_floor=1.0, delta=1e-6)
        rng = np.random.default_rng(1)
        a = mech.release(np.ones(64), rng)
        b = mech.release(np.ones(64), rng)
        assert not np.allclose(a.values, b.values)

    def test_norm_estimator_unbiased_with_jl_variance(self):
        mech = SecretGaussianProjection(64, norm_floor=1.0, delta=1e-6)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(128)
        x_sq = float(x @ x)
        estimates = np.array(
            [mech.release(x, rng).estimate_sq_norm() for _ in range(2000)]
        )
        assert estimates.mean() == pytest.approx(x_sq, rel=0.05)
        assert estimates.var() == pytest.approx(2.0 / 64 * x_sq**2, rel=0.15)


class TestEpsilonFormula:
    def test_monotone_in_k(self):
        assert secret_projection_epsilon(128, 10.0, 1e-6) > secret_projection_epsilon(
            32, 10.0, 1e-6
        )

    def test_monotone_decreasing_in_floor(self):
        assert secret_projection_epsilon(64, 4.0, 1e-6) > secret_projection_epsilon(
            64, 40.0, 1e-6
        )

    def test_large_floor_gives_small_epsilon(self):
        # ratio -> 1 as w -> infinity: near-perfect privacy
        assert secret_projection_epsilon(64, 1e4, 1e-6) < 0.1

    def test_guarantee_attached(self):
        mech = SecretGaussianProjection(64, norm_floor=20.0, delta=1e-6)
        assert mech.guarantee.delta == 1e-6
        assert mech.guarantee.epsilon == pytest.approx(
            secret_projection_epsilon(64, 20.0, 1e-6)
        )

    def test_audit_validates_formula_both_directions(self):
        """delta(eps_claimed) at the worst-case neighbour stays below delta
        in both loss directions (the Gaussian scale mixture is asymmetric)."""
        k, w, delta = 64, 16.0, 1e-4
        eps = secret_projection_epsilon(k, w, delta)
        rng = np.random.default_rng(3)
        for norms in ((w, w + 1.0), (w + 1.0, w)):
            losses = privacy_loss_samples_secret(k, norms[0], norms[1], 200000, rng)
            assert delta_at_epsilon(losses, eps) <= delta * 5

    def test_formula_not_vacuously_loose(self):
        """At a quarter of the claimed epsilon the heavy-tail direction
        must show real loss mass — the bound is constant-factor tight."""
        k, w, delta = 64, 16.0, 1e-4
        eps = secret_projection_epsilon(k, w, delta)
        losses = privacy_loss_samples_secret(k, w + 1.0, w, 200000, np.random.default_rng(4))
        assert delta_at_epsilon(losses, eps / 4.0) > delta


class TestUpadhyayAttack:
    def test_sparsity_attack_counts(self):
        assert sparsity_attack(np.array([0.0, 1.0, 2.0]), baseline_nnz=1)
        assert not sparsity_attack(np.array([0.0, 1.0, 0.0]), baseline_nnz=1)

    def test_attack_breaks_secret_sjlt(self):
        d, k, s = 128, 64, 4
        x_small = np.zeros(d)
        x_small[0] = 10.0
        x_large = x_small.copy()
        x_large[1] = 1.0

        def release(vec, rng):
            return SJLT(d, k, s, seed=int(rng.integers(0, 2**62))).apply(vec)

        advantage = attack_advantage(
            release, x_small, x_large, s, trials=300, rng=np.random.default_rng(5)
        )
        assert advantage > 0.8

    def test_attack_blind_against_gaussian(self):
        d, k = 128, 64
        mech = SecretGaussianProjection(k, norm_floor=1.0, delta=1e-6)
        x_small = np.zeros(d)
        x_small[0] = 10.0
        x_large = x_small.copy()
        x_large[1] = 1.0

        def release(vec, rng):
            return mech.release(vec, rng).values

        advantage = attack_advantage(
            release, x_small, x_large, k - 1, trials=300, rng=np.random.default_rng(6)
        )
        assert abs(advantage) < 0.15

    def test_attack_trials_validated(self):
        with pytest.raises(ValueError):
            attack_advantage(lambda v, r: v, np.ones(2), np.ones(2), 1, trials=0)


class TestValidation:
    def test_bad_output_dim(self):
        with pytest.raises(ValueError):
            SecretGaussianProjection(0, 1.0, 1e-6)

    def test_bad_floor(self):
        with pytest.raises(ValueError):
            SecretGaussianProjection(8, 0.0, 1e-6)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            SecretGaussianProjection(8, 1.0, 0.0)

    def test_loss_samples_validated(self):
        with pytest.raises(ValueError):
            privacy_loss_samples_secret(8, 1.0, 2.0, 0)
