"""Cross-module integration tests: realistic end-to-end flows."""

import dataclasses
import math

import numpy as np
import pytest

from repro import (
    PrivacyGuarantee,
    PrivateSketch,
    PrivateSketcher,
    SketchConfig,
    SketchingSession,
    StreamingSketch,
    estimate_distance_matrix,
    estimate_sq_distance,
)
from repro.dp.audit import audit_mechanism
from repro.dp.sensitivity import worst_case_neighbors
from repro.workloads import UpdateStream, make_corpus, materialize_stream, pair_at_distance


class TestTwoPartyScenario:
    """The paper's headline scenario: two parties, one public transform."""

    def test_full_protocol_roundtrip_through_bytes(self):
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(512, 10.0, rng)
        config = SketchConfig(input_dim=512, epsilon=4.0, output_dim=128, sparsity=4, seed=11)

        # party A sketches and serializes
        session_a = SketchingSession(config)
        blob_a = session_a.create_party("a", noise_seed=1).release(x).to_bytes()
        # party B independently builds the same session from the config
        session_b = SketchingSession(config)
        blob_b = session_b.create_party("b", noise_seed=2).release(y).to_bytes()

        # an analyst with only the blobs estimates the distance
        est = estimate_sq_distance(PrivateSketch.from_bytes(blob_a),
                                   PrivateSketch.from_bytes(blob_b))
        assert np.isfinite(est)

    def test_estimate_statistics_over_many_runs(self):
        rng = np.random.default_rng(1)
        x, y = pair_at_distance(512, 10.0, rng)
        estimates = []
        for seed in range(200):
            config = SketchConfig(input_dim=512, epsilon=4.0, output_dim=128, sparsity=4,
                                  seed=seed)
            sk = PrivateSketcher(config)
            estimates.append(
                sk.estimate_sq_distance(sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng))
            )
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 100.0) < 5 * stderr
        # the theoretical bound covers the empirical variance
        sk = PrivateSketcher(SketchConfig(input_dim=512, epsilon=4.0, output_dim=128, sparsity=4))
        assert np.var(estimates) < 1.5 * sk.theoretical_variance(100.0)


class TestStreamingScenario:
    def test_histogram_stream_release_and_compare(self):
        config = SketchConfig(input_dim=1024, epsilon=2.0, output_dim=64, sparsity=4, seed=3)
        session = SketchingSession(config, budget=PrivacyGuarantee(4.0))
        alice = session.create_party("alice", noise_seed=1)
        bob = session.create_party("bob", noise_seed=2)

        stream_a = UpdateStream(dim=1024, n_updates=4000, seed=10)
        stream_b = UpdateStream(dim=1024, n_updates=4000, seed=20)
        sk_a = alice.release_stream(stream_a)
        sk_b = bob.release_stream(stream_b)

        true = float(np.sum((materialize_stream(stream_a, 1024)
                             - materialize_stream(stream_b, 1024)) ** 2))
        est = session.estimate_sq_distance(sk_a, sk_b)
        # single-shot estimate: only check it is in the right ballpark
        spread = 6 * math.sqrt(session.sketcher.theoretical_variance(true))
        assert abs(est - true) < spread

    def test_incremental_matches_batch_after_interleaved_ops(self):
        config = SketchConfig(input_dim=128, epsilon=1.0, output_dim=32, sparsity=4)
        sk = PrivateSketcher(config)
        streaming = StreamingSketch(sk)
        x = np.zeros(128)
        rng = np.random.default_rng(4)
        for _ in range(500):
            i = int(rng.integers(0, 128))
            delta = float(rng.normal())
            streaming.update(i, delta)
            x[i] += delta
        assert np.allclose(streaming.current_projection(), sk.project(x), atol=1e-9)


class TestDocumentScenario:
    def test_private_nearest_neighbor_mostly_same_topic(self):
        """Sketch a corpus; nearest sketched neighbour should usually share
        the query's topic (the intro's motivating application)."""
        rng = np.random.default_rng(5)
        corpus = make_corpus(n_docs=30, vocab_size=512, doc_length=2000, rng=rng, n_topics=2)
        config = SketchConfig(input_dim=512, epsilon=8.0, output_dim=256, sparsity=4, seed=9)
        sk = PrivateSketcher(config)
        sketches = [sk.sketch(doc, noise_rng=i) for i, doc in enumerate(corpus.counts)]
        est = estimate_distance_matrix(sketches)
        np.fill_diagonal(est, np.inf)
        nearest = est.argmin(axis=1)
        agreement = float(np.mean(corpus.topics[nearest] == corpus.topics))
        assert agreement > 0.6

    def test_sketching_is_oblivious_to_corpus(self):
        """The transform is data-independent: sketching doc i never looks at
        doc j (verified by sketching in different orders)."""
        rng = np.random.default_rng(6)
        corpus = make_corpus(n_docs=5, vocab_size=64, doc_length=100, rng=rng)
        config = SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4, seed=1)
        sk = PrivateSketcher(config)
        forward = [sk.sketch(doc, noise_rng=i).values for i, doc in enumerate(corpus.counts)]
        backward = [
            sk.sketch(corpus.counts[i], noise_rng=i).values for i in reversed(range(5))
        ][::-1]
        for f, b in zip(forward, backward):
            assert np.allclose(f, b)


class TestPrivacyIntegration:
    def test_sketcher_noise_survives_worst_case_audit(self):
        """End to end: the PrivateSketcher's own calibrated noise passes the
        audit at the transform's true worst-case neighbour."""
        config = SketchConfig(input_dim=128, epsilon=1.0, output_dim=32, sparsity=4, seed=7)
        sk = PrivateSketcher(config)
        x, x_prime = worst_case_neighbors(sk.transform, p=1)
        shift = sk.project(x_prime) - sk.project(x)
        result = audit_mechanism(sk.noise, shift, sk.guarantee.epsilon,
                                 sk.guarantee.delta, n_samples=30000,
                                 rng=np.random.default_rng(8))
        assert result.passed

    def test_budget_spans_streaming_and_batch(self):
        config = SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4)
        session = SketchingSession(config, budget=PrivacyGuarantee(2.5))
        alice = session.create_party("alice")
        alice.release(np.ones(64))
        alice.release_stream([(0, 1.0)])
        assert alice.spent().epsilon == pytest.approx(2.0)
        from repro.dp.accountant import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            alice.release(np.ones(64))


class TestMixedTransformsIntegration:
    @pytest.mark.parametrize(
        "transform,kwargs",
        [
            ("sjlt", {"sparsity": 4}),
            ("dks", {"sparsity": 4}),
            ("gaussian", {}),
            ("achlioptas", {}),
            ("fjlt", {}),
        ],
    )
    def test_every_transform_through_full_pipeline(self, transform, kwargs):
        delta = 0.0 if transform in ("sjlt", "dks") else 1e-5
        noise = "auto" if delta == 0.0 else "gaussian"
        config = SketchConfig(
            input_dim=128, epsilon=2.0, delta=delta, transform=transform, noise=noise,
            output_dim=32, seed=2, **({"sparsity": 4} if "sparsity" in kwargs else {}),
        )
        sk = PrivateSketcher(config)
        rng = np.random.default_rng(9)
        x, y = pair_at_distance(128, 3.0, rng)
        est = sk.estimate_sq_distance(sk.sketch(x, noise_rng=1), sk.sketch(y, noise_rng=2))
        assert np.isfinite(est)
        assert sk.guarantee.epsilon == 2.0
