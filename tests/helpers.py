"""Shared helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.serving import CrossQuery, RadiusQuery, TopKQuery
from repro.transforms import create_transform


# -- typed-query-plane wrappers (shared by the serving test modules) ----------


def execute_top_k(service, query, k=1):
    """One ranking: a single-sketch TopKQuery through execute()."""
    return service.execute(TopKQuery(queries=query, k=k)).payload[0]


def execute_top_k_batch(service, queries, k=1):
    return service.execute(TopKQuery(queries=queries, k=k)).payload


def execute_radius(service, query, radius_sq):
    return service.execute(RadiusQuery(query=query, radius_sq=radius_sq)).payload


def execute_cross(service, queries):
    return service.execute(CrossQuery(queries=queries)).payload


# -- storage-aware expectations (the suite also runs under a quantised
# -- store default, e.g. CI's REPRO_STORE_DTYPE=f4 leg) ------------------------


def storage_roundtrip(store, values):
    """``values`` as ``store``'s float storage spec holds them.

    Identity for f8 stores, so full-precision assertions stay exact;
    int8 is rejected (its per-shard scale has no store-independent
    round trip — compare against the store's own shards instead).
    """
    return store.storage.roundtrip(np.asarray(values, dtype=np.float64))


def _max_norms(queries_values, stored_values):
    q = np.atleast_2d(np.asarray(queries_values, dtype=np.float64))
    r = np.atleast_2d(np.asarray(stored_values, dtype=np.float64))
    return (
        float(np.sqrt(np.einsum("ij,ij->i", q, q).max())),
        float(np.sqrt(np.einsum("ij,ij->i", r, r).max())),
        r.shape[1],
    )


def scan_jitter_atol(store, queries_values, stored_values):
    """Tolerance for kernel-schedule jitter between two scans of one store.

    Two scans of the *same* stored rows (batched vs single queries,
    different shard groupings after a compact) agree bit-for-bit on the
    float64 path but only to the accumulation envelope on the float32
    path — each scan rounds its GEMM independently.  Zero-ish (1e-8)
    for f8 stores, so the full-precision assertions keep their old
    tightness.
    """
    from repro.theory.quantisation import accumulation_gamma

    norm_q, norm_r, dim = _max_norms(queries_values, stored_values)
    return 4.0 * accumulation_gamma(store.storage, dim) * norm_q * norm_r + 1e-8


def envelope_atol(store, queries_values, stored_values):
    """Worst-pair quantisation envelope vs the full-precision estimates.

    The documented bound of :mod:`repro.theory.quantisation`, maximised
    over every (query, stored-row) pair — suitable as ``atol`` when a
    store-served matrix is compared against the float64 flat estimator
    on the original rows.  Collapses to ~1e-9 slack for f8 stores.
    """
    from repro.theory.quantisation import sq_distance_error_bound

    q = np.atleast_2d(np.asarray(queries_values, dtype=np.float64))
    r = np.atleast_2d(np.asarray(stored_values, dtype=np.float64))
    scales = [view.scale for view in store.snapshot() if view.scale is not None]
    scale = max(scales) if scales else None
    return max(
        sq_distance_error_bound(store.storage, qi, ri, scale)
        for qi in q
        for ri in r
    )


#: (name, kwargs) for every transform at a test-friendly size.
TRANSFORM_SPECS = [
    ("gaussian", {}),
    ("achlioptas", {}),
    ("achlioptas", {"sparse": True}),
    ("dks", {"sparsity": 4}),
    ("sjlt", {"sparsity": 4}),
    ("sjlt", {"sparsity": 4, "construction": "graph"}),
    ("fjlt", {}),
]


def spec_id(spec) -> str:
    name, kwargs = spec
    suffix = "-".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return f"{name}({suffix})" if suffix else name


def make_transform(spec, input_dim=96, output_dim=32, seed=0):
    name, kwargs = spec
    return create_transform(name, input_dim, output_dim, seed=seed, **kwargs)


def mean_distortion(spec, x, trials=400, input_dim=96, output_dim=32):
    """Monte-Carlo E[||Sx||^2] / ||x||^2 over independent transforms."""
    total = 0.0
    for seed in range(trials):
        t = make_transform(spec, input_dim, output_dim, seed=seed)
        y = t.apply(x)
        total += float(y @ y)
    return total / trials / float(x @ x)


def fresh_vector(dim=96, seed=0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(dim)
