"""Shared helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.serving import CrossQuery, RadiusQuery, TopKQuery
from repro.transforms import create_transform


# -- typed-query-plane wrappers (shared by the serving test modules) ----------


def execute_top_k(service, query, k=1):
    """One ranking: a single-sketch TopKQuery through execute()."""
    return service.execute(TopKQuery(queries=query, k=k)).payload[0]


def execute_top_k_batch(service, queries, k=1):
    return service.execute(TopKQuery(queries=queries, k=k)).payload


def execute_radius(service, query, radius_sq):
    return service.execute(RadiusQuery(query=query, radius_sq=radius_sq)).payload


def execute_cross(service, queries):
    return service.execute(CrossQuery(queries=queries)).payload

#: (name, kwargs) for every transform at a test-friendly size.
TRANSFORM_SPECS = [
    ("gaussian", {}),
    ("achlioptas", {}),
    ("achlioptas", {"sparse": True}),
    ("dks", {"sparsity": 4}),
    ("sjlt", {"sparsity": 4}),
    ("sjlt", {"sparsity": 4, "construction": "graph"}),
    ("fjlt", {}),
]


def spec_id(spec) -> str:
    name, kwargs = spec
    suffix = "-".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return f"{name}({suffix})" if suffix else name


def make_transform(spec, input_dim=96, output_dim=32, seed=0):
    name, kwargs = spec
    return create_transform(name, input_dim, output_dim, seed=seed, **kwargs)


def mean_distortion(spec, x, trials=400, input_dim=96, output_dim=32):
    """Monte-Carlo E[||Sx||^2] / ||x||^2 over independent transforms."""
    total = 0.0
    for seed in range(trials):
        t = make_transform(spec, input_dim, output_dim, seed=seed)
        y = t.apply(x)
        total += float(y @ y)
    return total / trials / float(x @ x)


def fresh_vector(dim=96, seed=0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(dim)
