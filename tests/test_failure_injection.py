"""Failure-injection tests: the library must fail loudly, not wrongly.

A DP library's worst bug is a silent one — an estimate computed from
incompatible sketches, noise calibrated against the wrong sensitivity,
or corrupted payloads parsed into plausible numbers.  These tests
inject each failure and assert a loud error (or a documented,
well-defined behaviour).
"""

import json

import numpy as np
import pytest

from repro.core.estimators import estimate_sq_distance
from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchConfig
from repro.core.streaming import StreamingSketch

_CONFIG = SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4, seed=1)


def _sketcher(**overrides):
    import dataclasses

    return PrivateSketcher(dataclasses.replace(_CONFIG, **overrides))


class TestCorruptedSketches:
    def _blob(self):
        return _sketcher().sketch(np.ones(64), noise_rng=0).to_bytes()

    def test_truncated_payload(self):
        with pytest.raises(ValueError):
            PrivateSketch.from_bytes(self._blob()[:-16])

    def test_extended_payload(self):
        with pytest.raises(ValueError):
            PrivateSketch.from_bytes(self._blob() + b"\x00" * 8)

    def test_garbage_header(self):
        blob = self._blob()
        newline = blob.index(b"\n")
        with pytest.raises(json.JSONDecodeError):
            PrivateSketch.from_bytes(b"{not json" + blob[newline:])

    def test_header_payload_mismatch(self):
        blob = self._blob()
        newline = blob.index(b"\n")
        header = json.loads(blob[:newline])
        header["output_dim"] = 999
        forged = json.dumps(header).encode() + blob[newline:]
        with pytest.raises(ValueError, match="header says"):
            PrivateSketch.from_bytes(forged)

    def test_tampered_noise_spec_changes_digest_protection(self):
        """Even if an attacker edits a sketch's noise spec, estimation
        against an honest sketch is blocked only by the digest — so the
        digest must differ whenever the config differs."""
        honest = _sketcher().sketch(np.ones(64), noise_rng=0)
        other = _sketcher(epsilon=2.0).sketch(np.ones(64), noise_rng=0)
        assert honest.config_digest != other.config_digest
        with pytest.raises(ValueError):
            estimate_sq_distance(honest, other)


class TestBadInputs:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_vectors_rejected_everywhere(self, bad):
        sk = _sketcher()
        x = np.ones(64)
        x[3] = bad
        with pytest.raises(ValueError):
            sk.sketch(x)
        with pytest.raises(ValueError):
            sk.project(x)

    def test_streaming_rejects_bad_index_types(self):
        streaming = StreamingSketch(_sketcher())
        with pytest.raises(TypeError):
            streaming.update("seven", 1.0)

    def test_object_array_rejected(self):
        sk = _sketcher()
        with pytest.raises((ValueError, TypeError)):
            sk.sketch(np.array([object()] * 64))

    def test_config_rejects_conflicting_noise_delta(self):
        # gaussian noise demands delta > 0 — must fail at build time,
        # not silently release unprotected data
        with pytest.raises(ValueError, match="approximate DP"):
            PrivateSketcher(
                SketchConfig(input_dim=64, epsilon=1.0, delta=0.0, output_dim=16,
                             sparsity=4, noise="gaussian")
            )


class TestMisuseResistance:
    def test_estimating_across_perturbation_modes_blocked(self):
        output_mode = _sketcher().sketch(np.ones(64), noise_rng=0)
        input_mode = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="fjlt",
                         noise="gaussian", output_dim=16, seed=1)
        ).sketch(np.ones(64), noise_rng=0)
        with pytest.raises(ValueError):
            estimate_sq_distance(output_mode, input_mode)

    def test_streaming_continues_after_release(self):
        """Releasing must not freeze or reset the accumulator."""
        streaming = StreamingSketch(_sketcher())
        streaming.update(0, 1.0)
        streaming.release(noise_rng=1)
        streaming.update(1, 1.0)
        assert streaming.n_updates == 2
        projection = streaming.current_projection()
        assert np.any(projection != 0)

    def test_release_noise_is_fresh_not_cached(self):
        """Two releases of the same state must never share noise — reuse
        would leak the exact projection difference."""
        streaming = StreamingSketch(_sketcher())
        streaming.update(0, 1.0)
        a = streaming.release()
        b = streaming.release()
        assert not np.allclose(a.values, b.values)

    def test_hash_keys_reduced_modulo_prime(self):
        """Keys are hashed modulo 2^31 - 1: two keys congruent mod p
        collide by construction — documented, and irrelevant for any
        realistic input dimension (d << 2^31)."""
        from repro.hashing.kwise import MERSENNE_PRIME_31, KWiseHash

        h = KWiseHash(4, 1000, rng=0)
        assert h(5) == h(5 + MERSENNE_PRIME_31)

    def test_party_noise_stream_not_reused_across_releases(self):
        from repro.core.protocol import SketchingSession

        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=7)
        x = np.ones(64)
        first = alice.release(x)
        second = alice.release(x)
        assert not np.allclose(first.values, second.values)

    def test_zero_vector_sketches_cleanly(self):
        sk = _sketcher()
        sketch = sk.sketch(np.zeros(64), noise_rng=0)
        assert np.isfinite(sketch.values).all()

    def test_estimate_of_identical_inputs_centers_at_zero(self):
        import dataclasses

        rng = np.random.default_rng(0)
        x = rng.standard_normal(64)
        estimates = []
        for seed in range(300):
            sk = PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))
            estimates.append(
                estimate_sq_distance(sk.sketch(x, noise_rng=rng), sk.sketch(x, noise_rng=rng))
            )
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates)) < 5 * stderr
