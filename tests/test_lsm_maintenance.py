"""LSM maintenance: generational compaction, crash safety, policy, maintainer.

The disk-to-disk layer of PR 7.  ``compact_store`` must publish each
rewrite as a numbered ``gen-NNNNN`` generation with the manifest as the
single source of truth — so a crash at *any* point (including a SIGKILL
mid-stream, injected here via a subprocess that ``os._exit``-s inside
the shard writer) leaves the old generation loadable and the leftovers
removable as orphans.  ``MaintenancePolicy`` is a pure function of the
manifest; ``StoreMaintainer`` runs it from a background thread.
"""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    MaintenancePolicy,
    ShardedSketchStore,
    StoreMaintainer,
    compact_store,
    merge_stores,
)
from repro.serving import maintenance as maintenance_module
from tests.helpers import scan_jitter_atol

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=5)
_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 64)), noise_rng=seed, labels=labels)


def _saved_store(tmp_path, n=11, shard_capacity=4, labelled=True, name="store"):
    sk = _sketcher()
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    labels = tuple(f"row-{i}" for i in range(n)) if labelled else ()
    store.add_batch(_batch(sk, n, 1, labels=labels))
    root = tmp_path / name
    store.save(root)
    return root, store, sk


def _manifest(root):
    return json.loads((root / "manifest.json").read_text())


def _cross(root, queries, *, mmap=True):
    service = DistanceService(ShardedSketchStore.load(root, mmap=mmap))
    return service.execute(CrossQuery(queries=queries)).payload


class TestCompactStore:
    def test_publishes_a_generation_and_drops_tombstones(self, tmp_path):
        root, store, sk = _saved_store(tmp_path)
        store.delete(["row-2", "row-9"])
        store.save(root)
        summary = compact_store(root)
        assert summary["generation"] == 1
        assert summary["rows"] == 9
        assert summary["tombstones_dropped"] == 2
        assert summary["shards"] == 3  # ceil(9 / 4)
        assert summary["storage"] == "f8"
        manifest = _manifest(root)
        assert manifest["generation"] == 1
        assert manifest["shards_dir"] == "gen-00001"
        assert (root / "gen-00001" / "shard-00000.skb").exists()
        loaded = ShardedSketchStore.load(root, mmap=True)
        assert loaded.generation == 1
        assert loaded.tombstones == ()
        assert list(loaded.labels) == [
            f"row-{i}" for i in range(11) if i not in (2, 9)
        ]

    def test_survivor_results_match_across_the_rewrite(self, tmp_path):
        root, store, sk = _saved_store(tmp_path)
        store.delete(["row-0", "row-7"])
        store.save(root)
        queries = _batch(sk, 3, 2)
        before = _cross(root, queries)
        compact_store(root)
        after = _cross(root, queries)
        loaded = ShardedSketchStore.load(root)
        stored = np.concatenate(
            [loaded.shard_values(i) for i in range(loaded.n_shards)]
        )
        atol = scan_jitter_atol(loaded, queries.values, stored)
        np.testing.assert_allclose(after, before, atol=atol, rtol=0.0)

    def test_passthrough_compact_of_a_packed_store_is_byte_identical(
        self, tmp_path
    ):
        # no tombstones, already capacity-packed, same spec: the codes
        # stream through verbatim, so the new generation's shard files
        # are byte-for-byte the old ones — the live-swap guarantee
        root, store, sk = _saved_store(tmp_path, n=8, shard_capacity=4)
        old = [(root / f"shard-{i:05d}.skb").read_bytes() for i in range(2)]
        compact_store(root)
        new = [
            (root / "gen-00001" / f"shard-{i:05d}.skb").read_bytes()
            for i in range(2)
        ]
        assert new == old

    def test_exact_capacity_store_gets_no_empty_tail_shard(self, tmp_path):
        # regression: rows landing exactly on a shard boundary must not
        # leave a zero-row tail shard behind — the partial-shard policy
        # would flag it and re-compact forever
        root, *_ = _saved_store(tmp_path, n=8, shard_capacity=4)
        assert compact_store(root)["shards"] == 2
        loaded = ShardedSketchStore.load(root)
        assert loaded.n_shards == 2 and len(loaded) == 8

    def test_an_empty_store_compacts_to_one_metadata_shard(self, tmp_path):
        root, store, sk = _saved_store(tmp_path, n=3)
        store.delete(["row-0", "row-1", "row-2"])
        store.save(root)
        summary = compact_store(root)
        assert summary["rows"] == 0 and summary["shards"] == 1
        loaded = ShardedSketchStore.load(root)
        assert len(loaded) == 0
        assert loaded.metadata is not None  # still carries the config

    def test_storage_demotion_re_encodes(self, tmp_path):
        root, store, sk = _saved_store(tmp_path)
        summary = compact_store(root, storage="f4")
        assert summary["storage"] == "f4"
        loaded = ShardedSketchStore.load(root)
        assert loaded.storage.name == "f4"
        assert len(loaded) == 11

    def test_int8_demotion_uses_one_global_scale(self, tmp_path):
        root, store, sk = _saved_store(tmp_path)
        compact_store(root, storage="int8")
        loaded = ShardedSketchStore.load(root)
        scales = {view.scale for view in loaded.snapshot()}
        assert len(scales) == 1  # every output shard shares the step

    def test_successive_generations_prune_old_ones(self, tmp_path):
        root, store, sk = _saved_store(tmp_path)
        compact_store(root)
        # first compact keeps the flat (pre-generational) shards: they
        # are the previous generation readers may still be attached to
        assert list(root.glob("shard-*.skb"))
        second = compact_store(root)
        # now the flat files are two generations stale — pruned
        assert not list(root.glob("shard-*.skb"))
        assert any(name.startswith("shard-") for name in second["pruned"])
        assert sorted(p.name for p in root.glob("gen-*")) == [
            "gen-00001",
            "gen-00002",
        ]
        third = compact_store(root)
        assert "gen-00001" in third["pruned"]
        assert sorted(p.name for p in root.glob("gen-*")) == [
            "gen-00002",
            "gen-00003",
        ]
        assert ShardedSketchStore.load(root).generation == 3


class TestCrashSafety:
    def test_sigkill_mid_stream_leaves_the_old_generation_loadable(
        self, tmp_path
    ):
        root, store, sk = _saved_store(tmp_path)
        queries = _batch(sk, 2, 3)
        before = _cross(root, queries)
        # a process that dies (os._exit — no cleanup handlers, the
        # moral equivalent of SIGKILL) on the third block it writes
        script = textwrap.dedent(
            """
            import os, sys
            import repro.serving.serialization as ser

            calls = [0]
            original = ser.StreamingBatchWriter.append

            def dying_append(self, *args, **kwargs):
                calls[0] += 1
                if calls[0] == 3:
                    os._exit(3)
                return original(self, *args, **kwargs)

            ser.StreamingBatchWriter.append = dying_append
            from repro.serving.maintenance import compact_store
            compact_store(sys.argv[1], block_rows=1)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(root)],
            env={**os.environ, "PYTHONPATH": _SRC},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 3, proc.stderr
        # the crash left a staging orphan, but the manifest — the single
        # source of truth — still references the old generation
        orphans = list(root.glob(".gen-*.staging-*"))
        assert orphans
        assert _manifest(root)["generation"] == 0
        np.testing.assert_array_equal(_cross(root, queries), before)
        # the next compaction removes the orphan and publishes cleanly
        summary = compact_store(root)
        assert orphans[0].name in summary["pruned"]
        assert not list(root.glob(".gen-*.staging-*"))
        assert ShardedSketchStore.load(root).generation == 1

    def test_crash_between_rename_and_publish_is_an_orphan(
        self, tmp_path, monkeypatch
    ):
        # the narrowest window: the generation directory landed but the
        # process died before the manifest replace
        root, store, sk = _saved_store(tmp_path)
        monkeypatch.setattr(
            maintenance_module,
            "_publish_manifest",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("yanked")),
        )
        with pytest.raises(RuntimeError, match="yanked"):
            compact_store(root)
        monkeypatch.undo()
        assert (root / "gen-00001").is_dir()  # published dir, unreferenced
        assert _manifest(root)["generation"] == 0
        loaded = ShardedSketchStore.load(root, mmap=True)
        assert loaded.generation == 0 and len(loaded) == 11
        summary = compact_store(root)
        assert "gen-00001" in summary["pruned"]
        assert _manifest(root)["shards_dir"] == "gen-00001"

    def test_exception_mid_stream_cleans_its_own_staging(
        self, tmp_path, monkeypatch
    ):
        root, store, sk = _saved_store(tmp_path)
        monkeypatch.setattr(
            maintenance_module,
            "_stream_shards",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError, match="disk full"):
            compact_store(root)
        assert not list(root.glob(".gen-*.staging-*"))
        assert _manifest(root)["generation"] == 0


class TestMergeStores:
    def test_merges_in_order_dropping_tombstones(self, tmp_path):
        sk = _sketcher()
        a = ShardedSketchStore(shard_capacity=4)
        a.add_batch(_batch(sk, 6, 1, labels=tuple(f"a-{i}" for i in range(6))))
        a.delete("a-3")
        a.save(tmp_path / "a")
        b = ShardedSketchStore(shard_capacity=4)
        b.add_batch(_batch(sk, 5, 2, labels=tuple(f"b-{i}" for i in range(5))))
        b.save(tmp_path / "b")
        summary = merge_stores(tmp_path / "a", tmp_path / "b", dest=tmp_path / "m")
        assert summary["rows"] == 10
        assert summary["storage"] == "f8"
        assert summary["sources"] == [str(tmp_path / "a"), str(tmp_path / "b")]
        merged = ShardedSketchStore.load(tmp_path / "m")
        assert merged.generation == 0  # a fresh store, not a generation
        assert list(merged.labels) == [
            "a-0", "a-1", "a-2", "a-4", "a-5",
            "b-0", "b-1", "b-2", "b-3", "b-4",
        ]
        in_memory = ShardedSketchStore.merge(a, b)
        stacked = lambda s: np.concatenate(
            [s.shard_values(i) for i in range(s.n_shards)]
        )
        np.testing.assert_array_equal(stacked(merged), stacked(in_memory))

    def test_mixed_specs_are_rejected_naming_them(self, tmp_path):
        root_a, *_ = _saved_store(tmp_path, name="a")
        root_b, store_b, _ = _saved_store(tmp_path, name="b")
        store_b.compact(storage="f4").save(root_b)
        with pytest.raises(ValueError, match="f4, f8"):
            merge_stores(root_a, root_b, dest=tmp_path / "m")
        # an explicit storage= re-encodes instead of rejecting
        summary = merge_stores(
            root_a, root_b, dest=tmp_path / "m", storage="f4"
        )
        assert summary["storage"] == "f4"
        assert ShardedSketchStore.load(tmp_path / "m").storage.name == "f4"

    def test_crash_leaves_no_partial_dest(self, tmp_path, monkeypatch):
        root_a, *_ = _saved_store(tmp_path, name="a")
        monkeypatch.setattr(
            maintenance_module,
            "_stream_shards",
            lambda *a, **k: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError, match="boom"):
            merge_stores(root_a, dest=tmp_path / "m")
        assert not (tmp_path / "m").exists()
        assert not list(tmp_path.glob(".m.saving-*"))


class TestMaintenancePolicy:
    """plan() is a pure function of the manifest — no store needed."""

    def _manifest(self, **overrides):
        manifest = {
            "n_rows": 8,
            "n_shards": 2,
            "shard_capacity": 4,
            "storage": "f8",
        }
        manifest.update(overrides)
        return manifest

    def test_a_healthy_store_needs_nothing(self):
        assert MaintenancePolicy().plan(self._manifest()) is None

    def test_tombstones_trigger_a_compact_without_demotion(self):
        plan = MaintenancePolicy().plan(self._manifest(tombstones=[1, 5]))
        assert plan["storage"] is None
        assert "2 tombstoned rows" in plan["reason"]

    def test_min_tombstones_zero_disables_the_trigger(self):
        policy = MaintenancePolicy(min_tombstones=0)
        assert policy.plan(self._manifest(tombstones=[1])) is None

    def test_partial_shards_trigger_a_repack(self):
        plan = MaintenancePolicy().plan(self._manifest(n_shards=4))
        assert plan["storage"] is None
        assert "4 shards for 8 rows" in plan["reason"]

    def test_max_partial_shards_loosens_the_repack_rule(self):
        policy = MaintenancePolicy(max_partial_shards=3)
        assert policy.plan(self._manifest(n_shards=4)) is None
        assert policy.plan(self._manifest(n_shards=5)) is not None

    def test_cold_rows_demotes_the_hot_tier(self):
        policy = MaintenancePolicy(cold_storage="int8", cold_rows=8)
        plan = policy.plan(self._manifest())
        assert plan["storage"] == "int8"
        assert "demote f8 -> int8" in plan["reason"]
        assert policy.plan(self._manifest(n_rows=7)) is None

    def test_cold_bytes_demotes_on_disk_size(self):
        policy = MaintenancePolicy(cold_bytes=1024)
        assert policy.plan(self._manifest(), nbytes=2048)["storage"] == "f4"
        assert policy.plan(self._manifest(), nbytes=512) is None
        # no byte measurement, no byte-based demotion
        assert policy.plan(self._manifest()) is None

    def test_an_already_cold_store_is_not_re_encoded(self):
        policy = MaintenancePolicy(cold_rows=8)
        assert policy.plan(self._manifest(storage="f4")) is None
        # but other triggers still fire, preserving the cold spec
        plan = policy.plan(self._manifest(storage="f4", tombstones=[0]))
        assert plan["storage"] is None


class TestStoreMaintainer:
    def test_run_once_is_a_noop_on_a_healthy_store(self, tmp_path):
        root, *_ = _saved_store(tmp_path, n=8)
        maintainer = StoreMaintainer(root)
        assert maintainer.run_once() is None
        assert maintainer.history == []

    def test_run_once_compacts_and_records_history(self, tmp_path):
        root, store, _ = _saved_store(tmp_path)
        store.delete("row-4")
        store.save(root)
        with StoreMaintainer(root, interval=3600.0) as maintainer:
            summary = maintainer.run_once()
            assert summary["tombstones_dropped"] == 1
            assert "tombstoned" in summary["reason"]
            assert maintainer.history == [summary]
            # the store is healthy now: the next pass does nothing
            assert maintainer.run_once() is None

    def test_demotion_happens_once(self, tmp_path):
        root, *_ = _saved_store(tmp_path, n=8)
        policy = MaintenancePolicy(cold_storage="f4", cold_rows=8)
        maintainer = StoreMaintainer(root, policy)
        assert maintainer.run_once()["storage"] == "f4"
        # the demoted store no longer matches the hot tier: stable
        assert maintainer.run_once() is None

    def test_background_thread_compacts_within_the_interval(self, tmp_path):
        root, store, _ = _saved_store(tmp_path)
        store.delete("row-0")
        store.save(root)
        with StoreMaintainer(root, interval=0.05) as maintainer:
            maintainer.start()
            deadline = time.monotonic() + 30.0
            while not maintainer.history and time.monotonic() < deadline:
                time.sleep(0.02)
            assert maintainer.history, "maintainer never compacted"
        assert _manifest(root)["generation"] == 1
        assert maintainer.last_error is None

    def test_errors_are_recorded_and_the_loop_survives(self, tmp_path):
        with StoreMaintainer(tmp_path / "nonexistent", interval=0.02) as m:
            m.start()
            deadline = time.monotonic() + 30.0
            while m.last_error is None and time.monotonic() < deadline:
                time.sleep(0.02)
            assert m.last_error is not None
            assert m._thread.is_alive()  # the loop did not die with it

    def test_double_start_is_rejected(self, tmp_path):
        root, *_ = _saved_store(tmp_path, n=8)
        with StoreMaintainer(root, interval=3600.0) as maintainer:
            maintainer.start()
            with pytest.raises(RuntimeError, match="already started"):
                maintainer.start()
