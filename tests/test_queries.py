"""The typed query plane: execute(), stats, clamping, legacy shims, pins.

Covers the acceptance contract of the query-plane redesign:

* every legacy ``DistanceService`` method returns **bit-identical**
  results to its ``execute(Query)`` equivalent (and warns);
* ``QueryResult.stats`` reports shard prune counts consistent with the
  norm-bound prefilter's behaviour;
* negative debiased estimates clamp at zero in exactly one place
  (:func:`repro.core.estimators.clamp_sq_estimates`) and only for
  ranking payloads — matrix payloads stay unbiased;
* construction-path pins: ``expected_digest`` and the tampered-metadata
  cross-check reject foreign releases on *every* path.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    ExecutionPolicy,
    NormsQuery,
    PairwiseQuery,
    QueryStats,
    RadiusQuery,
    ShardedSketchStore,
    TopKQuery,
)

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher(config=_CONFIG):
    return PrivateSketcher(config)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=seed, labels=labels)


def _service(n=17, shard_capacity=5, seed=21):
    sk = _sketcher()
    stored = _batch(sk, n, seed)
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(stored)
    return sk, stored, DistanceService(store)


class TestLegacyShimsBitIdentical:
    """The five deprecated methods must be exact shims over execute()."""

    def test_top_k(self):
        sk, _, service = _service()
        query = sk.sketch(np.ones(128), noise_rng=1)
        want = service.execute(TopKQuery(queries=query, k=5)).payload[0]
        with pytest.warns(DeprecationWarning, match="TopKQuery"):
            assert service.top_k(query, 5) == want

    def test_top_k_batch(self):
        sk, _, service = _service()
        queries = _batch(sk, 3, 2)
        want = service.execute(TopKQuery(queries=queries, k=4)).payload
        with pytest.warns(DeprecationWarning, match="TopKQuery"):
            assert service.top_k_batch(queries, 4) == want

    def test_radius(self):
        sk, stored, service = _service()
        query = sk.sketch(np.ones(128), noise_rng=2)
        cutoff = float(np.median(estimators.cross_sq_distances(stored, query)))
        want = service.execute(RadiusQuery(query=query, radius_sq=cutoff)).payload
        with pytest.warns(DeprecationWarning, match="RadiusQuery"):
            assert service.radius(query, cutoff) == want

    def test_cross(self):
        sk, _, service = _service()
        queries = _batch(sk, 3, 3)
        want = service.execute(CrossQuery(queries=queries)).payload
        with pytest.warns(DeprecationWarning, match="CrossQuery"):
            np.testing.assert_array_equal(service.cross(queries), want)

    def test_pairwise_submatrix(self):
        _, _, service = _service()
        picks = (0, 5, 16)
        want = service.execute(PairwiseQuery(indices=picks)).payload
        with pytest.warns(DeprecationWarning, match="PairwiseQuery"):
            np.testing.assert_array_equal(service.pairwise_submatrix(picks), want)

    def test_legacy_validation_matches_typed_validation(self):
        sk, _, service = _service()
        query = sk.sketch(np.ones(128), noise_rng=0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="top"):
                service.top_k(query, 0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="radius_sq"):
                service.radius(query, -1.0)


class TestQueryStats:
    def test_full_scan_counts_every_shard_and_row(self):
        sk, _, service = _service(n=17, shard_capacity=5)
        query = sk.sketch(np.ones(128), noise_rng=1)
        for typed in (
            TopKQuery(queries=query, k=3),
            RadiusQuery(query=query, radius_sq=1e18),
            CrossQuery(queries=query),
            NormsQuery(),
        ):
            stats = service.execute(typed).stats
            assert stats.shards_total == service.store.n_shards
            assert stats.rows_total == 17
            assert stats.rows_scanned <= 17
            assert stats.elapsed_seconds > 0.0
        cross_stats = service.execute(CrossQuery(queries=query)).stats
        assert cross_stats.shards_pruned == 0
        assert cross_stats.rows_scanned == 17

    def test_pairwise_stats_count_touched_shards_only(self):
        _, _, service = _service(n=17, shard_capacity=5)  # shards of 5,5,5,2
        stats = service.execute(PairwiseQuery(indices=(0, 1, 16))).stats
        assert stats.shards_visited == 2  # rows 0,1 in shard 0; row 16 in shard 3
        assert stats.shards_pruned == 2  # untouched shards preserve the invariant
        assert stats.shards_total == service.store.n_shards
        assert stats.rows_scanned == 3
        assert stats.rows_total == 17

    def test_pairwise_stats_count_distinct_rows(self):
        _, _, service = _service(n=17, shard_capacity=5)
        stats = service.execute(PairwiseQuery(indices=(0, 1, 1, 1))).stats
        assert stats.rows_scanned == 2  # duplicates are one stored row
        assert stats.shards_total == service.store.n_shards

    def test_empty_store_stats_are_zero(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1)[0:0])  # pinned, zero rows
        service = DistanceService(store)
        result = service.execute(TopKQuery(queries=sk.sketch(np.ones(128), noise_rng=0)))
        assert result.stats == dataclasses.replace(
            QueryStats(), elapsed_seconds=result.stats.elapsed_seconds
        )

    def _norm_separated(self, sk, scale=1e6):
        base = _batch(sk, 32, 0)
        values = np.zeros((32, 64))
        values[:, 0] = np.repeat(np.arange(4.0) * scale, 8) + np.linspace(0, 1, 32)
        batch = dataclasses.replace(base, values=values, labels=())
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(batch)
        query = dataclasses.replace(base.row(0), values=np.zeros(64))
        return store, query

    def test_prefilter_prune_counts_visible_in_stats(self):
        # the same store shape as the PR 3 prefilter tests: 4 shards at
        # wildly separated norms; the stats must agree with the counts
        # those tests established by monkeypatching the estimator
        sk = _sketcher()
        store, query = self._norm_separated(sk)
        on = DistanceService(store, ExecutionPolicy(prefilter=True))
        off = DistanceService(store, ExecutionPolicy(prefilter=False))

        radius_on = on.execute(RadiusQuery(query=query, radius_sq=1e9))
        assert radius_on.stats.shards_visited == 1
        assert radius_on.stats.shards_pruned == 3
        assert radius_on.stats.rows_scanned == 8
        radius_off = off.execute(RadiusQuery(query=query, radius_sq=1e9))
        assert radius_off.stats.shards_pruned == 0
        assert radius_off.stats.shards_visited == 4
        assert radius_on.payload == radius_off.payload

        top_on = on.execute(TopKQuery(queries=query, k=3))
        assert top_on.stats.shards_pruned >= 1
        assert top_on.stats.shards_visited + top_on.stats.shards_pruned == 4
        top_off = off.execute(TopKQuery(queries=query, k=3))
        assert top_off.stats.shards_pruned == 0
        assert top_on.payload == top_off.payload

    def test_parallel_policies_report_consistent_prune_totals(self):
        sk = _sketcher()
        store, query = self._norm_separated(sk)
        with DistanceService(store, ExecutionPolicy(workers=4)) as service:
            stats = service.execute(RadiusQuery(query=query, radius_sq=1e9)).stats
        assert stats.shards_total == 4
        assert stats.shards_visited == 1  # the radius bound is schedule-free


class TestClampPolicy:
    """Negative debiased estimates clamp at 0.0 — in one place only."""

    def _tiny_distance_setup(self):
        # identical stored and query rows: the raw sketch distance is 0,
        # so the debiased estimate is exactly -correction < 0
        sk = _sketcher()
        base = _batch(sk, 4, 1)
        values = np.tile(np.linspace(1.0, 2.0, 64), (4, 1))
        batch = dataclasses.replace(base, values=values, labels=())
        store = ShardedSketchStore(shard_capacity=2)
        store.add_batch(batch)
        query = dataclasses.replace(base.row(0), values=values[0].copy())
        correction = estimators.sq_distance_correction(batch)
        assert correction > 0  # the premise: the correction can overshoot
        return DistanceService(store), query, batch, correction

    def test_helper_clamps_scalars_and_arrays(self):
        assert estimators.clamp_sq_estimates(-3.5) == 0.0
        assert estimators.clamp_sq_estimates(2.25) == 2.25
        np.testing.assert_array_equal(
            estimators.clamp_sq_estimates(np.array([-1.0, 0.0, 4.0])),
            [0.0, 0.0, 4.0],
        )

    def test_estimate_distance_routes_through_clamp(self):
        sk = _sketcher()
        a = sk.sketch(np.ones(128), noise_rng=1)
        b = dataclasses.replace(a, values=a.values.copy())
        assert estimators.estimate_sq_distance(a, b) < 0  # raw stays unbiased
        assert estimators.estimate_distance(a, b) == 0.0

    def test_top_k_payload_clamps_but_orders_on_raw(self):
        service, query, _, _ = self._tiny_distance_setup()
        ranking = service.execute(TopKQuery(queries=query, k=4)).payload[0]
        assert [label for label, _ in ranking] == [0, 1, 2, 3]  # stable ties
        assert [est for _, est in ranking] == [0.0, 0.0, 0.0, 0.0]

    def test_radius_membership_is_raw_payload_is_clamped(self):
        service, query, _, _ = self._tiny_distance_setup()
        # raw estimates are negative, so radius_sq=0.0 must still match
        hits = service.execute(RadiusQuery(query=query, radius_sq=0.0)).payload
        assert [label for label, _ in hits] == [0, 1, 2, 3]
        assert all(est == 0.0 for est in [est for _, est in hits])

    def test_matrix_payloads_stay_unbiased(self):
        service, query, batch, correction = self._tiny_distance_setup()
        cross = service.execute(CrossQuery(queries=query)).payload
        np.testing.assert_allclose(cross[0], -correction, atol=1e-9)
        pairwise = service.execute(PairwiseQuery(indices=(0, 1))).payload
        np.testing.assert_allclose(pairwise[0, 1], -correction, atol=1e-9)


class TestNormsQuery:
    def test_matches_flat_estimator(self):
        sk, stored, service = _service()
        want = estimators.sq_norms(stored)
        got = service.execute(NormsQuery()).payload
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_unpinned_store_rejected(self):
        service = DistanceService(ShardedSketchStore())
        with pytest.raises(ValueError, match="empty"):
            service.execute(NormsQuery())

    def test_pinned_empty_store_returns_empty(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1)[0:0])
        assert DistanceService(store).execute(NormsQuery()).payload.size == 0


class TestExecuteMany:
    def test_matches_individual_executes_in_order(self):
        sk, _, service = _service()
        query = sk.sketch(np.ones(128), noise_rng=1)
        typed = [TopKQuery(queries=query, k=3), NormsQuery(), CrossQuery(queries=query)]
        many = service.execute_many(typed)
        assert len(many) == 3
        assert many[0].payload == service.execute(typed[0]).payload
        np.testing.assert_array_equal(many[1].payload, service.execute(typed[1]).payload)
        np.testing.assert_array_equal(many[2].payload, service.execute(typed[2]).payload)

    def test_empty_sequence(self):
        _, _, service = _service()
        assert service.execute_many([]) == []


class TestPairwiseQueryValidation:
    def test_numpy_indices_coerce_to_ints(self):
        query = PairwiseQuery(indices=np.array([0, 3, 5]))
        assert query.indices == (0, 3, 5)
        assert all(type(i) is int for i in query.indices)

    def test_non_integer_indices_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            PairwiseQuery(indices=("a", "b"))

    def test_float_indices_rejected_not_truncated(self):
        # int() would quietly map 1.9 to row 1 — the wrong row, no error
        with pytest.raises(ValueError, match="integers"):
            PairwiseQuery(indices=(1.9,))
        with pytest.raises(ValueError, match="integers"):
            PairwiseQuery(indices=(True, 2))
        with pytest.raises(ValueError, match="integers"):
            PairwiseQuery(indices=3)

    def test_exactly_integral_floats_accepted(self):
        # a float-dtype index array from upstream arithmetic is fine as
        # long as every value is exactly integral (the legacy domain)
        query = PairwiseQuery(indices=np.array([0.0, 5.0]))
        assert query.indices == (0, 5)
        assert all(type(i) is int for i in query.indices)

    def test_query_subclasses_rejected_like_local_execute(self):
        class Tagged(NormsQuery):
            pass

        _, _, service = _service(n=3)
        with pytest.raises(TypeError, match="typed query"):
            service.execute(Tagged())
        from repro.serving import wire

        with pytest.raises(TypeError, match="typed query"):
            wire.encode_query(Tagged())


class TestConstructionPathPins:
    """Satellite: every construction path fails fast on foreign batches."""

    def _foreign_batch(self, seed=12):
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))
        return other.sketch_batch(
            np.random.default_rng(0).standard_normal((3, 128)), noise_rng=1
        )

    def test_from_batches_rejects_mutually_mismatched_digests(self):
        sk = _sketcher()
        with pytest.raises(ValueError, match="different configurations"):
            DistanceService.from_batches(_batch(sk, 3, 1), self._foreign_batch())

    def test_from_batches_with_expected_digest_rejects_first_foreign_batch(self):
        # without the pin, a self-consistent foreign set silently becomes
        # the store's configuration; with it, the very first batch fails
        with pytest.raises(ValueError, match="different"):
            DistanceService.from_batches(
                self._foreign_batch(), expected_digest=_CONFIG.digest()
            )

    def test_expected_digest_accepts_matching_batches(self):
        sk = _sketcher()
        service = DistanceService.from_batches(
            _batch(sk, 4, 1), expected_digest=_CONFIG.digest()
        )
        assert len(service) == 4
        assert service.store.expected_digest == _CONFIG.digest()

    def test_doctored_digest_with_foreign_metadata_rejected(self):
        # failing-before regression: a batch whose digest was rewritten to
        # match — but whose noise metadata still differs (here: a different
        # epsilon, hence a different noise scale and debias constant) —
        # used to be accepted by from_batches, silently mixing corrections
        sk = _sketcher()
        genuine = _batch(sk, 3, 1)
        loose = PrivateSketcher(dataclasses.replace(_CONFIG, epsilon=2.0))
        doctored = dataclasses.replace(
            loose.sketch_batch(
                np.random.default_rng(0).standard_normal((3, 128)), noise_rng=1
            ),
            config_digest=genuine.config_digest,
        )
        assert doctored.noise_second_moment != genuine.noise_second_moment
        with pytest.raises(ValueError, match="tampered"):
            DistanceService.from_batches(genuine, doctored)

    def test_doctored_query_rejected_at_execute(self):
        sk, _, service = _service()
        foreign = PrivateSketcher(
            dataclasses.replace(_CONFIG, epsilon=2.0)
        ).sketch(np.ones(128), noise_rng=0)
        doctored = dataclasses.replace(
            foreign, config_digest=service.store.metadata.config_digest
        )
        with pytest.raises(ValueError, match="tampered"):
            service.execute(TopKQuery(queries=doctored, k=1))

    def test_store_level_pin_applies_to_mmap_loads(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 4, 1))
        store.save(tmp_path / "store")
        pinned = ShardedSketchStore(expected_digest="0" * 16)
        info_digest = _CONFIG.digest()
        assert info_digest != "0" * 16
        from repro.serving.serialization import read_batch_info

        with pytest.raises(ValueError, match="different"):
            pinned._attach_mapped(read_batch_info(tmp_path / "store" / "shard-00000.skb"))


class TestExecutionPolicyEnv:
    """Satellite: env parsing fails loudly, and the repr reads well."""

    def test_repr(self):
        assert (
            repr(ExecutionPolicy())
            == "ExecutionPolicy(serial, prefilter=on, routing=on)"
        )
        assert (
            repr(ExecutionPolicy(workers=4, prefilter=False))
            == "ExecutionPolicy(workers=4, prefilter=off, routing=on)"
        )

    def test_garbage_worker_count_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "four")
        with pytest.raises(ValueError, match=r"REPRO_SERVING_WORKERS='four'.*integer"):
            ExecutionPolicy.from_env()

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_nonpositive_worker_count_rejected_not_clamped(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVING_WORKERS", raw)
        with pytest.raises(ValueError, match="REPRO_SERVING_WORKERS.*>= 1"):
            ExecutionPolicy.from_env()

    def test_garbage_prefilter_switch_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_PREFILTER", "maybe")
        with pytest.raises(ValueError, match="REPRO_SERVING_PREFILTER='maybe'"):
            ExecutionPolicy.from_env()

    @pytest.mark.parametrize(
        "raw,expected",
        [("1", True), ("on", True), ("Yes", True), ("0", False), ("OFF", False)],
    )
    def test_prefilter_switch_values(self, monkeypatch, raw, expected):
        monkeypatch.delenv("REPRO_SERVING_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_SERVING_PREFILTER", raw)
        assert ExecutionPolicy.from_env().prefilter is expected

    @pytest.mark.parametrize("variable", ["REPRO_SERVING_WORKERS", "REPRO_SERVING_PREFILTER"])
    def test_empty_env_values_mean_the_default(self, monkeypatch, variable):
        # docker-compose / CI YAML "unset" a variable by exporting it
        # empty; both parsers must treat that as the default, not garbage
        monkeypatch.delenv("REPRO_SERVING_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SERVING_PREFILTER", raising=False)
        monkeypatch.setenv(variable, "")
        assert ExecutionPolicy.from_env() == ExecutionPolicy(workers=1, prefilter=True)
