"""Property tests for the wire codec: exact round trips + rejection paths.

The wire contract is *exactness*: a query that crosses the wire and
comes back must be indistinguishable from the original — float64 values
bit-for-bit (they ride in the v2 binary container), label types
preserved (the ``encode_label``/``decode_label`` lesson from the store
persistence work), parameters equal.  Hypothesis drives the shapes;
the rejection tests pin every malformed-envelope and version-mismatch
path to :class:`~repro.serving.wire.WireError`.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import wire
from repro.serving.queries import (
    CrossQuery,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    TopKQuery,
)
from repro.serving.wire import WireError

_CONFIG = SketchConfig(input_dim=64, epsilon=2.0, output_dim=32, sparsity=4, seed=5)
_TEMPLATE = PrivateSketcher(_CONFIG).sketch_batch(
    np.random.default_rng(0).standard_normal((1, 64)), noise_rng=0
)[0:0]


# -- strategies ----------------------------------------------------------------

_scalar_labels = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
_labels = st.recursive(
    _scalar_labels,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.lists(inner, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=5), inner, max_size=3),
    ),
    max_leaves=6,
)

_finite = st.floats(allow_nan=False, allow_infinity=False)
_any_float = st.floats()  # NaN and infinities included: arrays must be bit-exact


def _batch_of(values: np.ndarray, labels=()):
    return dataclasses.replace(
        _TEMPLATE, values=np.atleast_2d(values), labels=tuple(labels)
    )


@st.composite
def batches(draw, max_rows=5):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    values = np.random.default_rng(seed).standard_normal((n, 32))
    if n and draw(st.booleans()):  # sprinkle non-finite payload values
        values[draw(st.integers(0, n - 1)), draw(st.integers(0, 31))] = draw(
            st.sampled_from([np.inf, -np.inf, np.nan, -0.0, 1e-308])
        )
    labels = draw(
        st.one_of(st.just(()), st.lists(_labels, min_size=n, max_size=n))
    )
    return _batch_of(values.reshape(n, 32), labels)


@st.composite
def sketches(draw):
    batch = draw(batches(max_rows=1))
    if len(batch) == 0:
        batch = _batch_of(np.zeros((1, 32)), ("row",))
    return batch.row(0)


def _assert_release_equal(a, b):
    assert type(a) is type(b)
    np.testing.assert_array_equal(
        np.atleast_2d(a.values), np.atleast_2d(b.values)
    )  # NaN-safe and exact
    assert a.values.tobytes() == b.values.tobytes()  # bit-for-bit, signs of 0 too
    assert a.config_digest == b.config_digest
    assert a.noise_spec == b.noise_spec
    assert a.noise_second_moment == b.noise_second_moment
    if hasattr(a, "labels"):
        assert a.labels == b.labels
        for ours, theirs in zip(a.labels, b.labels):
            assert type(ours) is type(theirs)
    else:
        assert a.label == b.label


# -- query round trips ---------------------------------------------------------


class TestQueryRoundTrip:
    @given(batch=batches(), k=st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_top_k(self, batch, k):
        back = wire.decode_query(wire.encode_query(TopKQuery(queries=batch, k=k)))
        assert isinstance(back, TopKQuery)
        assert back.k == k
        _assert_release_equal(back.queries, batch)

    @given(sketch=sketches(), radius_sq=st.floats(min_value=0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_radius(self, sketch, radius_sq):
        query = RadiusQuery(query=sketch, radius_sq=radius_sq)
        back = wire.decode_query(wire.encode_query(query))
        assert isinstance(back, RadiusQuery)
        assert back.radius_sq == radius_sq  # shortest-repr floats are exact
        _assert_release_equal(back.query, sketch)

    @given(batch=batches())
    @settings(max_examples=25, deadline=None)
    def test_cross(self, batch):
        back = wire.decode_query(wire.encode_query(CrossQuery(queries=batch)))
        assert isinstance(back, CrossQuery)
        _assert_release_equal(back.queries, batch)

    @given(indices=st.lists(st.integers(-(2**31), 2**31), max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_pairwise_and_norms(self, indices):
        back = wire.decode_query(
            wire.encode_query(PairwiseQuery(indices=tuple(indices)))
        )
        assert isinstance(back, PairwiseQuery)
        assert back.indices == tuple(indices)
        assert isinstance(wire.decode_query(wire.encode_query(NormsQuery())), NormsQuery)

    @given(queries=st.lists(st.integers(0, 2), max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_query_batches(self, queries):
        pool = [NormsQuery(), PairwiseQuery(indices=(1, 2)), TopKQuery(queries=_TEMPLATE, k=3)]
        typed = [pool[i] for i in queries]
        back = wire.decode_queries(wire.encode_queries(typed))
        assert [type(q) for q in back] == [type(q) for q in typed]


# -- result round trips --------------------------------------------------------

_stats = st.builds(
    QueryStats,
    shards_visited=st.integers(0, 100),
    shards_pruned=st.integers(0, 100),
    rows_scanned=st.integers(0, 10**6),
    rows_total=st.integers(0, 10**6),
    elapsed_seconds=st.floats(min_value=0, allow_nan=False, allow_infinity=False),
)
_rankings = st.lists(st.tuples(_labels, _finite), max_size=6)


class TestResultRoundTrip:
    @given(rankings=st.lists(_rankings, max_size=4), stats=_stats)
    @settings(max_examples=40, deadline=None)
    def test_top_k_exact_including_label_types(self, rankings, stats):
        result = QueryResult(payload=rankings, stats=stats)
        back = wire.decode_result(wire.encode_result(result, "top_k"))
        assert back.stats == stats
        assert len(back.payload) == len(rankings)
        for ours, theirs in zip(rankings, back.payload):
            assert theirs == [(label, float(est)) for label, est in ours]
            for (label_a, est_a), (label_b, est_b) in zip(ours, theirs):
                assert type(label_b) is type(label_a)  # ints stay ints, etc.
                assert est_b == float(est_a)  # exact float equality

    @given(hits=_rankings, stats=_stats)
    @settings(max_examples=40, deadline=None)
    def test_radius(self, hits, stats):
        back = wire.decode_result(
            wire.encode_result(QueryResult(payload=hits, stats=stats), "radius")
        )
        assert back.payload == [(label, float(est)) for label, est in hits]
        assert back.stats == stats

    @given(
        rows=st.integers(0, 5),
        cols=st.integers(0, 5),
        seed=st.integers(0, 2**31),
        kind=st.sampled_from(["cross", "pairwise", "norms"]),
        special=st.lists(st.sampled_from([np.nan, np.inf, -np.inf, -0.0]), max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_matrix_payloads_bit_exact(self, rows, cols, seed, kind, special):
        values = np.random.default_rng(seed).standard_normal((rows, cols))
        flat = values.ravel()
        for i, value in enumerate(special[: flat.size]):
            flat[i] = value
        result = QueryResult(payload=values, stats=QueryStats())
        back = wire.decode_result(wire.encode_result(result, kind))
        assert back.payload.shape == values.shape
        assert back.payload.tobytes() == values.tobytes()  # NaN bit patterns too

    def test_non_finite_ranking_estimates_stay_valid_json(self):
        # bare NaN/Infinity tokens are not RFC 8259; non-finite scalars
        # must cross hex-tagged so strict parsers accept the envelope
        hits = [(0, float("nan")), (1, float("inf")), (2, -0.0)]
        blob = wire.encode_result(QueryResult(payload=hits, stats=QueryStats()), "radius")
        json.loads(blob.decode("utf-8"), parse_constant=_reject_constant)  # strict
        back = wire.decode_result(blob).payload
        assert np.isnan(back[0][1]) and back[1][1] == float("inf")
        assert str(back[2][1]) == "-0.0"  # sign of zero survives

    def test_infinite_radius_stays_valid_json(self):
        sketch = _batch_of(np.zeros((1, 32)), ("r",)).row(0)
        blob = wire.encode_query(RadiusQuery(query=sketch, radius_sq=float("inf")))
        json.loads(blob.decode("utf-8"), parse_constant=_reject_constant)
        assert wire.decode_query(blob).radius_sq == float("inf")

    def test_result_batches(self):
        results = [
            QueryResult(payload=[[("a", 1.0)]], stats=QueryStats(shards_visited=1)),
            QueryResult(payload=np.arange(4.0).reshape(2, 2), stats=QueryStats()),
        ]
        back = wire.decode_results(wire.encode_results(results, ["top_k", "cross"]))
        assert back[0].payload == results[0].payload
        assert back[0].stats == results[0].stats
        np.testing.assert_array_equal(back[1].payload, results[1].payload)


# -- rejection paths -----------------------------------------------------------


def _reject_constant(name):  # json hook: NaN/Infinity tokens are a codec bug
    raise AssertionError(f"non-RFC-8259 constant {name!r} on the wire")


def _valid_query_envelope() -> dict:
    return json.loads(wire.encode_query(NormsQuery()).decode("utf-8"))


class TestRejection:
    def test_not_json(self):
        with pytest.raises(WireError, match="JSON"):
            wire.decode_query(b"\xff\x00 definitely not json")

    def test_json_but_not_an_object(self):
        with pytest.raises(WireError, match="object"):
            wire.decode_query(b"42")

    def test_wrong_format_tag(self):
        envelope = _valid_query_envelope()
        envelope["format"] = "someone-else's-protocol"
        with pytest.raises(WireError, match="format tag"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_version_mismatch_rejected_up_front(self):
        envelope = _valid_query_envelope()
        envelope["version"] = wire.WIRE_VERSION + 1
        with pytest.raises(WireError, match="unsupported wire version"):
            wire.decode_query(json.dumps(envelope).encode())
        envelope["version"] = "1"  # right number, wrong type: still rejected
        with pytest.raises(WireError, match="unsupported wire version"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_kind_mismatch(self):
        with pytest.raises(WireError, match="expected a result envelope"):
            wire.decode_result(wire.encode_query(NormsQuery()))
        with pytest.raises(WireError, match="expected a query envelope"):
            wire.decode_query(
                wire.encode_result(QueryResult(payload=[], stats=QueryStats()), "radius")
            )

    def test_unknown_query_kind(self):
        envelope = _valid_query_envelope()
        envelope["query"] = "nearest_enemy"
        with pytest.raises(WireError, match="unknown query kind"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_missing_required_field(self):
        envelope = json.loads(
            wire.encode_query(TopKQuery(queries=_TEMPLATE, k=2)).decode("utf-8")
        )
        del envelope["k"]
        with pytest.raises(WireError, match="missing required field"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_bad_base64_release(self):
        envelope = json.loads(
            wire.encode_query(CrossQuery(queries=_TEMPLATE)).decode("utf-8")
        )
        envelope["release"]["v2"] = "!!! not base64 !!!"
        with pytest.raises(WireError, match="base64"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_corrupted_embedded_blob(self):
        import base64

        envelope = json.loads(
            wire.encode_query(CrossQuery(queries=_TEMPLATE)).decode("utf-8")
        )
        blob = bytearray(base64.b64decode(envelope["release"]["v2"]))
        blob[len(blob) // 2] ^= 0xFF
        envelope["release"]["v2"] = base64.b64encode(bytes(blob)).decode()
        with pytest.raises(WireError, match="invalid"):
            wire.decode_query(json.dumps(envelope).encode())

    def test_query_batch_must_be_array(self):
        with pytest.raises(WireError, match="array"):
            wire.decode_queries(wire.encode_query(NormsQuery()))

    def test_malformed_ranking_payload(self):
        blob = wire.encode_result(
            QueryResult(payload=[("a", 1.0)], stats=QueryStats()), "radius"
        )
        envelope = json.loads(blob.decode("utf-8"))
        envelope["payload"] = [["only-a-label"]]
        with pytest.raises(WireError, match="ranking"):
            wire.decode_result(json.dumps(envelope).encode())

    def test_malformed_array_payload(self):
        blob = wire.encode_result(
            QueryResult(payload=np.zeros((2, 2)), stats=QueryStats()), "cross"
        )
        envelope = json.loads(blob.decode("utf-8"))
        envelope["payload"]["shape"] = [3, 3]  # lies about the byte count
        with pytest.raises(WireError, match="shape"):
            wire.decode_result(json.dumps(envelope).encode())
        # non-numeric / non-iterable / negative-product / int64-overflow shapes
        for bad_shape in (["x"], 5, [-1, -4], [2**32, 2**32]):
            envelope["payload"]["shape"] = bad_shape
            with pytest.raises(WireError, match="shape"):
                wire.decode_result(json.dumps(envelope).encode())

    def test_invalid_query_parameters_fail_at_decode(self):
        envelope = json.loads(
            wire.encode_query(TopKQuery(queries=_TEMPLATE, k=2)).decode("utf-8")
        )
        envelope["k"] = 0
        with pytest.raises(ValueError, match="top"):
            wire.decode_query(json.dumps(envelope).encode())


class TestErrorEnvelopes:
    @pytest.mark.parametrize("exc", [ValueError("v"), TypeError("t"), IndexError("i")])
    def test_class_and_message_survive(self, exc):
        back = wire.decode_error(wire.encode_error(exc))
        assert type(back) is type(exc)
        assert str(back) == str(exc)

    def test_unknown_class_degrades_to_value_error(self):
        back = wire.decode_error(wire.encode_error(RuntimeError("boom")))
        assert type(back) is ValueError
        assert str(back) == "boom"
