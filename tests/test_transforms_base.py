"""Tests for the LinearTransform interface shared by all projections."""

import numpy as np
import pytest

from repro.transforms import exact_sensitivity
from tests.helpers import TRANSFORM_SPECS, fresh_vector, make_transform, spec_id


@pytest.mark.parametrize("spec", TRANSFORM_SPECS, ids=spec_id)
class TestInterfaceContract:
    def test_apply_shape_single(self, spec):
        t = make_transform(spec)
        y = t.apply(fresh_vector())
        assert y.shape == (t.output_dim,)

    def test_apply_shape_batch(self, spec):
        t = make_transform(spec)
        batch = np.random.default_rng(0).standard_normal((5, t.input_dim))
        out = t.apply(batch)
        assert out.shape == (5, t.output_dim)

    def test_batch_rows_match_single(self, spec):
        t = make_transform(spec)
        batch = np.random.default_rng(1).standard_normal((4, t.input_dim))
        out = t.apply(batch)
        for i in range(4):
            assert np.allclose(out[i], t.apply(batch[i]), atol=1e-10)

    def test_linearity(self, spec):
        t = make_transform(spec)
        rng = np.random.default_rng(2)
        x, y = rng.standard_normal(t.input_dim), rng.standard_normal(t.input_dim)
        assert np.allclose(t.apply(x + 3.0 * y), t.apply(x) + 3.0 * t.apply(y), atol=1e-9)

    def test_zero_maps_to_zero(self, spec):
        t = make_transform(spec)
        assert np.allclose(t.apply(np.zeros(t.input_dim)), 0.0)

    def test_determinism_across_instances(self, spec):
        x = fresh_vector()
        a = make_transform(spec, seed=7).apply(x)
        b = make_transform(spec, seed=7).apply(x)
        assert np.allclose(a, b)

    def test_different_seeds_give_different_maps(self, spec):
        x = fresh_vector()
        a = make_transform(spec, seed=1).apply(x)
        b = make_transform(spec, seed=2).apply(x)
        assert not np.allclose(a, b)

    def test_to_dense_agrees_with_apply(self, spec):
        t = make_transform(spec)
        x = fresh_vector()
        assert np.allclose(t.to_dense() @ x, t.apply(x), atol=1e-9)

    def test_column_block_matches_dense(self, spec):
        t = make_transform(spec)
        dense = t.to_dense()
        cols = np.array([0, 3, t.input_dim - 1])
        assert np.allclose(t.column_block(cols), dense[:, cols], atol=1e-12)

    def test_apply_sparse_matches_dense_apply(self, spec):
        t = make_transform(spec)
        x = np.zeros(t.input_dim)
        idx = np.array([1, 5, 17, t.input_dim - 1])
        vals = np.array([1.5, -2.0, 0.5, 3.0])
        x[idx] = vals
        assert np.allclose(t.apply_sparse(idx, vals), t.apply(x), atol=1e-9)

    def test_coordinate_embedding_matches_column(self, spec):
        t = make_transform(spec)
        dense = t.to_dense()
        rows, values = t.coordinate_embedding(4)
        rebuilt = np.zeros(t.output_dim)
        np.add.at(rebuilt, rows, values)
        assert np.allclose(rebuilt, dense[:, 4], atol=1e-12)

    def test_exact_sensitivity_matches_dense(self, spec):
        t = make_transform(spec)
        dense = t.to_dense()
        for p in (1, 2):
            expected = np.abs(dense) ** p
            expected = float((expected.sum(axis=0) ** (1.0 / p)).max())
            assert exact_sensitivity(t, p, block_size=17) == pytest.approx(expected)

    def test_wrong_dimension_rejected(self, spec):
        t = make_transform(spec)
        with pytest.raises(ValueError):
            t.apply(np.ones(t.input_dim + 1))

    def test_sparse_indices_validated(self, spec):
        t = make_transform(spec)
        with pytest.raises(ValueError):
            t.apply_sparse(np.array([t.input_dim]), np.array([1.0]))

    def test_coordinate_embedding_index_validated(self, spec):
        t = make_transform(spec)
        with pytest.raises(ValueError):
            t.coordinate_embedding(t.input_dim)


@pytest.mark.parametrize("spec", TRANSFORM_SPECS, ids=spec_id)
def test_lpp_within_monte_carlo_error(spec):
    """Definition 4: E[||Sx||^2] == ||x||^2 for every transform."""
    from tests.helpers import mean_distortion

    x = fresh_vector(seed=3)
    ratio = mean_distortion(spec, x, trials=300)
    assert ratio == pytest.approx(1.0, abs=0.08)


class TestConstructorValidation:
    def test_rejects_zero_input_dim(self):
        from repro.transforms.gaussian import GaussianTransform

        with pytest.raises(ValueError):
            GaussianTransform(0, 4, seed=0)

    def test_rejects_zero_output_dim(self):
        from repro.transforms.gaussian import GaussianTransform

        with pytest.raises(ValueError):
            GaussianTransform(4, 0, seed=0)

    def test_exact_sensitivity_validates_p(self):
        t = make_transform(("gaussian", {}))
        with pytest.raises(ValueError):
            exact_sensitivity(t, 0.5)
