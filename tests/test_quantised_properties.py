"""Property suite for the quantisation error envelope and round trips.

Pins the two contracts of low-precision storage:

* **Envelope** — served squared-distance and squared-norm estimates
  from an ``f4``/``f2``/``int8`` store stay within the documented
  worst-case bound of :mod:`repro.theory.quantisation` of the float64
  path, across storage specs, magnitudes, shard-boundary splits and
  int8 shard reseals.
* **Determinism** — ``compact(storage=...)`` to a lower precision
  followed by save/load/mmap is bit-identical: the decoded values, the
  norm caches and the re-saved shard bytes never drift.

Labels are orthogonal to quantisation and must stay so: NaN/inf float
labels round-trip through a quantised store unchanged.
"""

import dataclasses
import math
import tempfile
from functools import lru_cache
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    ExecutionPolicy,
    NormsQuery,
    RadiusQuery,
    ShardedSketchStore,
    TopKQuery,
)
from repro.theory.quantisation import sq_distance_error_bound, sq_norm_error_bound

_SPECS = st.sampled_from(["f4", "f2", "int8"])
#: magnitudes stay inside float16 range even with the outlier factor
_EXPONENTS = st.integers(-4, 2)


@lru_cache(maxsize=None)
def _template(dim: int):
    """A zero-row release whose sketches have ``dim`` coordinates."""
    config = SketchConfig(input_dim=32, epsilon=8.0, output_dim=dim, sparsity=4, seed=7)
    return PrivateSketcher(config).sketch_batch(np.zeros((1, 32)), noise_rng=0)[0:0]


def _values(rng, n, dim, exponent, outlier):
    values = rng.standard_normal((n, dim)) * 10.0 ** exponent
    if outlier and n > 1:
        # a 50x row mid-store forces an int8 shard reseal (and stresses
        # the relative envelopes) while staying inside the f2 range
        values[n // 2] *= 50.0
    return values


class TestErrorEnvelope:
    @given(
        spec=_SPECS,
        dim=st.sampled_from([8, 16, 32]),
        n=st.integers(1, 24),
        capacity=st.integers(1, 7),
        seed=st.integers(0, 10_000),
        exponent=_EXPONENTS,
        outlier=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_cross_estimates_within_documented_bound(
        self, spec, dim, n, capacity, seed, exponent, outlier
    ):
        rng = np.random.default_rng(seed)
        values = _values(rng, n, dim, exponent, outlier)
        queries = rng.standard_normal((2, dim)) * 10.0 ** exponent
        template = _template(dim)
        stored = dataclasses.replace(template, values=values, labels=())
        released = dataclasses.replace(template, values=queries, labels=())

        store = ShardedSketchStore(shard_capacity=capacity, storage=spec)
        store.add_batch(stored)
        got = DistanceService(store).execute(CrossQuery(queries=released)).payload
        want = estimators.cross_sq_distances(released, stored)

        for view in store.snapshot():
            for j in range(view.size):
                row = values[view.start + j]
                for i in range(queries.shape[0]):
                    bound = sq_distance_error_bound(spec, queries[i], row, view.scale)
                    error = abs(got[i, view.start + j] - want[i, view.start + j])
                    assert error <= bound, (
                        f"{spec}: |{got[i, view.start + j]} - "
                        f"{want[i, view.start + j]}| = {error} > bound {bound}"
                    )

    @given(
        spec=_SPECS,
        n=st.integers(1, 20),
        capacity=st.integers(1, 5),
        seed=st.integers(0, 10_000),
        exponent=_EXPONENTS,
        outlier=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_norms_within_documented_bound(
        self, spec, n, capacity, seed, exponent, outlier
    ):
        dim = 16
        rng = np.random.default_rng(seed)
        values = _values(rng, n, dim, exponent, outlier)
        template = _template(dim)
        stored = dataclasses.replace(template, values=values, labels=())

        store = ShardedSketchStore(shard_capacity=capacity, storage=spec)
        store.add_batch(stored)
        got = DistanceService(store).execute(NormsQuery()).payload
        want = estimators.sq_norms(stored)
        for view in store.snapshot():
            for j in range(view.size):
                bound = sq_norm_error_bound(spec, values[view.start + j], view.scale)
                assert abs(got[view.start + j] - want[view.start + j]) <= bound

    def test_f8_envelope_collapses_to_slack(self):
        # the documented bound degrades gracefully: the full-precision
        # spec's envelope is the float64 slack alone, and the served
        # estimates actually are bit-identical to the flat estimator
        rng = np.random.default_rng(0)
        values = rng.standard_normal((10, 16))
        queries = rng.standard_normal((2, 16))
        bound = sq_distance_error_bound("f8", queries[0], values[0])
        assert bound < 1e-9
        template = _template(16)
        store = ShardedSketchStore(shard_capacity=3, storage="f8")
        store.add_batch(dataclasses.replace(template, values=values, labels=()))
        released = dataclasses.replace(template, values=queries, labels=())
        got = DistanceService(store).execute(CrossQuery(queries=released)).payload
        np.testing.assert_array_equal(
            got, estimators.cross_sq_distances(released, store.to_batch())
        )


class TestPrefilterExactOverQuantisedShards:
    @given(
        spec=st.sampled_from(["f4", "f2", "int8"]),
        n=st.integers(4, 32),
        capacity=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        exponent=_EXPONENTS,
        separate=st.booleans(),
        k=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_top_k_and_radius_identical_with_prefilter(
        self, spec, n, capacity, seed, exponent, separate, k
    ):
        # the prefilter contract survives quantisation: its slack is
        # widened by the float32 accumulation envelope, so pruning can
        # only skip shards whose every (float32-rounded) estimate
        # genuinely loses — results match the unfiltered scan exactly,
        # even when estimates tie within GEMM rounding
        dim = 16
        rng = np.random.default_rng(seed)
        values = _values(rng, n, dim, exponent, outlier=False)
        if separate:
            # norm-separated shards: the regime where pruning actually
            # fires (and where a too-tight bound would drop winners);
            # offsets capped inside the f2 range (~6.5e4)
            n_shards = (n + capacity - 1) // capacity
            values[:, 0] += np.repeat(
                np.linspace(0.0, 2.0e4, n_shards), capacity
            )[:n]
        template = _template(dim)
        store = ShardedSketchStore(shard_capacity=capacity, storage=spec)
        store.add_batch(dataclasses.replace(template, values=values, labels=()))
        query = dataclasses.replace(template, values=values[:1].copy(), labels=())

        on = DistanceService(store, ExecutionPolicy(prefilter=True))
        off = DistanceService(store, ExecutionPolicy(prefilter=False))
        top = TopKQuery(queries=query, k=k)
        assert on.execute(top).payload == off.execute(top).payload
        cutoff = float(
            np.median(off.execute(CrossQuery(queries=query)).payload[0])
        )
        radius = RadiusQuery(query=query.row(0), radius_sq=max(cutoff, 0.0))
        assert on.execute(radius).payload == off.execute(radius).payload


    def test_lower_bound_covers_float32_rounding_on_collinear_shards(self):
        # regression: the pre-quantisation slack (sized for float64
        # rounding) is provably violated by float32 scans — near-
        # collinear rows make the norm-gap bound tight while the f32
        # GEMM rounds estimates below it by ~1e-3 at these magnitudes,
        # so the prefilter could prune a shard holding a true winner.
        # The widened slack must lower-bound every computed estimate.
        from repro.serving.execution import ExecutionPolicy
        from repro.serving.service import _shard_lower_bounds

        template = _template(64)
        for seed, scale in ((0, 100.0), (1, 1000.0), (3, 10.0)):
            rng = np.random.default_rng(seed)
            direction = rng.standard_normal(64)
            direction /= np.linalg.norm(direction)
            factors = 1.0 + np.abs(rng.normal(0.0, 0.02, 256)) + 1e-4
            values = np.outer(factors, direction) * scale
            store = ShardedSketchStore(shard_capacity=256, storage="f4")
            store.add_batch(dataclasses.replace(template, values=values, labels=()))
            released = dataclasses.replace(
                template, values=(direction * scale)[np.newaxis, :], labels=()
            )
            service = DistanceService(store, ExecutionPolicy(prefilter=False))
            block = service.execute(CrossQuery(queries=released)).payload[0]
            rows = np.asarray(released.values, dtype=np.float64)
            sq_rows = np.einsum("ij,ij->i", rows, rows)
            bound = _shard_lower_bounds(
                store.snapshot()[0],
                sq_rows,
                np.sqrt(sq_rows),
                estimators.sq_distance_correction(store.metadata),
                service._scan_gamma(),
            )[0]
            assert block.min() >= bound, (
                f"prefilter bound {bound} above computed estimate "
                f"{block.min()} (seed {seed}, scale {scale})"
            )


class TestQuantisedRoundTripDeterminism:
    @given(
        spec=_SPECS,
        n=st.integers(1, 20),
        capacity=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        exponent=_EXPONENTS,
    )
    @settings(max_examples=25, deadline=None)
    def test_compact_save_load_mmap_bit_identical(
        self, spec, n, capacity, seed, exponent
    ):
        dim = 16
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((n, dim)) * 10.0 ** exponent
        template = _template(dim)
        store = ShardedSketchStore(shard_capacity=capacity, storage="f8")
        store.add_batch(dataclasses.replace(template, values=values, labels=()))
        store.compact(storage=spec)
        assert store.storage.name == spec

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "store"
            store.save(root)
            eager = ShardedSketchStore.load(root)
            mapped = ShardedSketchStore.load(root, mmap=True)
            for loaded in (eager, mapped):
                assert loaded.storage.name == spec
                for i in range(store.n_shards):
                    np.testing.assert_array_equal(
                        np.asarray(loaded.shard_values(i)),
                        np.asarray(store.shard_values(i)),
                    )
                    np.testing.assert_array_equal(
                        loaded.shard_sq_norms(i), store.shard_sq_norms(i)
                    )
            # re-saving what was loaded reproduces the files byte for
            # byte: nothing re-rounds after the one quantisation
            resaved = Path(tmp) / "resaved"
            eager.save(resaved)
            for blob in sorted(root.iterdir()):
                assert (resaved / blob.name).read_bytes() == blob.read_bytes(), (
                    f"{blob.name} drifted on a save/load/save round trip"
                )

    def test_nan_and_inf_labels_survive_quantised_stores(self, tmp_path):
        labels = (float("nan"), float("inf"), float("-inf"), "ok", 7)
        template = _template(16)
        rng = np.random.default_rng(3)
        batch = dataclasses.replace(
            template, values=rng.standard_normal((5, 16)), labels=labels
        )
        store = ShardedSketchStore(shard_capacity=2, storage="f4")
        store.add_batch(batch)
        store.save(tmp_path / "store")
        for mmap in (False, True):
            loaded = ShardedSketchStore.load(tmp_path / "store", mmap=mmap).labels
            assert math.isnan(loaded[0])
            assert loaded[1:] == [float("inf"), float("-inf"), "ok", 7]
