"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.dp.sensitivity import is_neighboring
from repro.workloads import (
    DocumentCorpus,
    UpdateStream,
    binary_pair,
    gaussian_vector,
    histogram_vector,
    make_corpus,
    materialize_stream,
    neighboring_pair,
    pair_at_distance,
    sparse_vector,
    unit_vector,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestVectors:
    def test_unit_vector_norm(self, rng):
        assert np.linalg.norm(unit_vector(64, rng)) == pytest.approx(1.0)

    def test_gaussian_vector_scale(self, rng):
        x = gaussian_vector(20000, rng, scale=3.0)
        assert np.std(x) == pytest.approx(3.0, rel=0.05)

    def test_pair_at_exact_distance(self, rng):
        x, y = pair_at_distance(64, 7.5, rng)
        assert np.linalg.norm(x - y) == pytest.approx(7.5)

    def test_pair_distance_validated(self, rng):
        with pytest.raises(ValueError):
            pair_at_distance(64, 0.0, rng)

    def test_sparse_vector_support(self, rng):
        x = sparse_vector(100, 7, rng)
        assert int((x != 0).sum()) == 7

    def test_sparse_vector_nnz_validated(self, rng):
        with pytest.raises(ValueError):
            sparse_vector(10, 11, rng)

    def test_binary_pair_hamming(self, rng):
        x, y = binary_pair(128, 17, rng)
        assert int((x != y).sum()) == 17
        assert float((x - y) @ (x - y)) == pytest.approx(17.0)

    def test_binary_pair_values(self, rng):
        x, _ = binary_pair(64, 5, rng)
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_histogram_total_mass(self, rng):
        h = histogram_vector(50, 1000, rng)
        assert h.sum() == pytest.approx(1000.0)
        assert (h >= 0).all()

    def test_histogram_skewed(self, rng):
        h = histogram_vector(50, 5000, rng, zipf_a=1.5)
        assert h.max() > h.mean() * 3


class TestNeighboringPairs:
    def test_unit_l1_mode(self, rng):
        for _ in range(10):
            x, y = neighboring_pair(32, rng, mode="unit_l1")
            assert is_neighboring(x, y)

    def test_bit_flip_mode(self, rng):
        x, y = neighboring_pair(32, rng, mode="bit_flip")
        assert int((x != y).sum()) == 1
        assert is_neighboring(x, y)

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError, match="unknown mode"):
            neighboring_pair(32, rng, mode="gradient")


class TestStreams:
    def test_length(self):
        assert len(UpdateStream(dim=10, n_updates=55, seed=0)) == 55

    def test_replayable(self):
        stream = UpdateStream(dim=10, n_updates=100, seed=1)
        assert list(stream) == list(stream)

    def test_deletions_fraction(self):
        stream = UpdateStream(dim=10, n_updates=5000, seed=2, deletions=0.25)
        negatives = sum(1 for _, delta in stream if delta < 0)
        assert negatives / 5000 == pytest.approx(0.25, abs=0.03)

    def test_indices_in_range(self):
        stream = UpdateStream(dim=7, n_updates=1000, seed=3)
        assert all(0 <= i < 7 for i, _ in stream)

    def test_materialize(self):
        events = [(0, 1.0), (0, 1.0), (3, -1.0)]
        vec = materialize_stream(events, 5)
        assert vec.tolist() == [2.0, 0.0, 0.0, -1.0, 0.0]

    def test_materialize_validates_indices(self):
        with pytest.raises(ValueError):
            materialize_stream([(9, 1.0)], 5)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            UpdateStream(dim=0, n_updates=5)
        with pytest.raises(ValueError):
            UpdateStream(dim=5, n_updates=5, zipf_a=1.0)
        with pytest.raises(ValueError):
            UpdateStream(dim=5, n_updates=5, deletions=1.5)


class TestCorpus:
    def _corpus(self, rng):
        return make_corpus(n_docs=40, vocab_size=300, doc_length=120, rng=rng, n_topics=3)

    def test_shapes(self, rng):
        corpus = self._corpus(rng)
        assert corpus.counts.shape == (40, 300)
        assert corpus.topics.shape == (40,)
        assert corpus.n_docs == 40
        assert corpus.vocab_size == 300

    def test_doc_lengths(self, rng):
        corpus = self._corpus(rng)
        assert np.allclose(corpus.counts.sum(axis=1), 120.0)

    def test_topics_in_range(self, rng):
        corpus = self._corpus(rng)
        assert set(np.unique(corpus.topics)) <= set(range(3))

    def test_pairwise_distances_match_direct(self, rng):
        corpus = self._corpus(rng)
        mat = corpus.pairwise_sq_distances()
        i, j = 3, 17
        direct = float(np.sum((corpus.counts[i] - corpus.counts[j]) ** 2))
        assert mat[i, j] == pytest.approx(direct)
        assert np.allclose(np.diag(mat), 0.0)

    def test_same_topic_closer_on_average(self, rng):
        corpus = make_corpus(n_docs=60, vocab_size=200, doc_length=400, rng=rng, n_topics=2)
        mat = corpus.pairwise_sq_distances()
        same, cross = [], []
        for i in range(corpus.n_docs):
            for j in range(i + 1, corpus.n_docs):
                (same if corpus.topics[i] == corpus.topics[j] else cross).append(mat[i, j])
        assert np.mean(same) < np.mean(cross)

    def test_tfidf_shape_and_nonnegative(self, rng):
        corpus = self._corpus(rng)
        weights = corpus.tfidf()
        assert weights.shape == corpus.counts.shape
        assert (weights >= 0).all()

    def test_params_validated(self, rng):
        with pytest.raises(ValueError):
            make_corpus(0, 10, 5, rng)
        with pytest.raises(ValueError):
            make_corpus(5, 10, 5, rng, zipf_a=0.9)
