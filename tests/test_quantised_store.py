"""Quantised shard storage: specs, stores, persistence, maintenance.

The storage-layer behaviour contract: every
:class:`~repro.serving.storage.StorageSpec` serves through the
unchanged ``ShardView`` interface, persists its exact codes (format
v3), refuses to mix with other specs in ``merge()``, and reports its
footprint through ``describe()``.  The error-envelope *bounds* are
pinned separately by ``tests/test_quantised_properties.py``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    STORAGE_SPECS,
    DistanceService,
    SerializationError,
    ShardedSketchStore,
    StorageSpec,
    TopKQuery,
    wire,
)
from repro.serving.serialization import read_batch_info, write_batch
from repro.serving.storage import _STORAGE_ENV
from tests.helpers import execute_top_k as _top_k

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=seed, labels=labels)


class TestStorageSpec:
    def test_parse_names_and_instances(self):
        assert StorageSpec.parse("f4") is STORAGE_SPECS["f4"]
        assert StorageSpec.parse(STORAGE_SPECS["int8"]) is STORAGE_SPECS["int8"]
        assert [STORAGE_SPECS[n].itemsize for n in ("f8", "f4", "f2", "int8")] == [
            8, 4, 2, 1,
        ]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown storage spec"):
            StorageSpec.parse("f16")

    def test_env_default_strict(self, monkeypatch):
        monkeypatch.delenv(_STORAGE_ENV, raising=False)
        assert StorageSpec.from_env().name == "f8"
        monkeypatch.setenv(_STORAGE_ENV, "f2")
        assert StorageSpec.from_env().name == "f2"
        assert ShardedSketchStore().storage.name == "f2"
        monkeypatch.setenv(_STORAGE_ENV, "float32")  # garbage fails loudly
        with pytest.raises(ValueError, match="REPRO_STORE_DTYPE='float32'"):
            StorageSpec.from_env()
        with pytest.raises(ValueError, match="REPRO_STORE_DTYPE"):
            ShardedSketchStore()

    def test_explicit_storage_beats_env(self, monkeypatch):
        monkeypatch.setenv(_STORAGE_ENV, "f4")
        assert ShardedSketchStore(storage="int8").storage.name == "int8"

    def test_float_roundtrip_is_cast(self):
        rows = np.array([[0.1, -3.7, 1e-12]])
        np.testing.assert_array_equal(
            STORAGE_SPECS["f4"].roundtrip(rows), rows.astype(np.float32)
        )
        with pytest.raises(ValueError, match="per-shard scale"):
            STORAGE_SPECS["int8"].roundtrip(rows)

    def test_int8_encode_requires_finite(self):
        spec = STORAGE_SPECS["int8"]
        with pytest.raises(ValueError, match="finite"):
            spec.encode(np.array([[1.0, np.inf]]), scale=1.0)


class TestQuantisedStoreBasics:
    @pytest.mark.parametrize("storage", ["f8", "f4", "f2", "int8"])
    def test_nbytes_and_describe_track_storage(self, storage):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8, storage=storage)
        store.add_batch(_batch(sk, 20, 1))
        spec = STORAGE_SPECS[storage]
        assert store.nbytes == 20 * 64 * spec.itemsize
        description = store.describe()
        assert description["storage"] == storage
        assert description["nbytes"] == store.nbytes
        assert description["rows"] == 20
        assert description["config_digest"] == _CONFIG.digest()
        json.dumps(description)  # /meta embeds it verbatim

    @pytest.mark.parametrize("storage", ["f4", "f2", "int8"])
    def test_scan_values_are_float32_and_norms_float64(self, storage):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8, storage=storage)
        store.add_batch(_batch(sk, 12, 2))
        for i in range(store.n_shards):
            values = store.shard_values(i)
            assert values.dtype == np.float32
            assert not values.flags.writeable
            norms = store.shard_sq_norms(i)
            assert norms.dtype == np.float64
            decoded = np.asarray(values, dtype=np.float64)
            np.testing.assert_array_equal(
                norms, np.einsum("ij,ij->i", decoded, decoded)
            )

    def test_f8_store_unchanged_by_the_storage_plumbing(self):
        # the full-precision path must hold raw rows bit-for-bit
        sk = _sketcher()
        batch = _batch(sk, 10, 3)
        store = ShardedSketchStore(shard_capacity=4, storage="f8")
        store.add_batch(batch)
        got = np.concatenate([store.shard_values(i) for i in range(store.n_shards)])
        np.testing.assert_array_equal(got, batch.values)
        assert got.dtype == np.float64


class TestInt8Shards:
    def test_scale_fixed_by_first_chunk(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=64, storage="int8")
        store.add_batch(_batch(sk, 8, 1))
        view = store.snapshot()[0]
        assert view.scale is not None
        peak = float(np.max(np.abs(view.values)))
        assert peak <= 127 * view.scale * (1 + 1e-6)

    def test_overflowing_chunk_seals_the_shard(self):
        sk = _sketcher()
        template = _batch(sk, 1, 1)
        small = dataclasses.replace(
            template, values=np.full((3, 64), 0.5), labels=()
        )
        big = dataclasses.replace(
            template, values=np.full((2, 64), 100.0), labels=()
        )
        store = ShardedSketchStore(shard_capacity=64, storage="int8")
        store.add_batch(small)
        store.add_batch(big)  # would clip at the first shard's scale
        assert store.shard_sizes() == [3, 2]
        scales = [view.scale for view in store.snapshot()]
        assert scales[1] > scales[0]
        # neither shard clipped: decoded peaks match the inputs closely
        np.testing.assert_allclose(store.shard_values(0), 0.5, rtol=0.01)
        np.testing.assert_allclose(store.shard_values(1), 100.0, rtol=0.01)

    def test_small_later_chunks_share_the_shard(self):
        sk = _sketcher()
        template = _batch(sk, 1, 1)
        store = ShardedSketchStore(shard_capacity=64, storage="int8")
        store.add_batch(
            dataclasses.replace(template, values=np.full((2, 64), 50.0), labels=())
        )
        store.add_batch(
            dataclasses.replace(template, values=np.full((2, 64), 1.0), labels=())
        )
        assert store.shard_sizes() == [4]  # no seal: the scale covers them

    def test_non_finite_rows_rejected(self):
        sk = _sketcher()
        template = _batch(sk, 1, 1)
        bad = dataclasses.replace(
            template, values=np.array([[np.nan] + [0.0] * 63]), labels=()
        )
        store = ShardedSketchStore(storage="int8")
        with pytest.raises(ValueError, match="finite"):
            store.add_batch(bad)


class TestQuantisedPersistence:
    @pytest.mark.parametrize("storage", ["f4", "f2", "int8"])
    def test_save_load_mmap_bit_identical(self, storage, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=6, storage=storage)
        store.add_batch(_batch(sk, 14, 7))
        store.save(tmp_path / "store")
        eager = ShardedSketchStore.load(tmp_path / "store")
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        assert eager.storage.name == storage
        assert mapped.storage.name == storage
        for i in range(store.n_shards):
            original = np.asarray(store.shard_values(i))
            np.testing.assert_array_equal(np.asarray(eager.shard_values(i)), original)
            np.testing.assert_array_equal(np.asarray(mapped.shard_values(i)), original)
            np.testing.assert_array_equal(
                eager.shard_sq_norms(i), store.shard_sq_norms(i)
            )
            np.testing.assert_array_equal(
                mapped.shard_sq_norms(i), store.shard_sq_norms(i)
            )

    def test_values_segment_shrinks_with_the_spec(self, tmp_path):
        sk = _sketcher()
        batch = _batch(sk, 32, 5)
        sizes = {}
        for storage in ("f8", "f4", "int8"):
            store = ShardedSketchStore(shard_capacity=32, storage=storage)
            store.add_batch(batch)
            store.save(tmp_path / storage)
            info = read_batch_info(tmp_path / storage / "shard-00000.skb")
            assert info.storage == storage
            sizes[storage] = info.values_nbytes
        assert sizes["f8"] == 2 * sizes["f4"] == 8 * sizes["int8"]

    def test_manifest_storage_beats_env_default(self, tmp_path, monkeypatch):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8, storage="f8")
        store.add_batch(_batch(sk, 5, 1))
        store.save(tmp_path / "store")
        monkeypatch.setenv(_STORAGE_ENV, "f4")
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert loaded.storage.name == "f8"
        np.testing.assert_array_equal(loaded.shard_values(0), store.shard_values(0))

    def test_swapped_storage_shard_rejected(self, tmp_path):
        # a shard blob of a different precision must not pass the
        # manifest pin, even though its metadata digest is intact
        sk = _sketcher()
        batch = _batch(sk, 4, 1)
        for storage in ("f8", "f4"):
            store = ShardedSketchStore(storage=storage)
            store.add_batch(batch)
            store.save(tmp_path / storage)
        (tmp_path / "f8" / "shard-00000.skb").write_bytes(
            (tmp_path / "f4" / "shard-00000.skb").read_bytes()
        )
        for mmap in (False, True):
            with pytest.raises(SerializationError, match="swapped"):
                ShardedSketchStore.load(tmp_path / "f8", mmap=mmap)

    def test_v2_store_still_loads(self, tmp_path):
        # a store saved by the PR-3/PR-4 writer: v2 shard blobs + a
        # manifest without a storage key — the migration path
        sk = _sketcher()
        batch = _batch(sk, 10, 5, labels=tuple(f"r{i}" for i in range(10)))
        root = tmp_path / "legacy"
        root.mkdir()
        write_batch(root / "shard-00000.skb", batch[:6], version=2)
        write_batch(root / "shard-00001.skb", batch[6:], version=2)
        (root / "manifest.json").write_text(
            json.dumps(
                {
                    "manifest_version": 1,
                    "shard_capacity": 6,
                    "n_shards": 2,
                    "n_rows": 10,
                    "config_digest": batch.config_digest,
                }
            )
        )
        for mmap in (False, True):
            loaded = ShardedSketchStore.load(root, mmap=mmap)
            assert loaded.storage.name == "f8"
            assert loaded.labels == [f"r{i}" for i in range(10)]
            stacked = np.concatenate(
                [np.asarray(loaded.shard_values(i)) for i in range(loaded.n_shards)]
            )
            np.testing.assert_array_equal(stacked, batch.values)

    def test_positional_labels_elided_from_headers(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4)
        store.add_batch(_batch(sk, 10, 3))  # default global-position labels
        store.save(tmp_path / "store")
        for i in range(3):
            info = read_batch_info(tmp_path / "store" / f"shard-0000{i}.skb")
            assert info.labels == ()  # not persisted...
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert loaded.labels == list(range(10))  # ...but regenerated
        assert all(type(label) is int for label in loaded.labels)

    def test_equal_but_differently_typed_labels_stay_stored(self, tmp_path):
        # np.int64 labels *equal* the positional defaults but must
        # round-trip as written (they decode back to int via the label
        # codec) — only genuine `int` positions are elided
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(_batch(sk, 4, 3), labels=np.arange(4))
        store.save(tmp_path / "store")
        info = read_batch_info(tmp_path / "store" / "shard-00000.skb")
        assert info.labels == (0, 1, 2, 3)  # persisted explicitly
        non_positional = ShardedSketchStore(shard_capacity=8)
        non_positional.add_batch(_batch(sk, 3, 4), labels=[5, "x", None])
        non_positional.save(tmp_path / "mixed")
        assert ShardedSketchStore.load(tmp_path / "mixed").labels == [5, "x", None]


class TestCompactToLowerPrecision:
    def test_compact_changes_spec_and_shrinks(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8, storage="f8")
        store.add_batch(_batch(sk, 20, 9))
        full_bytes = store.nbytes
        query = sk.sketch(np.ones(128), noise_rng=1)
        before = _top_k(DistanceService(store), query, 5)
        store.compact(storage="f4")
        assert store.storage.name == "f4"
        assert store.nbytes * 2 == full_bytes
        after = _top_k(DistanceService(store), query, 5)
        assert [label for label, _ in after] == [label for label, _ in before]
        # and the shrunken store persists/serves in the new spec
        store.save(tmp_path / "store")
        loaded = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        assert loaded.storage.name == "f4"
        assert _top_k(DistanceService(loaded), query, 5) == after

    def test_compact_same_float_spec_preserves_values(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8, storage="f4")
        for seed in range(3):
            store.add_batch(_batch(sk, 5, seed))
        stacked = np.concatenate(
            [np.asarray(store.shard_values(i)) for i in range(store.n_shards)]
        )
        store.compact()
        assert store.shard_sizes() == [8, 7]
        recompacted = np.concatenate(
            [np.asarray(store.shard_values(i)) for i in range(store.n_shards)]
        )
        np.testing.assert_array_equal(recompacted, stacked)


class TestMergeStorage:
    def test_merge_rejects_mixed_specs_readably(self):
        sk = _sketcher()
        a = ShardedSketchStore(storage="f8")
        a.add_batch(_batch(sk, 3, 1))
        b = ShardedSketchStore(storage="f4")
        b.add_batch(_batch(sk, 3, 2))
        with pytest.raises(ValueError, match="different storage specs .*f4.*f8"):
            ShardedSketchStore.merge(a, b)

    def test_merge_with_explicit_storage_reencodes(self):
        sk = _sketcher()
        a = ShardedSketchStore(storage="f8")
        a.add_batch(_batch(sk, 3, 1))
        b = ShardedSketchStore(storage="f4")
        b.add_batch(_batch(sk, 3, 2))
        merged = ShardedSketchStore.merge(a, b, storage="f4")
        assert merged.storage.name == "f4"
        assert len(merged) == 6

    def test_merge_inherits_the_common_spec(self):
        sk = _sketcher()
        parts = []
        for seed in range(2):
            part = ShardedSketchStore(shard_capacity=4, storage="f4")
            part.add_batch(_batch(sk, 5, seed))
            parts.append(part)
        merged = ShardedSketchStore.merge(*parts)
        assert merged.storage.name == "f4"
        stacked = np.concatenate(
            [np.asarray(p.shard_values(i)) for p in parts for i in range(p.n_shards)]
        )
        got = np.concatenate(
            [np.asarray(merged.shard_values(i)) for i in range(merged.n_shards)]
        )
        np.testing.assert_array_equal(got, stacked)  # same-spec merge is exact

    def test_merge_skips_empty_stores_whatever_their_spec(self):
        sk = _sketcher()
        a = ShardedSketchStore(storage="f4")
        a.add_batch(_batch(sk, 4, 1))
        merged = ShardedSketchStore.merge(ShardedSketchStore(storage="f8"), a)
        assert merged.storage.name == "f4"
        assert len(merged) == 4


class TestWireStorageTag:
    def test_release_payloads_carry_the_dtype(self):
        sk = _sketcher()
        query = TopKQuery(queries=sk.sketch(np.ones(128), noise_rng=0), k=1)
        envelope = json.loads(wire.encode_query(query).decode())
        assert envelope["release"]["storage"] == "f8"
        wire.decode_query(wire.encode_query(query))  # round-trips

    def test_unknown_payload_storage_rejected(self):
        sk = _sketcher()
        query = TopKQuery(queries=sk.sketch(np.ones(128), noise_rng=0), k=1)
        envelope = json.loads(wire.encode_query(query).decode())
        envelope["release"]["storage"] = "f4"
        with pytest.raises(wire.WireError, match="f8 sketch payloads"):
            wire.decode_query(json.dumps(envelope).encode())
