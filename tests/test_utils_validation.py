"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_batch,
    as_float_vector,
    check_index,
    check_positive,
    check_probability,
    check_unit_range,
)


class TestAsFloatVector:
    def test_list_coerced_to_float64(self):
        out = as_float_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            as_float_vector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_float_vector([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_vector([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_vector([np.inf, 1.0])

    def test_name_appears_in_error(self):
        with pytest.raises(ValueError, match="myvec"):
            as_float_vector([], name="myvec")


class TestAsBatch:
    def test_single_vector_flagged(self):
        batch, single = as_batch(np.ones(4), dim=4)
        assert single
        assert batch.shape == (1, 4)

    def test_batch_passthrough(self):
        batch, single = as_batch(np.ones((3, 4)), dim=4)
        assert not single
        assert batch.shape == (3, 4)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension 5, expected 4"):
            as_batch(np.ones(5), dim=4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_batch(np.ones((2, 2, 2)), dim=2)

    def test_rejects_non_finite_batch(self):
        bad = np.ones((2, 3))
        bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            as_batch(bad, dim=3)


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_check_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_check_positive_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("1.0", "x")

    def test_check_probability_open_interval(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(0.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.0, "p")

    def test_check_probability_allow_zero(self):
        assert check_probability(0.0, "p", allow_zero=True) == 0.0

    def test_check_unit_range_rejects_half(self):
        with pytest.raises(ValueError, match="1/2"):
            check_unit_range(0.5, "alpha")

    def test_check_unit_range_accepts_jl_regime(self):
        assert check_unit_range(0.25, "alpha") == 0.25

    def test_check_index_bounds(self):
        assert check_index(3, 4) == 3
        with pytest.raises(ValueError):
            check_index(4, 4)
        with pytest.raises(ValueError):
            check_index(-1, 4)

    def test_check_index_rejects_float(self):
        with pytest.raises(TypeError):
            check_index(1.5, 4)
