"""Unit tests for repro.theory.moments (Note 4 formulas)."""

import math

import numpy as np
import pytest

from repro.theory.moments import (
    double_factorial,
    gaussian_moment,
    laplace_moment,
    two_sided_geometric_fourth_moment,
    two_sided_geometric_second_moment,
)


class TestDoubleFactorial:
    @pytest.mark.parametrize(
        "n,expected", [(-1, 1), (0, 1), (1, 1), (2, 2), (3, 3), (4, 8), (5, 15), (7, 105)]
    )
    def test_known_values(self, n, expected):
        assert double_factorial(n) == expected

    def test_rejects_below_minus_one(self):
        with pytest.raises(ValueError):
            double_factorial(-2)


class TestLaplaceMoments:
    def test_second_moment(self):
        # E[L^2] = 2 b^2
        assert laplace_moment(2, 3.0) == pytest.approx(18.0)

    def test_fourth_moment(self):
        # E[L^4] = 24 b^4
        assert laplace_moment(4, 2.0) == pytest.approx(24.0 * 16.0)

    def test_odd_moments_vanish(self):
        assert laplace_moment(1, 1.0) == 0.0
        assert laplace_moment(3, 1.0) == 0.0

    def test_zeroth_moment(self):
        assert laplace_moment(0, 5.0) == 1.0

    def test_matches_sampling(self):
        rng = np.random.default_rng(0)
        samples = rng.laplace(0, 1.7, 400000)
        assert laplace_moment(2, 1.7) == pytest.approx(np.mean(samples**2), rel=0.03)
        assert laplace_moment(4, 1.7) == pytest.approx(np.mean(samples**4), rel=0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            laplace_moment(-1, 1.0)
        with pytest.raises(ValueError):
            laplace_moment(2, 0.0)


class TestGaussianMoments:
    def test_second_moment(self):
        assert gaussian_moment(2, 2.0) == pytest.approx(4.0)

    def test_fourth_moment(self):
        # (4-1)!! = 3
        assert gaussian_moment(4, 2.0) == pytest.approx(3.0 * 16.0)

    def test_sixth_moment(self):
        # 5!! = 15
        assert gaussian_moment(6, 1.0) == pytest.approx(15.0)

    def test_odd_moments_vanish(self):
        assert gaussian_moment(3, 2.0) == 0.0

    def test_matches_sampling(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0, 0.9, 400000)
        assert gaussian_moment(4, 0.9) == pytest.approx(np.mean(samples**4), rel=0.05)


class TestGeometricMoments:
    def _sample(self, q, n=500000, seed=2):
        rng = np.random.default_rng(seed)
        p = 1.0 - q
        return (rng.geometric(p, n) - 1) - (rng.geometric(p, n) - 1)

    @pytest.mark.parametrize("q", [0.3, 0.6, 0.9])
    def test_second_moment_matches_sampling(self, q):
        samples = self._sample(q)
        assert two_sided_geometric_second_moment(q) == pytest.approx(
            np.mean(samples.astype(float) ** 2), rel=0.03
        )

    @pytest.mark.parametrize("q", [0.3, 0.6])
    def test_fourth_moment_matches_sampling(self, q):
        samples = self._sample(q)
        assert two_sided_geometric_fourth_moment(q) == pytest.approx(
            np.mean(samples.astype(float) ** 4), rel=0.08
        )

    def test_moments_match_series_summation(self):
        q = 0.75
        z = np.arange(-4000, 4001)
        pmf = (1 - q) / (1 + q) * q ** np.abs(z)
        assert two_sided_geometric_second_moment(q) == pytest.approx(float((z**2 * pmf).sum()))
        assert two_sided_geometric_fourth_moment(q) == pytest.approx(float((z**4 * pmf).sum()))

    def test_approaches_laplace_for_large_scale(self):
        # scale b -> q = e^{-1/b}; for large b the discrete and continuous
        # second moments converge (2q/(1-q)^2 ~ 2b^2).
        b = 50.0
        q = math.exp(-1.0 / b)
        ratio = two_sided_geometric_second_moment(q) / laplace_moment(2, b)
        assert ratio == pytest.approx(1.0, abs=0.02)

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_invalid_ratio(self, q):
        with pytest.raises(ValueError):
            two_sided_geometric_second_moment(q)
        with pytest.raises(ValueError):
            two_sided_geometric_fourth_moment(q)
