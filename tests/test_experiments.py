"""Tests for the experiment harness and registry."""

import numpy as np
import pytest

from repro.experiments.harness import ExperimentResult, summarize, trials_for, unbiased
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.utils.tables import Table


class TestHarnessHelpers:
    def test_trials_for_scales(self):
        assert trials_for("smoke", 10, 100) == 10
        assert trials_for("full", 10, 100) == 100

    def test_trials_for_validates(self):
        with pytest.raises(ValueError):
            trials_for("medium", 10, 100)

    def test_summarize_fields(self):
        summary = summarize([1.0, 2.0, 3.0], true_value=2.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["z_bias"] == pytest.approx(0.0)
        assert summary["var"] == pytest.approx(1.0)

    def test_summarize_needs_two(self):
        with pytest.raises(ValueError):
            summarize([1.0], 1.0)

    def test_unbiased_threshold(self):
        biased = summarize(np.full(100, 5.0) + np.random.default_rng(0).normal(0, 0.1, 100), 0.0)
        assert not unbiased(biased)
        centered = summarize(np.random.default_rng(1).normal(0, 1, 100), 0.0)
        assert unbiased(centered)


class TestExperimentResult:
    def _result(self, checks):
        table = Table(headers=["a"])
        table.add_row(a=1)
        return ExperimentResult("EXP-X", "title", "ref", table, checks=checks)

    def test_passed_requires_all(self):
        assert self._result({"x": True, "y": True}).passed
        assert not self._result({"x": True, "y": False}).passed

    def test_render_contains_pass_fail(self):
        text = self._result({"good": True, "bad": False}).render()
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text

    def test_render_contains_metadata(self):
        text = self._result({}).render()
        assert "EXP-X" in text and "ref" in text


class TestRegistry:
    def test_all_design_ids_registered(self):
        expected = {
            "EXP-T2", "EXP-T3", "EXP-L8", "EXP-N5", "EXP-S7-VAR", "EXP-S7-TIME",
            "EXP-UPD", "EXP-JL", "EXP-SENS", "EXP-LB", "EXP-DISC", "EXP-AUDIT",
            "EXP-OPTK", "EXP-SECRET", "EXP-IP",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("exp-t2").id == "EXP-T2"

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("EXP-404")

    def test_metadata_populated(self):
        for eid, cls in EXPERIMENTS.items():
            assert cls.id == eid
            assert cls.title
            assert cls.paper_reference


class TestSmokeRuns:
    """Run the cheapest experiments end to end at smoke scale."""

    @pytest.mark.parametrize("eid", ["EXP-T2", "EXP-N5", "EXP-DISC", "EXP-SENS"])
    def test_experiment_reproduces_claim(self, eid):
        result = run_experiment(eid, scale="smoke", seed=0)
        failing = [name for name, ok in result.checks.items() if not ok]
        assert result.passed, f"{eid} failed checks: {failing}"

    def test_result_table_nonempty(self):
        result = run_experiment("EXP-T2", scale="smoke", seed=0)
        assert len(result.table.rows) > 0

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            run_experiment("EXP-T2", scale="enormous")


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T3" in out

    def test_run_command(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["run", "EXP-DISC", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert "EXP-DISC" in out
        assert code == 0
