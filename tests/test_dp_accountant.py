"""Tests for the privacy accountant (composition)."""

import math

import pytest

from repro.dp.accountant import BudgetExceededError, BudgetRemainder, PrivacyAccountant
from repro.dp.mechanisms import PrivacyGuarantee


class TestBasicComposition:
    def test_epsilons_add(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyGuarantee(0.5))
        acc.spend(PrivacyGuarantee(0.7))
        assert acc.total_basic().epsilon == pytest.approx(1.2)

    def test_deltas_add(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyGuarantee(0.5, 1e-6))
        acc.spend(PrivacyGuarantee(0.5, 2e-6))
        assert acc.total_basic().delta == pytest.approx(3e-6)

    def test_empty_accountant_raises(self):
        with pytest.raises(ValueError):
            PrivacyAccountant().total_basic()

    def test_n_releases(self):
        acc = PrivacyAccountant()
        assert acc.n_releases == 0
        acc.spend(PrivacyGuarantee(0.1))
        assert acc.n_releases == 1

    def test_event_labels_recorded(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyGuarantee(0.1), label="alice:0")
        assert acc.events[0].label == "alice:0"


class TestAdvancedComposition:
    def test_matches_homogeneous_formula(self):
        acc = PrivacyAccountant()
        eps, n, slack = 0.1, 50, 1e-6
        for _ in range(n):
            acc.spend(PrivacyGuarantee(eps))
        total = acc.total_advanced(slack)
        expected = math.sqrt(2 * math.log(1 / slack) * n * eps**2) + n * eps * (
            math.exp(eps) - 1
        )
        assert total.epsilon == pytest.approx(expected)
        assert total.delta == pytest.approx(slack)

    def test_beats_basic_for_many_small_releases(self):
        acc = PrivacyAccountant()
        for _ in range(100):
            acc.spend(PrivacyGuarantee(0.05))
        assert acc.total_advanced(1e-6).epsilon < acc.total_basic().epsilon

    def test_best_total_picks_tighter(self):
        acc = PrivacyAccountant()
        for _ in range(100):
            acc.spend(PrivacyGuarantee(0.05))
        best = acc.best_total(1e-6)
        assert best.epsilon == min(
            acc.total_basic().epsilon, acc.total_advanced(1e-6).epsilon
        )

    def test_best_total_zero_slack_is_basic(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyGuarantee(0.3))
        assert acc.best_total(0.0).epsilon == acc.total_basic().epsilon

    def test_slack_validated(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyGuarantee(0.3))
        with pytest.raises(ValueError):
            acc.total_advanced(0.0)


class TestBudget:
    def test_spend_within_budget(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0))
        acc.spend(PrivacyGuarantee(0.4))
        acc.spend(PrivacyGuarantee(0.6))
        assert acc.total_basic().epsilon == pytest.approx(1.0)

    def test_overspend_rejected(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0))
        acc.spend(PrivacyGuarantee(0.9))
        with pytest.raises(BudgetExceededError):
            acc.spend(PrivacyGuarantee(0.2))

    def test_rejected_spend_not_recorded(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0))
        acc.spend(PrivacyGuarantee(0.9))
        try:
            acc.spend(PrivacyGuarantee(0.2))
        except BudgetExceededError:
            pass
        assert acc.n_releases == 1

    def test_delta_budget_enforced(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(10.0, 1e-6))
        acc.spend(PrivacyGuarantee(0.1, 9e-7))
        with pytest.raises(BudgetExceededError):
            acc.spend(PrivacyGuarantee(0.1, 2e-7))

    def test_remaining(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0, 1e-6))
        acc.spend(PrivacyGuarantee(0.4, 4e-7))
        left = acc.remaining()
        assert left.epsilon == pytest.approx(0.6)
        assert left.delta == pytest.approx(6e-7)

    def test_remaining_unlimited_is_none(self):
        assert PrivacyAccountant().remaining() is None

    def test_remaining_before_any_spend(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(2.0))
        assert acc.remaining().epsilon == 2.0


class TestRemainingExhaustion:
    """`remaining()` reports exhaustion as a zero remainder, never raises."""

    def test_exact_epsilon_exhaustion_reports_zero(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0))
        acc.spend(PrivacyGuarantee(0.5))
        acc.spend(PrivacyGuarantee(0.5))
        left = acc.remaining()
        assert left.epsilon == 0.0
        assert left.delta == 0.0
        assert left.exhausted

    def test_exact_delta_exhaustion_reports_zero_delta(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(10.0, 1e-6))
        acc.spend(PrivacyGuarantee(1.0, 5e-7))
        acc.spend(PrivacyGuarantee(1.0, 5e-7))
        left = acc.remaining()
        assert left.delta == 0.0
        assert left.epsilon == pytest.approx(8.0)
        assert not left.exhausted  # epsilon is still available

    def test_float_overshoot_clamps_to_zero(self):
        # 0.1 * 10 > 1.0 in floats; the remainder must clamp, not go negative
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0, 1e-6))
        for _ in range(10):
            acc.spend(PrivacyGuarantee(0.1, 1e-7))
        left = acc.remaining()
        assert left.epsilon >= 0.0
        assert left.delta >= 0.0

    def test_remainder_rejects_negative_construction(self):
        with pytest.raises(ValueError):
            BudgetRemainder(-0.1)
        with pytest.raises(ValueError):
            BudgetRemainder(1.0, -1e-9)

    def test_zero_remainder_is_constructible(self):
        # PrivacyGuarantee forbids epsilon == 0; the remainder type must not
        assert BudgetRemainder(0.0, 0.0).exhausted

    def test_spend_still_enforces_budget_after_exhaustion(self):
        acc = PrivacyAccountant(budget=PrivacyGuarantee(1.0))
        acc.spend(PrivacyGuarantee(1.0))
        assert acc.remaining().exhausted
        with pytest.raises(BudgetExceededError):
            acc.spend(PrivacyGuarantee(0.1))
