"""Tests for the serving layer: sharded store + distance service.

Queries go through the typed query plane (``execute()`` +
:mod:`repro.serving.queries`); the deprecated method-per-query shims
have their own bit-equality suite in ``tests/test_queries.py``.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import estimators
from repro.core.protocol import SketchingSession
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    PairwiseQuery,
    RadiusQuery,
    ShardedSketchStore,
    TopKQuery,
)
from repro.serving.service import stable_smallest_k
from tests.helpers import (
    envelope_atol,
    execute_top_k as _top_k,
    scan_jitter_atol,
    storage_roundtrip,
)

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=seed, labels=labels)


class TestStableSmallestK:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            values = rng.integers(0, 6, size=37).astype(float)  # plenty of ties
            for k in (1, 3, 17, 37, 50):
                expected = np.argsort(values, kind="stable")[:k]
                np.testing.assert_array_equal(stable_smallest_k(values, k), expected)

    def test_ties_at_boundary_prefer_earlier_index(self):
        values = np.array([1.0, 0.0, 0.0, 0.0])
        np.testing.assert_array_equal(stable_smallest_k(values, 2), [1, 2])

    def test_nonpositive_k_selects_nothing(self):
        values = np.array([3.0, 1.0, 2.0])
        assert stable_smallest_k(values, 0).size == 0
        assert stable_smallest_k(values, -2).size == 0


class TestShardedStore:
    def test_appends_fill_shards_in_order(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(_batch(sk, 5, 1))
        store.add_batch(_batch(sk, 7, 2))  # splits 3 / 4 across shards
        assert len(store) == 12
        assert store.shard_sizes() == [8, 4]
        assert store.labels == list(range(12))

    def test_append_does_not_recopy_existing_shards(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=512)
        store.add_batch(_batch(sk, 512, 1))  # fills shard 0 exactly
        sealed = store._shards[0]._buffer
        before = store.shard_values(0).copy()
        store.add_batch(_batch(sk, 300, 2))
        store.add_batch(_batch(sk, 300, 3))
        assert store._shards[0]._buffer is sealed  # never recopied
        np.testing.assert_array_equal(store.shard_values(0), before)

    def test_single_adds_grow_amortised(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4096)
        rng = np.random.default_rng(0)
        buffers = set()
        for i in range(100):
            store.add(sk.sketch(rng.standard_normal(128), noise_rng=i))
            buffers.add(id(store._shards[0]._buffer))
        # geometric doubling: ~log2(100) reallocations, not one per add
        assert len(buffers) <= 9

    def test_values_match_insertion_order(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4)
        batches = [_batch(sk, 3, seed) for seed in range(4)]
        for batch in batches:
            store.add_batch(batch)
        stacked = np.concatenate([b.values for b in batches])
        got = np.concatenate([store.shard_values(i) for i in range(store.n_shards)])
        np.testing.assert_array_equal(got, storage_roundtrip(store, stacked))

    def test_cached_sq_norms_are_exact(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=16)
        store.add_batch(_batch(sk, 25, 5))
        for i in range(store.n_shards):
            # the cache is float64 over the decoded rows, whatever the
            # storage spec scans as
            values = np.asarray(store.shard_values(i), dtype=np.float64)
            np.testing.assert_allclose(
                store.shard_sq_norms(i), np.einsum("ij,ij->i", values, values)
            )

    def test_single_sketch_adds(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add(sk.sketch(np.ones(128), noise_rng=0))
        store.add(sk.sketch(np.zeros(128), noise_rng=1), label="origin")
        assert len(store) == 2
        assert store.labels == [0, "origin"]

    def test_incompatible_release_rejected(self):
        store = ShardedSketchStore()
        store.add(_sketcher().sketch(np.ones(128), noise_rng=0))
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12))
        with pytest.raises(ValueError, match="different configurations"):
            store.add(other.sketch(np.ones(128), noise_rng=0))

    def test_label_count_validated(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        with pytest.raises(ValueError, match="labels"):
            store.add_batch(_batch(sk, 3, 1), labels=["a", "b"])

    def test_to_batch_roundtrip(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4)
        batch = _batch(sk, 10, 3, labels=tuple(f"r{i}" for i in range(10)))
        store.add_batch(batch)
        merged = store.to_batch()
        np.testing.assert_array_equal(merged.values, storage_roundtrip(store, batch.values))
        assert merged.labels == tuple(f"r{i}" for i in range(10))
        assert merged.config_digest == batch.config_digest

    def test_to_batch_preserves_label_objects(self):
        # only save() stringifies; in-memory accessors keep labels as-is
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=2)
        store.add_batch(_batch(sk, 3, 1), labels=[7, None, ("a", 1)])
        assert store.to_batch().labels == (7, None, ("a", 1))
        assert store.shard_batch(0).labels == (7, None)
        assert store.label(2) == ("a", 1)

    def test_shard_capacity_validated(self):
        with pytest.raises(ValueError):
            ShardedSketchStore(shard_capacity=0)


class TestStorePersistence:
    def test_save_load_bit_exact(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=6)
        store.add_batch(_batch(sk, 14, 7, labels=tuple(f"p{i}" for i in range(14))))
        store.save(tmp_path / "store")
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert len(loaded) == 14
        assert loaded.shard_sizes() == store.shard_sizes()
        assert loaded.labels == [f"p{i}" for i in range(14)]
        for i in range(store.n_shards):
            np.testing.assert_array_equal(loaded.shard_values(i), store.shard_values(i))

    def test_loaded_store_answers_identical_queries(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=6)
        store.add_batch(_batch(sk, 14, 7))
        store.save(tmp_path / "store")
        service = DistanceService(store)
        reloaded = DistanceService(ShardedSketchStore.load(tmp_path / "store"))
        query = sk.sketch(np.ones(128), noise_rng=9)
        # labels round-trip with their types: integer labels stay integers,
        # so the full (label, estimate) rankings are equal
        assert _top_k(reloaded, query, 5) == _top_k(service, query, 5)

    def test_integer_labels_survive_save_load(self, tmp_path):
        # regression: the PR-2 store stringified labels on save, so top_k
        # results changed type after a reload (2 became "2")
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4)
        store.add_batch(_batch(sk, 9, 3))  # default labels: global positions
        store.save(tmp_path / "store")
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert loaded.labels == list(range(9))
        assert all(type(label) is int for label in loaded.labels)
        mixed = ShardedSketchStore(shard_capacity=4)
        mixed.add_batch(_batch(sk, 4, 5), labels=[0, ("a", 1), None, 2.5])
        mixed.save(tmp_path / "mixed")
        assert ShardedSketchStore.load(tmp_path / "mixed").labels == [
            0,
            ("a", 1),
            None,
            2.5,
        ]
        # np.arange labels (np.int64, not int) must come back as equal ints
        numeric = ShardedSketchStore(shard_capacity=4)
        numeric.add_batch(_batch(sk, 6, 8), labels=np.arange(10, 16))
        numeric.save(tmp_path / "numeric")
        reloaded = ShardedSketchStore.load(tmp_path / "numeric").labels
        assert reloaded == list(range(10, 16))
        assert all(type(label) is int for label in reloaded)

    def test_save_empty_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            ShardedSketchStore().save(tmp_path / "store")

    def test_save_zero_row_store_rejected(self, tmp_path):
        # a zero-row batch sets the metadata template but stores no rows;
        # saving would lose the metadata on reload, so it must refuse too
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1)[0:0])
        assert len(store) == 0 and store.metadata is not None
        with pytest.raises(ValueError, match="empty"):
            store.save(tmp_path / "store")

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedSketchStore.load(tmp_path / "nowhere")

    def test_load_rejects_malformed_manifest(self, tmp_path):
        import json

        from repro.serving import SerializationError

        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1))
        store.save(tmp_path / "store")
        manifest_path = tmp_path / "store" / "manifest.json"
        good = json.loads(manifest_path.read_text())

        manifest_path.write_text("{not json")
        with pytest.raises(SerializationError, match="JSON"):
            ShardedSketchStore.load(tmp_path / "store")

        broken = dict(good)
        del broken["shard_capacity"]
        manifest_path.write_text(json.dumps(broken))
        with pytest.raises(SerializationError, match="missing required field"):
            ShardedSketchStore.load(tmp_path / "store")

    def test_load_rejects_swapped_shards(self, tmp_path):
        # shard blobs from a different config must not pass the manifest pin
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 4, 1))
        store.save(tmp_path / "store")
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12))
        rng = np.random.default_rng(2)
        foreign = ShardedSketchStore()
        foreign.add_batch(other.sketch_batch(rng.standard_normal((4, 128)), noise_rng=2))
        foreign.save(tmp_path / "foreign")
        (tmp_path / "store" / "shard-00000.skb").write_bytes(
            (tmp_path / "foreign" / "shard-00000.skb").read_bytes()
        )
        with pytest.raises(ValueError, match="swapped"):
            ShardedSketchStore.load(tmp_path / "store")


class TestDistanceService:
    def _service_and_batches(self, shard_capacity=5):
        sk = _sketcher()
        stored = _batch(sk, 17, 21)
        store = ShardedSketchStore(shard_capacity=shard_capacity)
        store.add_batch(stored)
        return sk, stored, DistanceService(store)

    def test_cross_matches_flat_estimator(self):
        # within the documented quantisation envelope of the store's
        # storage spec; for the default f8 store the envelope collapses
        # to ~1e-9 slack, keeping the full-precision assertion tight
        sk, stored, service = self._service_and_batches()
        queries = _batch(sk, 3, 22)
        want = estimators.cross_sq_distances(queries, stored)
        got = service.execute(CrossQuery(queries=queries)).payload
        atol = max(envelope_atol(service.store, queries.values, stored.values), 1e-9)
        np.testing.assert_allclose(got, want, atol=atol, rtol=0)

    def test_top_k_matches_full_sort(self):
        # the reference ranking comes from the service's own cross
        # matrix — the per-shard blocks are the same kernel on the same
        # decoded rows, so the comparison is exact at every storage spec
        sk, stored, service = self._service_and_batches()
        query = sk.sketch(np.arange(128, dtype=float), noise_rng=1)
        flat = service.execute(CrossQuery(queries=query)).payload[0]
        order = np.argsort(flat, kind="stable")[:6]
        # ordering is decided on the raw estimates; reported estimates
        # are clamped at zero (estimators.clamp_sq_estimates)
        expected = [
            (int(i), pytest.approx(max(float(flat[i]), 0.0), abs=1e-9)) for i in order
        ]
        assert _top_k(service, query, 6) == expected

    def test_top_k_batch_consistent_with_single(self):
        sk, _, service = self._service_and_batches()
        queries = _batch(sk, 4, 23)
        rows = service.execute(TopKQuery(queries=queries, k=3)).payload
        assert len(rows) == 4
        stored_rows = service.store.to_batch().values
        for row, query in zip(rows, queries):
            single = _top_k(service, query, 3)
            assert [label for label, _ in row] == [label for label, _ in single]
            for (_, est_row), (_, est_single) in zip(row, single):
                # batched vs single-row BLAS may differ by an ulp (f8)
                # or by the accumulation envelope (float32 scans)
                jitter = scan_jitter_atol(service.store, query.values, stored_rows)
                assert est_row == pytest.approx(est_single, abs=jitter)

    def test_radius_filters_and_sorts(self):
        # reference membership from the service's own cross matrix (the
        # same kernel bit-for-bit), so the filter/sort logic is checked
        # exactly at every storage spec
        sk, stored, service = self._service_and_batches()
        query = sk.sketch(np.ones(128), noise_rng=2)
        flat = service.execute(CrossQuery(queries=query)).payload[0]
        cutoff = float(np.median(flat))
        hits = service.execute(RadiusQuery(query=query, radius_sq=cutoff)).payload
        assert [l for l, _ in hits] == [
            int(i) for i in np.argsort(flat, kind="stable") if flat[i] <= cutoff
        ]
        estimates = [est for _, est in hits]
        assert estimates == sorted(estimates)
        assert all(est >= 0.0 for est in estimates)  # clamped payloads

    def test_pairwise_matches_flat_pairwise(self):
        # pairwise gathers the decoded rows and runs the float64
        # estimator on them, so the store's own batch is the exact
        # reference at every storage spec
        sk, stored, service = self._service_and_batches()
        full = estimators.pairwise_sq_distances(service.store.to_batch())
        picks = (0, 5, 6, 16)  # spans all shards
        sub = service.execute(PairwiseQuery(indices=picks)).payload
        np.testing.assert_allclose(sub, full[np.ix_(picks, picks)], atol=1e-9)

    def test_pairwise_bounds_checked(self):
        _, _, service = self._service_and_batches()
        with pytest.raises(IndexError):
            service.execute(PairwiseQuery(indices=(0, 99)))

    def test_unpinned_empty_store_rejected_consistently(self):
        # a store that never saw a release has nothing to validate
        # queries against: every query kind refuses alike
        sk = _sketcher()
        service = DistanceService(ShardedSketchStore())
        query = sk.sketch(np.ones(128), noise_rng=0)
        for typed in (
            TopKQuery(queries=query),
            RadiusQuery(query=query, radius_sq=1.0),
            CrossQuery(queries=query),
        ):
            with pytest.raises(ValueError, match="empty"):
                service.execute(typed)

    def test_pinned_empty_store_validates_then_returns_empty(self):
        # regression: radius used to return [] before validation ran, so
        # incompatible queries slipped through silently on empty stores
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1)[0:0])  # zero rows, metadata pinned
        service = DistanceService(store)
        foreign = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12)).sketch(
            np.ones(128), noise_rng=0
        )
        for typed in (
            TopKQuery(queries=foreign),
            RadiusQuery(query=foreign, radius_sq=1.0),
            CrossQuery(queries=foreign),
        ):
            with pytest.raises(ValueError, match="different configurations"):
                service.execute(typed)
        query = sk.sketch(np.ones(128), noise_rng=0)
        assert service.execute(RadiusQuery(query=query, radius_sq=1.0)).payload == []
        assert service.execute(TopKQuery(queries=query, k=3)).payload == [[]]
        assert service.execute(TopKQuery(queries=_batch(sk, 2, 2), k=3)).payload == [
            [],
            [],
        ]
        assert service.execute(CrossQuery(queries=query)).payload.shape == (1, 0)

    def test_k_validated_at_query_construction(self):
        with pytest.raises(ValueError, match="top"):
            TopKQuery(queries=None, k=0)
        with pytest.raises(ValueError, match="top"):
            TopKQuery(queries=None, k=2.5)

    def test_radius_validated_at_query_construction(self):
        with pytest.raises(ValueError, match="radius_sq"):
            RadiusQuery(query=None, radius_sq=-1.0)

    def test_execute_rejects_untyped_queries(self):
        sk, _, service = self._service_and_batches()
        with pytest.raises(TypeError, match="typed query"):
            service.execute(sk.sketch(np.ones(128), noise_rng=0))

    def test_incremental_adds_visible_to_service(self):
        sk, _, service = self._service_and_batches()
        before = len(service)
        service.store.add_batch(_batch(sk, 4, 30))
        assert len(service) == before + 4
        query = sk.sketch(np.ones(128), noise_rng=3)
        assert len(_top_k(service, query, before + 4)) == before + 4


class TestSessionServe:
    def test_serve_entry_point(self):
        session = SketchingSession(_CONFIG)
        party = session.create_party("alice", noise_seed=1)
        rng = np.random.default_rng(0)
        batch = party.release_batch(rng.standard_normal((6, 128)))
        service = session.serve(batch, shard_capacity=4)
        assert len(service) == 6
        assert service.store.n_shards == 2
        query = session.sketcher.sketch(rng.standard_normal(128), noise_rng=5)
        labels = [label for label, _ in _top_k(service, query, 6)]
        assert sorted(labels) == sorted(batch.labels)

    def test_serve_rejects_foreign_batches(self):
        session = SketchingSession(_CONFIG)
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12))
        foreign = other.sketch_batch(
            np.random.default_rng(0).standard_normal((3, 128)), noise_rng=1
        )
        with pytest.raises(ValueError, match="different"):
            session.serve(foreign)

    def test_serve_store_stays_pinned_after_construction(self):
        # the digest check lives in the store layer now: a foreign batch
        # appended *after* serve() must be rejected too, not just the
        # batches passed at construction time
        session = SketchingSession(_CONFIG)
        service = session.serve()
        assert service.store.expected_digest == _CONFIG.digest()
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12))
        foreign = other.sketch_batch(
            np.random.default_rng(0).standard_normal((3, 128)), noise_rng=1
        )
        with pytest.raises(ValueError, match="different"):
            service.store.add_batch(foreign)
