"""Tests for the multi-party sketching protocol."""

import numpy as np
import pytest

from repro.core.protocol import SketchingSession
from repro.core.sketch import SketchConfig
from repro.dp.accountant import BudgetExceededError
from repro.dp.mechanisms import PrivacyGuarantee
from repro.workloads import UpdateStream, materialize_stream

_CONFIG = SketchConfig(input_dim=128, epsilon=1.0, output_dim=32, sparsity=4)


class TestSession:
    def test_parties_share_public_transform(self):
        """Two sessions built from the same config agree on S — the
        distributed-setting requirement of Section 2."""
        x = np.random.default_rng(0).standard_normal(128)
        a = SketchingSession(_CONFIG).sketcher.project(x)
        b = SketchingSession(_CONFIG).sketcher.project(x)
        assert np.allclose(a, b)

    def test_duplicate_party_rejected(self):
        session = SketchingSession(_CONFIG)
        session.create_party("alice")
        with pytest.raises(ValueError, match="already exists"):
            session.create_party("alice")

    def test_party_registry(self):
        session = SketchingSession(_CONFIG)
        session.create_party("alice")
        session.create_party("bob")
        assert set(session.parties) == {"alice", "bob"}


class TestParty:
    def test_release_is_private_sketch(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=1)
        sketch = alice.release(np.ones(128))
        assert sketch.values.shape == (32,)
        assert sketch.guarantee == session.sketcher.guarantee

    def test_noise_seed_reproducible_across_sessions(self):
        x = np.ones(128)
        s1 = SketchingSession(_CONFIG).create_party("alice", noise_seed=42).release(x)
        s2 = SketchingSession(_CONFIG).create_party("alice", noise_seed=42).release(x)
        assert np.allclose(s1.values, s2.values)

    def test_successive_releases_use_fresh_noise(self):
        alice = SketchingSession(_CONFIG).create_party("alice", noise_seed=1)
        a = alice.release(np.ones(128))
        b = alice.release(np.ones(128))
        assert not np.allclose(a.values, b.values)

    def test_distinct_parties_distinct_noise(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=1)
        bob = session.create_party("bob", noise_seed=1)  # same seed, different name
        assert not np.allclose(alice.release(np.ones(128)).values,
                               bob.release(np.ones(128)).values)

    def test_budget_tracked_per_party(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice")
        alice.release(np.ones(128))
        alice.release(np.ones(128))
        assert alice.spent().epsilon == pytest.approx(2.0)

    def test_budget_enforced(self):
        session = SketchingSession(_CONFIG, budget=PrivacyGuarantee(1.5))
        alice = session.create_party("alice")
        alice.release(np.ones(128))
        with pytest.raises(BudgetExceededError):
            alice.release(np.ones(128))

    def test_budget_is_per_party(self):
        session = SketchingSession(_CONFIG, budget=PrivacyGuarantee(1.5))
        session.create_party("alice").release(np.ones(128))
        # bob has his own budget
        session.create_party("bob").release(np.ones(128))

    def test_release_stream(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=3)
        stream = UpdateStream(dim=128, n_updates=200, seed=5)
        sketch = alice.release_stream(stream)
        assert sketch.values.shape == (32,)
        assert alice.spent().epsilon == pytest.approx(1.0)


class TestBatchRelease:
    def test_release_batch_returns_batch_with_labels(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=1)
        batch = alice.release_batch(np.ones((3, 128)))
        assert len(batch) == 3
        assert batch.labels == ("alice:0", "alice:1", "alice:2")
        assert batch.guarantee == session.sketcher.guarantee

    def test_release_batch_spends_budget_per_row(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=1)
        alice.release_batch(np.ones((4, 128)))
        total = alice.spent()
        assert total.epsilon == pytest.approx(4 * session.sketcher.guarantee.epsilon)

    def test_release_batch_atomic_on_budget_exhaustion(self):
        budget = PrivacyGuarantee(2.5 * _CONFIG.epsilon, 0.0)
        session = SketchingSession(_CONFIG, budget=budget)
        alice = session.create_party("alice", noise_seed=1)
        with pytest.raises(BudgetExceededError):
            alice.release_batch(np.ones((3, 128)))  # 3 releases > 2.5 budget
        assert not alice.accountant.events  # nothing recorded, nothing published
        alice.release_batch(np.ones((2, 128)))  # 2 releases still fit

    def test_release_batch_rows_use_fresh_noise(self):
        alice = SketchingSession(_CONFIG).create_party("alice", noise_seed=1)
        batch = alice.release_batch(np.ones((2, 128)))
        assert not np.allclose(batch.values[0], batch.values[1])

    def test_release_batch_label_mismatch_rejected(self):
        alice = SketchingSession(_CONFIG).create_party("alice", noise_seed=1)
        with pytest.raises(ValueError, match="labels"):
            alice.release_batch(np.ones((2, 128)), labels=("just-one",))

    def test_session_proxies_batch_estimators(self):
        session = SketchingSession(_CONFIG)
        alice = session.create_party("alice", noise_seed=1)
        batch = alice.release_batch(np.random.default_rng(0).standard_normal((3, 128)))
        assert session.pairwise_sq_distances(batch).shape == (3, 3)
        assert session.cross_sq_distances(batch, batch).shape == (3, 3)
        assert session.sq_norms(batch).shape == (3,)


class TestEndToEndEstimation:
    def test_two_party_distance(self):
        rng = np.random.default_rng(1)
        from repro.workloads import pair_at_distance

        x, y = pair_at_distance(128, 6.0, rng)
        estimates = []
        for seed in range(300):
            config = SketchConfig(input_dim=128, epsilon=4.0, output_dim=64, sparsity=4,
                                  seed=seed)
            session = SketchingSession(config)
            sa = session.create_party("alice", noise_seed=seed).release(x)
            sb = session.create_party("bob", noise_seed=seed + 10**6).release(y)
            estimates.append(session.estimate_sq_distance(sa, sb))
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 36.0) < 5 * stderr

    def test_session_proxies_all_estimators(self):
        session = SketchingSession(_CONFIG)
        a = session.create_party("alice", noise_seed=1).release(np.ones(128))
        b = session.create_party("bob", noise_seed=2).release(np.zeros(128))
        assert np.isfinite(session.estimate_sq_distance(a, b))
        assert session.estimate_distance(a, b) >= 0.0
        assert np.isfinite(session.estimate_inner_product(a, b))
        assert np.isfinite(session.estimate_sq_norm(a))
