"""Tests for the analyst-side estimators."""

import dataclasses
import math

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.workloads import pair_at_distance

_CONFIG = SketchConfig(input_dim=128, epsilon=2.0, output_dim=64, sparsity=4)


def _sketcher(seed=0):
    return PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))


class TestCompatibilityChecks:
    def test_mixed_configs_rejected(self):
        a = _sketcher(0).sketch(np.ones(128))
        b = _sketcher(1).sketch(np.ones(128))
        with pytest.raises(ValueError, match="different configurations"):
            estimators.estimate_sq_distance(a, b)

    def test_same_config_accepted(self):
        sk = _sketcher()
        a, b = sk.sketch(np.ones(128)), sk.sketch(np.zeros(128))
        estimators.estimate_sq_distance(a, b)  # must not raise

    def test_batches_compared_on_sketch_dimension_not_size(self):
        """Regression: check_compatible once compared ``values.size``,
        which spuriously rejected 2-D batches with different row counts."""
        sk = _sketcher()
        a = sk.sketch_batch(np.ones((2, 128)), noise_rng=0)
        b = sk.sketch_batch(np.zeros((7, 128)), noise_rng=1)
        assert a.values.size != b.values.size
        estimators.check_compatible(a, b)  # must not raise
        assert estimators.cross_sq_distances(a, b).shape == (2, 7)


class TestSquaredDistance:
    def test_correction_applied(self):
        sk = _sketcher()
        a = sk.sketch(np.ones(128), noise_rng=1)
        b = sk.sketch(np.zeros(128), noise_rng=2)
        raw = float((a.values - b.values) @ (a.values - b.values))
        expected = raw - 2 * sk.output_dim * sk.noise.second_moment
        assert estimators.estimate_sq_distance(a, b) == pytest.approx(expected)

    def test_unbiased_monte_carlo(self):
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(128, 5.0, rng)
        estimates = []
        for seed in range(400):
            sk = _sketcher(seed)
            estimates.append(
                estimators.estimate_sq_distance(
                    sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
                )
            )
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 25.0) < 5 * stderr

    def test_input_perturbation_correction_uses_d(self):
        config = SketchConfig(input_dim=128, epsilon=1.0, delta=1e-5, transform="fjlt",
                              noise="gaussian", output_dim=32)
        sk = PrivateSketcher(config)
        a = sk.sketch(np.ones(128), noise_rng=1)
        b = sk.sketch(np.zeros(128), noise_rng=2)
        raw = float((a.values - b.values) @ (a.values - b.values))
        expected = raw - 2 * 128 * sk.noise.second_moment
        assert estimators.estimate_sq_distance(a, b) == pytest.approx(expected)

    def test_distance_is_sqrt_of_clipped(self):
        sk = _sketcher()
        a, b = sk.sketch(np.ones(128), noise_rng=1), sk.sketch(np.ones(128), noise_rng=2)
        d2 = estimators.estimate_sq_distance(a, b)
        d = estimators.estimate_distance(a, b)
        assert d == pytest.approx(math.sqrt(max(d2, 0.0)))


class TestSquaredNorm:
    def test_correction_applied(self):
        sk = _sketcher()
        s = sk.sketch(np.ones(128), noise_rng=3)
        raw = float(s.values @ s.values)
        assert estimators.estimate_sq_norm(s) == pytest.approx(
            raw - sk.output_dim * sk.noise.second_moment
        )

    def test_unbiased_monte_carlo(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(128)
        x_sq = float(x @ x)
        estimates = []
        for seed in range(400):
            sk = _sketcher(seed)
            estimates.append(estimators.estimate_sq_norm(sk.sketch(x, noise_rng=rng)))
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - x_sq) < 5 * stderr


class TestInnerProduct:
    def test_no_correction(self):
        sk = _sketcher()
        a = sk.sketch(np.ones(128), noise_rng=1)
        b = sk.sketch(np.zeros(128), noise_rng=2)
        assert estimators.estimate_inner_product(a, b) == pytest.approx(
            float(a.values @ b.values)
        )

    def test_unbiased_monte_carlo(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(128)
        y = rng.standard_normal(128)
        true = float(x @ y)
        estimates = []
        for seed in range(500):
            sk = _sketcher(seed)
            estimates.append(
                estimators.estimate_inner_product(
                    sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
                )
            )
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - true) < 5 * stderr

    def test_polarization_consistency(self):
        """<x,y> == (||x||^2 + ||y||^2 - ||x-y||^2)/2 holds for estimates
        from the same pair of sketches (algebraic identity)."""
        sk = _sketcher()
        a = sk.sketch(np.ones(128), noise_rng=1)
        b = sk.sketch(np.full(128, 0.5), noise_rng=2)
        ip = estimators.estimate_inner_product(a, b)
        na = estimators.estimate_sq_norm(a)
        nb = estimators.estimate_sq_norm(b)
        d2 = estimators.estimate_sq_distance(a, b)
        assert ip == pytest.approx((na + nb - d2) / 2.0)


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        sk = _sketcher()
        sketches = [sk.sketch(np.eye(128)[i] * 3, noise_rng=i) for i in range(4)]
        mat = estimators.estimate_distance_matrix(sketches)
        assert mat.shape == (4, 4)
        assert np.allclose(np.diag(mat), 0.0)
        assert np.allclose(mat, mat.T)

    def test_entries_match_pairwise_calls(self):
        sk = _sketcher()
        sketches = [sk.sketch(np.ones(128) * i, noise_rng=i) for i in range(3)]
        mat = estimators.estimate_distance_matrix(sketches)
        assert mat[0, 2] == pytest.approx(
            estimators.estimate_sq_distance(sketches[0], sketches[2])
        )
