"""Tests for the theoretical variance formulas (Lemma 3 & friends)."""

import math

import numpy as np
import pytest

from repro.core.variance import (
    fjlt_input_variance_bound,
    fjlt_output_variance_bound,
    fjlt_transform_variance_bound,
    general_variance,
    iid_gaussian_transform_variance,
    kenthapadi_variance,
    noise_variance,
    sjlt_gaussian_variance_bound,
    sjlt_laplace_variance_bound,
    sjlt_transform_variance_bound,
    sjlt_transform_variance_exact,
)
from repro.dp.noise import GaussianNoise, LaplaceNoise


class TestGeneralVariance:
    def test_lemma3_structure(self):
        # Var = T + 8 m2 D + 2k m4 + 2k m2^2
        out = general_variance(k=10, dist_sq=4.0, second_moment=2.0, fourth_moment=5.0,
                               transform_variance=7.0)
        assert out == pytest.approx(7.0 + 8 * 2 * 4 + 2 * 10 * 5 + 2 * 10 * 4)

    def test_zero_noise_reduces_to_transform(self):
        assert general_variance(5, 1.0, 0.0, 0.0, 3.3) == pytest.approx(3.3)

    def test_noise_variance_helper(self):
        noise = GaussianNoise(2.0)
        expected = general_variance(8, 3.0, 4.0, 48.0, 0.0)
        assert noise_variance(8, 3.0, noise) == pytest.approx(expected)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            general_variance(0, 1.0, 1.0, 1.0, 1.0)


class TestTheorem2:
    def test_formula(self):
        k, sigma, d_sq = 16, 1.5, 9.0
        expected = 2 / 16 * 81 + 8 * 2.25 * 9 + 8 * 1.5**4 * 16
        assert kenthapadi_variance(k, sigma, d_sq) == pytest.approx(expected)

    def test_is_general_variance_with_gaussian(self):
        """Theorem 2 == Lemma 3 with N(0, sigma^2) moments."""
        k, sigma, d_sq = 32, 0.7, 5.0
        noise = GaussianNoise(sigma)
        via_lemma3 = general_variance(
            k, d_sq, noise.second_moment, noise.fourth_moment,
            iid_gaussian_transform_variance(k, d_sq),
        )
        assert kenthapadi_variance(k, sigma, d_sq) == pytest.approx(via_lemma3)


class TestTheorem3:
    def test_constants(self):
        # 2/k D^2 + 16 s/eps^2 D + 56 k s^2/eps^4
        k, s, eps, d_sq = 64, 4, 2.0, 10.0
        expected = 2 / 64 * 100 + 16 * 4 / 4 * 10 + 56 * 64 * 16 / 16
        assert sjlt_laplace_variance_bound(k, s, eps, d_sq) == pytest.approx(expected)

    def test_is_general_variance_with_laplace(self):
        k, s, eps, d_sq = 32, 8, 1.0, 4.0
        noise = LaplaceNoise(np.sqrt(s) / eps)
        via_lemma3 = general_variance(
            k, d_sq, noise.second_moment, noise.fourth_moment,
            sjlt_transform_variance_bound(k, d_sq),
        )
        assert sjlt_laplace_variance_bound(k, s, eps, d_sq) == pytest.approx(via_lemma3)

    def test_gaussian_variant_matches_kenthapadi_noise_terms(self):
        """Section 6.2.3: SJLT+Gaussian == Kenthapadi terms with 2/k leading."""
        k, sigma, d_sq = 16, 1.2, 9.0
        diff = sjlt_gaussian_variance_bound(k, sigma, d_sq) - kenthapadi_variance(
            k, sigma, d_sq
        )
        assert diff == pytest.approx(0.0, abs=1e-9)


class TestSJLTExactVariance:
    def test_below_or_equal_bound(self):
        z = np.array([1.0, 2.0, -1.0, 0.5])
        k = 8
        exact = sjlt_transform_variance_exact(k, z)
        bound = sjlt_transform_variance_bound(k, float(z @ z))
        assert exact <= bound

    def test_zero_for_one_hot(self):
        """A 1-sparse vector has ||z||_2^4 == ||z||_4^4: zero variance."""
        z = np.zeros(8)
        z[3] = 2.5
        assert sjlt_transform_variance_exact(16, z) == pytest.approx(0.0)

    def test_spread_vector_near_bound(self):
        z = np.ones(100)
        exact = sjlt_transform_variance_exact(10, z)
        bound = sjlt_transform_variance_bound(10, 100.0)
        assert exact / bound == pytest.approx(0.99, abs=0.01)


class TestFJLTBounds:
    def test_output_bound_structure(self):
        k, sigma, d_sq = 16, 1.0, 4.0
        expected = 3 / 16 * 16 + 8 * 4 + 8 * 16
        assert fjlt_output_variance_bound(k, sigma, d_sq) == pytest.approx(expected)

    def test_input_bound_dominates_output(self):
        # the d factors make input perturbation worse whenever d >> k
        k, d, sigma, d_sq = 16, 1024, 1.0, 4.0
        assert fjlt_input_variance_bound(k, d, sigma, d_sq, 0.1) > fjlt_output_variance_bound(
            k, sigma, d_sq
        )

    def test_input_bound_grows_quadratically_in_d(self):
        # leading term is d^2 w2^2 / k; lower-order terms damp the ratio
        small = fjlt_input_variance_bound(16, 1000, 1.0, 0.0, 1.0)
        large = fjlt_input_variance_bound(16, 10000, 1.0, 0.0, 1.0)
        assert large / small == pytest.approx(100.0, rel=0.1)

    def test_input_bound_covers_conditional_decomposition(self):
        """The bound equals coeff/k * E||z+w||^4 + Var_w(||z+w||^2) for
        Gaussian w — verified against direct Monte-Carlo of those pieces."""
        rng = np.random.default_rng(0)
        k, d, sigma, q = 16, 64, 1.5, 0.5
        z = np.zeros(d)
        z[0] = 3.0
        w2 = 2 * sigma**2
        samples = rng.normal(0.0, math.sqrt(w2), size=(20000, d))
        v = z[np.newaxis, :] + samples
        norms_sq = (v**2).sum(axis=1)
        coeff = 2.0 + 9.0 / d * (1.0 / q - 1.0)
        direct = coeff / k * np.mean(norms_sq**2) + np.var(norms_sq)
        bound = fjlt_input_variance_bound(k, d, sigma, float(z @ z), q)
        assert bound == pytest.approx(direct, rel=0.05)

    def test_transform_bound_is_3_over_k(self):
        assert fjlt_transform_variance_bound(3, 2.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fjlt_input_variance_bound(16, 0, 1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            fjlt_input_variance_bound(16, 10, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            kenthapadi_variance(16, -1.0, 1.0)
