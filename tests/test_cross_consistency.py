"""Cross-module consistency: independent code paths must agree.

Several quantities are computed in more than one place (by design:
theory formulas vs live mechanisms, baseline vs core, config resolution
vs theory helpers).  These tests pin the implementations to each other
so they cannot drift apart silently.
"""

import math

import numpy as np
import pytest

from repro.baselines.kenthapadi import KenthapadiSketcher
from repro.core.mechanism_choice import build_mechanism
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.dp.noise import noise_from_spec
from repro.experiments.registry import EXPERIMENTS
from repro.theory.bounds import jl_output_dimension, sjlt_dimensions


class TestSketcherVsBaseline:
    def test_same_sigma_as_kenthapadi_given_same_transform(self):
        """PrivateSketcher(gaussian, exact sensitivity) and the baseline
        must calibrate identically on the same seed."""
        config = SketchConfig(
            input_dim=64, epsilon=1.0, delta=1e-5, transform="gaussian",
            noise="gaussian", output_dim=16, seed=9,
        )
        ours = PrivateSketcher(config)
        theirs = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=9)
        assert ours.noise.sigma == pytest.approx(theirs.sigma)

    def test_same_estimates_given_same_draws(self):
        config = SketchConfig(
            input_dim=64, epsilon=1.0, delta=1e-5, transform="gaussian",
            noise="gaussian", output_dim=16, seed=9,
        )
        ours = PrivateSketcher(config)
        theirs = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=9)
        x, y = np.ones(64), np.zeros(64)
        ours_est = ours.estimate_sq_distance(
            ours.sketch(x, noise_rng=1), ours.sketch(y, noise_rng=2)
        )
        theirs_est = theirs.estimate_sq_distance(
            theirs.sketch(x, noise_rng=1), theirs.sketch(y, noise_rng=2)
        )
        # same transform (same seed), same sigma, same correction — the
        # noise streams differ only through rng context, so compare the
        # corrections structurally instead of the raw values:
        assert ours.distance_correction == pytest.approx(2 * 16 * theirs.sigma**2)
        assert np.isfinite(ours_est) and np.isfinite(theirs_est)

    def test_baseline_variance_equals_core_formula(self):
        from repro.core.variance import kenthapadi_variance

        theirs = KenthapadiSketcher(64, 32, epsilon=1.0, delta=1e-5, seed=0)
        assert theirs.theoretical_variance(4.0) == pytest.approx(
            kenthapadi_variance(32, theirs.sigma, 4.0)
        )


class TestConfigVsTheory:
    def test_default_dimensions_match_theory_helpers(self):
        config = SketchConfig(input_dim=512, epsilon=1.0, alpha=0.2, beta=0.01)
        sk = PrivateSketcher(config)
        k, s = sjlt_dimensions(0.2, 0.01)
        assert (sk.output_dim, sk.sparsity) == (k, s)

    def test_dense_transform_dimension_matches_theory(self):
        config = SketchConfig(
            input_dim=512, epsilon=1.0, delta=1e-5, transform="gaussian",
            noise="gaussian", alpha=0.2, beta=0.01,
        )
        assert PrivateSketcher(config).output_dim == jl_output_dimension(0.2, 0.01)

    def test_note5_choice_matches_rule_module(self):
        from repro.core.mechanism_choice import choose_noise_name

        config = SketchConfig(input_dim=64, epsilon=1.0, delta=1e-9, output_dim=16, sparsity=4)
        sk = PrivateSketcher(config)
        rule = choose_noise_name(math.sqrt(4), 1.0, 1.0, 1e-9)
        assert sk.noise.name == rule.noise_name

    def test_theoretical_variance_matches_theorem3_formula(self):
        from repro.core.variance import sjlt_laplace_variance_bound

        config = SketchConfig(input_dim=64, epsilon=2.0, output_dim=32, sparsity=4)
        sk = PrivateSketcher(config)
        assert sk.theoretical_variance(9.0) == pytest.approx(
            sjlt_laplace_variance_bound(32, 4, 2.0, 9.0)
        )


class TestNoiseSpecRoundtrips:
    @pytest.mark.parametrize(
        "name,delta",
        [("laplace", 0.0), ("discrete_laplace", 0.0), ("gaussian", 1e-5),
         ("discrete_gaussian", 1e-5)],
    )
    def test_every_mechanism_noise_spec_roundtrips(self, name, delta):
        mech = build_mechanism(name, 2.0, 1.0, 1.0, delta)
        rebuilt = noise_from_spec(mech.noise.spec())
        assert type(rebuilt) is type(mech.noise)
        assert rebuilt.second_moment == pytest.approx(mech.noise.second_moment)
        assert rebuilt.fourth_moment == pytest.approx(mech.noise.fourth_moment)

    def test_sketch_carries_live_second_moment(self):
        config = SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4)
        sk = PrivateSketcher(config)
        sketch = sk.sketch(np.ones(64))
        rebuilt = noise_from_spec(sketch.noise_spec)
        assert sketch.noise_second_moment == pytest.approx(rebuilt.second_moment)


class TestRegistryVsDesign:
    def test_every_experiment_has_bench_file(self):
        """DESIGN.md promises one bench target per experiment ID."""
        import pathlib

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        bench_source = "\n".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for eid in EXPERIMENTS:
            assert f'"{eid}"' in bench_source or f"'{eid}'" in bench_source, (
                f"{eid} has no benchmark regenerating it"
            )

    def test_experiment_ids_unique_prefix_format(self):
        for eid in EXPERIMENTS:
            assert eid.startswith("EXP-")

    def test_experiments_runnable_objects(self):
        for eid, cls in EXPERIMENTS.items():
            instance = cls()
            assert hasattr(instance, "run")
