"""Benchmark-history tests: snapshots persist, renders show deltas.

The trajectory script used to render only the current run's records —
with nothing committed, the cross-commit "trajectory" was empty.  These
tests pin the history mechanism: ``snapshot`` writes numbered,
commit-stamped directories, and a render with ``--history`` annotates
every metric with its change against the latest snapshot.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def _record(tmp_path, name="load", rate=100.0, seconds=0.010):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(
            {
                "benchmark": name,
                "commit": "c" * 40,
                "workload": "test workload",
                "rates": {"pooled_q_per_s": rate},
                "timings": {"topk_p50_s": seconds},
            }
        )
    )
    return path


class TestSnapshots:
    def test_snapshot_dirs_are_numbered_and_commit_stamped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "abcdef0123456789" * 2 + "abcdef01")
        history = tmp_path / "bench-history"
        first = trajectory.write_snapshot(history, [str(_record(tmp_path))])
        assert first.name == "0001-abcdef012345"
        assert (first / "BENCH_load.json").exists()
        second = trajectory.write_snapshot(history, [str(_record(tmp_path, rate=120.0))])
        assert second.name == "0002-abcdef012345"
        assert [p.name for p in trajectory.snapshot_dirs(history)] == [
            "0001-abcdef012345",
            "0002-abcdef012345",
        ]

    def test_latest_snapshot_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "f" * 40)
        history = tmp_path / "bench-history"
        trajectory.write_snapshot(history, [str(_record(tmp_path, rate=100.0))])
        trajectory.write_snapshot(history, [str(_record(tmp_path, rate=250.0))])
        name, records = trajectory.load_latest_snapshot(history)
        assert name.startswith("0002-")
        assert records["load"]["rates"]["pooled_q_per_s"] == 250.0

    def test_empty_history_renders_without_deltas(self, tmp_path):
        name, records = trajectory.load_latest_snapshot(tmp_path / "missing")
        assert (name, records) == ("", {})
        lines = trajectory.render(
            trajectory.load_records([str(_record(tmp_path))]), records, name
        )
        assert not any("%" in line for line in lines)

    def test_snapshot_without_records_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no benchmark records"):
            trajectory.write_snapshot(tmp_path / "bench-history", [])


class TestDeltaRendering:
    def test_render_shows_percent_change_against_latest_snapshot(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("GITHUB_SHA", "a" * 40)
        history = tmp_path / "bench-history"
        trajectory.write_snapshot(
            history, [str(_record(tmp_path, rate=100.0, seconds=0.010))]
        )
        current = trajectory.load_records(
            [str(_record(tmp_path, rate=125.0, seconds=0.008))]
        )
        name, previous = trajectory.load_latest_snapshot(history)
        lines = trajectory.render(current, previous, name)
        text = "\n".join(lines)
        assert "vs 0001-aaaaaaaaaaaa" in lines[0]
        assert "(+25.0%)" in text  # 100 -> 125 q/s
        assert "(-20.0%)" in text  # 10ms -> 8ms
        # an unchanged metric renders as (=), not +0.0% noise
        same = trajectory.render(
            trajectory.load_records([str(_record(tmp_path, rate=100.0, seconds=0.010))]),
            previous,
            name,
        )
        assert "(=)" in "\n".join(same)

    def test_cli_snapshot_then_render_with_history(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_SHA", "b" * 40)
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        history = tmp_path / "bench-history"
        record = _record(tmp_path, rate=200.0)
        assert (
            trajectory.main(["snapshot", "--history", str(history), str(record)]) == 0
        )
        capsys.readouterr()
        record2 = _record(tmp_path, rate=300.0)
        assert trajectory.main(["--history", str(history), str(record2)]) == 0
        out = capsys.readouterr().out
        assert "(+50.0%)" in out
        assert "vs 0001-bbbbbbbbbbbb" in out

    def test_cli_without_history_matches_old_behaviour(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        record = _record(tmp_path, rate=200.0)
        assert trajectory.main([str(record)]) == 0
        out = capsys.readouterr().out
        assert "rate.pooled_q_per_s" in out
        assert "%" not in out


class TestSingleSnapshotRendering:
    """The only snapshot being this run's own must not self-compare.

    CI snapshots the current records, then renders with ``--history`` —
    on the very first run the sole snapshot is the run's own numbers,
    and the old behaviour rendered every delta as a meaningless ``(=)``
    against itself (or, metrics-missing cases, silent blanks).
    """

    def test_own_snapshot_is_skipped_and_said_out_loud(
        self, tmp_path, monkeypatch, capsys
    ):
        # stamp the snapshot with the records' own commit
        monkeypatch.setenv("GITHUB_SHA", "c" * 40)
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        history = tmp_path / "bench-history"
        record = _record(tmp_path, rate=200.0)
        assert (
            trajectory.main(["snapshot", "--history", str(history), str(record)]) == 0
        )
        capsys.readouterr()
        assert trajectory.main(["--history", str(history), str(record)]) == 0
        out = capsys.readouterr().out
        assert "no prior snapshot" in out
        assert "%" not in out and "(=)" not in out  # no self-comparison
        assert "200" in out  # absolute values still rendered

    def test_falls_back_to_older_snapshot_past_own(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        history = tmp_path / "bench-history"
        monkeypatch.setenv("GITHUB_SHA", "b" * 40)  # an earlier commit
        trajectory.write_snapshot(history, [str(_record(tmp_path, rate=100.0))])
        monkeypatch.setenv("GITHUB_SHA", "c" * 40)  # this run's commit
        record = _record(tmp_path, rate=150.0)
        trajectory.write_snapshot(history, [str(record)])
        assert trajectory.main(["--history", str(history), str(record)]) == 0
        out = capsys.readouterr().out
        assert "vs 0001-bbbbbbbbbbbb" in out  # own 0002 snapshot skipped
        assert "(+50.0%)" in out

    def test_empty_history_says_no_prior_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        history = tmp_path / "bench-history"
        history.mkdir()
        assert (
            trajectory.main(["--history", str(history), str(_record(tmp_path))]) == 0
        )
        out = capsys.readouterr().out
        assert "no prior snapshot" in out

    def test_zero_baseline_renders_explicit_note(self, tmp_path):
        previous = {
            "load": {"benchmark": "load", "rates": {"pooled_q_per_s": 0.0}}
        }
        lines = trajectory.render(
            trajectory.load_records([str(_record(tmp_path, rate=50.0))]),
            previous,
            "0001-aaaaaaaaaaaa",
        )
        assert any("(was 0)" in line for line in lines)

    def test_metric_new_since_snapshot_is_marked(self, tmp_path):
        previous = {
            "load": {"benchmark": "load", "rates": {"pooled_q_per_s": 100.0}}
        }
        lines = trajectory.render(
            trajectory.load_records([str(_record(tmp_path, rate=110.0))]),
            previous,
            "0001-aaaaaaaaaaaa",
        )
        text = "\n".join(lines)
        assert "(+10.0%)" in text  # the shared metric still deltas
        assert "timing.topk_p50_s" in text
        assert "(new)" in text  # the snapshot had no timings section


class TestFindAlarms:
    """Sustained-slowdown detection over the committed snapshot chain."""

    def _history(self, tmp_path, monkeypatch, steps):
        monkeypatch.setenv("GITHUB_SHA", "a" * 40)
        history = tmp_path / "bench-history"
        for rate, seconds in steps:
            trajectory.write_snapshot(
                history, [str(_record(tmp_path, rate=rate, seconds=seconds))]
            )
        return history

    def _current(self, tmp_path, rate=100.0, seconds=0.010):
        return trajectory.load_records(
            [str(_record(tmp_path, rate=rate, seconds=seconds))]
        )

    def test_sustained_timing_growth_trips(self, tmp_path, monkeypatch):
        history = self._history(
            tmp_path,
            monkeypatch,
            [(100.0, 0.010), (100.0, 0.012), (100.0, 0.015)],
        )
        alarms = trajectory.find_alarms(
            self._current(tmp_path, seconds=0.020), history
        )
        assert len(alarms) == 1
        assert "timing.topk_p50_s" in alarms[0]
        assert "worse in 3 consecutive snapshots" in alarms[0]
        assert "+100.0% cumulative" in alarms[0]

    def test_sustained_rate_drop_trips_via_the_sign_map(self, tmp_path, monkeypatch):
        # throughput worsens *downward*: the sign map must flip it
        history = self._history(
            tmp_path,
            monkeypatch,
            [(100.0, 0.010), (90.0, 0.010), (80.0, 0.010)],
        )
        alarms = trajectory.find_alarms(self._current(tmp_path, rate=70.0), history)
        assert len(alarms) == 1
        assert "rate.pooled_q_per_s" in alarms[0]

    def test_a_recovered_step_breaks_the_streak(self, tmp_path, monkeypatch):
        history = self._history(
            tmp_path,
            monkeypatch,
            [(100.0, 0.010), (100.0, 0.015), (100.0, 0.013)],
        )
        assert (
            trajectory.find_alarms(self._current(tmp_path, seconds=0.020), history)
            == []
        )

    def test_tolerance_gates_slow_drift(self, tmp_path, monkeypatch):
        # +2% per step: invisible at the default 5% tolerance, alarmed
        # when the caller tightens it
        history = self._history(
            tmp_path,
            monkeypatch,
            [(100.0, 0.0100), (100.0, 0.0102), (100.0, 0.0104)],
        )
        current = self._current(tmp_path, seconds=0.0107)
        assert trajectory.find_alarms(current, history) == []
        assert len(trajectory.find_alarms(current, history, tolerance=0.01)) == 1

    def test_streak_needs_enough_committed_history(self, tmp_path, monkeypatch):
        history = self._history(
            tmp_path, monkeypatch, [(100.0, 0.010), (100.0, 0.013)]
        )
        current = self._current(tmp_path, seconds=0.017)
        assert trajectory.find_alarms(current, history, streak=3) == []
        assert len(trajectory.find_alarms(current, history, streak=2)) == 1

    def test_metrics_missing_from_history_are_skipped(self, tmp_path, monkeypatch):
        history = self._history(
            tmp_path, monkeypatch, [(100.0, 0.010)] * 3
        )
        # a *new* benchmark has no chain at all — silence, not a crash
        fresh = trajectory.load_records(
            [str(_record(tmp_path, name="brand_new", seconds=99.0))]
        )
        assert trajectory.find_alarms(fresh, history) == []

    def test_emitted_block_carries_the_alarm_prefix(self):
        lines = trajectory._emit_alarms(["bench timing.x: worse ..."])
        assert any(line.startswith("  PERF ALARM:") for line in lines)
        assert trajectory._emit_alarms([]) == []
