"""Benchmark-history tests: snapshots persist, renders show deltas.

The trajectory script used to render only the current run's records —
with nothing committed, the cross-commit "trajectory" was empty.  These
tests pin the history mechanism: ``snapshot`` writes numbered,
commit-stamped directories, and a render with ``--history`` annotates
every metric with its change against the latest snapshot.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def _record(tmp_path, name="load", rate=100.0, seconds=0.010):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(
            {
                "benchmark": name,
                "commit": "c" * 40,
                "workload": "test workload",
                "rates": {"pooled_q_per_s": rate},
                "timings": {"topk_p50_s": seconds},
            }
        )
    )
    return path


class TestSnapshots:
    def test_snapshot_dirs_are_numbered_and_commit_stamped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "abcdef0123456789" * 2 + "abcdef01")
        history = tmp_path / "bench-history"
        first = trajectory.write_snapshot(history, [str(_record(tmp_path))])
        assert first.name == "0001-abcdef012345"
        assert (first / "BENCH_load.json").exists()
        second = trajectory.write_snapshot(history, [str(_record(tmp_path, rate=120.0))])
        assert second.name == "0002-abcdef012345"
        assert [p.name for p in trajectory.snapshot_dirs(history)] == [
            "0001-abcdef012345",
            "0002-abcdef012345",
        ]

    def test_latest_snapshot_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "f" * 40)
        history = tmp_path / "bench-history"
        trajectory.write_snapshot(history, [str(_record(tmp_path, rate=100.0))])
        trajectory.write_snapshot(history, [str(_record(tmp_path, rate=250.0))])
        name, records = trajectory.load_latest_snapshot(history)
        assert name.startswith("0002-")
        assert records["load"]["rates"]["pooled_q_per_s"] == 250.0

    def test_empty_history_renders_without_deltas(self, tmp_path):
        name, records = trajectory.load_latest_snapshot(tmp_path / "missing")
        assert (name, records) == ("", {})
        lines = trajectory.render(
            trajectory.load_records([str(_record(tmp_path))]), records, name
        )
        assert not any("%" in line for line in lines)

    def test_snapshot_without_records_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no benchmark records"):
            trajectory.write_snapshot(tmp_path / "bench-history", [])


class TestDeltaRendering:
    def test_render_shows_percent_change_against_latest_snapshot(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("GITHUB_SHA", "a" * 40)
        history = tmp_path / "bench-history"
        trajectory.write_snapshot(
            history, [str(_record(tmp_path, rate=100.0, seconds=0.010))]
        )
        current = trajectory.load_records(
            [str(_record(tmp_path, rate=125.0, seconds=0.008))]
        )
        name, previous = trajectory.load_latest_snapshot(history)
        lines = trajectory.render(current, previous, name)
        text = "\n".join(lines)
        assert "vs 0001-aaaaaaaaaaaa" in lines[0]
        assert "(+25.0%)" in text  # 100 -> 125 q/s
        assert "(-20.0%)" in text  # 10ms -> 8ms
        # an unchanged metric renders as (=), not +0.0% noise
        same = trajectory.render(
            trajectory.load_records([str(_record(tmp_path, rate=100.0, seconds=0.010))]),
            previous,
            name,
        )
        assert "(=)" in "\n".join(same)

    def test_cli_snapshot_then_render_with_history(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_SHA", "b" * 40)
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        history = tmp_path / "bench-history"
        record = _record(tmp_path, rate=200.0)
        assert (
            trajectory.main(["snapshot", "--history", str(history), str(record)]) == 0
        )
        capsys.readouterr()
        record2 = _record(tmp_path, rate=300.0)
        assert trajectory.main(["--history", str(history), str(record2)]) == 0
        out = capsys.readouterr().out
        assert "(+50.0%)" in out
        assert "vs 0001-bbbbbbbbbbbb" in out

    def test_cli_without_history_matches_old_behaviour(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        record = _record(tmp_path, rate=200.0)
        assert trajectory.main([str(record)]) == 0
        out = capsys.readouterr().out
        assert "rate.pooled_q_per_s" in out
        assert "%" not in out
