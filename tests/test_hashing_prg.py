"""Unit tests for repro.hashing.prg (seed derivation)."""

import numpy as np

from repro.hashing.prg import as_generator, child_seed, derive_rng, fresh_seed


class TestDeriveRng:
    def test_deterministic_for_same_context(self):
        a = derive_rng(7, "transform", 3).integers(0, 1 << 30, 8)
        b = derive_rng(7, "transform", 3).integers(0, 1 << 30, 8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").integers(0, 1 << 30, 8)
        b = derive_rng(8, "x").integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_different_context_differs(self):
        a = derive_rng(7, "x").integers(0, 1 << 30, 8)
        b = derive_rng(7, "y").integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_context_concatenation_not_ambiguous(self):
        a = derive_rng(7, "ab").integers(0, 1 << 30, 8)
        b = derive_rng(7, "a", "b").integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_integer_context_supported(self):
        a = derive_rng(7, 12).integers(0, 1 << 30, 4)
        b = derive_rng(7, 12).integers(0, 1 << 30, 4)
        assert (a == b).all()


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(1, "a") == child_seed(1, "a")

    def test_in_63_bit_range(self):
        for ctx in range(20):
            seed = child_seed(99, ctx)
            assert 0 <= seed < (1 << 63)

    def test_distinct_across_context(self):
        seeds = {child_seed(5, i) for i in range(100)}
        assert len(seeds) == 100


class TestFreshSeed:
    def test_distinct_draws(self):
        assert fresh_seed() != fresh_seed()

    def test_in_range(self):
        assert 0 <= fresh_seed() < (1 << 63)


class TestAsGenerator:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_int_seed_deterministic(self):
        a = as_generator(5).integers(0, 1 << 30, 4)
        b = as_generator(5).integers(0, 1 << 30, 4)
        assert (a == b).all()

    def test_none_gives_fresh_stream(self):
        a = as_generator(None).integers(0, 1 << 30, 8)
        b = as_generator(None).integers(0, 1 << 30, 8)
        assert not (a == b).all()
