"""Property-based tests (hypothesis) on the core invariants.

These check *algebraic* invariants that must hold for every input, not
just statistical ones: linearity, exactness of closed forms, streaming
== batch, serialization roundtrips, FWHT structure, estimator algebra.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.estimators import (
    estimate_inner_product,
    estimate_sq_distance,
    estimate_sq_norm,
)
from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchConfig
from repro.core.streaming import StreamingSketch
from repro.dp.noise import DiscreteLaplaceNoise, GaussianNoise, LaplaceNoise
from repro.theory.moments import gaussian_moment, laplace_moment
from repro.transforms import create_transform, exact_sensitivity
from repro.transforms.hadamard import fwht, hadamard_matrix

DIM = 32
OUT = 16

finite_vectors = arrays(
    np.float64,
    DIM,
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=64),
)

transform_names = st.sampled_from(["sjlt", "gaussian", "achlioptas", "dks", "fjlt"])


def _make(name, seed):
    kwargs = {"sparsity": 4} if name in ("sjlt", "dks") else {}
    return create_transform(name, DIM, OUT, seed=seed, **kwargs)


class TestTransformProperties:
    @given(x=finite_vectors, y=finite_vectors, name=transform_names, seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_linearity(self, x, y, name, seed):
        t = _make(name, seed)
        lhs = t.apply(x + y)
        rhs = t.apply(x) + t.apply(y)
        assert np.allclose(lhs, rhs, atol=1e-6)

    @given(x=finite_vectors, c=st.floats(-50, 50), name=transform_names, seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_homogeneity(self, x, c, name, seed):
        t = _make(name, seed)
        assert np.allclose(t.apply(c * x), c * t.apply(x), atol=1e-6)

    @given(name=transform_names, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_sensitivity_closed_form_never_below_scan(self, name, seed):
        t = _make(name, seed)
        for p in (1, 2):
            scan = exact_sensitivity(t, p)
            assert t.sensitivity(p) >= scan - 1e-9

    @given(seed=st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_sjlt_column_structure_invariant(self, seed):
        t = _make("sjlt", seed)
        dense = t.to_dense()
        nnz = (dense != 0).sum(axis=0)
        assert (nnz == 4).all()
        assert np.allclose(np.abs(dense[dense != 0]), 0.5)

    @given(x=finite_vectors, seed=st.integers(0, 50), name=transform_names)
    @settings(max_examples=40, deadline=None)
    def test_dense_matrix_agrees_with_apply(self, x, seed, name):
        t = _make(name, seed)
        assert np.allclose(t.to_dense() @ x, t.apply(x), atol=1e-6)


class TestFWHTProperties:
    lengths = st.sampled_from([2, 4, 8, 16, 64])

    @given(n=lengths, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, n, data):
        x = np.array(
            data.draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False, width=64), min_size=n, max_size=n
                )
            )
        )
        y = fwht(x, normalized=True)
        assert np.linalg.norm(y) == pytest.approx(np.linalg.norm(x), abs=1e-6)

    @given(n=lengths, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_involution(self, n, data):
        x = np.array(
            data.draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False, width=64), min_size=n, max_size=n
                )
            )
        )
        assert np.allclose(fwht(fwht(x, normalized=True), normalized=True), x, atol=1e-8)

    @given(n=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_matrix_symmetric(self, n):
        h = hadamard_matrix(n)
        assert np.array_equal(h, h.T)


class TestEstimatorAlgebra:
    @given(
        noise_seed_a=st.integers(0, 10**6),
        noise_seed_b=st.integers(0, 10**6),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_distance_estimator_formula(self, noise_seed_a, noise_seed_b, scale):
        """estimate == ||u - v||^2 - 2 k m2, always."""
        sk = PrivateSketcher(SketchConfig(input_dim=DIM, epsilon=1.0, output_dim=OUT, sparsity=4))
        a = sk.sketch(np.full(DIM, scale), noise_rng=noise_seed_a)
        b = sk.sketch(np.full(DIM, -scale), noise_rng=noise_seed_b)
        manual = float((a.values - b.values) @ (a.values - b.values)) - 2 * OUT * sk.noise.second_moment
        assert estimate_sq_distance(a, b) == pytest.approx(manual)

    @given(noise_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_polarization_identity(self, noise_seed):
        sk = PrivateSketcher(SketchConfig(input_dim=DIM, epsilon=1.0, output_dim=OUT, sparsity=4))
        a = sk.sketch(np.arange(DIM, dtype=float), noise_rng=noise_seed)
        b = sk.sketch(np.ones(DIM), noise_rng=noise_seed + 1)
        lhs = estimate_inner_product(a, b)
        rhs = (estimate_sq_norm(a) + estimate_sq_norm(b) - estimate_sq_distance(a, b)) / 2.0
        assert lhs == pytest.approx(rhs, abs=1e-6)

    @given(x=finite_vectors, noise_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_serialization_roundtrip(self, x, noise_seed):
        sk = PrivateSketcher(SketchConfig(input_dim=DIM, epsilon=1.0, output_dim=OUT, sparsity=4))
        original = sk.sketch(x, noise_rng=noise_seed)
        restored = PrivateSketch.from_bytes(original.to_bytes())
        assert np.array_equal(restored.values, original.values)
        assert restored.config_digest == original.config_digest


class TestStreamingProperties:
    @given(
        updates=st.lists(
            st.tuples(st.integers(0, DIM - 1), st.floats(-10, 10, allow_nan=False)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_batch(self, updates):
        sk = PrivateSketcher(SketchConfig(input_dim=DIM, epsilon=1.0, output_dim=OUT, sparsity=4))
        streaming = StreamingSketch(sk)
        x = np.zeros(DIM)
        for index, delta in updates:
            streaming.update(index, delta)
            x[index] += delta
        assert np.allclose(streaming.current_projection(), sk.project(x), atol=1e-8)

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, DIM - 1), st.floats(-10, 10, allow_nan=False)),
            min_size=2,
            max_size=30,
        ),
        order_seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_update_order_irrelevant(self, updates, order_seed):
        sk = PrivateSketcher(SketchConfig(input_dim=DIM, epsilon=1.0, output_dim=OUT, sparsity=4))
        forward = StreamingSketch(sk)
        shuffled = StreamingSketch(sk)
        for index, delta in updates:
            forward.update(index, delta)
        perm = np.random.default_rng(order_seed).permutation(len(updates))
        for i in perm:
            shuffled.update(updates[i][0], updates[i][1])
        assert np.allclose(forward.current_projection(), shuffled.current_projection(), atol=1e-8)


class TestNoiseProperties:
    @given(scale=st.floats(0.05, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_laplace_moments_match_note4(self, scale):
        noise = LaplaceNoise(scale)
        assert noise.second_moment == pytest.approx(laplace_moment(2, scale))
        assert noise.fourth_moment == pytest.approx(laplace_moment(4, scale))

    @given(sigma=st.floats(0.05, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_gaussian_moments_match_note4(self, sigma):
        noise = GaussianNoise(sigma)
        assert noise.second_moment == pytest.approx(gaussian_moment(2, sigma))
        assert noise.fourth_moment == pytest.approx(gaussian_moment(4, sigma))

    @given(scale=st.floats(0.2, 30.0))
    @settings(max_examples=30, deadline=None)
    def test_discrete_laplace_moment_consistency(self, scale):
        """m4 >= m2^2 (Jensen) and both positive."""
        noise = DiscreteLaplaceNoise(scale)
        assert noise.second_moment > 0
        assert noise.fourth_moment >= noise.second_moment**2

    @given(scale=st.floats(0.1, 20.0), eps=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_laplace_loss_never_exceeds_l1_over_scale(self, scale, eps):
        from repro.dp.audit import privacy_loss_samples

        noise = LaplaceNoise(scale)
        shift = np.array([eps * scale / 2.0, -eps * scale / 2.0])
        losses = privacy_loss_samples(noise, shift, 200, rng=np.random.default_rng(0))
        assert losses.max() <= np.abs(shift).sum() / scale + 1e-9


class TestTheoryProperties:
    @given(
        k=st.integers(1, 500),
        dist_sq=st.floats(0.0, 1e4),
        m2=st.floats(0.0, 100.0),
        m4=st.floats(0.0, 1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_general_variance_nonnegative_monotone(self, k, dist_sq, m2, m4):
        from repro.core.variance import general_variance

        base = general_variance(k, dist_sq, m2, m4, 0.0)
        assert base >= 0.0
        assert general_variance(k, dist_sq + 1.0, m2, m4, 0.0) >= base

    @given(z=arrays(np.float64, 16, elements=st.floats(-50, 50, allow_nan=False, width=64)))
    @settings(max_examples=60, deadline=None)
    def test_sjlt_exact_variance_below_bound(self, z):
        from repro.core.variance import (
            sjlt_transform_variance_bound,
            sjlt_transform_variance_exact,
        )

        exact = sjlt_transform_variance_exact(8, z)
        bound = sjlt_transform_variance_bound(8, float(z @ z))
        assert exact <= bound + 1e-9
        assert exact >= -1e-9

    @given(delta1=st.floats(0.1, 10.0), delta2=st.floats(0.1, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_note5_threshold_consistent_with_rule(self, delta1, delta2):
        from repro.core.mechanism_choice import choose_noise_name
        from repro.theory.bounds import laplace_beats_gaussian_threshold

        threshold = laplace_beats_gaussian_threshold(delta1, delta2)
        below = max(threshold * 0.5, 1e-300)
        if 0 < below < threshold:
            assert choose_noise_name(delta1, delta2, 1.0, below).noise_name == "laplace"
        above = min(threshold * 2.0, 0.99)
        if threshold < above < 1:  # strict: threshold may underflow to 0.0
            assert choose_noise_name(delta1, delta2, 1.0, above).noise_name == "gaussian"
