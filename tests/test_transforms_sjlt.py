"""Tests for the Sparser JL transform — the paper's central substrate."""

import math

import numpy as np
import pytest

from repro.core.variance import sjlt_transform_variance_exact
from repro.transforms import exact_sensitivity
from repro.transforms.sjlt import SJLT


class TestBlockStructure:
    def test_exactly_s_nonzeros_per_column(self):
        t = SJLT(100, 32, 4, seed=0)
        dense = t.to_dense()
        assert ((dense != 0).sum(axis=0) == 4).all()

    def test_one_nonzero_per_block(self):
        k, s = 32, 4
        t = SJLT(50, k, s, seed=1)
        dense = t.to_dense()
        block = k // s
        for r in range(s):
            rows = dense[r * block : (r + 1) * block]
            assert ((rows != 0).sum(axis=0) == 1).all()

    def test_entry_magnitude(self):
        t = SJLT(50, 32, 4, seed=2)
        dense = t.to_dense()
        nonzero = np.abs(dense[dense != 0])
        assert np.allclose(nonzero, 1.0 / math.sqrt(4))

    def test_requires_divisibility(self):
        with pytest.raises(ValueError, match="sparsity | output_dim"):
            SJLT(10, 30, 4, seed=0)

    def test_sparsity_bounds(self):
        with pytest.raises(ValueError):
            SJLT(10, 8, 0, seed=0)
        with pytest.raises(ValueError):
            SJLT(10, 8, 9, seed=0)

    def test_invalid_construction_name(self):
        with pytest.raises(ValueError, match="construction"):
            SJLT(10, 8, 2, seed=0, construction="banana")

    def test_invalid_independence(self):
        with pytest.raises(ValueError):
            SJLT(10, 8, 2, seed=0, independence=1)


class TestGraphStructure:
    def test_exactly_s_distinct_rows_per_column(self):
        t = SJLT(100, 32, 4, seed=0, construction="graph")
        dense = t.to_dense()
        assert ((dense != 0).sum(axis=0) == 4).all()

    def test_entry_magnitude(self):
        t = SJLT(50, 32, 4, seed=1, construction="graph")
        nonzero = np.abs(t.to_dense()[t.to_dense() != 0])
        assert np.allclose(nonzero, 0.5)

    def test_rows_not_confined_to_blocks(self):
        # across many columns, some column must have two entries in the
        # same k/s block (impossible for the block construction)
        t = SJLT(200, 32, 4, seed=2, construction="graph")
        dense = t.to_dense()
        block = 32 // 4
        blocks_hit = (dense != 0).reshape(4, block, 200).sum(axis=1)
        assert (blocks_hit > 1).any()


class TestSensitivities:
    @pytest.mark.parametrize("construction", ["block", "graph"])
    def test_closed_forms_deterministic(self, construction):
        for seed in range(5):
            t = SJLT(64, 32, 4, seed=seed, construction=construction)
            assert t.sensitivity(1) == pytest.approx(math.sqrt(4))
            assert t.sensitivity(2) == pytest.approx(1.0)
            assert t.sensitivity(np.inf) == pytest.approx(0.5)

    @pytest.mark.parametrize("construction", ["block", "graph"])
    def test_closed_form_matches_exact_scan(self, construction):
        t = SJLT(64, 32, 4, seed=3, construction=construction)
        for p in (1, 2, 3):
            assert t.sensitivity(p) == pytest.approx(exact_sensitivity(t, p))

    def test_general_p_formula(self):
        t = SJLT(64, 32, 4, seed=0)
        # Delta_p = s^(1/p - 1/2)
        assert t.sensitivity(3) == pytest.approx(4.0 ** (1 / 3 - 0.5))

    def test_has_closed_form(self):
        assert SJLT(64, 32, 4, seed=0).has_closed_form_sensitivity

    def test_p_validated(self):
        with pytest.raises(ValueError):
            SJLT(64, 32, 4, seed=0).sensitivity(0.5)


class TestLazyVsPrecomputed:
    def test_same_projection(self):
        x = np.random.default_rng(0).standard_normal(128)
        eager = SJLT(128, 32, 4, seed=9, precompute=True)
        lazy = SJLT(128, 32, 4, seed=9, precompute=False)
        assert np.allclose(eager.apply(x), lazy.apply(x))

    def test_lazy_has_no_tables(self):
        lazy = SJLT(128, 32, 4, seed=9, precompute=False)
        assert lazy._rows is None

    def test_lazy_sparse_apply(self):
        lazy = SJLT(128, 32, 4, seed=9, precompute=False)
        eager = SJLT(128, 32, 4, seed=9, precompute=True)
        idx = np.array([3, 77])
        vals = np.array([1.0, -2.0])
        assert np.allclose(lazy.apply_sparse(idx, vals), eager.apply_sparse(idx, vals))

    def test_lazy_coordinate_embedding(self):
        lazy = SJLT(128, 32, 4, seed=9, precompute=False)
        eager = SJLT(128, 32, 4, seed=9, precompute=True)
        lr, lv = lazy.coordinate_embedding(17)
        er, ev = eager.coordinate_embedding(17)
        assert np.array_equal(lr, er)
        assert np.allclose(lv, ev)


class TestStatistics:
    def test_update_cost(self):
        assert SJLT(64, 32, 8, seed=0).update_cost == 8

    def test_lpp(self):
        x = np.random.default_rng(1).standard_normal(96)
        ratios = []
        for seed in range(400):
            y = SJLT(96, 32, 4, seed=seed).apply(x)
            ratios.append(float(y @ y) / float(x @ x))
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.06)

    def test_lemma10_exact_variance(self):
        """Var[||Sx||^2] = 2/k (||x||_2^4 - ||x||_4^4) — Lemma 10's proof."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal(96)
        k = 48
        values = []
        for seed in range(3000):
            y = SJLT(96, k, 4, seed=seed).apply(x)
            values.append(float(y @ y))
        expected = sjlt_transform_variance_exact(k, x)
        assert np.var(values) == pytest.approx(expected, rel=0.12)

    def test_sparse_input_speed_path_consistent(self):
        t = SJLT(4096, 64, 8, seed=0, precompute=False)
        rng = np.random.default_rng(3)
        idx = rng.choice(4096, 16, replace=False)
        vals = rng.standard_normal(16)
        x = np.zeros(4096)
        x[idx] = vals
        assert np.allclose(t.apply_sparse(idx, vals), t.apply(x))
