"""Tests for the Note 5 mechanism chooser."""

import math

import pytest

from repro.core.mechanism_choice import build_mechanism, choose_noise_name


class TestChooseNoiseName:
    def test_pure_dp_forces_laplace(self):
        choice = choose_noise_name(2.0, 1.0, 1.0, 0.0)
        assert choice.noise_name == "laplace"
        assert "pure DP" in choice.reason

    def test_small_delta_picks_laplace(self):
        # threshold = e^{-4}; delta far below
        choice = choose_noise_name(2.0, 1.0, 1.0, 1e-6)
        assert choice.noise_name == "laplace"

    def test_large_delta_picks_gaussian(self):
        choice = choose_noise_name(2.0, 1.0, 1.0, 0.1)
        assert choice.noise_name == "gaussian"

    def test_threshold_recorded(self):
        choice = choose_noise_name(3.0, 1.5, 1.0, 0.01)
        assert choice.threshold_delta == pytest.approx(math.exp(-4.0))

    def test_boundary_exactly_at_threshold_is_gaussian(self):
        # Eq. 3 is a strict inequality: delta == threshold -> gaussian
        threshold = math.exp(-4.0)
        assert choose_noise_name(2.0, 1.0, 1.0, threshold).noise_name == "gaussian"

    def test_sjlt_delta_e_minus_s(self):
        """For the SJLT (Delta1 = sqrt(s), Delta2 = 1): threshold e^-s."""
        s = 9
        choice = choose_noise_name(math.sqrt(s), 1.0, 1.0, 0.5e-5)
        assert choice.threshold_delta == pytest.approx(math.exp(-s))

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            choose_noise_name(1.0, 1.0, 1.0, -0.1)


class TestBuildMechanism:
    def test_laplace_uses_l1(self):
        mech = build_mechanism("laplace", 3.0, 1.0, 1.5, 0.0)
        assert mech.noise.scale == pytest.approx(2.0)
        assert mech.sensitivity == 3.0

    def test_gaussian_uses_l2(self):
        mech = build_mechanism("gaussian", 3.0, 1.0, 1.0, 1e-5)
        from repro.dp.mechanisms import classical_gaussian_sigma

        assert mech.noise.sigma == pytest.approx(classical_gaussian_sigma(1.0, 1.0, 1e-5))

    def test_analytic_gaussian_flag(self):
        loose = build_mechanism("gaussian", 1.0, 1.0, 1.0, 1e-5)
        tight = build_mechanism("gaussian", 1.0, 1.0, 1.0, 1e-5, analytic_gaussian=True)
        assert tight.noise.sigma < loose.noise.sigma

    def test_gaussian_requires_positive_delta(self):
        with pytest.raises(ValueError, match="approximate DP"):
            build_mechanism("gaussian", 1.0, 1.0, 1.0, 0.0)

    def test_discrete_variants(self):
        lap = build_mechanism("discrete_laplace", 2.0, 1.0, 1.0, 0.0)
        assert lap.noise.name == "discrete_laplace"
        assert lap.guarantee.is_pure
        gauss = build_mechanism("discrete_gaussian", 2.0, 1.0, 1.0, 1e-6)
        assert gauss.noise.name == "discrete_gaussian"

    def test_unknown_noise_rejected(self):
        with pytest.raises(ValueError, match="unknown noise"):
            build_mechanism("cauchy", 1.0, 1.0, 1.0, 0.0)
