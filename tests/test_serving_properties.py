"""Property tests for the serving layer's selection kernel.

``stable_smallest_k`` is the heart of every top-``k`` merge: it must
agree with ``np.argsort(values, kind="stable")[:k]`` for *every* input
— duplicates, ties across the ``k``-th boundary, ``±inf``, and NaN
(which a partition-based selection historically mishandled: a NaN
``k``-th pivot made the tie scan select nothing).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import stable_smallest_k

# floats with heavy mass on ties and non-finite values
_gnarly_floats = st.one_of(
    st.sampled_from([0.0, -0.0, 1.0, -1.0, np.inf, -np.inf, np.nan]),
    st.integers(min_value=-3, max_value=3).map(float),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
)


@given(
    values=st.lists(_gnarly_floats, min_size=0, max_size=64),
    k=st.integers(min_value=-2, max_value=80),
)
@settings(max_examples=400, deadline=None)
def test_matches_stable_argsort_on_any_input(values, k):
    values = np.asarray(values, dtype=np.float64)
    expected = np.argsort(values, kind="stable")[: max(k, 0)]
    np.testing.assert_array_equal(stable_smallest_k(values, k), expected)


def test_nan_kth_pivot_regression():
    # regression: with more NaNs than non-NaNs the k-th pivot is NaN;
    # `values == nan` selects nothing, so the old implementation
    # returned fewer than k indices
    values = np.array([np.nan, np.nan, 1.0])
    np.testing.assert_array_equal(stable_smallest_k(values, 2), [2, 0])
    values = np.array([np.nan, 5.0, np.nan, np.nan, 2.0])
    np.testing.assert_array_equal(stable_smallest_k(values, 4), [4, 1, 0, 2])


def test_all_nan_input_keeps_index_order():
    values = np.full(6, np.nan)
    np.testing.assert_array_equal(stable_smallest_k(values, 3), [0, 1, 2])


def test_infinities_order_before_nans():
    values = np.array([np.nan, np.inf, -np.inf, 0.0])
    np.testing.assert_array_equal(stable_smallest_k(values, 4), [2, 3, 1, 0])


def test_duplicates_across_boundary_prefer_earlier_index():
    values = np.array([2.0, 1.0, 1.0, 1.0, 0.5])
    np.testing.assert_array_equal(stable_smallest_k(values, 3), [4, 1, 2])
