"""Tests specific to the Achlioptas binary-coin transforms."""

import math

import numpy as np
import pytest

from repro.transforms.achlioptas import AchlioptasTransform


class TestDenseMode:
    def test_entries_are_pm_inv_sqrt_k(self):
        t = AchlioptasTransform(64, 16, seed=0)
        dense = t.to_dense()
        assert set(np.round(np.unique(dense) * 4.0, 9)) == {-1.0, 1.0}

    def test_column_norms_exactly_one(self):
        t = AchlioptasTransform(64, 16, seed=1)
        norms = np.linalg.norm(t.to_dense(), axis=0)
        assert np.allclose(norms, 1.0)

    def test_closed_form_sensitivity_l1(self):
        t = AchlioptasTransform(64, 16, seed=2)
        # all k entries of magnitude 1/sqrt(k): Delta_1 = sqrt(k)
        assert t.sensitivity(1) == pytest.approx(math.sqrt(16))

    def test_closed_form_sensitivity_l2(self):
        t = AchlioptasTransform(64, 16, seed=2)
        assert t.sensitivity(2) == pytest.approx(1.0)

    def test_closed_form_sensitivity_linf(self):
        t = AchlioptasTransform(64, 16, seed=2)
        assert t.sensitivity(np.inf) == pytest.approx(0.25)

    def test_closed_form_matches_scan(self):
        from repro.transforms import exact_sensitivity

        t = AchlioptasTransform(48, 16, seed=3)
        for p in (1, 2):
            assert t.sensitivity(p) == pytest.approx(exact_sensitivity(t, p))

    def test_has_closed_form_flag(self):
        assert AchlioptasTransform(8, 4, seed=0).has_closed_form_sensitivity


class TestSparseMode:
    def test_two_thirds_zeros(self):
        t = AchlioptasTransform(300, 90, seed=0, sparse=True)
        dense = t.to_dense()
        zero_fraction = float((dense == 0).mean())
        assert zero_fraction == pytest.approx(2.0 / 3.0, abs=0.02)

    def test_nonzero_magnitude(self):
        t = AchlioptasTransform(64, 27, seed=1, sparse=True)
        dense = t.to_dense()
        nonzero = np.abs(dense[dense != 0])
        assert np.allclose(nonzero, math.sqrt(3.0 / 27))

    def test_sparse_sensitivity_uses_scan(self):
        t = AchlioptasTransform(32, 16, seed=2, sparse=True)
        from repro.transforms import exact_sensitivity

        assert t.sensitivity(2) == pytest.approx(exact_sensitivity(t, 2))

    def test_lpp_in_expectation(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(48)
        ratios = []
        for seed in range(400):
            t = AchlioptasTransform(48, 24, seed=seed, sparse=True)
            y = t.apply(x)
            ratios.append(float(y @ y) / float(x @ x))
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.06)
