"""Tests for the private nearest-neighbour index."""

import numpy as np
import pytest

from repro.core.knn import PrivateNeighborIndex
from repro.core.sketch import PrivateSketcher, SketchConfig

_CONFIG = SketchConfig(input_dim=256, epsilon=8.0, output_dim=128, sparsity=4, seed=3)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _populated_index(sk, points):
    index = PrivateNeighborIndex()
    for label, point in points.items():
        index.add(sk.sketch(point, noise_rng=hash(label) % 2**32), label=label)
    return index


class TestIndexBasics:
    def test_len_and_labels(self):
        sk = _sketcher()
        index = PrivateNeighborIndex()
        index.add(sk.sketch(np.ones(256)))
        index.add(sk.sketch(np.zeros(256)), label="origin")
        assert len(index) == 2
        assert index.labels == [0, "origin"]

    def test_empty_query_rejected(self):
        sk = _sketcher()
        with pytest.raises(ValueError, match="empty"):
            PrivateNeighborIndex().query(sk.sketch(np.ones(256)))

    def test_incompatible_sketch_rejected(self):
        import dataclasses

        index = PrivateNeighborIndex()
        index.add(_sketcher().sketch(np.ones(256)))
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=4))
        with pytest.raises(ValueError, match="different configurations"):
            index.add(other.sketch(np.ones(256)))

    def test_top_validated(self):
        sk = _sketcher()
        index = PrivateNeighborIndex()
        index.add(sk.sketch(np.ones(256)))
        with pytest.raises(ValueError):
            index.query(sk.sketch(np.ones(256)), top=0)


class TestQueries:
    def test_nearest_is_closest_point(self):
        sk = _sketcher()
        rng = np.random.default_rng(0)
        base = 20.0 * rng.standard_normal(256)
        points = {
            "near": base + 0.5 * rng.standard_normal(256),
            "mid": base + 5.0 * rng.standard_normal(256),
            "far": base + 20.0 * rng.standard_normal(256),
        }
        index = _populated_index(sk, points)
        query = sk.sketch(base, noise_rng=99)
        ranked = [label for label, _ in index.query(query, top=3)]
        assert ranked[0] == "near"
        assert ranked[-1] == "far"

    def test_query_returns_sorted_estimates(self):
        sk = _sketcher()
        rng = np.random.default_rng(1)
        points = {i: rng.standard_normal(256) * (i + 1) for i in range(5)}
        index = _populated_index(sk, points)
        results = index.query(sk.sketch(points[0], noise_rng=7), top=5)
        estimates = [est for _, est in results]
        assert estimates == sorted(estimates)

    def test_query_matches_scalar_estimates(self):
        """The vectorised query path must score exactly like the scalar
        estimator it replaced."""
        from repro.core import estimators

        sk = _sketcher()
        rng = np.random.default_rng(4)
        sketches = [sk.sketch(rng.standard_normal(256), noise_rng=i) for i in range(4)]
        index = PrivateNeighborIndex()
        for i, sketch in enumerate(sketches):
            index.add(sketch, label=i)
        query = sk.sketch(rng.standard_normal(256), noise_rng=9)
        results = dict(index.query(query, top=4))
        for i, sketch in enumerate(sketches):
            assert results[i] == pytest.approx(
                estimators.estimate_sq_distance(sketch, query), abs=1e-8
            )

    def test_add_batch_and_query_batch(self):
        sk = _sketcher()
        rng = np.random.default_rng(5)
        X = rng.standard_normal((5, 256))
        batch = sk.sketch_batch(X, noise_rng=3, labels=tuple(f"p{i}" for i in range(5)))
        index = PrivateNeighborIndex()
        index.add_batch(batch)
        assert len(index) == 5
        assert index.labels == [f"p{i}" for i in range(5)]
        queries = sk.sketch_batch(X[:2], noise_rng=4)
        per_row = index.query_batch(queries, top=3)
        assert len(per_row) == 2
        for row, query in zip(per_row, queries):
            single = index.query(query, top=3)
            assert [label for label, _ in row] == [label for label, _ in single]
            for (_, est_row), (_, est_single) in zip(row, single):
                assert est_row == pytest.approx(est_single, abs=1e-8)

    def test_top_limits_results(self):
        sk = _sketcher()
        rng = np.random.default_rng(2)
        points = {i: rng.standard_normal(256) for i in range(6)}
        index = _populated_index(sk, points)
        assert len(index.query(sk.sketch(points[0], noise_rng=3), top=2)) == 2

    def test_query_radius(self):
        sk = _sketcher()
        rng = np.random.default_rng(3)
        base = 20.0 * rng.standard_normal(256)
        points = {
            "inside": base + 0.1 * rng.standard_normal(256),
            "outside": base + 50.0 * rng.standard_normal(256),
        }
        index = _populated_index(sk, points)
        query = sk.sketch(base, noise_rng=5)
        far_sq = float(np.sum((points["outside"] - base) ** 2))
        hits = index.query_radius(query, radius_sq=far_sq / 4.0)
        labels = [label for label, _ in hits]
        assert "inside" in labels
        assert "outside" not in labels

    def test_query_radius_validated(self):
        sk = _sketcher()
        index = PrivateNeighborIndex()
        index.add(sk.sketch(np.ones(256)))
        with pytest.raises(ValueError):
            index.query_radius(sk.sketch(np.ones(256)), radius_sq=-1.0)


class TestTieOrdering:
    """Ranking must stay *stable*: among tied estimates, insertion order wins.

    Exactly tied floats need care to construct: BLAS gemm may sum the
    same dot product in different orders depending on the operand shape
    and the output column's panel, so duplicated *generic* rows are only
    tied to within an ulp.  All-zero sketch rows, however, estimate to
    exactly ``||q||^2 - correction`` in every kernel, giving exact ties
    even across shards — which lets these tests pin the
    argpartition-based selection (and the cross-shard merge) to the
    behaviour of a stable full sort, including ties that straddle the
    ``top`` cut-off.
    """

    def _tied_index(self, sk, copies=5, shard_capacity=2):
        import dataclasses

        index = PrivateNeighborIndex(shard_capacity=shard_capacity)
        zero = dataclasses.replace(
            sk.sketch(np.ones(256), noise_rng=0), values=np.zeros(sk.output_dim)
        )
        for i in range(copies):
            index.add(zero, label=f"dup-{i}")
        return index

    def test_query_breaks_ties_by_insertion_order(self):
        sk = _sketcher()
        index = self._tied_index(sk)
        query = sk.sketch(np.arange(256, dtype=float), noise_rng=7)
        for top in (1, 2, 3, 5):
            labels = [label for label, _ in index.query(query, top=top)]
            assert labels == [f"dup-{i}" for i in range(top)]

    def test_query_batch_breaks_ties_by_insertion_order(self):
        sk = _sketcher()
        index = self._tied_index(sk)
        queries = sk.sketch_batch(
            np.arange(512, dtype=float).reshape(2, 256), noise_rng=8
        )
        for row in index.query_batch(queries, top=3):
            assert [label for label, _ in row] == ["dup-0", "dup-1", "dup-2"]

    def test_query_radius_keeps_tied_hits_in_insertion_order(self):
        sk = _sketcher()
        index = self._tied_index(sk)
        query = sk.sketch(np.arange(256, dtype=float), noise_rng=9)
        hits = index.query_radius(query, radius_sq=1e12)
        assert [label for label, _ in hits] == [f"dup-{i}" for i in range(5)]

    def test_mixed_ties_rank_after_closer_entries(self):
        import dataclasses

        sk = _sketcher()
        index = PrivateNeighborIndex(shard_capacity=2)
        query = sk.sketch(np.arange(256, dtype=float), noise_rng=3)
        near = dataclasses.replace(query, values=query.values.copy())
        tied = dataclasses.replace(query, values=np.zeros(sk.output_dim))
        index.add(tied, label="tie-a")
        index.add(near, label="near")
        index.add(tied, label="tie-b")
        labels = [label for label, _ in index.query(query, top=3)]
        assert labels == ["near", "tie-a", "tie-b"]
