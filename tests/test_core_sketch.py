"""Tests for SketchConfig, PrivateSketcher and PrivateSketch."""

import dataclasses
import math

import numpy as np
import pytest

from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchConfig, rebuild_noise
from repro.workloads import pair_at_distance


class TestSketchConfig:
    def test_defaults_valid(self):
        config = SketchConfig(input_dim=128, epsilon=1.0)
        assert config.transform == "sjlt"
        assert config.delta == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_dim": 0, "epsilon": 1.0},
            {"input_dim": 8, "epsilon": 0.0},
            {"input_dim": 8, "epsilon": 1.0, "delta": 1.0},
            {"input_dim": 8, "epsilon": 1.0, "alpha": 0.6},
            {"input_dim": 8, "epsilon": 1.0, "beta": 0.0},
            {"input_dim": 8, "epsilon": 1.0, "transform": "zzz"},
            {"input_dim": 8, "epsilon": 1.0, "noise": "zzz"},
            {"input_dim": 8, "epsilon": 1.0, "perturbation": "middle"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            SketchConfig(**kwargs)

    def test_digest_stable(self):
        a = SketchConfig(input_dim=128, epsilon=1.0)
        b = SketchConfig(input_dim=128, epsilon=1.0)
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_seed(self):
        a = SketchConfig(input_dim=128, epsilon=1.0, seed=0)
        b = SketchConfig(input_dim=128, epsilon=1.0, seed=1)
        assert a.digest() != b.digest()

    def test_digest_sensitive_to_noise(self):
        a = SketchConfig(input_dim=128, epsilon=1.0, noise="laplace")
        b = SketchConfig(input_dim=128, epsilon=1.0, noise="discrete_laplace")
        assert a.digest() != b.digest()


class TestDimensionResolution:
    def test_defaults_from_alpha_beta(self):
        sk = PrivateSketcher(SketchConfig(input_dim=256, epsilon=1.0, alpha=0.3, beta=0.05))
        assert sk.output_dim % sk.sparsity == 0
        assert sk.sparsity >= 1

    def test_explicit_dims_respected(self):
        sk = PrivateSketcher(SketchConfig(input_dim=256, epsilon=1.0, output_dim=32, sparsity=4))
        assert sk.output_dim == 32
        assert sk.sparsity == 4

    def test_k_rounded_up_for_divisibility(self):
        sk = PrivateSketcher(SketchConfig(input_dim=256, epsilon=1.0, output_dim=30, sparsity=4))
        assert sk.output_dim == 32

    def test_sparsity_rejected_for_dense_transform(self):
        with pytest.raises(ValueError, match="no sparsity"):
            PrivateSketcher(
                SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="gaussian",
                             noise="gaussian", sparsity=4)
            )

    def test_gaussian_default_k(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="gaussian",
                         noise="gaussian", alpha=0.3, beta=0.05)
        )
        assert sk.sparsity is None
        assert sk.output_dim >= 1


class TestNoiseResolution:
    def test_auto_pure_dp_is_laplace(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        assert sk.noise.name == "laplace"
        assert sk.guarantee.is_pure
        assert sk.choice is not None

    def test_auto_large_delta_is_gaussian(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=0.2, output_dim=16, sparsity=4)
        )
        assert sk.noise.name == "gaussian"

    def test_laplace_scale_uses_sqrt_s(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=2.0, output_dim=16, sparsity=4))
        assert sk.noise.scale == pytest.approx(math.sqrt(4) / 2.0)

    def test_pinned_noise_respected(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4,
                         noise="discrete_laplace")
        )
        assert sk.noise.name == "discrete_laplace"
        assert sk.choice is None

    def test_input_perturbation_sensitivity_is_one(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="fjlt",
                         noise="gaussian")
        )
        assert sk.perturbation == "input"
        assert sk.sensitivities.l1 == 1.0
        assert sk.sensitivities.l2 == 1.0

    def test_output_perturbation_fjlt_scans(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="fjlt",
                         noise="gaussian", perturbation="output")
        )
        assert not sk.sensitivities.closed_form
        assert sk.initialization_seconds >= 0.0

    def test_sjlt_closed_form_no_init_cost(self):
        sk = PrivateSketcher(SketchConfig(input_dim=4096, epsilon=1.0, output_dim=64, sparsity=8))
        assert sk.sensitivities.closed_form


class TestSketching:
    def _sketcher(self):
        return PrivateSketcher(
            SketchConfig(input_dim=128, epsilon=1.0, output_dim=32, sparsity=4)
        )

    def test_sketch_shape(self):
        sk = self._sketcher()
        s = sk.sketch(np.ones(128))
        assert s.values.shape == (32,)

    def test_sketch_metadata(self):
        sk = self._sketcher()
        s = sk.sketch(np.ones(128), label="alice")
        assert s.label == "alice"
        assert s.config_digest == sk.config.digest()
        assert s.guarantee == sk.guarantee
        assert s.noise_second_moment == pytest.approx(sk.noise.second_moment)

    def test_noise_seed_reproducible(self):
        sk = self._sketcher()
        a = sk.sketch(np.ones(128), noise_rng=5)
        b = sk.sketch(np.ones(128), noise_rng=5)
        assert np.allclose(a.values, b.values)

    def test_fresh_noise_differs(self):
        sk = self._sketcher()
        a = sk.sketch(np.ones(128))
        b = sk.sketch(np.ones(128))
        assert not np.allclose(a.values, b.values)

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            self._sketcher().sketch(np.ones(100))

    def test_sketch_sparse_consistent(self):
        sk = self._sketcher()
        idx = np.array([3, 50, 100])
        vals = np.array([1.0, -2.0, 0.5])
        x = np.zeros(128)
        x[idx] = vals
        a = sk.sketch(x, noise_rng=9)
        b = sk.sketch_sparse(idx, vals, noise_rng=9)
        assert np.allclose(a.values, b.values)

    def test_sketch_sparse_rejected_for_input_perturbation(self):
        sk = PrivateSketcher(
            SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="fjlt",
                         noise="gaussian")
        )
        with pytest.raises(ValueError, match="output perturbation"):
            sk.sketch_sparse(np.array([0]), np.array([1.0]))

    def test_project_is_nonprivate(self):
        sk = self._sketcher()
        x = np.ones(128)
        assert np.allclose(sk.project(x), sk.transform.apply(x))


class TestEstimationRoundtrip:
    def test_distance_estimate_close(self):
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(256, 8.0, rng)
        config = SketchConfig(input_dim=256, epsilon=8.0, output_dim=128, sparsity=4)
        estimates = []
        for seed in range(300):
            sk = PrivateSketcher(dataclasses.replace(config, seed=seed))
            estimates.append(
                sk.estimate_sq_distance(sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng))
            )
        assert np.mean(estimates) == pytest.approx(64.0, rel=0.15)

    def test_distance_clipped_nonnegative(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=0.5, output_dim=16, sparsity=4))
        x = np.zeros(64)
        d = sk.estimate_distance(sk.sketch(x, noise_rng=1), sk.sketch(x, noise_rng=2))
        assert d >= 0.0

    def test_theoretical_variance_positive_and_monotone_in_distance(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        assert 0 < sk.theoretical_variance(1.0) < sk.theoretical_variance(100.0)

    def test_recommended_output_dim(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        assert sk.recommended_output_dim(1000.0) >= 1


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        original = sk.sketch(np.ones(64), noise_rng=3, label="p1")
        restored = PrivateSketch.from_bytes(original.to_bytes())
        assert np.allclose(restored.values, original.values)
        assert restored.label == "p1"
        assert restored.config_digest == original.config_digest
        assert restored.guarantee == original.guarantee
        assert restored.noise_spec == original.noise_spec

    def test_restored_sketch_estimates_identically(self):
        from repro.core.estimators import estimate_sq_distance

        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        a = sk.sketch(np.ones(64), noise_rng=1)
        b = sk.sketch(2 * np.ones(64), noise_rng=2)
        direct = estimate_sq_distance(a, b)
        via_bytes = estimate_sq_distance(
            PrivateSketch.from_bytes(a.to_bytes()), PrivateSketch.from_bytes(b.to_bytes())
        )
        assert direct == pytest.approx(via_bytes)

    def test_corrupt_payload_rejected(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        blob = sk.sketch(np.ones(64)).to_bytes()
        with pytest.raises(ValueError):
            PrivateSketch.from_bytes(blob[:-8])

    def test_rebuild_noise(self):
        sk = PrivateSketcher(SketchConfig(input_dim=64, epsilon=1.0, output_dim=16, sparsity=4))
        sketch = sk.sketch(np.ones(64))
        noise = rebuild_noise(sketch)
        assert noise.second_moment == pytest.approx(sk.noise.second_moment)
