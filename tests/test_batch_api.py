"""Property-based and edge-case tests for the batch sketching API.

Covers the contract corners: empty and single-row batches, label
handling, coercion of non-contiguous / float32 inputs by the
``as_float_matrix`` validation, incompatibility errors, indexing and
serialization of :class:`SketchBatch`.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchBatch, SketchConfig
from repro.hashing import prg
from repro.utils.validation import as_float_matrix

_DIM = 16
_OUT = 8
_CONFIG = SketchConfig(input_dim=_DIM, epsilon=1.0, output_dim=_OUT, sparsity=2)
_SKETCHER = PrivateSketcher(_CONFIG)

finite_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: arrays(
        np.float64,
        (n, _DIM),
        elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, width=64),
    )
)


class TestBatchProperties:
    @given(X=finite_matrices, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_batch_rows_equal_scalar_sketches(self, X, seed):
        batch = _SKETCHER.sketch_batch(X, noise_rng=prg.derive_rng(seed, "prop"))
        generator = prg.derive_rng(seed, "prop")
        for i in range(X.shape[0]):
            scalar = _SKETCHER.sketch(X[i], noise_rng=generator)
            np.testing.assert_allclose(batch.values[i], scalar.values, rtol=0, atol=1e-9)

    @given(X=finite_matrices, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_matrix_shape_and_symmetry(self, X, seed):
        batch = _SKETCHER.sketch_batch(X, noise_rng=seed)
        matrix = estimators.pairwise_sq_distances(batch)
        n = X.shape[0]
        assert matrix.shape == (n, n)
        np.testing.assert_array_equal(matrix, matrix.T)
        np.testing.assert_array_equal(np.diag(matrix), 0.0)

    @given(X=finite_matrices)
    @settings(max_examples=20, deadline=None)
    def test_dtype_and_layout_do_not_change_results(self, X):
        reference = _SKETCHER.sketch_batch(X, noise_rng=3).values
        fortran = _SKETCHER.sketch_batch(np.asfortranarray(X), noise_rng=3).values
        np.testing.assert_array_equal(fortran, reference)


class TestInputCoercion:
    def test_float32_input_coerced_to_float64(self):
        X = np.random.default_rng(0).standard_normal((4, _DIM)).astype(np.float32)
        batch = _SKETCHER.sketch_batch(X, noise_rng=1)
        assert batch.values.dtype == np.float64
        expected = _SKETCHER.sketch_batch(X.astype(np.float64), noise_rng=1)
        np.testing.assert_array_equal(batch.values, expected.values)

    def test_non_contiguous_view_coerced(self):
        base = np.random.default_rng(1).standard_normal((8, _DIM))
        strided = base[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        batch = _SKETCHER.sketch_batch(strided, noise_rng=2)
        expected = _SKETCHER.sketch_batch(np.ascontiguousarray(strided), noise_rng=2)
        np.testing.assert_array_equal(batch.values, expected.values)

    def test_validator_returns_contiguous_float64(self):
        out = as_float_matrix(np.asfortranarray(np.ones((3, _DIM), dtype=np.float32)), _DIM)
        assert out.flags["C_CONTIGUOUS"] and out.dtype == np.float64

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            _SKETCHER.sketch_batch(np.ones(_DIM))

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            _SKETCHER.sketch_batch(np.ones((2, 2, _DIM)))

    def test_wrong_row_dimension_rejected(self):
        with pytest.raises(ValueError, match="row dimension"):
            _SKETCHER.sketch_batch(np.ones((3, _DIM + 1)))

    def test_non_finite_entries_rejected(self):
        X = np.ones((2, _DIM))
        X[1, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            _SKETCHER.sketch_batch(X)


class TestEmptyAndSingleRow:
    def test_empty_batch_round_trips(self):
        batch = _SKETCHER.sketch_batch(np.empty((0, _DIM)))
        assert len(batch) == 0
        assert list(batch) == []
        assert estimators.pairwise_sq_distances(batch).shape == (0, 0)
        assert estimators.sq_norms(batch).shape == (0,)
        restored = SketchBatch.from_bytes(batch.to_bytes())
        assert len(restored) == 0

    def test_empty_cross_shapes(self):
        empty = _SKETCHER.sketch_batch(np.empty((0, _DIM)))
        full = _SKETCHER.sketch_batch(np.ones((3, _DIM)), noise_rng=0)
        assert estimators.cross_sq_distances(empty, full).shape == (0, 3)
        assert estimators.cross_sq_distances(full, empty).shape == (3, 0)

    def test_single_row_batch(self):
        batch = _SKETCHER.sketch_batch(np.ones((1, _DIM)), noise_rng=1)
        assert len(batch) == 1
        matrix = estimators.pairwise_sq_distances(batch)
        np.testing.assert_array_equal(matrix, np.zeros((1, 1)))
        assert estimators.sq_norms(batch).shape == (1,)


class TestCompatibility:
    def test_mismatched_config_digest_raises(self):
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=99))
        a = _SKETCHER.sketch_batch(np.ones((2, _DIM)), noise_rng=0)
        b = other.sketch_batch(np.ones((2, _DIM)), noise_rng=0)
        with pytest.raises(ValueError, match="different configurations"):
            estimators.check_compatible(a, b)
        with pytest.raises(ValueError, match="different configurations"):
            estimators.cross_sq_distances(a, b)

    def test_from_sketches_rejects_mixed_configs(self):
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=99))
        with pytest.raises(ValueError, match="different configurations"):
            SketchBatch.from_sketches(
                [_SKETCHER.sketch(np.ones(_DIM)), other.sketch(np.ones(_DIM))]
            )

    def test_from_sketches_rejects_empty_list(self):
        with pytest.raises(ValueError, match="zero sketches"):
            SketchBatch.from_sketches([])


class TestSketchBatchContainer:
    def _batch(self):
        X = np.random.default_rng(5).standard_normal((4, _DIM))
        return _SKETCHER.sketch_batch(X, noise_rng=6, labels=("a", "b", "c", "d"))

    def test_int_indexing_and_negative_indexing(self):
        batch = self._batch()
        assert batch[1].label == "b"
        np.testing.assert_array_equal(batch[-1].values, batch.values[3])
        with pytest.raises(IndexError):
            batch.row(4)

    def test_slice_indexing_gives_sub_batch(self):
        batch = self._batch()
        sub = batch[1:3]
        assert isinstance(sub, SketchBatch)
        assert len(sub) == 2
        assert sub.labels == ("b", "c")
        np.testing.assert_array_equal(sub.values, batch.values[1:3])

    def test_iteration_yields_private_sketches(self):
        batch = self._batch()
        rows = list(batch)
        assert [r.label for r in rows] == ["a", "b", "c", "d"]
        for i, row in enumerate(rows):
            assert estimators.estimate_sq_distance(row, batch[i]) is not None

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            _SKETCHER.sketch_batch(np.ones((3, _DIM)), labels=("only-one",))

    def test_serialization_roundtrip(self):
        batch = self._batch()
        restored = SketchBatch.from_bytes(batch.to_bytes())
        np.testing.assert_array_equal(restored.values, batch.values)
        assert restored.labels == batch.labels
        assert restored.config_digest == batch.config_digest
        assert restored.guarantee == batch.guarantee

    def test_from_sketches_roundtrip(self):
        batch = self._batch()
        rebuilt = SketchBatch.from_sketches(list(batch))
        np.testing.assert_array_equal(rebuilt.values, batch.values)
        assert rebuilt.labels == batch.labels
