"""Unit tests for the fast Walsh-Hadamard transform."""

import numpy as np
import pytest
try:  # scipy is an optional dependency: the CI matrix has a no-scipy leg
    from scipy.linalg import hadamard as scipy_hadamard
except ImportError:  # pragma: no cover - exercised only without scipy
    scipy_hadamard = None

from repro.transforms.hadamard import (
    fwht,
    hadamard_matrix,
    is_power_of_two,
    next_power_of_two,
    pad_to_power_of_two,
)


class TestPowerOfTwoHelpers:
    @pytest.mark.parametrize("n,expected", [(1, True), (2, True), (64, True), (3, False), (0, False), (-4, False), (6, False)])
    def test_is_power_of_two(self, n, expected):
        assert is_power_of_two(n) is expected

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (64, 64), (65, 128)])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_next_power_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestHadamardMatrix:
    @pytest.mark.skipif(scipy_hadamard is None, reason="requires scipy")
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32])
    def test_matches_scipy(self, n):
        assert np.array_equal(hadamard_matrix(n), scipy_hadamard(n).astype(float))

    def test_orthogonality(self):
        h = hadamard_matrix(16, normalized=True)
        assert np.allclose(h @ h.T, np.eye(16))

    def test_sign_convention_matches_paper(self):
        # H[f, j] = (-1)^{<f-1, j-1>} / sqrt(d) with 1-based paper indices,
        # i.e. 0-based bit inner products.
        d = 8
        h = hadamard_matrix(d, normalized=True)
        for f in range(d):
            for j in range(d):
                bits = bin(f & j).count("1")
                assert h[f, j] == pytest.approx((-1.0) ** bits / np.sqrt(d))

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            hadamard_matrix(6)


class TestFWHT:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_matches_matrix_multiply(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        assert np.allclose(fwht(x), hadamard_matrix(n) @ x)

    def test_normalized_is_involution(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(128)
        assert np.allclose(fwht(fwht(x, normalized=True), normalized=True), x)

    def test_normalized_preserves_norm(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(64)
        y = fwht(x, normalized=True)
        assert np.linalg.norm(y) == pytest.approx(np.linalg.norm(x))

    def test_batch_matches_loop(self):
        rng = np.random.default_rng(2)
        batch = rng.standard_normal((5, 32))
        stacked = np.stack([fwht(batch[i]) for i in range(5)])
        assert np.allclose(fwht(batch), stacked)

    def test_input_not_mutated(self):
        x = np.ones(8)
        fwht(x)
        assert np.array_equal(x, np.ones(8))

    def test_rejects_non_power_length(self):
        with pytest.raises(ValueError):
            fwht(np.ones(6))

    def test_linearity(self):
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal(32), rng.standard_normal(32)
        assert np.allclose(fwht(x + 2 * y), fwht(x) + 2 * fwht(y))


class TestPadding:
    def test_pads_to_next_power(self):
        out = pad_to_power_of_two(np.ones(5))
        assert out.shape == (8,)
        assert np.array_equal(out[:5], np.ones(5))
        assert np.array_equal(out[5:], np.zeros(3))

    def test_no_copy_needed_when_already_power(self):
        x = np.ones(8)
        assert pad_to_power_of_two(x) is x

    def test_batch_padding(self):
        out = pad_to_power_of_two(np.ones((3, 5)))
        assert out.shape == (3, 8)
