"""The shard-parallel query plane: policies, prefilter, concurrency.

The contract under test is strict: whatever the
:class:`~repro.serving.execution.ExecutionPolicy` — serial, thread
pool of any size, prefilter on or off — every query type returns
**bit-identical** results, and concurrent readers always observe a
consistent prefix of a store that a writer keeps appending to.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.core import estimators
from repro.serving import (
    CrossQuery,
    DistanceService,
    ExecutionPolicy,
    PairwiseQuery,
    RadiusQuery,
    ShardedSketchStore,
    TopKQuery,
)
from repro.core.sketch import PrivateSketcher, SketchConfig
from tests.helpers import (
    execute_cross as _cross,
    execute_radius as _radius,
    execute_top_k as _top_k,
    execute_top_k_batch as _top_k_batch,
    scan_jitter_atol,
)

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=seed, labels=labels)


def _store(sk, n=60, shard_capacity=7, seed=21):
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(_batch(sk, n, seed))
    return store


class TestExecutionPolicy:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionPolicy(workers=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SERVING_PREFILTER", raising=False)
        assert ExecutionPolicy.from_env() == ExecutionPolicy(workers=1, prefilter=True)
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "4")
        monkeypatch.setenv("REPRO_SERVING_PREFILTER", "0")
        assert ExecutionPolicy.from_env() == ExecutionPolicy(workers=4, prefilter=False)

    def test_default_service_policy_comes_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "3")
        service = DistanceService(ShardedSketchStore())
        assert service.policy.workers == 3

    def test_malformed_env_worker_count_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "four")
        with pytest.raises(ValueError, match="REPRO_SERVING_WORKERS"):
            ExecutionPolicy.from_env()

    def test_neighbor_index_releases_its_pool(self):
        from repro.core.knn import PrivateNeighborIndex

        sk = _sketcher()
        with PrivateNeighborIndex(
            shard_capacity=4, policy=ExecutionPolicy(workers=4)
        ) as index:
            index.add_batch(_batch(sk, 12, 1))
            serial = PrivateNeighborIndex(shard_capacity=4)
            serial.add_batch(_batch(sk, 12, 1))
            query = sk.sketch(np.ones(128), noise_rng=0)
            assert index.query(query, 5) == serial.query(query, 5)
            pool = index._service._pool
            assert pool is not None  # the parallel query spun it up
        assert index._service._pool is None  # context exit released it


class TestParallelSerialBitEquality:
    """Every policy must reproduce the serial results exactly."""

    POLICIES = [
        ExecutionPolicy(workers=2, prefilter=False),
        ExecutionPolicy(workers=2, prefilter=True),
        ExecutionPolicy(workers=4, prefilter=False),
        ExecutionPolicy(workers=4, prefilter=True),
        ExecutionPolicy(workers=8, prefilter=True),
        ExecutionPolicy(workers=1, prefilter=True),
    ]

    @pytest.mark.parametrize("policy", POLICIES, ids=str)
    def test_top_k_and_batch(self, policy):
        sk = _sketcher()
        store = _store(sk)
        serial = DistanceService(store, ExecutionPolicy(workers=1, prefilter=False))
        queries = _batch(sk, 5, 33)
        with DistanceService(store, policy) as service:
            for k in (1, 3, 11, 60, 100):
                assert _top_k_batch(service, queries, k) == _top_k_batch(
                    serial, queries, k
                )
            single = queries.row(0)
            assert _top_k(service, single, 7) == _top_k(serial, single, 7)

    @pytest.mark.parametrize("policy", POLICIES, ids=str)
    def test_radius(self, policy):
        sk = _sketcher()
        store = _store(sk)
        serial = DistanceService(store, ExecutionPolicy(workers=1, prefilter=False))
        query = sk.sketch(np.ones(128), noise_rng=3)
        flat = _cross(serial, query)[0]
        with DistanceService(store, policy) as service:
            for cutoff in (0.0, float(np.min(flat)), float(np.median(flat)), 1e12):
                assert _radius(service, query, cutoff) == _radius(
                    serial, query, cutoff
                )

    @pytest.mark.parametrize("policy", POLICIES, ids=str)
    def test_cross_and_pairwise_submatrix(self, policy):
        sk = _sketcher()
        store = _store(sk)
        serial = DistanceService(store, ExecutionPolicy(workers=1, prefilter=False))
        queries = _batch(sk, 4, 9)
        picks = PairwiseQuery(indices=(0, 13, 14, 41, 59))
        with DistanceService(store, policy) as service:
            np.testing.assert_array_equal(
                _cross(service, queries), _cross(serial, queries)
            )
            np.testing.assert_array_equal(
                service.execute(picks).payload, serial.execute(picks).payload
            )

    def test_parallel_more_workers_than_shards(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=64)
        store.add_batch(_batch(sk, 10, 1))  # a single shard
        serial = DistanceService(store, ExecutionPolicy(workers=1))
        with DistanceService(store, ExecutionPolicy(workers=16)) as service:
            query = sk.sketch(np.zeros(128), noise_rng=0)
            assert _top_k(service, query, 5) == _top_k(serial, query, 5)


def _norm_separated_store(sk, scale=1e6):
    """Four shards whose rows sit at wildly different norms.

    Shard ``j`` holds rows near ``j * scale`` in the first sketch
    coordinate, so the reverse-triangle bound separates shards by
    ~``scale^2`` — any sane prefilter must skip the far ones.
    """
    base = _batch(sk, 32, 0)
    values = np.zeros((32, 64))
    values[:, 0] = np.repeat(np.arange(4.0) * scale, 8) + np.linspace(0, 1, 32)
    batch = dataclasses.replace(base, values=values, labels=())
    store = ShardedSketchStore(shard_capacity=8)
    store.add_batch(batch)
    query = dataclasses.replace(base.row(0), values=np.zeros(64))
    return store, query


class TestNormBoundPrefilter:
    def _counting(self, monkeypatch):
        calls = []
        real = estimators.cross_sq_distances_from_parts

        def counted(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            "repro.core.estimators.cross_sq_distances_from_parts", counted
        )
        return calls

    def test_top_k_skips_hopeless_shards(self, monkeypatch):
        sk = _sketcher()
        store, query = _norm_separated_store(sk)
        want = DistanceService(store, ExecutionPolicy(prefilter=False)).execute(
            TopKQuery(queries=query, k=3)
        )
        calls = self._counting(monkeypatch)
        got = DistanceService(store, ExecutionPolicy(prefilter=True)).execute(
            TopKQuery(queries=query, k=3)
        )
        assert got.payload == want.payload  # identical results...
        assert len(calls) < store.n_shards  # ...from strictly less work
        # the stats agree with the observed calls, and with the PR 3
        # monkeypatch counters: pruned + visited covers every shard
        assert got.stats.shards_visited == len(calls)
        assert got.stats.shards_pruned == store.n_shards - len(calls)
        assert want.stats.shards_pruned == 0

    def test_radius_skips_out_of_range_shards(self, monkeypatch):
        sk = _sketcher()
        store, query = _norm_separated_store(sk)
        cutoff = 1e9  # covers shard 0 only (others are ~1e12 away)
        want = DistanceService(store, ExecutionPolicy(prefilter=False)).execute(
            RadiusQuery(query=query, radius_sq=cutoff)
        )
        calls = self._counting(monkeypatch)
        got = DistanceService(store, ExecutionPolicy(prefilter=True)).execute(
            RadiusQuery(query=query, radius_sq=cutoff)
        )
        assert got.payload == want.payload
        assert len(calls) == 1
        assert got.stats.shards_visited == 1
        assert got.stats.shards_pruned == store.n_shards - 1

    def test_prefilter_never_changes_random_workloads(self):
        # property-style: across many random stores/queries/ks the
        # filtered and unfiltered answers are identical, ties included
        sk = _sketcher()
        rng = np.random.default_rng(7)
        for trial in range(10):
            store = _store(
                sk,
                n=int(rng.integers(5, 40)),
                shard_capacity=int(rng.integers(2, 9)),
                seed=100 + trial,
            )
            on = DistanceService(store, ExecutionPolicy(prefilter=True))
            off = DistanceService(store, ExecutionPolicy(prefilter=False))
            queries = _batch(sk, 3, 200 + trial)
            k = int(rng.integers(1, 8))
            assert _top_k_batch(on, queries, k) == _top_k_batch(off, queries, k)
            cutoff = float(np.median(_cross(off, queries.row(0))))
            assert _radius(on, queries.row(0), cutoff) == _radius(
                off, queries.row(0), cutoff
            )


class TestConcurrentAppendsDuringQueries:
    def test_readers_see_consistent_prefixes(self):
        sk = _sketcher()
        chunks = [_batch(sk, 25, 300 + i) for i in range(8)]
        full = ShardedSketchStore(shard_capacity=16)
        for chunk in chunks:
            full.add_batch(chunk)
        queries = _batch(sk, 2, 99)
        # ground truth: the cross matrix over the final store; any
        # consistent prefix of width w must equal its first w columns
        reference = _cross(
            DistanceService(full, ExecutionPolicy(workers=1)), queries
        )

        store = ShardedSketchStore(shard_capacity=16)
        store.add_batch(chunks[0])
        # exact on f8; float32-scanned stores (e.g. the f4 CI leg) admit
        # GEMM jitter between partial- and full-shard block shapes
        jitter = (
            0.0
            if store.storage.name == "f8"
            else scan_jitter_atol(
                store, queries.values, np.concatenate([c.values for c in chunks])
            )
        )
        service = DistanceService(store, ExecutionPolicy(workers=4))
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            # a snapshot may land mid-append (batches fill shards in
            # slices), so *any* width can be observed — but whatever the
            # width, the columns must equal the reference prefix exactly
            while not stop.is_set():
                got = _cross(service, queries)
                if not np.allclose(
                    got, reference[:, : got.shape[1]], rtol=0.0, atol=jitter
                ):
                    errors.append(f"prefix of width {got.shape[1]} is inconsistent")
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for chunk in chunks[1:]:
                store.add_batch(chunk)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            service.close()
        assert errors == []
        np.testing.assert_array_equal(_cross(service, queries), reference)

    def test_top_k_during_appends_matches_a_prefix(self):
        sk = _sketcher()
        chunks = [_batch(sk, 10, 400 + i) for i in range(10)]
        full = ShardedSketchStore(shard_capacity=8)
        for chunk in chunks:
            full.add_batch(chunk)
        query = sk.sketch(np.ones(128), noise_rng=5)
        flat = _cross(DistanceService(full, ExecutionPolicy(workers=1)), query)[0]

        def expected(width, k):
            order = np.argsort(flat[:width], kind="stable")[:k]
            return [(int(i), max(float(flat[i]), 0.0)) for i in order]

        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(chunks[0])
        # exact on f8; float32 scans admit GEMM jitter on the estimates
        # (labels must still match some prefix ranking exactly)
        jitter = (
            0.0
            if store.storage.name == "f8"
            else scan_jitter_atol(
                store, query.values, np.concatenate([c.values for c in chunks])
            )
        )

        def matches(got, want):
            return len(got) == len(want) and all(
                got_label == want_label and abs(got_est - want_est) <= jitter
                for (got_label, got_est), (want_label, want_est) in zip(got, want)
            )

        service = DistanceService(store, ExecutionPolicy(workers=2))
        results = []
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                got = _top_k(service, query, 5)
                results.append(got)
                if not any(matches(got, expected(w, 5)) for w in range(1, 101)):
                    errors.append(f"result matches no prefix: {got}")
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for chunk in chunks[1:]:
                store.add_batch(chunk)
        finally:
            stop.set()
            thread.join()
            service.close()
        assert errors == []
        assert results  # the reader actually ran
        assert _top_k(service, query, 5) == expected(100, 5)
