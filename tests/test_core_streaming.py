"""Tests for streaming sketches (Theorem 3, item 4)."""

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.core.streaming import StreamingSketch
from repro.workloads import UpdateStream, materialize_stream

_CONFIG = SketchConfig(input_dim=256, epsilon=1.0, output_dim=32, sparsity=4)


def _sketcher():
    return PrivateSketcher(_CONFIG)


class TestUpdates:
    def test_single_update_matches_column(self):
        sk = _sketcher()
        streaming = StreamingSketch(sk)
        streaming.update(10, 2.5)
        x = np.zeros(256)
        x[10] = 2.5
        assert np.allclose(streaming.current_projection(), sk.project(x))

    def test_updates_accumulate(self):
        sk = _sketcher()
        streaming = StreamingSketch(sk)
        streaming.update(3, 1.0)
        streaming.update(3, 1.0)
        streaming.update(7, -0.5)
        x = np.zeros(256)
        x[3], x[7] = 2.0, -0.5
        assert np.allclose(streaming.current_projection(), sk.project(x))

    def test_deletion_cancels_insertion(self):
        streaming = StreamingSketch(_sketcher())
        streaming.update(5, 1.0)
        streaming.update(5, -1.0)
        assert np.allclose(streaming.current_projection(), 0.0)

    def test_update_batch(self):
        sk = _sketcher()
        a = StreamingSketch(sk)
        b = StreamingSketch(sk)
        idx = np.array([1, 2, 3])
        deltas = np.array([1.0, -1.0, 2.0])
        a.update_batch(idx, deltas)
        for i, d in zip(idx, deltas):
            b.update(int(i), float(d))
        assert np.allclose(a.current_projection(), b.current_projection())

    def test_update_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            StreamingSketch(_sketcher()).update_batch(np.array([1, 2]), np.array([1.0]))

    def test_index_validated(self):
        with pytest.raises(ValueError):
            StreamingSketch(_sketcher()).update(256, 1.0)

    def test_n_updates_counted(self):
        streaming = StreamingSketch(_sketcher())
        streaming.update(0, 1.0)
        streaming.update(1, 1.0)
        assert streaming.n_updates == 2

    def test_update_cost_is_sparsity(self):
        assert StreamingSketch(_sketcher()).update_cost == 4


class TestStreamEquivalence:
    def test_stream_equals_batch(self):
        sk = _sketcher()
        stream = UpdateStream(dim=256, n_updates=3000, seed=1, deletions=0.3)
        streaming = StreamingSketch(sk)
        streaming.consume(stream)
        vec = materialize_stream(stream, 256)
        assert np.allclose(streaming.current_projection(), sk.project(vec), atol=1e-9)

    def test_replaying_stream_is_deterministic(self):
        stream = UpdateStream(dim=256, n_updates=100, seed=3)
        assert list(stream) == list(stream)


class TestRelease:
    def test_release_adds_noise(self):
        streaming = StreamingSketch(_sketcher())
        streaming.update(0, 1.0)
        released = streaming.release(noise_rng=1)
        assert not np.allclose(released.values, streaming.current_projection())

    def test_release_estimates_against_batch_sketch(self):
        sk = _sketcher()
        stream = UpdateStream(dim=256, n_updates=500, seed=2)
        streaming = StreamingSketch(sk)
        streaming.consume(stream)
        released = streaming.release(noise_rng=7)
        batch = sk.sketch(materialize_stream(stream, 256), noise_rng=7)
        assert np.allclose(released.values, batch.values)

    def test_repeated_releases_fresh_noise(self):
        streaming = StreamingSketch(_sketcher())
        streaming.update(0, 1.0)
        a = streaming.release()
        b = streaming.release()
        assert not np.allclose(a.values, b.values)

    def test_release_carries_guarantee(self):
        sk = _sketcher()
        streaming = StreamingSketch(sk)
        assert streaming.release().guarantee == sk.guarantee

    def test_input_perturbation_unsupported(self):
        config = SketchConfig(input_dim=64, epsilon=1.0, delta=1e-5, transform="fjlt",
                              noise="gaussian")
        with pytest.raises(ValueError, match="output perturbation"):
            StreamingSketch(PrivateSketcher(config))
