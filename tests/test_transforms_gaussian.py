"""Tests specific to the i.i.d. Gaussian transform (Kenthapadi's P)."""

import math

import numpy as np
import pytest

from repro.transforms.gaussian import GaussianTransform


class TestEntries:
    def test_entry_variance_is_one_over_k(self):
        t = GaussianTransform(400, 100, seed=0)
        m = t.to_dense()
        assert m.var() == pytest.approx(1.0 / 100, rel=0.05)

    def test_entries_zero_mean(self):
        t = GaussianTransform(400, 100, seed=1)
        assert abs(t.to_dense().mean()) < 0.002

    def test_to_dense_returns_copy(self):
        t = GaussianTransform(16, 8, seed=0)
        dense = t.to_dense()
        dense[0, 0] = 999.0
        assert t.to_dense()[0, 0] != 999.0


class TestVariance:
    def test_transform_variance_matches_chi_square(self):
        """Var[||Pz||^2] = 2/k ||z||^4 — the Theorem 2 leading term."""
        rng = np.random.default_rng(0)
        z = rng.standard_normal(64)
        z_sq = float(z @ z)
        k = 32
        samples = []
        for seed in range(1500):
            y = GaussianTransform(64, k, seed=seed).apply(z)
            samples.append(float(y @ y))
        assert np.mean(samples) == pytest.approx(z_sq, rel=0.05)
        assert np.var(samples) == pytest.approx(2.0 / k * z_sq**2, rel=0.15)


class TestSensitivity:
    def test_l2_sensitivity_concentrates_near_one(self):
        values = [GaussianTransform(256, 128, seed=s).sensitivity(2) for s in range(30)]
        assert 0.9 < np.mean(values) < 1.5

    def test_sensitivity_is_max_column_norm(self):
        t = GaussianTransform(32, 16, seed=5)
        dense = t.to_dense()
        assert t.sensitivity(2) == pytest.approx(np.linalg.norm(dense, axis=0).max())

    def test_no_closed_form_flag(self):
        t = GaussianTransform(32, 16, seed=0)
        assert not t.has_closed_form_sensitivity


class TestTailBound:
    def test_bound_is_probability(self):
        t = GaussianTransform(256, 64, seed=0)
        assert 0.0 <= t.sensitivity_tail_bound(2.0) <= 1.0

    def test_bound_decreases_in_threshold(self):
        t = GaussianTransform(256, 64, seed=0)
        assert t.sensitivity_tail_bound(3.0) < t.sensitivity_tail_bound(2.0)

    def test_bound_validates_threshold(self):
        t = GaussianTransform(16, 8, seed=0)
        with pytest.raises(ValueError):
            t.sensitivity_tail_bound(1.0)

    def test_note1_regime(self):
        """For k > 2 ln d + 2 ln(1/delta'), Pr[Delta_2 > 2] <= delta'."""
        d, delta_prime = 256, 1e-3
        k = math.ceil(2 * math.log(d) + 2 * math.log(1 / delta_prime)) + 1
        t = GaussianTransform(d, k, seed=0)
        assert t.sensitivity_tail_bound(2.0) <= delta_prime * 10  # constant slack
