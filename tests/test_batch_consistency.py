"""Batch paths must agree with the scalar paths they vectorise.

The batch engine (``apply_batch`` / ``sketch_batch`` / the matrix
estimators) is a pure performance layer: for every registered transform
and both perturbation modes, feeding the same data and the same noise
generator through the batch path and the row-by-row scalar path must
give the same numbers to near machine precision.
"""

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.hashing import prg
from repro.transforms import TRANSFORMS
from tests.helpers import TRANSFORM_SPECS, make_transform, spec_id

_DIM = 64
_OUT = 32

#: One sketcher-level case per registered transform (plus the SJLT's
#: second construction); kwargs are SketchConfig fields.
SKETCHER_CASES = [
    ("sjlt", {"output_dim": _OUT, "sparsity": 4}),
    ("sjlt", {"output_dim": _OUT, "sparsity": 4, "sjlt_construction": "graph"}),
    ("dks", {"output_dim": _OUT, "sparsity": 4}),
    ("gaussian", {"output_dim": _OUT}),
    ("achlioptas", {"output_dim": _OUT}),
    ("fjlt", {"output_dim": _OUT}),
]


def _case_id(case) -> str:
    name, kwargs = case
    extras = "-".join(f"{k}={v}" for k, v in sorted(kwargs.items()) if k != "output_dim")
    return f"{name}({extras})" if extras else name


def test_every_registered_transform_has_a_sketcher_case():
    assert {name for name, _ in SKETCHER_CASES} == set(TRANSFORMS)


@pytest.mark.parametrize("spec", TRANSFORM_SPECS, ids=spec_id)
class TestApplyBatch:
    def test_rows_match_scalar_apply(self, spec):
        t = make_transform(spec)
        X = np.random.default_rng(0).standard_normal((6, t.input_dim))
        out = t.apply_batch(X)
        assert out.shape == (6, t.output_dim)
        for i in range(6):
            np.testing.assert_allclose(out[i], t.apply(X[i]), rtol=0, atol=1e-10)

    def test_matches_dense_matmul(self, spec):
        t = make_transform(spec)
        X = np.random.default_rng(1).standard_normal((4, t.input_dim))
        np.testing.assert_allclose(t.apply_batch(X), X @ t.to_dense().T, atol=1e-9)

    def test_empty_batch(self, spec):
        t = make_transform(spec)
        out = t.apply_batch(np.empty((0, t.input_dim)))
        assert out.shape == (0, t.output_dim)

    def test_wrong_row_dimension_rejected(self, spec):
        t = make_transform(spec)
        with pytest.raises(ValueError, match="row dimension"):
            t.apply_batch(np.ones((3, t.input_dim + 1)))


@pytest.mark.parametrize("mode", ["output", "input"])
@pytest.mark.parametrize("case", SKETCHER_CASES, ids=_case_id)
class TestSketchBatchMatchesScalar:
    def _sketcher(self, case, mode):
        name, kwargs = case
        config = SketchConfig(
            input_dim=_DIM,
            epsilon=1.5,
            delta=1e-6,
            transform=name,
            noise="gaussian",
            perturbation=mode,
            **kwargs,
        )
        return PrivateSketcher(config)

    def test_rows_match_scalar_sketches(self, case, mode):
        sk = self._sketcher(case, mode)
        X = np.random.default_rng(3).standard_normal((5, _DIM))
        batch = sk.sketch_batch(X, noise_rng=prg.derive_rng(11, "batch-vs-loop"))
        generator = prg.derive_rng(11, "batch-vs-loop")
        for i in range(5):
            scalar = sk.sketch(X[i], noise_rng=generator)
            np.testing.assert_allclose(batch.values[i], scalar.values, rtol=0, atol=1e-9)

    def test_rows_carry_scalar_metadata(self, case, mode):
        sk = self._sketcher(case, mode)
        X = np.random.default_rng(4).standard_normal((2, _DIM))
        batch = sk.sketch_batch(X, noise_rng=0)
        scalar = sk.sketch(X[0], noise_rng=0)
        row = batch[0]
        assert row.config_digest == scalar.config_digest
        assert row.perturbation == scalar.perturbation
        assert row.noise_spec == scalar.noise_spec
        assert row.noise_second_moment == scalar.noise_second_moment
        assert row.guarantee == scalar.guarantee

    def test_estimates_match_scalar_estimators(self, case, mode):
        sk = self._sketcher(case, mode)
        X = np.random.default_rng(5).standard_normal((4, _DIM))
        batch = sk.sketch_batch(X, noise_rng=1)
        pairwise = estimators.pairwise_sq_distances(batch)
        norms = estimators.sq_norms(batch)
        for i in range(4):
            assert norms[i] == pytest.approx(
                estimators.estimate_sq_norm(batch[i]), abs=1e-8
            )
            for j in range(i + 1, 4):
                assert pairwise[i, j] == pytest.approx(
                    estimators.estimate_sq_distance(batch[i], batch[j]), abs=1e-8
                )


class TestDiscreteNoiseStreamContract:
    """Per-row noise draws keep batch == loop even for rejection samplers."""

    @pytest.mark.parametrize("noise", ["discrete_laplace", "discrete_gaussian"])
    def test_batch_matches_loop_for_discrete_noise(self, noise):
        delta = 1e-6 if noise == "discrete_gaussian" else 0.0
        config = SketchConfig(
            input_dim=_DIM, epsilon=1.0, delta=delta, noise=noise,
            output_dim=_OUT, sparsity=4,
        )
        sk = PrivateSketcher(config)
        X = np.random.default_rng(6).standard_normal((4, _DIM))
        batch = sk.sketch_batch(X, noise_rng=prg.derive_rng(7, "discrete"))
        generator = prg.derive_rng(7, "discrete")
        for i in range(4):
            scalar = sk.sketch(X[i], noise_rng=generator)
            np.testing.assert_array_equal(batch.values[i], scalar.values)


class TestStreamingBatchUpdates:
    def test_update_batch_matches_scalar_updates(self):
        config = SketchConfig(input_dim=_DIM, epsilon=1.0, output_dim=_OUT, sparsity=4)
        a, b = PrivateSketcher(config), PrivateSketcher(config)
        from repro.core.streaming import StreamingSketch

        rng = np.random.default_rng(8)
        indices = rng.integers(0, _DIM, size=200)
        deltas = rng.standard_normal(200)
        vec, loop = StreamingSketch(a), StreamingSketch(b)
        vec.update_batch(indices, deltas)
        for index, delta in zip(indices, deltas):
            loop.update(int(index), float(delta))
        np.testing.assert_allclose(
            vec.current_projection(), loop.current_projection(), atol=1e-9
        )
        assert vec.n_updates == loop.n_updates == 200
