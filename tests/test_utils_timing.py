"""Unit tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer, median_runtime


class TestTimer:
    def test_measures_nonnegative_time(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(10000))
        assert t.elapsed >= 0.0
        assert t.elapsed != first or t.elapsed >= 0


class TestMedianRuntime:
    def test_returns_positive_for_real_work(self):
        assert median_runtime(lambda: sum(range(5000)), repeats=3) > 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            median_runtime(lambda: None, repeats=0)

    def test_runs_function_expected_times(self):
        calls = []
        median_runtime(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6

    def test_even_repeats_average(self):
        # just exercises the even-length median branch
        value = median_runtime(lambda: None, repeats=4)
        assert value >= 0.0
