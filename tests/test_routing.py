"""Tests for IVF-style centroid shard routing.

The load-bearing guarantee is *exact-mode bit-identity*: a routed query
must return byte-for-byte the answer an unrouted scan returns, ties
included, on any store — including adversarial geometries (near
collinear rows, exact duplicates straddling shard boundaries) where a
sloppy bound would prune a true neighbour.  ``nprobe`` mode is the
explicit recall trade and is tested for its contract instead: the
probed set is exactly the nearest-centroid shards, and a routing-less
store refuses the spec loudly.

Staleness is the second contract: a routing table describes exactly one
shard layout, and any append, delete, or re-compact must stop it being
used before the mutation can be observed.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    DistanceService,
    ExecutionPolicy,
    MaintenancePolicy,
    RadiusQuery,
    RoutingSpec,
    ShardRouting,
    ShardedSketchStore,
    StoreMaintainer,
    TopKQuery,
    build_shard_routing,
    compact_store,
    decode_query,
    encode_query,
    kmeans_centroids,
    read_manifest,
)
from repro.serving.routing import assign_rows, covering_radius, default_cluster_count
from repro.serving.serialization import (
    SerializationError,
    read_routing_blob,
    write_routing_blob,
)

_CONFIG = SketchConfig(input_dim=48, epsilon=6.0, output_dim=24, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _clustered_store(sk, *, n_per=150, n_centers=5, capacity=64, seed=0, noise_rng=1):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_centers, 48)) * 8
    data = np.concatenate([c + rng.normal(size=(n_per, 48)) for c in centers])
    store = ShardedSketchStore(shard_capacity=capacity)
    store.add_batch(sk.sketch_batch(data, noise_rng=noise_rng))
    store.compact(routing=True, routing_seed=3)
    return store, centers


def _query(sk, point, noise_rng=2):
    return sk.sketch_batch(np.atleast_2d(point), noise_rng=noise_rng)


def _assert_bit_identical(store, query_batch, k=10):
    routed = DistanceService(store)
    unrouted = DistanceService(store, policy=ExecutionPolicy(routing=False))
    r = routed.execute(TopKQuery(queries=query_batch, k=k))
    u = unrouted.execute(TopKQuery(queries=query_batch, k=k))
    assert r.payload == u.payload
    return r, u


class TestKMeans:
    def test_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(200, 8))
        a = kmeans_centroids(rows, 6, seed=4)
        b = kmeans_centroids(rows, 6, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_cluster_count_clamped_to_rows(self):
        rows = np.random.default_rng(1).normal(size=(3, 4))
        assert kmeans_centroids(rows, 10, seed=0).shape == (3, 4)

    def test_identical_rows_collapse(self):
        rows = np.ones((20, 4))
        centroids = kmeans_centroids(rows, 4, seed=0)
        np.testing.assert_allclose(centroids, 1.0)

    def test_zero_rows_rejected(self):
        with pytest.raises(ValueError, match="zero rows"):
            kmeans_centroids(np.empty((0, 4)), 2)

    def test_covering_radius_contains_every_row(self):
        rng = np.random.default_rng(2)
        rows = rng.normal(size=(500, 16)) * 100
        centroid = rows.mean(axis=0)
        r = covering_radius(rows, centroid)
        dists = np.linalg.norm(rows - centroid, axis=1)
        assert (dists <= r).all()

    def test_default_cluster_count(self):
        assert default_cluster_count(0, 64) == 1
        assert default_cluster_count(64, 64) == 1
        assert default_cluster_count(65, 64) == 2


class TestRoutingSpec:
    def test_rejects_non_integral_nprobe(self):
        for bad in (True, 1.5, "2"):
            with pytest.raises(ValueError):
                RoutingSpec(nprobe=bad)
        with pytest.raises(ValueError):
            RoutingSpec(nprobe=0)

    def test_queries_validate_routing(self):
        sk = _sketcher()
        q = _query(sk, np.zeros(48))
        with pytest.raises(ValueError, match="RoutingSpec"):
            TopKQuery(queries=q, k=1, routing={"nprobe": 2})
        with pytest.raises(ValueError, match="RoutingSpec"):
            RadiusQuery(query=q, radius_sq=1.0, routing=3)


class TestExactModeBitIdentity:
    def test_clustered_store(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        for i, c in enumerate(centers):
            r, _ = _assert_bit_identical(store, _query(sk, c, noise_rng=10 + i))
            total = r.stats.shards_visited + r.stats.shards_pruned
            assert total == store.n_shards
            assert r.stats.shards_routed <= r.stats.shards_pruned

    def test_near_collinear_rows(self):
        # rows along one line: centroid balls overlap heavily and the
        # k-th boundary is crowded with near-ties — the bound must keep
        # every shard that could hold a winner
        sk = _sketcher()
        t = np.linspace(-50, 50, 400)[:, np.newaxis]
        direction = np.ones((1, 48)) / np.sqrt(48)
        data = t * direction + np.random.default_rng(3).normal(size=(400, 48)) * 1e-6
        store = ShardedSketchStore(shard_capacity=32)
        store.add_batch(sk.sketch_batch(data, noise_rng=4))
        store.compact(routing=True, routing_seed=0)
        for s in (-49.7, 0.0, 12.3):
            _assert_bit_identical(store, _query(sk, s * direction[0], noise_rng=5))

    def test_duplicate_rows_across_shards(self):
        # the same *released* batch stored three times: exact ties whose
        # resolution (global position) must survive routing — skipping
        # the shard holding an earlier duplicate would silently reorder
        # the answer
        sk = _sketcher()
        rng = np.random.default_rng(6)
        base = rng.normal(size=(40, 48))
        batch = sk.sketch_batch(base, noise_rng=7)
        store = ShardedSketchStore(shard_capacity=16)
        for copy in range(3):
            store.add_batch(batch, labels=range(copy * 40, copy * 40 + 40))
        store.compact(routing=True, routing_seed=1)
        r, u = _assert_bit_identical(store, _query(sk, base[5], noise_rng=8), k=9)
        estimates = [est for _, est in r.payload[0]]
        labels = [label for label, _ in r.payload[0]]
        assert len(set(estimates)) < len(estimates)  # genuine ties present
        for i in range(len(estimates) - 1):
            if estimates[i] == estimates[i + 1]:
                # equal estimates resolve by global position: the three
                # copies of a row are 40 apart, earlier copy first
                assert labels[i] < labels[i + 1]

    def test_radius_query_bit_identical(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        q = _query(sk, centers[2])
        probe = DistanceService(store).execute(TopKQuery(queries=q, k=20))
        radius_sq = probe.payload[0][-1][1]
        routed = DistanceService(store).execute(
            RadiusQuery(query=q, radius_sq=radius_sq)
        )
        unrouted = DistanceService(
            store, policy=ExecutionPolicy(routing=False)
        ).execute(RadiusQuery(query=q, radius_sq=radius_sq))
        assert routed.payload == unrouted.payload
        assert routed.stats.shards_routed > 0  # far clusters provably out

    def test_policy_switch_disables_exact_stage(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        off = DistanceService(store, policy=ExecutionPolicy(routing=False))
        r = off.execute(TopKQuery(queries=_query(sk, centers[0]), k=5))
        assert r.stats.shards_routed == 0

    def test_quantised_store_routed_exact(self):
        # the gamma envelope widens the bound on f4 stores; identity
        # must hold against the same-storage unrouted scan
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        store.compact(storage="f4", routing=True, routing_seed=3)
        _assert_bit_identical(store, _query(sk, centers[1], noise_rng=9))


class TestNeverPrunesTrueTopK:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        k=st.integers(min_value=1, max_value=8),
        spread=st.floats(min_value=0.1, max_value=30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_centroid_ball_bound_is_sound(self, seed, k, spread):
        # pure-geometry property: for random row sets and any clustered
        # split, the routing lower bound never exceeds the true distance
        # of any row in the shard — so thresholding at the k-th best can
        # never prune a true top-k member
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(60, 6)) * spread
        n_clusters = int(rng.integers(1, 6))
        centroids = kmeans_centroids(rows, n_clusters, seed=seed)
        assign = assign_rows(rows, centroids)
        shard_values = [rows[assign == j] for j in range(centroids.shape[0])]
        shard_values = [v for v in shard_values if v.shape[0]]
        routing = build_shard_routing(shard_values)
        queries = rng.normal(size=(3, 6)) * spread
        sq_q = np.einsum("ij,ij->i", queries, queries)
        correction = float(rng.normal()) * 0.1
        bounds = routing.lower_bounds(
            queries, sq_q, np.sqrt(sq_q), correction
        )
        for i, values in enumerate(shard_values):
            diff = queries[:, np.newaxis, :] - values[np.newaxis, :, :]
            true_est = np.einsum("qrd,qrd->qr", diff, diff) - correction
            assert (bounds[:, i] <= true_est.min(axis=1) + 1e-12).all()


class TestNprobe:
    def test_visits_exactly_the_probed_shards(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        svc = DistanceService(store)
        q = _query(sk, centers[0])
        r = svc.execute(TopKQuery(queries=q, k=5, routing=RoutingSpec(nprobe=2)))
        assert r.stats.shards_visited <= 2
        assert r.stats.shards_visited + r.stats.shards_pruned == store.n_shards
        assert r.stats.shards_routed >= store.n_shards - 2

    def test_full_nprobe_recovers_exact_answer(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        svc = DistanceService(store)
        q = _query(sk, centers[3])
        exact = svc.execute(TopKQuery(queries=q, k=10))
        full = svc.execute(
            TopKQuery(queries=q, k=10, routing=RoutingSpec(nprobe=store.n_shards))
        )
        assert exact.payload == full.payload

    def test_high_recall_on_clustered_data(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        svc = DistanceService(store)
        q = _query(sk, centers[2])
        exact = {l for l, _ in svc.execute(TopKQuery(queries=q, k=10)).payload[0]}
        # the default cluster count splits each of the 5 input clusters
        # over ~2-3 shards, so probing 4 shards covers a neighbourhood
        probed = {
            l
            for l, _ in svc.execute(
                TopKQuery(queries=q, k=10, routing=RoutingSpec(nprobe=4))
            ).payload[0]
        }
        assert len(exact & probed) / 10 >= 0.9

    def test_routingless_store_rejects_nprobe(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=32)
        store.add_batch(sk.sketch_batch(np.ones((50, 48)), noise_rng=1))
        svc = DistanceService(store)
        with pytest.raises(ValueError, match="no .*routing"):
            svc.execute(
                TopKQuery(queries=_query(sk, np.ones(48)), k=3, routing=RoutingSpec(nprobe=1))
            )

    def test_radius_nprobe(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        svc = DistanceService(store)
        q = _query(sk, centers[1])
        exact = svc.execute(RadiusQuery(query=q, radius_sq=50.0))
        probed = svc.execute(
            RadiusQuery(query=q, radius_sq=50.0, routing=RoutingSpec(nprobe=store.n_shards))
        )
        assert exact.payload == probed.payload


class TestStaleness:
    def test_append_invalidates(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        assert store.routing is not None
        store.add_batch(sk.sketch_batch(centers[:1], noise_rng=9))
        assert store.routing is None
        # exact queries silently fall back; nprobe refuses
        svc = DistanceService(store)
        r = svc.execute(TopKQuery(queries=_query(sk, centers[0]), k=3))
        assert r.stats.shards_routed == 0
        with pytest.raises(ValueError, match="no .*routing"):
            svc.execute(
                TopKQuery(
                    queries=_query(sk, centers[0]), k=3, routing=RoutingSpec(nprobe=1)
                )
            )

    def test_delete_invalidates(self):
        sk = _sketcher()
        store, _ = _clustered_store(sk)
        assert store.routing is not None
        store.delete([0])
        assert store.routing is None

    def test_unclustered_recompact_drops_table(self):
        sk = _sketcher()
        store, _ = _clustered_store(sk)
        store.compact()
        assert store.routing is None

    def test_reclustering_restores_table(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        store.delete([3])
        assert store.routing is None
        store.compact(routing=True, routing_seed=3)
        assert store.routing is not None
        _assert_bit_identical(store, _query(sk, centers[0]))

    def test_shard_sizes_pin_layout(self):
        routing = build_shard_routing([np.ones((4, 3)), np.zeros((2, 3))])
        assert routing.matches([4, 2])
        assert not routing.matches([4, 3])
        assert not routing.matches([4, 2, 1])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        store.save(tmp_path / "store")
        for mmap in (False, True):
            loaded = ShardedSketchStore.load(tmp_path / "store", mmap=mmap)
            table = loaded.routing
            assert table is not None
            np.testing.assert_array_equal(table.centroids, store.routing.centroids)
            np.testing.assert_array_equal(table.radii, store.routing.radii)
            assert table.shard_sizes == store.routing.shard_sizes
            _assert_bit_identical(loaded, _query(sk, centers[0]))

    def test_stale_table_not_persisted(self, tmp_path):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        store.add_batch(sk.sketch_batch(centers[:1], noise_rng=9))
        store.save(tmp_path / "store")
        manifest = read_manifest(tmp_path / "store")
        assert "routing" not in manifest
        assert ShardedSketchStore.load(tmp_path / "store").routing is None

    def test_tampered_blob_rejected(self, tmp_path):
        sk = _sketcher()
        store, _ = _clustered_store(sk)
        store.save(tmp_path / "store")
        manifest = read_manifest(tmp_path / "store")
        blob = tmp_path / "store" / manifest.get("shards_dir", "") / manifest["routing"]["file"]
        blob.write_bytes(blob.read_bytes().replace(b'"radii"', b'"RADII"'))
        with pytest.raises(SerializationError):
            ShardedSketchStore.load(tmp_path / "store")

    def test_blob_roundtrip_and_digest(self, tmp_path):
        routing = build_shard_routing([np.ones((4, 3)), np.full((2, 3), 2.0)])
        path = tmp_path / "routing.json"
        digest = write_routing_blob(
            path, routing.to_payload(), routing.centroids, routing.radii
        )
        payload, centroids, radii = read_routing_blob(path, digest)
        restored = ShardRouting.from_payload(payload, centroids, radii)
        np.testing.assert_array_equal(restored.centroids, routing.centroids)
        np.testing.assert_array_equal(restored.radii, routing.radii)
        assert restored.shard_sizes == routing.shard_sizes
        with pytest.raises(SerializationError, match="digest"):
            read_routing_blob(path, "0" * 64)


class TestWire:
    def test_routing_spec_roundtrips(self):
        sk = _sketcher()
        q = _query(sk, np.zeros(48))
        for query in (
            TopKQuery(queries=q, k=3, routing=RoutingSpec(nprobe=4)),
            RadiusQuery(query=q, radius_sq=2.0, routing=RoutingSpec(nprobe=1)),
        ):
            decoded = decode_query(encode_query(query))
            assert decoded.routing == query.routing

    def test_absent_spec_stays_absent(self):
        sk = _sketcher()
        q = _query(sk, np.zeros(48))
        encoded = encode_query(TopKQuery(queries=q, k=3))
        assert b'"routing"' not in encoded
        assert decode_query(encoded).routing is None

    def test_stats_field_roundtrips(self):
        from repro.serving.wire import decode_result, encode_result
        from repro.serving import QueryResult, QueryStats

        stats = QueryStats(shards_visited=2, shards_pruned=5, shards_routed=4)
        blob = encode_result(QueryResult(payload=[[]], stats=stats), "top_k")
        assert decode_result(blob).stats.shards_routed == 4


class TestDiskCompaction:
    def test_disk_matches_in_memory(self, tmp_path):
        sk = _sketcher()
        rng = np.random.default_rng(0)
        centers = rng.normal(size=(4, 48)) * 8
        data = np.concatenate([c + rng.normal(size=(100, 48)) for c in centers])
        batch = sk.sketch_batch(data, noise_rng=1)

        mem = ShardedSketchStore(shard_capacity=64)
        mem.add_batch(batch)
        mem.save(tmp_path / "store")
        summary = compact_store(tmp_path / "store", routing=True, routing_seed=3)
        assert summary["routing"] == default_cluster_count(len(data), 64)

        mem.compact(routing=True, routing_seed=3)
        loaded = ShardedSketchStore.load(tmp_path / "store")
        np.testing.assert_allclose(
            loaded.routing.centroids, mem.routing.centroids
        )
        np.testing.assert_allclose(loaded.routing.radii, mem.routing.radii)
        assert loaded.routing.shard_sizes == mem.routing.shard_sizes
        q = _query(sk, centers[1])
        disk = DistanceService(loaded).execute(TopKQuery(queries=q, k=10))
        in_mem = DistanceService(mem).execute(TopKQuery(queries=q, k=10))
        assert disk.payload == in_mem.payload

    def test_policy_skips_partial_shards_on_routed_store(self, tmp_path):
        sk = _sketcher()
        store, _ = _clustered_store(sk)
        store.save(tmp_path / "store")
        compact_store(tmp_path / "store", routing=True, routing_seed=3)
        manifest = read_manifest(tmp_path / "store")
        assert manifest["routing"]  # clustered layouts keep partial shards
        assert MaintenancePolicy().plan(manifest) is None

    def test_policy_preserves_routing_across_compaction(self, tmp_path):
        sk = _sketcher()
        store, _ = _clustered_store(sk)
        store.save(tmp_path / "store")
        compact_store(tmp_path / "store", routing=True, routing_seed=3)
        manifest = dict(read_manifest(tmp_path / "store"))
        manifest["tombstones"] = [0, 1]
        action = MaintenancePolicy().plan(manifest)
        assert action is not None and action["routing"] is True

    def test_routed_policy_clusters_unrouted_store(self):
        manifest = {
            "n_rows": 100,
            "n_shards": 9,
            "shard_capacity": 64,
            "storage": "f8",
            "tombstones": [],
        }
        action = MaintenancePolicy(routed=True).plan(manifest)
        assert action is not None and action["routing"] is True

    def test_rebuild_routing(self, tmp_path):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        store.add_batch(sk.sketch_batch(centers[:2], noise_rng=9))  # stale
        store.save(tmp_path / "store")
        assert "routing" not in read_manifest(tmp_path / "store")
        maintainer = StoreMaintainer(tmp_path / "store")
        summary = maintainer.rebuild_routing(seed=5)
        assert summary["reason"] == "rebuild routing"
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert loaded.routing is not None
        assert loaded.routing.n_rows == len(loaded)
        _assert_bit_identical(loaded, _query(sk, centers[0]))


class TestStatsInvariants:
    def test_visited_plus_pruned_is_total_in_every_mode(self):
        sk = _sketcher()
        store, centers = _clustered_store(sk)
        q = _query(sk, centers[0])
        for query in (
            TopKQuery(queries=q, k=5),
            TopKQuery(queries=q, k=5, routing=RoutingSpec(nprobe=2)),
            RadiusQuery(query=q, radius_sq=100.0),
            RadiusQuery(query=q, radius_sq=100.0, routing=RoutingSpec(nprobe=3)),
        ):
            stats = DistanceService(store).execute(query).stats
            assert stats.shards_visited + stats.shards_pruned == store.n_shards
            assert stats.shards_routed <= stats.shards_pruned

    def test_shards_routed_in_as_dict(self):
        from repro.serving import QueryStats

        assert "shards_routed" in QueryStats().as_dict()
        assert "shards_routed" in {
            f.name for f in dataclasses.fields(QueryStats)
        }
