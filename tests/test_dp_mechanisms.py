"""Tests for mechanism calibration (Lemmas 1-2 and extensions)."""

import math

import numpy as np
import pytest

from repro.dp.mechanisms import (
    PrivacyGuarantee,
    SnappingMechanism,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
    discrete_gaussian_mechanism,
    discrete_laplace_mechanism,
    gaussian_mechanism,
    laplace_mechanism,
)


class TestPrivacyGuarantee:
    def test_pure_flag(self):
        assert PrivacyGuarantee(1.0).is_pure
        assert not PrivacyGuarantee(1.0, 1e-6).is_pure

    def test_compose_adds(self):
        total = PrivacyGuarantee(1.0, 1e-6).compose(PrivacyGuarantee(0.5, 1e-7))
        assert total.epsilon == pytest.approx(1.5)
        assert total.delta == pytest.approx(1.1e-6)

    def test_str_forms(self):
        assert "DP" in str(PrivacyGuarantee(1.0))
        assert "," in str(PrivacyGuarantee(1.0, 1e-5))

    @pytest.mark.parametrize("eps,delta", [(0.0, 0.0), (-1.0, 0.0), (1.0, 1.0), (1.0, -0.1)])
    def test_validation(self, eps, delta):
        with pytest.raises(ValueError):
            PrivacyGuarantee(eps, delta)


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mech = laplace_mechanism(2.0, 0.5)
        assert mech.noise.scale == pytest.approx(4.0)

    def test_guarantee_is_pure(self):
        assert laplace_mechanism(1.0, 1.0).guarantee.is_pure

    def test_randomize_shape_preserved(self):
        mech = laplace_mechanism(1.0, 1.0)
        out = mech.randomize(np.zeros(7), rng=np.random.default_rng(0))
        assert out.shape == (7,)

    def test_randomize_deterministic_given_rng(self):
        mech = laplace_mechanism(1.0, 1.0)
        a = mech.randomize(np.ones(5), rng=np.random.default_rng(1))
        b = mech.randomize(np.ones(5), rng=np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_randomize_centers_on_input(self):
        mech = laplace_mechanism(1.0, 2.0)
        rng = np.random.default_rng(2)
        outs = np.array([mech.randomize(np.array([5.0]), rng)[0] for _ in range(20000)])
        assert np.mean(outs) == pytest.approx(5.0, abs=0.05)


class TestGaussianCalibration:
    def test_classical_formula(self):
        sigma = classical_gaussian_sigma(2.0, 0.5, 1e-5)
        assert sigma == pytest.approx(2.0 / 0.5 * math.sqrt(2 * math.log(1.25e5)))

    def test_analytic_tighter_than_classical(self):
        for eps in (0.1, 0.5, 1.0):
            for delta in (1e-4, 1e-8):
                assert analytic_gaussian_sigma(1.0, eps, delta) < classical_gaussian_sigma(
                    1.0, eps, delta
                )

    def test_analytic_valid_for_large_epsilon(self):
        # classical analysis breaks for eps > 1; analytic must still work
        sigma = analytic_gaussian_sigma(1.0, 5.0, 1e-6)
        assert 0 < sigma < classical_gaussian_sigma(1.0, 1.0, 1e-6)

    def test_analytic_achieves_target_delta(self):
        from repro.dp.mechanisms import _gaussian_delta

        eps, delta = 0.8, 1e-6
        sigma = analytic_gaussian_sigma(1.0, eps, delta)
        assert _gaussian_delta(sigma, 1.0, eps) == pytest.approx(delta, rel=1e-6)

    def test_sigma_monotone_in_delta(self):
        s1 = analytic_gaussian_sigma(1.0, 1.0, 1e-4)
        s2 = analytic_gaussian_sigma(1.0, 1.0, 1e-8)
        assert s2 > s1

    def test_mechanism_objects(self):
        mech = gaussian_mechanism(1.0, 1.0, 1e-5)
        assert mech.noise.name == "gaussian"
        assert not mech.guarantee.is_pure
        tight = gaussian_mechanism(1.0, 1.0, 1e-5, analytic=True)
        assert tight.noise.sigma < mech.noise.sigma


class TestDiscreteMechanisms:
    def test_discrete_laplace_pure(self):
        mech = discrete_laplace_mechanism(2.0, 1.0)
        assert mech.guarantee.is_pure
        assert mech.noise.name == "discrete_laplace"
        assert mech.noise.scale == pytest.approx(2.0)

    def test_discrete_gaussian_sigma_matches_analytic(self):
        mech = discrete_gaussian_mechanism(1.0, 1.0, 1e-5)
        assert mech.noise.sigma == pytest.approx(analytic_gaussian_sigma(1.0, 1.0, 1e-5))

    def test_integer_outputs_on_integer_inputs(self):
        mech = discrete_laplace_mechanism(1.0, 1.0)
        out = mech.randomize(np.arange(5, dtype=float), rng=np.random.default_rng(0))
        assert np.array_equal(out, np.round(out))


class TestSnappingMechanism:
    def test_lattice_is_power_of_two_at_least_scale(self):
        snap = SnappingMechanism(1.0, 0.5, bound=100.0)
        assert snap.lattice >= snap.scale
        assert math.log2(snap.lattice) == int(math.log2(snap.lattice))

    def test_outputs_on_lattice_within_bound(self):
        snap = SnappingMechanism(1.0, 1.0, bound=8.0)
        rng = np.random.default_rng(1)
        out = snap.randomize(np.linspace(-20, 20, 50), rng)
        assert np.all(np.abs(out) <= 8.0)
        interior = out[np.abs(out) < 8.0]
        assert np.allclose(interior / snap.lattice, np.round(interior / snap.lattice))

    def test_effective_epsilon_slightly_above_nominal(self):
        snap = SnappingMechanism(1.0, 1.0, bound=100.0)
        assert snap.effective_epsilon >= 1.0
        assert snap.effective_epsilon < 1.01

    def test_rounding_error_bounded_by_lattice(self):
        """The 2.3.1 claim: snapping adds ~Delta_1/eps extra error."""
        snap = SnappingMechanism(1.0, 1.0, bound=1000.0)
        rng = np.random.default_rng(2)
        x = np.full(20000, 3.7)
        out = snap.randomize(x, rng)
        # centered within Laplace noise + half-lattice rounding
        assert abs(np.mean(out) - 3.7) < 3 * snap.scale / np.sqrt(20000) + snap.lattice / 2


class TestValidation:
    def test_laplace_rejects_bad_args(self):
        with pytest.raises(ValueError):
            laplace_mechanism(0.0, 1.0)
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, -1.0)

    def test_gaussian_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            classical_gaussian_sigma(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            classical_gaussian_sigma(1.0, 1.0, 1.0)
