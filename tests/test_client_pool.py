"""Pooled-transport and release-cache tests through a real server.

The client-side contract: keep-alive pooling and transparent retries
must be invisible in results (byte-identical payloads, same exception
classes) and visible only in the transport counters.  The server-side
contract: a cache hit is the byte-identical envelope a recompute would
produce, and any append invalidates every prior entry.
"""

import http.client
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    NormsQuery,
    PairwiseQuery,
    ReleaseCache,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
    wire,
)

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=5)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _store(n=30, shard_capacity=8, sketcher=None):
    sk = sketcher or _sketcher()
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(
        sk.sketch_batch(np.random.default_rng(2).standard_normal((n, 64)), noise_rng=1)
    )
    return sk, store


@pytest.fixture()
def served(tmp_path):
    sk, store = _store()
    store.save(tmp_path / "store")
    local = DistanceService(
        ShardedSketchStore.load(tmp_path / "store", mmap=True),
        ExecutionPolicy(workers=1),
    )
    with SketchQueryServer.from_store_dir(
        tmp_path / "store", port=0, policy=ExecutionPolicy(workers=1)
    ).start() as server:
        with local:
            yield sk, local, server


class TestConnectionPool:
    def test_sequential_queries_reuse_one_connection(self, served):
        sk, local, server = served
        with DistanceClient(server.url) as client:
            for _ in range(10):
                result = client.execute(NormsQuery())
            assert client.requests_sent == 10
            assert client.connections_opened == 1  # keep-alive did its job
        np.testing.assert_array_equal(
            result.payload, local.execute(NormsQuery()).payload
        )

    def test_pool_size_zero_opens_a_connection_per_request(self, served):
        _, _, server = served
        with DistanceClient(server.url, pool_size=0) as client:
            for _ in range(5):
                client.execute(NormsQuery())
            assert client.connections_opened == 5  # the pre-pool behaviour

    def test_stale_pooled_connection_is_retried_transparently(self, served):
        # a server restart (or idle timeout) kills a pooled connection
        # under the client; the next request must burn one retry on a
        # fresh connection and still return the right answer
        sk, local, server = served
        with DistanceClient(server.url) as client:
            client.execute(NormsQuery())
            assert len(client._idle) == 1
            client._idle[0].sock.close()  # yank the socket under the pool
            result = client.execute(NormsQuery())
            assert client.retries_used == 1
            assert client.connections_opened == 2
        np.testing.assert_array_equal(
            result.payload, local.execute(NormsQuery()).payload
        )

    def test_retries_open_fresh_connections_before_giving_up(self):
        client = DistanceClient("http://127.0.0.1:9", timeout=2.0, retries=2)
        with pytest.raises(ConnectionError, match="after 3 attempt"):
            client.execute(NormsQuery())
        assert client.retries_used == 2
        assert client.connections_opened == 3  # never retried on a dead conn

    def test_concurrent_callers_share_the_pool_safely(self, served):
        sk, local, server = served
        expected = local.execute(NormsQuery()).payload
        with DistanceClient(server.url, pool_size=4) as client:

            def one_query(_):
                return client.execute(NormsQuery()).payload

            with ThreadPoolExecutor(max_workers=4) as pool:
                payloads = list(pool.map(one_query, range(24)))
        for payload in payloads:
            np.testing.assert_array_equal(payload, expected)
        assert client.requests_sent == 24
        assert client.connections_opened <= 24

    def test_oversized_body_raises_value_error_and_pool_recovers(
        self, served, monkeypatch
    ):
        # the 413 error path through the real client: the server closes
        # the connection (the body was never drained), the client raises
        # the transported ValueError, and the *next* query just works
        from repro.serving import server as server_module

        # 256 bytes: the sketch-carrying top-k body trips it, a norms
        # envelope (~70 bytes) stays under
        monkeypatch.setattr(server_module, "MAX_BODY_BYTES", 256)
        sk, local, server = served
        with DistanceClient(server.url) as client:
            with pytest.raises(ValueError, match="request body over"):
                client.execute(TopKQuery(queries=sk.sketch(np.ones(64), noise_rng=3), k=2))
            assert client.execute(NormsQuery()).payload.shape == (30,)
            assert client.retries_used == 0  # an HTTP error is not a transport error

    def test_rejects_non_http_and_hostless_urls(self):
        with pytest.raises(ValueError, match="http://"):
            DistanceClient("https://example.org:1")
        with pytest.raises(ValueError, match="no host"):
            DistanceClient("http://")
        with pytest.raises(ValueError, match="pool_size"):
            DistanceClient("http://127.0.0.1:9", pool_size=-1)
        with pytest.raises(ValueError, match="retries"):
            DistanceClient("http://127.0.0.1:9", retries=-1)


class TestReleaseCacheUnit:
    def test_lru_eviction_by_entry_count(self):
        cache = ReleaseCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refresh "a": now "b" is LRU
        cache.put("c", b"3")
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_evicts_and_oversized_values_are_skipped(self):
        cache = ReleaseCache(max_entries=100, max_bytes=10)
        cache.put("a", b"xxxx")
        cache.put("b", b"yyyy")
        cache.put("c", b"zzzz")  # 12 bytes total: "a" must go
        assert cache.get("a") is None
        assert len(cache) == 2
        cache.put("huge", b"x" * 11)  # over budget alone: not cached
        assert cache.get("huge") is None
        assert len(cache) == 2  # and nothing was flushed to make room

    def test_replacing_a_key_updates_the_byte_count(self):
        cache = ReleaseCache(max_entries=4, max_bytes=100)
        cache.put("a", b"x" * 60)
        cache.put("a", b"x" * 30)
        assert cache.stats()["bytes"] == 30
        cache.put("b", b"x" * 60)  # fits only if the old 60 was released
        assert len(cache) == 2

    def test_clear_and_stats(self):
        cache = ReleaseCache(max_entries=4)
        cache.put("a", b"1")
        assert cache.get("a") == b"1"
        assert cache.get("missing") is None
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        with pytest.raises(ValueError, match="max_entries"):
            ReleaseCache(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            ReleaseCache(max_bytes=0)


class TestServerCache:
    @pytest.fixture()
    def cached_server(self, tmp_path):
        sk, store = _store()
        store.save(tmp_path / "store")
        with SketchQueryServer.from_store_dir(
            tmp_path / "store", port=0, policy=ExecutionPolicy(workers=1), cache=64
        ).start() as server:
            yield sk, server

    def _post(self, server, body):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, response.getheader("X-Repro-Cache"), response.read()
        finally:
            connection.close()

    def test_identical_query_hits_and_is_byte_identical(self, cached_server):
        sk, server = cached_server
        body = wire.encode_query(
            TopKQuery(queries=sk.sketch(np.ones(64), noise_rng=7), k=5)
        )
        status1, state1, blob1 = self._post(server, body)
        status2, state2, blob2 = self._post(server, body)
        assert (status1, status2) == (200, 200)
        assert (state1, state2) == ("miss", "hit")
        assert blob1 == blob2  # the cached release is the release

    def test_distinct_queries_do_not_collide(self, cached_server):
        sk, server = cached_server
        query = sk.sketch(np.ones(64), noise_rng=7)
        _, _, blob_k3 = self._post(server, wire.encode_query(TopKQuery(queries=query, k=3)))
        _, state, blob_k5 = self._post(server, wire.encode_query(TopKQuery(queries=query, k=5)))
        assert state == "miss"
        assert blob_k3 != blob_k5

    def test_cache_counters_show_in_healthz(self, cached_server):
        sk, server = cached_server
        body = wire.encode_query(NormsQuery())
        self._post(server, body)
        self._post(server, body)
        with DistanceClient(server.url) as client:
            stats = client.health()["cache"]
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert stats["entries"] >= 1

    def test_append_invalidates_prior_entries(self):
        # a live (still-appending) store behind a cached server: the
        # row count is part of the key, so growth never serves stale rows
        sk, store = _store(n=10)
        service = DistanceService(store, ExecutionPolicy(workers=1))
        with SketchQueryServer(service, port=0, cache=ReleaseCache(8)).start() as server:
            body = wire.encode_query(NormsQuery())
            connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                def post():
                    connection.request(
                        "POST", "/query", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    state = response.getheader("X-Repro-Cache")
                    return state, wire.decode_result(response.read())

                assert post()[0] == "miss"
                assert post()[0] == "hit"
                store.add_batch(
                    sk.sketch_batch(
                        np.random.default_rng(9).standard_normal((5, 64)), noise_rng=4
                    )
                )
                state, result = post()  # new store state: recomputed
                assert state == "miss"
                assert result.payload.shape == (15,)
            finally:
                connection.close()

    def test_uncached_server_sends_no_cache_header(self, served):
        _, _, server = served
        body = wire.encode_query(NormsQuery())
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("X-Repro-Cache") is None
            response.read()
            health = DistanceClient(server.url).health()
            assert "cache" not in health
        finally:
            connection.close()
