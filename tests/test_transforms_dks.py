"""Tests specific to the DKS with-replacement sparse transform."""

import numpy as np
import pytest

from repro.transforms.dks import DKSTransform


class TestStructure:
    def test_at_most_s_nonzeros_per_column(self):
        t = DKSTransform(64, 32, sparsity=4, seed=0)
        dense = t.to_dense()
        nnz = (dense != 0).sum(axis=0)
        assert (nnz <= 4).all()
        assert nnz.max() > 0

    def test_collisions_can_reduce_nonzeros(self):
        # with replacement, some column across many draws must collide
        found_collision = False
        for seed in range(40):
            t = DKSTransform(128, 8, sparsity=4, seed=seed)
            nnz = (t.to_dense() != 0).sum(axis=0)
            if (nnz < 4).any():
                found_collision = True
                break
        assert found_collision

    def test_update_cost_is_sparsity(self):
        t = DKSTransform(64, 32, sparsity=5, seed=0)
        assert t.update_cost == 5

    def test_sparsity_validated(self):
        with pytest.raises(ValueError):
            DKSTransform(64, 32, sparsity=0, seed=0)
        with pytest.raises(ValueError):
            DKSTransform(64, 32, sparsity=33, seed=0)

    def test_no_closed_form_sensitivity(self):
        # collisions make column norms random: must scan
        assert not DKSTransform(64, 32, sparsity=4, seed=0).has_closed_form_sensitivity

    def test_sensitivity_varies_across_draws(self):
        values = {round(DKSTransform(64, 8, 4, seed=s).sensitivity(2), 6) for s in range(25)}
        assert len(values) > 1


class TestApplyPaths:
    def test_sparse_apply_matches_dense(self):
        t = DKSTransform(100, 32, sparsity=4, seed=1)
        idx = np.array([0, 10, 99])
        vals = np.array([2.0, -1.0, 0.5])
        x = np.zeros(100)
        x[idx] = vals
        assert np.allclose(t.apply_sparse(idx, vals), t.apply(x))

    def test_sparse_apply_validates_indices(self):
        t = DKSTransform(10, 8, sparsity=2, seed=0)
        with pytest.raises(ValueError):
            t.apply_sparse(np.array([10]), np.array([1.0]))

    def test_lpp(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64)
        ratios = []
        for seed in range(400):
            y = DKSTransform(64, 32, sparsity=4, seed=seed).apply(x)
            ratios.append(float(y @ y) / float(x @ x))
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.08)
