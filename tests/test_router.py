"""Scatter-gather router tests: N backends must equal one big store.

The acceptance contract of :class:`repro.serving.RouterService`: a
query answered by a router over backends that partition a store is
bit-identical to local ``execute()`` on the concatenated store — over
local services, over HTTP clients, and when the router itself is
served by a :class:`SketchQueryServer` (the full
``client -> router server -> N store servers`` topology).
"""

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    NormsQuery,
    PairwiseQuery,
    RadiusQuery,
    RouterService,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
)

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=13)
_SPLITS = (0, 20, 41, 57)  # deliberately uneven backend blocks


def _build():
    """One 57-row store plus three part-stores holding the same rows."""
    sk = PrivateSketcher(_CONFIG)
    rng = np.random.default_rng(7)
    batch = sk.sketch_batch(rng.standard_normal((57, 64)), noise_rng=1)
    combined = ShardedSketchStore(shard_capacity=9)
    combined.add_batch(batch)
    parts = []
    for lo, hi in zip(_SPLITS, _SPLITS[1:]):
        store = ShardedSketchStore(shard_capacity=9)
        # global labels: backend order concatenates back to the store
        store.add_batch(batch[lo:hi], labels=range(lo, hi))
        parts.append(store)
    return sk, combined, parts


def _queries(sk):
    rng = np.random.default_rng(21)
    single = sk.sketch(rng.standard_normal(64), noise_rng=3)
    batch = sk.sketch_batch(rng.standard_normal((4, 64)), noise_rng=4)
    return single, batch


def _assert_router_matches_local(router, local, sk):
    single, batch = _queries(sk)

    top_local = local.execute(TopKQuery(queries=batch, k=9))
    top_routed = router.execute(TopKQuery(queries=batch, k=9))
    assert top_routed.payload == top_local.payload

    cutoff = float(np.median([est for _, est in top_local.payload[0]]))
    r_local = local.execute(RadiusQuery(query=single, radius_sq=cutoff))
    r_routed = router.execute(RadiusQuery(query=single, radius_sq=cutoff))
    assert r_routed.payload == r_local.payload

    c_local = local.execute(CrossQuery(queries=batch))
    c_routed = router.execute(CrossQuery(queries=batch))
    assert c_routed.payload.tobytes() == c_local.payload.tobytes()

    n_local = local.execute(NormsQuery())
    n_routed = router.execute(NormsQuery())
    assert n_routed.payload.tobytes() == n_local.payload.tobytes()


class TestRouterOverLocalServices:
    @pytest.fixture()
    def setup(self):
        sk, combined, parts = _build()
        local = DistanceService(combined, ExecutionPolicy(workers=1))
        router = RouterService(
            [DistanceService(p, ExecutionPolicy(workers=1)) for p in parts],
            close_backends=True,
        )
        with router, local:
            yield sk, local, router

    def test_merged_results_match_single_store(self, setup):
        sk, local, router = setup
        _assert_router_matches_local(router, local, sk)

    def test_len_and_health_aggregate_backends(self, setup):
        _, local, router = setup
        assert len(router) == len(local) == 57
        health = router.health()
        assert health["rows"] == 57
        assert health["backends"] == 3
        assert health["backend_rows"] == [20, 21, 16]

    def test_stats_sum_counters_and_take_max_elapsed(self, setup):
        sk, _, router = setup
        single, _ = _queries(sk)
        result = router.execute(TopKQuery(queries=single, k=3))
        assert result.stats.rows_total == 57
        assert result.stats.rows_scanned <= 57
        # ceil(20/9) + ceil(21/9) + ceil(16/9) shards across the backends
        assert result.stats.shards_visited + result.stats.shards_pruned == 8
        assert result.stats.elapsed_seconds >= 0.0

    def test_execute_many_preserves_order(self, setup):
        sk, local, router = setup
        single, batch = _queries(sk)
        queries = [NormsQuery(), TopKQuery(queries=single, k=5), CrossQuery(queries=batch)]
        routed = router.execute_many(queries)
        locals_ = local.execute_many(queries)
        assert routed[1].payload == locals_[1].payload
        assert routed[2].payload.tobytes() == locals_[2].payload.tobytes()

    def test_pairwise_within_one_backend_translates_indices(self, setup):
        sk, local, router = setup
        # rows 20..40 all live in backend 1
        query = PairwiseQuery(indices=(20, 27, 40))
        routed = router.execute(query)
        expected = local.execute(query)
        assert routed.payload.tobytes() == expected.payload.tobytes()
        assert routed.stats.rows_total == 57  # logical store, not the backend

    def test_pairwise_negative_indices_resolve_against_logical_store(self, setup):
        sk, local, router = setup
        query = PairwiseQuery(indices=(-1, -10))  # rows 56 and 47: last backend
        routed = router.execute(query)
        expected = local.execute(query)
        assert routed.payload.tobytes() == expected.payload.tobytes()

    def test_pairwise_spanning_backends_is_rejected(self, setup):
        _, _, router = setup
        with pytest.raises(ValueError, match="spanning multiple router backends"):
            router.execute(PairwiseQuery(indices=(0, 56)))

    def test_pairwise_out_of_range_raises_index_error(self, setup):
        _, _, router = setup
        with pytest.raises(IndexError, match="out of range"):
            router.execute(PairwiseQuery(indices=(0, 57)))

    def test_untyped_query_raises_type_error(self, setup):
        sk, _, router = setup
        with pytest.raises(TypeError, match="typed query"):
            router.execute(sk.sketch(np.ones(64), noise_rng=0))

    def test_router_needs_at_least_one_backend(self):
        with pytest.raises(ValueError, match="at least one backend"):
            RouterService([])


class TestRouterOverHttpBackends:
    """The scale-out topology: client -> router server -> store servers."""

    @pytest.fixture()
    def topology(self, tmp_path):
        sk, combined, parts = _build()
        local = DistanceService(combined, ExecutionPolicy(workers=1))
        servers = []
        for i, part in enumerate(parts):
            part.save(tmp_path / f"part{i}")
            servers.append(
                SketchQueryServer.from_store_dir(
                    tmp_path / f"part{i}", port=0, policy=ExecutionPolicy(workers=1)
                ).start()
            )
        router = RouterService(
            [DistanceClient(s.url) for s in servers], close_backends=True
        )
        front = SketchQueryServer(router, port=0).start()
        client = DistanceClient(front.url)
        try:
            yield sk, local, router, front, client, servers
        finally:
            front.close()
            local.close()
            for server in servers:
                server.close()

    def test_routed_http_results_match_single_store(self, topology):
        sk, local, router, _, client, _ = topology
        # the router over DistanceClients...
        _assert_router_matches_local(router, local, sk)
        # ...and the full double-hop through the router *server*
        _assert_router_matches_local(client, local, sk)

    def test_router_frontend_health_and_meta(self, topology):
        _, _, _, front, client, servers = topology
        health = client.health()
        assert health["rows"] == 57
        assert health["backends"] == 3
        meta = client.meta()
        assert meta["router"] is True
        assert meta["rows"] == 57
        assert meta["backends"] == [s.url for s in servers]

    def test_bad_query_still_raises_value_error_through_both_hops(self, topology):
        _, _, _, _, client, _ = topology
        with pytest.raises(IndexError, match="out of range"):
            client.execute(PairwiseQuery(indices=(0, 10_000)))
        with pytest.raises(ValueError, match="spanning multiple router backends"):
            client.execute(PairwiseQuery(indices=(0, 56)))

    def test_dead_backend_surfaces_as_502_connection_error(self, topology):
        _, _, _, _, client, servers = topology
        servers[1].close()  # one store server dies; the router stays up
        with pytest.raises(ConnectionError, match="cannot reach"):
            client.execute(NormsQuery())
        # health still answers: a liveness probe must not need every backend
        # (len() of a DistanceClient backend raises, so expect the error)
        with pytest.raises(ConnectionError):
            client.health()
