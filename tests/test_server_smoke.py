"""Network frontend smoke tests: subprocess server + protocol edges.

The acceptance contract: an HTTP client against a server spawned *as a
separate process* over a saved, memory-mapped store returns
**bit-identical** results to local ``execute()`` on the same store —
for top-k, radius and cross — and error behaviour matches local
execution (same exception classes).
"""

import dataclasses
import json
import os
import socket
import struct
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    NormsQuery,
    PairwiseQuery,
    RadiusQuery,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
    wire,
)

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _saved_store(tmp_path, n=40, shard_capacity=7):
    sk = _sketcher()
    rng = np.random.default_rng(3)
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(
        sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=1)
    )
    store.save(tmp_path / "store")
    return sk, tmp_path / "store"


def _assert_remote_matches_local(client, local, sk):
    rng = np.random.default_rng(9)
    query = sk.sketch(rng.standard_normal(128), noise_rng=5)
    batch = sk.sketch_batch(rng.standard_normal((3, 128)), noise_rng=6)

    top_local = local.execute(TopKQuery(queries=query, k=7))
    top_remote = client.execute(TopKQuery(queries=query, k=7))
    assert top_remote.payload == top_local.payload  # labels, estimates: exact
    assert top_remote.stats.shards_visited == top_local.stats.shards_visited

    cutoff = float(np.median([est for _, est in top_local.payload[0]]))
    r_local = local.execute(RadiusQuery(query=query, radius_sq=cutoff))
    r_remote = client.execute(RadiusQuery(query=query, radius_sq=cutoff))
    assert r_remote.payload == r_local.payload

    c_local = local.execute(CrossQuery(queries=batch))
    c_remote = client.execute(CrossQuery(queries=batch))
    assert c_remote.payload.tobytes() == c_local.payload.tobytes()  # bit-identical

    many = client.execute_many([NormsQuery(), PairwiseQuery(indices=(0, 5, 39))])
    np.testing.assert_array_equal(many[0].payload, local.execute(NormsQuery()).payload)
    np.testing.assert_array_equal(
        many[1].payload, local.execute(PairwiseQuery(indices=(0, 5, 39))).payload
    )


class TestSubprocessServer:
    def test_spawned_server_is_bit_identical_to_local_execute(self, tmp_path):
        sk, store_dir = _saved_store(tmp_path)
        local = DistanceService(
            ShardedSketchStore.load(store_dir, mmap=True), ExecutionPolicy(workers=1)
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_SERVING_WORKERS", None)  # the CLI flag decides
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.server",
                "--store",
                str(store_dir),
                "--port",
                "0",
                "--workers",
                "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert " at http://" in banner, f"unexpected server banner: {banner!r}"
            url = banner.rsplit(" at ", 1)[1].strip()
            client = DistanceClient(url, timeout=30.0)
            health = client.health()
            assert health["rows"] == 40
            assert health["config_digest"] == _CONFIG.digest()
            _assert_remote_matches_local(client, local, sk)
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                process.kill()
                process.wait()


class TestInProcessServer:
    @pytest.fixture()
    def served(self, tmp_path):
        sk, store_dir = _saved_store(tmp_path)
        local = DistanceService(
            ShardedSketchStore.load(store_dir, mmap=True), ExecutionPolicy(workers=1)
        )
        with SketchQueryServer.from_store_dir(
            store_dir, port=0, policy=ExecutionPolicy(workers=1)
        ).start() as server:
            yield sk, local, server, DistanceClient(server.url)

    def test_bit_identical_results(self, served):
        sk, local, _, client = served
        _assert_remote_matches_local(client, local, sk)

    def test_len_and_meta(self, served):
        _, local, _, client = served
        assert len(client) == len(local)
        meta = client.meta()
        assert meta["metadata"]["config_digest"] == _CONFIG.digest()
        assert meta["metadata"]["output_dim"] == 64

    def test_remote_errors_match_local_exception_classes(self, served):
        sk, local, _, client = served
        foreign = PrivateSketcher(dataclasses.replace(_CONFIG, seed=99)).sketch(
            np.ones(128), noise_rng=0
        )
        query = TopKQuery(queries=foreign, k=1)
        with pytest.raises(ValueError, match="different configurations"):
            local.execute(query)
        with pytest.raises(ValueError, match="different configurations"):
            client.execute(query)
        with pytest.raises(IndexError, match="out of range"):
            client.execute(PairwiseQuery(indices=(0, 10_000)))

    def test_malformed_body_is_a_wire_error(self, served):
        _, _, server, _ = served
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        error = wire.decode_error(excinfo.value.read())
        assert isinstance(error, wire.WireError)

    def test_version_mismatch_is_rejected(self, served):
        _, _, server, client = served
        envelope = json.loads(wire.encode_query(NormsQuery()).decode())
        envelope["version"] = 999
        request = urllib.request.Request(
            server.url + "/query", data=json.dumps(envelope).encode(), method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "unsupported wire version" in str(wire.decode_error(excinfo.value.read()))

    def test_oversized_body_rejected_and_connection_closed(self, served, monkeypatch):
        # the body is never drained on a 413, so the server must close the
        # keep-alive connection — otherwise the unread bytes would be
        # parsed as the next request line and desynchronize the stream
        import http.client

        from repro.serving import server as server_module

        monkeypatch.setattr(server_module, "MAX_BODY_BYTES", 64)
        _, _, server, _ = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("POST", "/query", body=b"x" * 1024)
            response = connection.getresponse()
            assert response.status == 413
            response.read()
            assert response.will_close  # server told us to drop the connection
        finally:
            connection.close()

    def test_chunked_body_rejected_and_connection_closed(self, served):
        # the stdlib handler cannot dechunk, so a chunked POST must be
        # refused with a close — not leave chunk lines in the stream to
        # be misparsed as the next request
        import http.client

        _, _, server, _ = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/query")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            connection.send(b"5\r\nhello\r\n0\r\n\r\n")
            response = connection.getresponse()
            assert response.status == 501
            assert "Content-Length" in str(wire.decode_error(response.read()))
            assert response.will_close
        finally:
            connection.close()

    def test_negative_content_length_rejected(self, served):
        # a negative length must not become a read-to-EOF that parks the
        # handler thread forever on a keep-alive connection
        import http.client

        _, _, server, _ = served
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/query")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert isinstance(wire.decode_error(response.read()), ValueError)
        finally:
            connection.close()

    def test_oversized_result_rejected_before_allocation(self, served, monkeypatch):
        # a bytes-cheap request must not force a quadratically larger
        # allocation: the server refuses, the client can chunk instead
        from repro.serving import server as server_module

        _, local, _, client = served
        monkeypatch.setattr(server_module, "MAX_RESULT_CELLS", 100)
        big = PairwiseQuery(indices=(0,) * 11)  # 121 cells > 100
        with pytest.raises(ValueError, match="cell limit"):
            client.execute(big)
        with pytest.raises(ValueError, match="cell limit"):
            client.execute_many([NormsQuery(), big])
        assert local.execute(big).payload.shape == (11, 11)  # local: uncapped
        # top-k rankings count too: 40 rows in the store, k capped by n
        sk = _sketcher()
        wide = TopKQuery(queries=sk.sketch_batch(
            np.random.default_rng(1).standard_normal((5, 128)), noise_rng=2
        ), k=1000)  # 5 * min(1000, 40) = 200 cells > 100
        with pytest.raises(ValueError, match="cell limit"):
            client.execute(wide)
        # a /query-many batch is one allocation unit: two under-cap
        # queries whose sum is over the cap are refused together
        medium = PairwiseQuery(indices=(0,) * 8)  # 64 cells each
        with pytest.raises(ValueError, match="cell limit"):
            client.execute_many([medium, medium])
        # norms/radius results cost one entry per stored row each: a
        # batch of them must not slip under the cap as zero cells
        with pytest.raises(ValueError, match="cell limit"):
            client.execute_many([NormsQuery()] * 3)  # 3 * 40 = 120 > 100
        small = PairwiseQuery(indices=(0, 1, 2))
        np.testing.assert_array_equal(
            client.execute(small).payload, local.execute(small).payload
        )

    def test_mid_response_transport_failures_raise_connection_error(self, served, monkeypatch):
        # every checkout hands back a connection that dies mid-exchange:
        # the client must burn its retries and surface ConnectionError,
        # whether the failure is OSError-shaped or HTTPException-shaped
        import http.client

        _, _, server, _ = served
        for exc in (TimeoutError("read timed out"), http.client.IncompleteRead(b"x")):
            client = DistanceClient(server.url, retries=1)

            class _DeadConnection:
                def request(self, *args, _exc=exc, **kwargs):
                    raise _exc

                def close(self):
                    pass

            monkeypatch.setattr(client, "_checkout", _DeadConnection)
            with pytest.raises(ConnectionError, match="cannot reach"):
                client.execute(NormsQuery())
            assert client.retries_used == 1  # retried once, then gave up

    def test_untyped_query_raises_type_error_like_local_execute(self, served):
        sk, local, _, client = served
        not_a_query = sk.sketch(np.ones(128), noise_rng=0)
        with pytest.raises(TypeError, match="typed query"):
            local.execute(not_a_query)
        with pytest.raises(TypeError, match="typed query"):
            client.execute(not_a_query)

    def test_server_fault_raises_connection_error_not_value_error(self, served, monkeypatch):
        # a 500 is a server fault: retry logic must be able to tell it
        # apart from the ValueError a permanently-bad query raises
        _, _, server, client = served

        def explode(query):
            raise RuntimeError("shard file vanished")

        monkeypatch.setattr(server.service, "execute", explode)
        with pytest.raises(ConnectionError, match="HTTP 500"):
            client.execute(NormsQuery())

    def test_unknown_endpoint_404(self, served):
        _, _, server, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_unreachable_server_raises_connection_error(self):
        client = DistanceClient("http://127.0.0.1:9", timeout=2.0)  # discard port
        with pytest.raises(ConnectionError, match="cannot reach"):
            client.execute(NormsQuery())

    def test_empty_execute_many_never_hits_the_wire(self):
        client = DistanceClient("http://127.0.0.1:9", timeout=2.0)
        assert client.execute_many([]) == []


class TestQuantisedStoreServing:
    def test_quantised_store_serves_with_reported_storage(self, tmp_path):
        # the network frontend over a low-precision store: /healthz and
        # /meta report the storage spec and stored-value bytes, and the
        # client's results are bit-identical to local execute() on the
        # same mmap-loaded quantised store
        sk = _sketcher()
        rng = np.random.default_rng(4)
        store = ShardedSketchStore(shard_capacity=7, storage="f4")
        store.add_batch(sk.sketch_batch(rng.standard_normal((40, 128)), noise_rng=1))
        store.save(tmp_path / "store")
        local = DistanceService(
            ShardedSketchStore.load(tmp_path / "store", mmap=True),
            ExecutionPolicy(workers=1),
        )
        with SketchQueryServer.from_store_dir(
            tmp_path / "store", port=0, policy=ExecutionPolicy(workers=1)
        ).start() as server:
            client = DistanceClient(server.url)
            health = client.health()
            assert health["storage"] == "f4"
            meta = client.meta()
            assert meta["storage"] == "f4"
            assert meta["nbytes"] == 40 * 64 * 4  # half of the f8 footprint
            _assert_remote_matches_local(client, local, sk)


class TestServerLifecycle:
    def test_close_without_start_returns_immediately(self, tmp_path):
        # regression: BaseServer.shutdown() waits on an event only a
        # serve_forever loop sets, so close() on a never-started server
        # used to block forever (e.g. in an abort/cleanup path)
        _, store_dir = _saved_store(tmp_path, n=5)
        server = SketchQueryServer.from_store_dir(store_dir, port=0)
        start = time.perf_counter()
        server.close()
        assert time.perf_counter() - start < 5.0

    def test_close_is_idempotent_after_start(self, tmp_path):
        _, store_dir = _saved_store(tmp_path, n=5)
        server = SketchQueryServer.from_store_dir(store_dir, port=0).start()
        server.close()
        server.close()  # second close must not hang or raise


class TestServerOverLiveStores:
    def test_server_wraps_an_in_memory_service_too(self):
        # the frontend is not tied to saved stores: any DistanceService
        # (here: an in-memory store still being appended to) can serve
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(
            sk.sketch_batch(
                np.random.default_rng(0).standard_normal((10, 128)), noise_rng=1
            )
        )
        service = DistanceService(store, ExecutionPolicy(workers=1))
        with SketchQueryServer(service, port=0).start() as server:
            client = DistanceClient(server.url)
            assert len(client) == 10
            store.add_batch(
                sk.sketch_batch(
                    np.random.default_rng(1).standard_normal((5, 128)), noise_rng=2
                )
            )
            assert len(client) == 15  # appends visible through the frontend
            query = sk.sketch(np.ones(128), noise_rng=3)
            remote = client.execute(TopKQuery(queries=query, k=15))
            local = service.execute(TopKQuery(queries=query, k=15))
            assert remote.payload == local.payload


def _ipv6_loopback_available() -> bool:
    if not socket.has_ipv6:
        return False
    try:
        probe = socket.socket(socket.AF_INET6, socket.SOCK_STREAM)
        try:
            probe.bind(("::1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


class TestAdvertisedUrl:
    """The URL line is machine-parsed: it must always be connectable."""

    def test_wildcard_bind_advertises_loopback_not_0000(self, tmp_path):
        # regression: --host 0.0.0.0 used to print http://0.0.0.0:PORT,
        # which launchers would then fail to connect to
        _, store_dir = _saved_store(tmp_path, n=5)
        with SketchQueryServer.from_store_dir(
            store_dir, host="0.0.0.0", port=0
        ).start() as server:
            assert server.host == "127.0.0.1"
            assert server.url == f"http://127.0.0.1:{server.port}"
            client = DistanceClient(server.url)
            assert client.health()["status"] == "ok"  # the URL really connects

    @pytest.mark.skipif(
        not _ipv6_loopback_available(), reason="no IPv6 loopback on this host"
    )
    def test_ipv6_host_is_bracketed_and_connectable(self, tmp_path):
        # regression: an IPv6 bind used to render http://::1:PORT, which
        # no URL parser reads back (the colons swallow the port)
        _, store_dir = _saved_store(tmp_path, n=5)
        with SketchQueryServer.from_store_dir(
            store_dir, host="::1", port=0
        ).start() as server:
            assert server.url == f"http://[::1]:{server.port}"
            client = DistanceClient(server.url)
            assert client.health()["rows"] == 5

    @pytest.mark.skipif(
        not _ipv6_loopback_available(), reason="no IPv6 loopback on this host"
    )
    def test_ipv6_wildcard_advertises_bracketed_loopback(self, tmp_path):
        _, store_dir = _saved_store(tmp_path, n=5)
        with SketchQueryServer.from_store_dir(
            store_dir, host="::", port=0
        ).start() as server:
            assert server.url == f"http://[::1]:{server.port}"
            client = DistanceClient(server.url)
            assert client.health()["rows"] == 5


class TestClientDisconnects:
    """A client hanging up is routine, not a server fault."""

    @pytest.fixture()
    def served(self, tmp_path):
        sk, store_dir = _saved_store(tmp_path)
        local = DistanceService(
            ShardedSketchStore.load(store_dir, mmap=True), ExecutionPolicy(workers=1)
        )
        with SketchQueryServer.from_store_dir(
            store_dir, port=0, policy=ExecutionPolicy(workers=1)
        ).start() as server:
            yield sk, local, server, DistanceClient(server.url)

    def test_mid_request_disconnect_is_quiet_and_server_survives(self, served, capfd):
        # a client that dies mid-body used to make the handler thread
        # print a full traceback per disconnect; the reset must be
        # swallowed and the server must keep answering
        _, _, server, client = served
        body = wire.encode_query(NormsQuery())
        for sent in (0, len(body) // 2):  # die before and mid-body
            raw = socket.create_connection((server.host, server.port), timeout=10)
            try:
                head = (
                    f"POST /query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
                raw.sendall(head + body[:sent])
                # SO_LINGER(1, 0) turns close() into a hard RST — the
                # worst-case disconnect, mid-read on the server side
                raw.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            finally:
                raw.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:  # let the handler threads hit the reset
            if client.health()["status"] == "ok":
                break
        assert client.health()["status"] == "ok"
        assert client.execute(NormsQuery()).payload.shape == (40,)
        captured = capfd.readouterr()
        assert "Traceback" not in captured.err, captured.err


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"), reason="needs SO_REUSEPORT"
)
class TestMultiProcessServer:
    def test_workers_share_one_port_and_match_local(self, tmp_path):
        sk, store_dir = _saved_store(tmp_path)
        local = DistanceService(
            ShardedSketchStore.load(store_dir, mmap=True), ExecutionPolicy(workers=1)
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_SERVING_WORKERS", None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.server",
                "--store",
                str(store_dir),
                "--port",
                "0",
                "--processes",
                "2",
                "--cache",
                "64",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert " at http://" in banner, f"unexpected server banner: {banner!r}"
            assert "2 processes" in banner
            url = banner.rsplit(" at ", 1)[1].strip()
            client = DistanceClient(url, timeout=30.0)
            health = client.health()
            assert health["rows"] == 40
            assert health["cache"]["max_entries"] == 64
            _assert_remote_matches_local(client, local, sk)
            # the banner is printed only after every worker accepts, and
            # the kernel spreads fresh connections across them: distinct
            # pids prove both workers really share the port
            pids = set()
            for _ in range(32):
                with DistanceClient(url, pool_size=0) as probe:
                    pids.add(probe.health()["pid"])
                if len(pids) >= 2:
                    break
            assert len(pids) >= 2, f"all connections landed on one worker: {pids}"
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                process.kill()
                process.wait()
