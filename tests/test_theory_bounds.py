"""Unit tests for repro.theory.bounds (dimensions and crossovers)."""

import math

import pytest

from repro.theory.bounds import (
    fjlt_density,
    fjlt_speed_window,
    fjlt_time,
    jl_output_dimension,
    laplace_beats_gaussian,
    laplace_beats_gaussian_threshold,
    optimal_output_dimension,
    sjlt_beats_fjlt_threshold,
    sjlt_beats_iid_threshold,
    sjlt_dimensions,
    sjlt_sparsity,
    sjlt_time,
)


class TestDimensions:
    def test_k_scales_inverse_alpha_squared(self):
        k1 = jl_output_dimension(0.2, 0.05)
        k2 = jl_output_dimension(0.1, 0.05)
        assert k2 == pytest.approx(4 * k1, rel=0.05)

    def test_k_scales_log_beta(self):
        k1 = jl_output_dimension(0.2, 0.1)
        k2 = jl_output_dimension(0.2, 0.01)
        assert k2 == pytest.approx(2 * k1, rel=0.05)

    def test_k_independent_of_d(self):
        # the Jayram-Nelson optimality: no d anywhere in the signature
        assert jl_output_dimension(0.2, 0.05) == jl_output_dimension(0.2, 0.05)

    def test_s_scales_inverse_alpha(self):
        s1 = sjlt_sparsity(0.2, 0.05)
        s2 = sjlt_sparsity(0.1, 0.05)
        assert s2 == pytest.approx(2 * s1, rel=0.1)

    def test_s_below_k(self):
        k, s = sjlt_dimensions(0.25, 0.05)
        assert 1 <= s <= k

    def test_block_divisibility(self):
        for alpha in (0.1, 0.2, 0.3, 0.45):
            for beta in (0.01, 0.05, 0.2):
                k, s = sjlt_dimensions(alpha, beta)
                assert k % s == 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            jl_output_dimension(0.6, 0.05)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            sjlt_sparsity(0.2, 0.0)


class TestFJLTDensity:
    def test_capped_at_one(self):
        assert fjlt_density(2, 0.05) == 1.0

    def test_decays_with_d(self):
        assert fjlt_density(10000, 0.05) < fjlt_density(1000, 0.05)

    def test_scales_log_squared(self):
        q1 = fjlt_density(100000, 0.1)
        q2 = fjlt_density(100000, 0.01)
        assert q2 / q1 == pytest.approx(4.0, rel=0.01)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            fjlt_density(0, 0.05)


class TestCrossovers:
    def test_note5_threshold_formula(self):
        # delta* = exp(-Delta1^2/Delta2^2)
        assert laplace_beats_gaussian_threshold(2.0, 1.0) == pytest.approx(math.exp(-4.0))

    def test_note5_rule_below_threshold(self):
        assert laplace_beats_gaussian(1e-10, 2.0, 1.0)

    def test_note5_rule_above_threshold(self):
        assert not laplace_beats_gaussian(0.1, 2.0, 1.0)

    def test_note5_pure_dp_forces_laplace(self):
        assert laplace_beats_gaussian(0.0, 100.0, 1.0)

    def test_sjlt_beats_iid_is_exp_minus_s(self):
        assert sjlt_beats_iid_threshold(8) == pytest.approx(math.exp(-8.0))

    def test_sjlt_beats_fjlt_scales_with_sk_over_d(self):
        t1 = sjlt_beats_fjlt_threshold(8, 64, 256)
        t2 = sjlt_beats_fjlt_threshold(8, 64, 512)
        assert t2 > t1  # larger d -> easier for SJLT

    def test_threshold_input_validation(self):
        with pytest.raises(ValueError):
            sjlt_beats_iid_threshold(0)
        with pytest.raises(ValueError):
            sjlt_beats_fjlt_threshold(1, 0, 1)


class TestSpeedWindow:
    def test_window_ordering(self):
        low, high = fjlt_speed_window(0.1, 0.05)
        assert low < high

    def test_low_end_formula(self):
        low, _ = fjlt_speed_window(0.1, 0.05)
        assert low == pytest.approx(math.log(20.0) ** 2 / 0.1)

    def test_high_end_grows_with_smaller_alpha(self):
        _, h1 = fjlt_speed_window(0.2, 0.05)
        _, h2 = fjlt_speed_window(0.1, 0.05)
        assert h2 > h1

    def test_time_models_cross(self):
        # inside the window the FJLT model cost is below the SJLT's
        alpha, beta = 0.05, 0.01
        low, high = fjlt_speed_window(alpha, beta)
        mid = int(math.sqrt(low * high))
        assert fjlt_time(mid, alpha, beta) < sjlt_time(mid, alpha, beta)


class TestOptimalK:
    def test_formula(self):
        # k* = nu / sqrt(m4 + m2^2)
        assert optimal_output_dimension(100.0, 2.0, 12.0) == round(100.0 / 4.0)

    def test_at_least_one(self):
        assert optimal_output_dimension(1e-6, 10.0, 10.0) == 1

    def test_grows_with_distance(self):
        small = optimal_output_dimension(10.0, 1.0, 1.0)
        large = optimal_output_dimension(1000.0, 1.0, 1.0)
        assert large > small

    def test_shrinks_with_noise(self):
        quiet = optimal_output_dimension(100.0, 0.5, 0.5)
        loud = optimal_output_dimension(100.0, 5.0, 50.0)
        assert loud < quiet
