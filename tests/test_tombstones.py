"""Tombstone deletion: invisibility, bit-identity, persistence, physical drop.

``ShardedSketchStore.delete`` marks rows dead without touching the
published values (PR 7's LSM tentpole).  The contracts under test:

* deleted rows vanish from every query kind, and the *survivors'*
  estimates are bit-identical to what they were before the deletion —
  distance blocks still run over the full shard, dead entries are
  discarded after the GEMM, so no float changes;
* tombstones persist through ``save``/``load`` via the manifest;
* ``compact()`` physically drops the rows (labels included), clears
  the tombstone set and bumps the generation;
* ``merge()`` skips tombstoned rows on the way through.

Deletion never refunds privacy budget — the DP argument lives in the
:mod:`repro.serving.store` module docstring; here we only check the
accounting surface (``live_row_count``, ``describe``) tells the truth.
"""

import json

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    NormsQuery,
    PairwiseQuery,
    RadiusQuery,
    ShardedSketchStore,
    TopKQuery,
)
from tests.helpers import scan_jitter_atol

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=7)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 64)), noise_rng=seed, labels=labels)


def _store(n=14, shard_capacity=4, seed=1):
    sk = _sketcher()
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(_batch(sk, n, seed, labels=tuple(f"row-{i}" for i in range(n))))
    return store, sk


def _stacked(store):
    return np.concatenate([store.shard_values(i) for i in range(store.n_shards)])


class TestDeleteSemantics:
    def test_a_single_string_label_is_one_label_not_an_iterable(self):
        store, _ = _store()
        assert store.delete("row-3") == 1
        assert store.tombstones == (3,)

    def test_an_iterable_tombstones_every_named_row(self):
        store, _ = _store()
        assert store.delete(["row-1", "row-5", "row-13"]) == 3
        assert store.tombstones == (1, 5, 13)

    def test_unknown_labels_raise_keyerror_naming_them(self):
        store, _ = _store()
        with pytest.raises(KeyError, match="row-99"):
            store.delete(["row-2", "row-99"])
        # the failed call tombstoned nothing: missing labels are
        # detected before any mutation
        assert store.tombstones == ()

    def test_redeleting_is_a_noop_counting_only_new_rows(self):
        store, _ = _store()
        assert store.delete("row-4") == 1
        assert store.delete(["row-4", "row-6"]) == 1
        assert store.tombstones == (4, 6)

    def test_duplicate_labels_tombstone_all_their_rows(self):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=4)
        store.add_batch(_batch(sk, 3, 9, labels=("dup", "dup", "solo")))
        assert store.delete("dup") == 2
        assert store.tombstones == (0, 1)

    def test_empty_iterable_deletes_nothing(self):
        store, _ = _store()
        assert store.delete([]) == 0
        assert store.tombstones == ()

    def test_accounting_surface_reports_live_rows(self):
        store, _ = _store(n=10)
        store.delete(["row-0", "row-9"])
        assert len(store) == 10  # physical rows, unchanged
        assert store.live_row_count == 8
        assert store.describe()["tombstones"] == 2


class TestQueryInvisibility:
    """Survivor estimates are bit-identical before and after delete."""

    DEAD = ["row-2", "row-5", "row-13"]

    @pytest.fixture()
    def setup(self):
        store, sk = _store(n=14)
        service = DistanceService(store)
        queries = _batch(sk, 3, 2)
        return store, service, queries

    def _live(self, store):
        return np.delete(np.arange(len(store)), list(store.tombstones))

    def test_cross_matrix_drops_exactly_the_dead_columns(self, setup):
        store, service, queries = setup
        before = service.execute(CrossQuery(queries=queries)).payload
        store.delete(self.DEAD)
        after = service.execute(CrossQuery(queries=queries)).payload
        np.testing.assert_array_equal(after, before[:, self._live(store)])

    def test_norms_drop_exactly_the_dead_entries(self, setup):
        store, service, _ = setup
        before = service.execute(NormsQuery()).payload
        store.delete(self.DEAD)
        after = service.execute(NormsQuery()).payload
        np.testing.assert_array_equal(after, before[self._live(store)])

    def test_top_k_is_the_old_ranking_minus_the_dead(self, setup):
        store, service, queries = setup
        before = service.execute(TopKQuery(queries=queries, k=len(store))).payload
        store.delete(self.DEAD)
        live = store.live_row_count
        after = service.execute(TopKQuery(queries=queries, k=live)).payload
        dead = set(self.DEAD)
        for old, new in zip(before, after):
            survivors = [pair for pair in old if pair[0] not in dead]
            assert new == survivors  # labels AND estimates, bit-exact

    def test_radius_is_the_old_hit_list_minus_the_dead(self, setup):
        store, service, queries = setup
        radius_sq = 1e9  # everything is a hit; ordering carries the signal
        before = service.execute(
            RadiusQuery(query=queries[0], radius_sq=radius_sq)
        ).payload
        store.delete(self.DEAD)
        after = service.execute(
            RadiusQuery(query=queries[0], radius_sq=radius_sq)
        ).payload
        dead = set(self.DEAD)
        assert after == [pair for pair in before if pair[0] not in dead]

    def test_pairwise_renumbers_over_the_live_sequence(self, setup):
        # pairwise *gathers* the addressed rows into a fresh matrix, so
        # the post-delete GEMM runs at a different shape — that is scan
        # jitter (ulp-level), not the masked-scan bit-identity the
        # other kinds get
        store, service, _ = setup
        n = len(store)
        before = service.execute(PairwiseQuery(indices=range(n))).payload
        store.delete(self.DEAD)
        live = self._live(store)
        after = service.execute(
            PairwiseQuery(indices=range(store.live_row_count))
        ).payload
        rows = _stacked(store)[live]
        atol = scan_jitter_atol(store, rows, rows)
        np.testing.assert_allclose(
            after, before[np.ix_(live, live)], atol=atol, rtol=0.0
        )

    def test_pairwise_indices_range_shrinks_to_live_rows(self, setup):
        store, service, _ = setup
        store.delete(self.DEAD)
        with pytest.raises(IndexError, match="out of range"):
            service.execute(PairwiseQuery(indices=[store.live_row_count]))


class TestPersistence:
    def test_tombstones_survive_save_load(self, tmp_path):
        store, _ = _store()
        store.delete(["row-3", "row-7"])
        store.save(tmp_path / "store")
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["tombstones"] == [3, 7]
        for mmap in (False, True):
            loaded = ShardedSketchStore.load(tmp_path / "store", mmap=mmap)
            assert loaded.tombstones == (3, 7)
            assert loaded.live_row_count == store.live_row_count
            assert loaded.labels == store.labels

    def test_a_clean_store_writes_no_tombstone_key(self, tmp_path):
        store, _ = _store()
        store.save(tmp_path / "store")
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert "tombstones" not in manifest

    def test_out_of_range_manifest_tombstones_are_rejected(self, tmp_path):
        store, _ = _store()
        store.save(tmp_path / "store")
        path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["tombstones"] = [999]
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="tombstones"):
            ShardedSketchStore.load(tmp_path / "store")

    def test_saved_tombstones_are_invisible_after_reload(self, tmp_path):
        store, sk = _store()
        queries = _batch(sk, 2, 3)
        before = DistanceService(store).execute(CrossQuery(queries=queries)).payload
        store.delete(["row-0", "row-11"])
        store.save(tmp_path / "store")
        loaded = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        after = DistanceService(loaded).execute(CrossQuery(queries=queries)).payload
        live = np.delete(np.arange(len(store)), [0, 11])
        np.testing.assert_array_equal(after, before[:, live])


class TestCompactDropsTombstones:
    def test_compact_drops_rows_labels_and_clears_tombstones(self):
        store, _ = _store(n=14)
        survivors = _stacked(store)
        store.delete(["row-2", "row-5", "row-13"])
        survivors = np.delete(survivors, [2, 5, 13], axis=0)
        assert store.generation == 0
        store.compact()
        assert store.generation == 1
        assert store.tombstones == ()
        assert len(store) == store.live_row_count == 11
        assert "row-2" not in store.labels and "row-13" not in store.labels
        np.testing.assert_array_equal(_stacked(store), survivors)

    def test_survivor_results_match_across_the_compaction(self):
        # physical repacking shifts shard membership, so the GEMM edge
        # kernels may differ by an ulp — scan_jitter_atol, not exact
        store, sk = _store(n=14)
        service = DistanceService(store)
        queries = _batch(sk, 3, 4)
        store.delete(["row-2", "row-5", "row-13"])
        before = service.execute(CrossQuery(queries=queries)).payload
        stored = _stacked(store)
        store.compact()
        after = service.execute(CrossQuery(queries=queries)).payload
        atol = scan_jitter_atol(store, queries.values, stored)
        np.testing.assert_allclose(after, before, atol=atol, rtol=0.0)
        ranked = service.execute(TopKQuery(queries=queries, k=3)).payload
        assert all(len(r) == 3 for r in ranked)

    def test_merge_skips_tombstoned_rows(self):
        sk = _sketcher()
        a = ShardedSketchStore(shard_capacity=4)
        a.add_batch(_batch(sk, 6, 1, labels=tuple(f"a-{i}" for i in range(6))))
        b = ShardedSketchStore(shard_capacity=4)
        b.add_batch(_batch(sk, 5, 2, labels=tuple(f"b-{i}" for i in range(5))))
        expect = np.concatenate(
            [
                np.delete(_stacked(a), [1, 4], axis=0),
                np.delete(_stacked(b), [0], axis=0),
            ]
        )
        a.delete(["a-1", "a-4"])
        b.delete("b-0")
        merged = ShardedSketchStore.merge(a, b)
        assert merged.tombstones == ()
        assert len(merged) == 8
        assert list(merged.labels) == [
            "a-0", "a-2", "a-3", "a-5", "b-1", "b-2", "b-3", "b-4",
        ]
        np.testing.assert_array_equal(_stacked(merged), expect)
