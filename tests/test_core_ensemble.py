"""Tests for the median-of-estimates ensemble sketcher."""

import math

import numpy as np
import pytest

from repro.core.ensemble import EnsembleSketch, EnsembleSketcher
from repro.core.sketch import SketchConfig
from repro.workloads import pair_at_distance

_CONFIG = SketchConfig(input_dim=128, epsilon=3.0, output_dim=32, sparsity=4, seed=5)


class TestBudgetSplit:
    def test_total_guarantee_matches_config(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=3)
        assert ensemble.guarantee.epsilon == pytest.approx(3.0)
        assert ensemble.guarantee.delta == pytest.approx(0.0)

    def test_member_budget_is_fraction(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=3)
        for member in ensemble.members:
            assert member.guarantee.epsilon == pytest.approx(1.0)

    def test_delta_split_too(self):
        config = SketchConfig(input_dim=64, epsilon=2.0, delta=4e-6, output_dim=16,
                              sparsity=4, noise="gaussian")
        ensemble = EnsembleSketcher(config, repetitions=4)
        assert ensemble.guarantee.delta == pytest.approx(4e-6)
        assert ensemble.members[0].guarantee.delta == pytest.approx(1e-6)

    def test_members_use_distinct_transforms(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=3)
        x = np.ones(128)
        projections = [m.project(x) for m in ensemble.members]
        assert not np.allclose(projections[0], projections[1])
        assert not np.allclose(projections[1], projections[2])

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            EnsembleSketcher(_CONFIG, repetitions=0)


class TestSketching:
    def test_sketch_has_r_members(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=4)
        sketch = ensemble.sketch(np.ones(128), noise_rng=1)
        assert sketch.repetitions == 4

    def test_reproducible_with_seeded_noise(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=2)
        a = ensemble.sketch(np.ones(128), noise_rng=9)
        b = ensemble.sketch(np.ones(128), noise_rng=9)
        for sa, sb in zip(a.sketches, b.sketches):
            assert np.allclose(sa.values, sb.values)

    def test_serialization_roundtrip(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=3)
        original = ensemble.sketch(np.arange(128, dtype=float), noise_rng=2)
        restored = EnsembleSketch.from_bytes(original.to_bytes())
        assert restored.repetitions == 3
        for sa, sb in zip(original.sketches, restored.sketches):
            assert np.allclose(sa.values, sb.values)

    def test_corrupt_blob_rejected(self):
        ensemble = EnsembleSketcher(_CONFIG, repetitions=2)
        blob = ensemble.sketch(np.ones(128)).to_bytes()
        with pytest.raises(ValueError):
            EnsembleSketch.from_bytes(blob + b"xx")


class TestEstimation:
    def test_median_of_member_estimates(self):
        from repro.core import estimators

        ensemble = EnsembleSketcher(_CONFIG, repetitions=3)
        a = ensemble.sketch(np.ones(128), noise_rng=1)
        b = ensemble.sketch(np.zeros(128), noise_rng=2)
        member_estimates = sorted(
            estimators.estimate_sq_distance(sa, sb)
            for sa, sb in zip(a.sketches, b.sketches)
        )
        assert ensemble.estimate_sq_distance(a, b) == pytest.approx(member_estimates[1])

    def test_mean_combiner_unbiased(self):
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(128, 6.0, rng)
        estimates = []
        for seed in range(300):
            import dataclasses

            ensemble = EnsembleSketcher(
                dataclasses.replace(_CONFIG, seed=seed), repetitions=3
            )
            a = ensemble.sketch(x, noise_rng=rng)
            b = ensemble.sketch(y, noise_rng=rng)
            estimates.append(ensemble.estimate_sq_distance_mean(a, b))
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 36.0) < 5 * stderr

    def test_median_reduces_tail_mass(self):
        """The point of the ensemble: fewer wild estimates than a single
        sketcher at the same total epsilon."""
        rng = np.random.default_rng(1)
        x, y = pair_at_distance(128, 6.0, rng)
        true = 36.0
        import dataclasses

        single_err, ensemble_err = [], []
        for seed in range(200):
            single = EnsembleSketcher(dataclasses.replace(_CONFIG, seed=seed), repetitions=1)
            a, b = single.sketch(x, noise_rng=rng), single.sketch(y, noise_rng=rng)
            single_err.append(abs(single.estimate_sq_distance(a, b) - true))
            boosted = EnsembleSketcher(dataclasses.replace(_CONFIG, seed=seed), repetitions=5)
            a, b = boosted.sketch(x, noise_rng=rng), boosted.sketch(y, noise_rng=rng)
            ensemble_err.append(abs(boosted.estimate_sq_distance(a, b) - true))
        # compare the 95th percentile (tail), not the mean: the ensemble
        # pays 5x noise per member but kills the extreme quantiles of a
        # *heavier* single-shot distribution less often than it helps; at
        # minimum the worst case must not explode
        q95_single = float(np.quantile(single_err, 0.95))
        q95_ensemble = float(np.quantile(ensemble_err, 0.95))
        assert q95_ensemble < 25 * q95_single

    def test_size_mismatch_rejected(self):
        big = EnsembleSketcher(_CONFIG, repetitions=3)
        small = EnsembleSketcher(_CONFIG, repetitions=2)
        a = big.sketch(np.ones(128))
        b = small.sketch(np.ones(128))
        with pytest.raises(ValueError, match="ensemble size"):
            big.estimate_sq_distance(a, b)


class TestConfidenceIntervals:
    def test_interval_contains_estimate(self):
        from repro.core.sketch import PrivateSketcher

        sk = PrivateSketcher(_CONFIG)
        a, b = sk.sketch(np.ones(128), noise_rng=1), sk.sketch(np.zeros(128), noise_rng=2)
        lo, hi = sk.distance_confidence_interval(a, b, failure_prob=0.1)
        est = sk.estimate_sq_distance(a, b)
        assert lo <= est <= hi

    def test_interval_narrows_with_failure_prob(self):
        from repro.core.sketch import PrivateSketcher

        sk = PrivateSketcher(_CONFIG)
        a, b = sk.sketch(np.ones(128), noise_rng=1), sk.sketch(np.zeros(128), noise_rng=2)
        lo1, hi1 = sk.distance_confidence_interval(a, b, failure_prob=0.01)
        lo2, hi2 = sk.distance_confidence_interval(a, b, failure_prob=0.5)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_coverage_conservative(self):
        """Chebyshev coverage should exceed the nominal level."""
        import dataclasses

        from repro.core.sketch import PrivateSketcher

        rng = np.random.default_rng(2)
        x, y = pair_at_distance(128, 8.0, rng)
        true = 64.0
        covered = 0
        trials = 200
        for seed in range(trials):
            sk = PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))
            a, b = sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
            lo, hi = sk.distance_confidence_interval(a, b, failure_prob=0.1)
            covered += lo <= true <= hi
        assert covered / trials >= 0.85

    def test_chebyshev_validation(self):
        from repro.core.variance import chebyshev_interval

        with pytest.raises(ValueError):
            chebyshev_interval(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            chebyshev_interval(0.0, -1.0, 0.1)


class TestInnerProductVariance:
    def test_bound_holds_empirically(self):
        from repro.core import estimators
        from repro.core.sketch import PrivateSketcher
        from repro.core.variance import inner_product_variance_bound
        import dataclasses

        rng = np.random.default_rng(3)
        x = rng.standard_normal(128)
        y = rng.standard_normal(128)
        values = []
        for seed in range(600):
            sk = PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))
            values.append(
                estimators.estimate_inner_product(
                    sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
                )
            )
        sk = PrivateSketcher(_CONFIG)
        bound = inner_product_variance_bound(
            sk.output_dim, float(x @ x), float(y @ y), float(x @ y),
            sk.noise.second_moment,
        )
        assert np.var(values) <= 1.2 * bound

    def test_bound_structure(self):
        from repro.core.variance import inner_product_variance_bound

        # k m2^2 term dominates at x = y = 0
        assert inner_product_variance_bound(10, 0.0, 0.0, 0.0, 2.0) == pytest.approx(40.0)
