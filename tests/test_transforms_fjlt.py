"""Tests for the Fast Johnson-Lindenstrauss Transform."""

import numpy as np
import pytest

from repro.transforms.fjlt import FJLT


class TestConstruction:
    def test_padding_to_power_of_two(self):
        t = FJLT(100, 16, seed=0)
        assert t.padded_dim == 128

    def test_no_padding_when_power(self):
        t = FJLT(64, 16, seed=0)
        assert t.padded_dim == 64

    def test_density_default_from_theory(self):
        t = FJLT(4096, 16, seed=0, beta=0.05)
        assert 0 < t.density < 0.01

    def test_density_override(self):
        t = FJLT(64, 16, seed=0, density=0.5)
        assert t.density == 0.5

    def test_density_validated(self):
        with pytest.raises(ValueError):
            FJLT(64, 16, seed=0, density=0.0)
        with pytest.raises(ValueError):
            FJLT(64, 16, seed=0, density=1.5)

    def test_nnz_close_to_expectation(self):
        t = FJLT(256, 64, seed=0, density=0.2)
        expected = 0.2 * 256 * 64
        assert abs(t.nnz - expected) < 4 * np.sqrt(expected)

    def test_theoretical_cost_positive(self):
        assert FJLT(128, 16, seed=0).theoretical_apply_cost() > 0


class TestProjection:
    def test_lpp_normalized(self):
        x = np.random.default_rng(0).standard_normal(96)
        ratios = []
        for seed in range(400):
            y = FJLT(96, 32, seed=seed).apply(x)
            ratios.append(float(y @ y) / float(x @ x))
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.08)

    def test_unnormalized_scales_by_k(self):
        x = np.random.default_rng(1).standard_normal(64)
        k = 32
        ratios = []
        for seed in range(400):
            y = FJLT(64, k, seed=seed, normalized=False).apply(x)
            ratios.append(float(y @ y) / float(x @ x))
        assert np.mean(ratios) == pytest.approx(k, rel=0.1)

    def test_normalized_is_unnormalized_over_sqrt_k(self):
        x = np.random.default_rng(2).standard_normal(64)
        a = FJLT(64, 16, seed=5, normalized=True).apply(x)
        b = FJLT(64, 16, seed=5, normalized=False).apply(x)
        assert np.allclose(a, b / 4.0)

    def test_padding_invisible_to_caller(self):
        """A d=100 input uses only its own 100 coordinates."""
        t = FJLT(100, 16, seed=0)
        x = np.random.default_rng(3).standard_normal(100)
        assert t.apply(x).shape == (16,)
        dense = t.to_dense()
        assert dense.shape == (16, 100)
        assert np.allclose(dense @ x, t.apply(x))

    def test_matches_explicit_phd_product(self):
        """Phi = P H D reproduced entry by entry from the stages."""
        from repro.transforms.hadamard import hadamard_matrix

        d, k = 32, 8
        t = FJLT(d, k, seed=7, normalized=False)
        p = np.zeros((k, d))
        np.add.at(p, (t._p_rows, t._p_cols), t._p_values)
        h = hadamard_matrix(d, normalized=True)
        diag = np.diag(t._diagonal_signs)
        phi = p @ h @ diag
        x = np.random.default_rng(4).standard_normal(d)
        assert np.allclose(phi @ x, t.apply(x), atol=1e-9)


class TestVarianceBound:
    def test_lemma7_bound(self):
        """Var[1/k ||Phi x||^2] <= 3/k ||x||^4 (Lemma 7)."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal(128)
        k = 64
        values = []
        for seed in range(1200):
            y = FJLT(128, k, seed=seed).apply(x)
            values.append(float(y @ y))
        x_sq = float(x @ x)
        assert np.var(values) <= 1.15 * 3.0 / k * x_sq**2


class TestSensitivity:
    def test_l2_sensitivity_concentrates_near_one(self):
        values = [FJLT(128, 64, seed=s).sensitivity(2) for s in range(20)]
        assert 0.7 < float(np.mean(values)) < 1.6

    def test_sensitivity_random_across_seeds(self):
        values = {round(FJLT(64, 32, seed=s).sensitivity(2), 8) for s in range(10)}
        assert len(values) > 1

    def test_no_closed_form(self):
        assert not FJLT(64, 32, seed=0).has_closed_form_sensitivity

class TestHadamardPadSkip:
    """Power-of-two inputs skip the zero-pad buffer without changing output."""

    def test_power_of_two_matches_padded_reference(self):
        from repro.transforms.hadamard import fwht

        t = FJLT(64, 16, seed=3, density=0.5)
        X = np.random.default_rng(0).standard_normal((5, 64))
        got = t._hadamard_stage(X)
        # the generic path: explicit zero-pad buffer + in-place sign multiply
        padded = np.zeros((5, t.padded_dim))
        padded[:, :64] = X
        padded *= t._diagonal_signs[np.newaxis, :]
        np.testing.assert_array_equal(got, fwht(padded, normalized=True))

    def test_input_batch_not_mutated(self):
        t = FJLT(64, 16, seed=3, density=0.5)
        X = np.random.default_rng(1).standard_normal((4, 64))
        before = X.copy()
        t._hadamard_stage(X)
        np.testing.assert_array_equal(X, before)

    def test_apply_agrees_across_padded_and_unpadded_dims(self):
        # the padded path must still behave: projections match to_dense
        for dim in (64, 100):
            t = FJLT(dim, 8, seed=7, density=0.5)
            x = np.random.default_rng(2).standard_normal(dim)
            np.testing.assert_allclose(t.apply(x), t.to_dense() @ x, atol=1e-9)
