"""Unit tests for the k-wise independent hash families."""

import numpy as np
import pytest

from repro.hashing.kwise import (
    MERSENNE_PRIME_31,
    KWiseHash,
    SignHash,
    hash_family,
    sign_family,
)


class TestKWiseHash:
    def test_range_respected(self):
        h = KWiseHash(4, 10, rng=0)
        out = h(np.arange(5000))
        assert out.min() >= 0 and out.max() < 10

    def test_deterministic_given_rng_seed(self):
        a = KWiseHash(4, 100, rng=3)(np.arange(100))
        b = KWiseHash(4, 100, rng=3)(np.arange(100))
        assert (a == b).all()

    def test_scalar_input_returns_int(self):
        h = KWiseHash(3, 7, rng=1)
        value = h(5)
        assert isinstance(value, int)
        assert 0 <= value < 7

    def test_scalar_matches_vector(self):
        h = KWiseHash(3, 7, rng=1)
        vec = h(np.arange(20))
        for j in range(20):
            assert h(j) == vec[j]

    def test_roughly_uniform(self):
        h = KWiseHash(4, 8, rng=2)
        out = h(np.arange(80000))
        counts = np.bincount(out, minlength=8)
        # each bucket expects 10000; allow 5% deviation
        assert np.all(np.abs(counts - 10000) < 500)

    def test_pairwise_collision_rate(self):
        h = KWiseHash(2, 64, rng=5)
        out = h(np.arange(2000))
        collisions = 0
        pairs = 0
        for i in range(0, 2000, 40):
            for j in range(i + 1, 2000, 40):
                pairs += 1
                collisions += out[i] == out[j]
        rate = collisions / pairs
        assert rate < 3.0 / 64  # ~1/64 expected

    def test_rejects_negative_keys(self):
        h = KWiseHash(2, 4, rng=0)
        with pytest.raises(ValueError, match="non-negative"):
            h(np.array([-1]))

    def test_rejects_float_keys(self):
        h = KWiseHash(2, 4, rng=0)
        with pytest.raises(TypeError):
            h(np.array([1.5]))

    def test_invalid_independence(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 4, rng=0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            KWiseHash(2, 0, rng=0)
        with pytest.raises(ValueError):
            KWiseHash(2, MERSENNE_PRIME_31 + 1, rng=0)

    def test_independent_functions_differ(self):
        fam = hash_family(4, 3, 1000, rng=7)
        outs = [h(np.arange(200)) for h in fam]
        for i in range(len(outs)):
            for j in range(i + 1, len(outs)):
                assert not (outs[i] == outs[j]).all()


class TestSignHash:
    def test_values_are_pm_one(self):
        s = SignHash(4, rng=0)
        out = s(np.arange(1000))
        assert set(np.unique(out)) <= {-1, 1}

    def test_scalar_sign(self):
        s = SignHash(4, rng=0)
        assert s(3) in (-1, 1)

    def test_balanced(self):
        s = SignHash(4, rng=1)
        out = s(np.arange(40000))
        assert abs(out.mean()) < 0.02

    def test_independence_property_exposed(self):
        s = SignHash(6, rng=0)
        assert s.independence == 6

    def test_family_members_distinct(self):
        fam = sign_family(3, 4, rng=9)
        outs = [f(np.arange(500)) for f in fam]
        assert not (outs[0] == outs[1]).all()
        assert not (outs[1] == outs[2]).all()

    def test_pairwise_products_near_zero_mean(self):
        # 4-wise independence implies pairwise independence of signs.
        s = SignHash(4, rng=3)
        out = s(np.arange(20000))
        prod = out[:-1] * out[1:]
        assert abs(prod.mean()) < 0.03
