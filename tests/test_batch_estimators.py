"""Statistical and structural tests for the matrix-shaped estimators."""

import dataclasses

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchBatch, SketchConfig
from repro.core.variance import chebyshev_interval
from repro.workloads import pair_at_distance

_CONFIG = SketchConfig(input_dim=64, epsilon=2.0, output_dim=32, sparsity=4)


def _sketcher(seed=0):
    return PrivateSketcher(dataclasses.replace(_CONFIG, seed=seed))


class TestPairwiseUnbiased:
    def test_mean_within_chebyshev_bound(self):
        """Lemma 3 unbiasedness, checked entry-wise on the pairwise matrix.

        The mean over ``T`` seeded trials must land inside the Chebyshev
        interval built from the theoretical per-estimate variance bound
        scaled by ``1/T`` — an assumption-free 99.8% acceptance region.
        """
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(64, 4.0, rng)
        X = np.stack([x, y, np.zeros(64)])
        true = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                true[i, j] = float(np.sum((X[i] - X[j]) ** 2))

        trials = 250
        total = np.zeros((3, 3))
        noise_rng = np.random.default_rng(1)
        for seed in range(trials):
            sk = _sketcher(seed)
            total += estimators.pairwise_sq_distances(
                sk.sketch_batch(X, noise_rng=noise_rng)
            )
        mean = total / trials

        sk = _sketcher(0)
        for i in range(3):
            for j in range(3):
                if i == j:
                    assert mean[i, j] == 0.0
                    continue
                variance = sk.theoretical_variance(true[i, j])
                low, high = chebyshev_interval(true[i, j], variance / trials, 0.002)
                assert low <= mean[i, j] <= high, (i, j, mean[i, j], (low, high))

    def test_sq_norms_unbiased(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((2, 64))
        true = np.sum(X**2, axis=1)
        trials = 250
        total = np.zeros(2)
        noise_rng = np.random.default_rng(3)
        for seed in range(trials):
            total += estimators.sq_norms(_sketcher(seed).sketch_batch(X, noise_rng=noise_rng))
        mean = total / trials
        sk = _sketcher(0)
        for i in range(2):
            # the norm estimator's variance is bounded by the distance
            # estimator's at the same squared magnitude (one noise vector
            # instead of two)
            variance = sk.theoretical_variance(true[i])
            low, high = chebyshev_interval(true[i], variance / trials, 0.002)
            assert low <= mean[i] <= high


class TestCrossVsPairwise:
    def test_cross_with_itself_matches_pairwise_off_diagonal(self):
        sk = _sketcher()
        X = np.random.default_rng(4).standard_normal((5, 64))
        batch = sk.sketch_batch(X, noise_rng=5)
        pairwise = estimators.pairwise_sq_distances(batch)
        cross = estimators.cross_sq_distances(batch, batch)
        off = ~np.eye(5, dtype=bool)
        np.testing.assert_allclose(cross[off], pairwise[off], rtol=0, atol=1e-8)

    def test_cross_diagonal_is_minus_correction(self):
        """Row i against itself has zero payload difference, so the
        estimate collapses to the (inapplicable) independence correction."""
        sk = _sketcher()
        batch = sk.sketch_batch(np.ones((3, 64)), noise_rng=6)
        cross = estimators.cross_sq_distances(batch, batch)
        expected = -2.0 * sk.output_dim * sk.noise.second_moment
        np.testing.assert_allclose(np.diag(cross), expected, rtol=0, atol=1e-8)

    def test_cross_against_independent_batch(self):
        sk = _sketcher()
        X = np.random.default_rng(7).standard_normal((3, 64))
        Y = np.random.default_rng(8).standard_normal((2, 64))
        a = sk.sketch_batch(X, noise_rng=9)
        b = sk.sketch_batch(Y, noise_rng=10)
        cross = estimators.cross_sq_distances(a, b)
        assert cross.shape == (3, 2)
        for i in range(3):
            for j in range(2):
                assert cross[i, j] == pytest.approx(
                    estimators.estimate_sq_distance(a[i], b[j]), abs=1e-8
                )


class TestDistanceMatrix:
    def test_accepts_sketch_batch(self):
        sk = _sketcher()
        batch = sk.sketch_batch(np.random.default_rng(11).standard_normal((4, 64)))
        np.testing.assert_array_equal(
            estimators.estimate_distance_matrix(batch),
            estimators.pairwise_sq_distances(batch),
        )

    def test_empty_iterable_gives_empty_matrix(self):
        assert estimators.estimate_distance_matrix([]).shape == (0, 0)

    def test_single_sketch_rejected_not_treated_as_batch(self):
        """A lone PrivateSketch must fail fast (as before the batch
        layer), not masquerade as a 1-row batch returning [[0.0]]."""
        sketch = _sketcher().sketch(np.ones(64))
        with pytest.raises(TypeError):
            estimators.estimate_distance_matrix(sketch)

    def test_list_of_sketches_matches_batch(self):
        sk = _sketcher()
        X = np.random.default_rng(12).standard_normal((3, 64))
        batch = sk.sketch_batch(X, noise_rng=13)
        from_list = estimators.estimate_distance_matrix(list(batch))
        np.testing.assert_allclose(
            from_list, estimators.pairwise_sq_distances(batch), rtol=0, atol=1e-10
        )


class TestCheckCompatibleRegression:
    """check_compatible used to compare values.size — wrong for batches."""

    def test_batches_with_different_row_counts_are_compatible(self):
        sk = _sketcher()
        a = sk.sketch_batch(np.ones((2, 64)), noise_rng=0)
        b = sk.sketch_batch(np.zeros((5, 64)), noise_rng=1)
        estimators.check_compatible(a, b)  # must not raise
        assert estimators.cross_sq_distances(a, b).shape == (2, 5)

    def test_sketch_against_batch_is_compatible(self):
        sk = _sketcher()
        batch = sk.sketch_batch(np.ones((3, 64)), noise_rng=0)
        estimators.check_compatible(batch, sk.sketch(np.zeros(64)))  # must not raise

    def test_mismatched_sketch_dimension_rejected(self):
        sk = _sketcher()
        batch = sk.sketch_batch(np.ones((2, 64)), noise_rng=0)
        truncated = dataclasses.replace(
            batch, values=batch.values[:, :16], output_dim=16
        )
        with pytest.raises(ValueError, match="sketch dimensions differ"):
            estimators.check_compatible(batch, truncated)
