"""Tests for the noise distributions and their exact moments."""

import numpy as np
import pytest

from repro.dp.noise import (
    NOISE_DISTRIBUTIONS,
    DiscreteGaussianNoise,
    DiscreteLaplaceNoise,
    GaussianNoise,
    LaplaceNoise,
    noise_from_spec,
)

ALL_NOISES = [
    LaplaceNoise(0.8),
    GaussianNoise(1.3),
    DiscreteLaplaceNoise(2.5),
    DiscreteGaussianNoise(1.7),
]


@pytest.mark.parametrize("noise", ALL_NOISES, ids=lambda n: n.name)
class TestMomentContract:
    def test_sampled_second_moment(self, noise):
        rng = np.random.default_rng(0)
        samples = noise.sample(300000, rng)
        assert np.mean(samples**2) == pytest.approx(noise.second_moment, rel=0.03)

    def test_sampled_fourth_moment(self, noise):
        rng = np.random.default_rng(1)
        samples = noise.sample(300000, rng)
        assert np.mean(samples**4) == pytest.approx(noise.fourth_moment, rel=0.12)

    def test_zero_mean(self, noise):
        rng = np.random.default_rng(2)
        samples = noise.sample(200000, rng)
        assert abs(np.mean(samples)) < 4 * np.sqrt(noise.second_moment / 200000)

    def test_variance_alias(self, noise):
        assert noise.variance == noise.second_moment

    def test_noise_variance_term(self, noise):
        k = 10
        expected = 2 * k * (noise.fourth_moment + noise.second_moment**2)
        assert noise.noise_variance_term(k) == pytest.approx(expected)

    def test_spec_roundtrip(self, noise):
        rebuilt = noise_from_spec(noise.spec())
        assert type(rebuilt) is type(noise)
        assert rebuilt.second_moment == pytest.approx(noise.second_moment)

    def test_log_density_normalised(self, noise):
        """Density integrates (pmf sums) to ~1."""
        if noise.name.startswith("discrete"):
            z = np.arange(-500, 501).astype(float)
            total = np.exp(noise.log_density(z)).sum()
        else:
            z = np.linspace(-60, 60, 200001)
            total = np.trapezoid(np.exp(noise.log_density(z)), z)
        assert total == pytest.approx(1.0, rel=1e-4)

    def test_log_density_symmetric(self, noise):
        values = np.array([1.0, 2.0, 5.0])
        assert np.allclose(noise.log_density(values), noise.log_density(-values))


class TestSampleRows:
    @pytest.mark.parametrize("noise", ALL_NOISES, ids=lambda n: n.name)
    def test_stream_matches_successive_row_draws(self, noise):
        """The contract behind batch sketching: an (n, dim) draw consumes
        the generator exactly like n successive dim-sized draws."""
        a = noise.sample_rows(4, 7, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        b = np.stack([noise.sample(7, rng) for _ in range(4)])
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("noise", ALL_NOISES, ids=lambda n: n.name)
    def test_zero_rows(self, noise):
        assert noise.sample_rows(0, 5, np.random.default_rng(0)).shape == (0, 5)


class TestLaplace:
    def test_moments_closed_form(self):
        n = LaplaceNoise(2.0)
        assert n.second_moment == pytest.approx(8.0)
        assert n.fourth_moment == pytest.approx(24 * 16.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            LaplaceNoise(0.0)


class TestGaussian:
    def test_moments_closed_form(self):
        n = GaussianNoise(2.0)
        assert n.second_moment == pytest.approx(4.0)
        assert n.fourth_moment == pytest.approx(48.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)


class TestDiscreteLaplace:
    def test_integer_support(self):
        rng = np.random.default_rng(3)
        samples = DiscreteLaplaceNoise(3.0).sample(10000, rng)
        assert np.array_equal(samples, np.round(samples))

    def test_ratio(self):
        n = DiscreteLaplaceNoise(2.0)
        assert n.ratio == pytest.approx(np.exp(-0.5))

    def test_log_density_rejects_non_integers(self):
        with pytest.raises(ValueError):
            DiscreteLaplaceNoise(1.0).log_density(np.array([0.5]))

    def test_pmf_ratio_is_epsilon_per_step(self):
        """log p(z)/p(z+1) = 1/scale for z >= 0 — pure DP per unit shift."""
        n = DiscreteLaplaceNoise(4.0)
        lp = n.log_density(np.array([0.0, 1.0, 2.0, 3.0]))
        steps = lp[:-1] - lp[1:]
        assert np.allclose(steps, 0.25)


class TestDiscreteGaussian:
    def test_integer_support(self):
        rng = np.random.default_rng(4)
        samples = DiscreteGaussianNoise(2.2).sample(5000, rng)
        assert np.array_equal(samples, np.round(samples))

    def test_variance_at_most_continuous(self):
        """Canonne et al.: Var[N_Z(sigma^2)] <= sigma^2."""
        for sigma in (0.5, 1.0, 2.0, 7.0):
            assert DiscreteGaussianNoise(sigma).second_moment <= sigma**2 + 1e-12

    def test_variance_approaches_continuous(self):
        n = DiscreteGaussianNoise(10.0)
        assert n.second_moment == pytest.approx(100.0, rel=0.01)

    def test_sample_requests_exact_count(self):
        rng = np.random.default_rng(5)
        assert DiscreteGaussianNoise(1.0).sample(777, rng).shape == (777,)

    def test_log_density_rejects_non_integers(self):
        with pytest.raises(ValueError):
            DiscreteGaussianNoise(1.0).log_density(np.array([1.5]))


class TestRegistry:
    def test_all_names_registered(self):
        assert set(NOISE_DISTRIBUTIONS) == {
            "laplace", "gaussian", "discrete_laplace", "discrete_gaussian",
        }

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown noise"):
            noise_from_spec({"name": "cauchy", "scale": 1.0})
