"""Live generation swap: store tokens, cache invalidation, zero-downtime serving.

PR 7's serving-layer acceptance: a running :class:`SketchQueryServer`
watching its store directory follows maintenance *without a restart* —
the manifest watcher hot-swaps each published generation in, in-flight
queries finish on the snapshot they took, and the result cache
invalidates itself because the store token carries the generation.

The hammer test pins the strongest form: a passthrough compaction of a
packed, tombstone-free ``f8`` store streams the codes through verbatim,
so the new generation's shards are byte-identical and every query
answered *across* the swap must be bit-identical, with zero failures.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    RadiusQuery,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
    compact_store,
    wire,
)

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=13)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 64)), noise_rng=seed, labels=labels)


def _saved_store(tmp_path, n=40, shard_capacity=8):
    # n a multiple of capacity: every shard full, so a passthrough
    # compact streams byte-identical shard files (see module docstring)
    sk = _sketcher()
    store = ShardedSketchStore(shard_capacity=shard_capacity)
    store.add_batch(_batch(sk, n, 1, labels=tuple(f"row-{i}" for i in range(n))))
    root = tmp_path / "store"
    store.save(root)
    return root, sk


def _post(server, body):
    request = urllib.request.Request(
        server.url + "/query",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.headers.get("X-Repro-Cache"), response.read()


def _healthz(server):
    with urllib.request.urlopen(server.url + "/healthz") as response:
        return json.loads(response.read())


def _wait_for(predicate, what, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(0.02)


class TestConstruction:
    def test_watch_interval_must_be_positive(self, tmp_path):
        root, _ = _saved_store(tmp_path)
        with pytest.raises(ValueError, match="watch_interval"):
            SketchQueryServer.from_store_dir(root, port=0, watch_interval=0.0)

    def test_watching_needs_a_store_directory(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 4, 1))
        with pytest.raises(ValueError, match="store directory"):
            SketchQueryServer(DistanceService(store), port=0, watch_interval=1.0)

    def test_reload_needs_a_store_directory(self):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 4, 1))
        server = SketchQueryServer(DistanceService(store), port=0)
        try:
            with pytest.raises(ValueError, match="store directory"):
                server.reload_if_changed()
        finally:
            server.close()


class TestManualReload:
    def test_reload_swaps_only_when_the_manifest_moved(self, tmp_path):
        root, sk = _saved_store(tmp_path)
        server = SketchQueryServer.from_store_dir(root, port=0)
        try:
            assert server.reload_if_changed() is False
            compact_store(root)
            assert server.reload_if_changed() is True
            assert server.swaps == 1
            assert server.service.store.generation == 1
            assert server.reload_if_changed() is False
        finally:
            server.close()

    def test_results_are_bit_identical_across_a_passthrough_swap(self, tmp_path):
        root, sk = _saved_store(tmp_path)
        queries = _batch(sk, 3, 2)
        with SketchQueryServer.from_store_dir(root, port=0) as server:
            client = DistanceClient(server.url)
            before = client.execute(CrossQuery(queries=queries)).payload
            compact_store(root)
            assert server.reload_if_changed()
            after = client.execute(CrossQuery(queries=queries)).payload
            assert after.tobytes() == before.tobytes()


class TestStoreTokenAndCache:
    def test_delete_invalidates_the_cache_without_a_reload(self, tmp_path):
        # the token reads the *live* store object: an in-process delete
        # changes the tombstone count, so the cached envelope for the
        # old row set can never be replayed
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(_batch(sk, 16, 1, labels=tuple(f"r{i}" for i in range(16))))
        query = TopKQuery(queries=_batch(sk, 1, 2), k=3)
        body = wire.encode_query(query)
        with SketchQueryServer(DistanceService(store), port=0, cache=8) as server:
            states = [_post(server, body)[0], _post(server, body)[0]]
            store.delete("r5")
            states.append(_post(server, body)[0])
            states.append(_post(server, body)[0])
        assert states == ["miss", "hit", "miss", "hit"]

    def test_generation_swap_invalidates_the_cache(self, tmp_path):
        root, sk = _saved_store(tmp_path)
        query = TopKQuery(queries=_batch(sk, 1, 3), k=5)
        body = wire.encode_query(query)
        with SketchQueryServer.from_store_dir(root, port=0, cache=8) as server:
            state_1, blob_1 = _post(server, body)
            state_2, blob_2 = _post(server, body)
            compact_store(root)
            server.reload_if_changed()
            state_3, blob_3 = _post(server, body)
            state_4, blob_4 = _post(server, body)
            stats = _healthz(server)["cache"]
        assert [state_1, state_2, state_3, state_4] == [
            "miss", "hit", "miss", "hit",
        ]
        # cache hits replay the stored envelope byte-for-byte
        assert blob_1 == blob_2 and blob_3 == blob_4
        # passthrough compaction: the re-computed *answer* is identical
        # (only the envelope's server-side timing stat differs), it just
        # could not be replayed across the swap
        assert wire.decode_result(blob_3).payload == wire.decode_result(blob_1).payload
        assert stats["hits"] == 2 and stats["misses"] == 2


class TestWatcher:
    def test_watcher_swaps_and_healthz_reports_the_new_generation(
        self, tmp_path
    ):
        root, sk = _saved_store(tmp_path)
        with SketchQueryServer.from_store_dir(
            root, port=0, watch_interval=0.02
        ) as server:
            assert _healthz(server)["generation"] == 0
            compact_store(root)
            _wait_for(lambda: server.swaps >= 1, "the watcher to swap")
            health = _healthz(server)
            assert health["generation"] == 1
            assert health["rows"] == 40
            assert server.watch_error is None

    def test_a_bad_manifest_parks_the_error_and_keeps_serving(self, tmp_path):
        root, sk = _saved_store(tmp_path)
        queries = _batch(sk, 2, 4)
        manifest_path = root / "manifest.json"
        good_manifest = manifest_path.read_text()
        with SketchQueryServer.from_store_dir(
            root, port=0, watch_interval=0.02
        ) as server:
            client = DistanceClient(server.url)
            before = client.execute(CrossQuery(queries=queries)).payload
            manifest_path.write_text("{ not json")
            _wait_for(
                lambda: server.watch_error is not None, "the poll to fail"
            )
            # the old generation keeps serving, bit-identically
            after = client.execute(CrossQuery(queries=queries)).payload
            assert after.tobytes() == before.tobytes()
            assert server.swaps == 0
            manifest_path.write_text(good_manifest)
            _wait_for(
                lambda: server.watch_error is None, "the poll to recover"
            )
            assert server.swaps == 0  # same manifest: nothing to swap


class TestHammerAcrossSwap:
    """The acceptance run: zero failed requests, bit-identical answers."""

    def test_queries_never_fail_or_drift_during_a_live_swap(self, tmp_path):
        root, sk = _saved_store(tmp_path)
        query_batch = _batch(sk, 2, 5)
        single = query_batch[0]
        local = DistanceService(ShardedSketchStore.load(root))
        expected = {
            "top_k": local.execute(TopKQuery(queries=single, k=7)).payload,
            "radius": local.execute(
                RadiusQuery(query=single, radius_sq=1e9)
            ).payload,
            "cross": local.execute(CrossQuery(queries=query_batch))
            .payload.tobytes(),
        }
        queries = {
            "top_k": TopKQuery(queries=single, k=7),
            "radius": RadiusQuery(query=single, radius_sq=1e9),
            "cross": CrossQuery(queries=query_batch),
        }
        stop = threading.Event()
        failures: list = []
        counts = {kind: 0 for kind in queries}

        def hammer(kind, url):
            client = DistanceClient(url)
            query = queries[kind]
            while not stop.is_set():
                try:
                    payload = client.execute(query).payload
                    got = payload.tobytes() if kind == "cross" else payload
                    want = expected[kind]
                    if got != want:
                        failures.append((kind, "drift"))
                        return
                    counts[kind] += 1
                except Exception as exc:  # noqa: BLE001 - a failure IS the signal
                    failures.append((kind, repr(exc)))
                    return

        with SketchQueryServer.from_store_dir(
            root, port=0, watch_interval=0.02
        ) as server:
            threads = [
                threading.Thread(target=hammer, args=(kind, server.url))
                for kind in queries
            ]
            for thread in threads:
                thread.start()
            try:
                # let the hammers settle on generation 0, then swap live
                _wait_for(
                    lambda: all(c >= 3 for c in counts.values()) or failures,
                    "warm-up queries",
                )
                compact_store(root)
                _wait_for(
                    lambda: server.swaps >= 1 or failures,
                    "the watcher to swap mid-hammer",
                )
                settled = {k: counts[k] for k in counts}
                _wait_for(
                    lambda: all(
                        counts[k] >= settled[k] + 3 for k in counts
                    )
                    or failures,
                    "post-swap queries",
                )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
        assert failures == []
        assert server.swaps >= 1
        assert server.watch_error is None
        assert all(count >= 6 for count in counts.values())
