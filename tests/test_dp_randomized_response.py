"""Tests for the Warner randomized-response baseline."""

import math

import numpy as np
import pytest

from repro.dp.randomized_response import RandomizedResponse


class TestCalibration:
    def test_keep_probability_formula(self):
        rr = RandomizedResponse(math.log(3.0))
        assert rr.keep_probability == pytest.approx(0.75)

    def test_flip_plus_keep_is_one(self):
        rr = RandomizedResponse(1.5)
        assert rr.keep_probability + rr.flip_probability == pytest.approx(1.0)

    def test_guarantee_pure(self):
        assert RandomizedResponse(1.0).guarantee.is_pure

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            RandomizedResponse(0.0)


class TestRandomize:
    def test_output_binary(self):
        rr = RandomizedResponse(1.0)
        rng = np.random.default_rng(0)
        out = rr.randomize(np.array([0.0, 1.0, 1.0, 0.0]), rng)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_empirical_flip_rate(self):
        rr = RandomizedResponse(2.0)
        rng = np.random.default_rng(1)
        bits = np.zeros(100000)
        flipped = rr.randomize(bits, rng)
        assert flipped.mean() == pytest.approx(rr.flip_probability, abs=0.01)

    def test_rejects_non_binary(self):
        rr = RandomizedResponse(1.0)
        with pytest.raises(ValueError, match="binary"):
            rr.randomize(np.array([0.0, 2.0]))

    def test_privacy_loss_per_bit_is_epsilon(self):
        """log(P[keep]/P[flip]) == epsilon — Warner's guarantee."""
        eps = 1.3
        rr = RandomizedResponse(eps)
        assert math.log(rr.keep_probability / rr.flip_probability) == pytest.approx(eps)


class TestHammingEstimator:
    def test_unbiased(self):
        rr = RandomizedResponse(1.5)
        rng = np.random.default_rng(2)
        d, h = 400, 60
        x = np.zeros(d)
        y = x.copy()
        y[:h] = 1.0
        estimates = [
            rr.estimate_hamming(rr.randomize(x, rng), rr.randomize(y, rng))
            for _ in range(2000)
        ]
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - h) < 5 * stderr

    def test_error_scale_sqrt_d(self):
        rr = RandomizedResponse(2.0)
        assert rr.estimator_standard_error(400) == pytest.approx(
            2 * rr.estimator_standard_error(100)
        )

    def test_error_decreases_with_epsilon(self):
        small = RandomizedResponse(0.5).estimator_standard_error(100)
        large = RandomizedResponse(4.0).estimator_standard_error(100)
        assert large < small

    def test_dimension_mismatch_rejected(self):
        rr = RandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.estimate_hamming(np.zeros(3), np.zeros(4))

    def test_exact_on_identical_releases(self):
        rr = RandomizedResponse(1.0)
        a = np.array([0.0, 1.0, 0.0])
        # same released vectors: observed hamming 0 -> estimate is the
        # (negative) debiasing constant, deterministically
        est = rr.estimate_hamming(a, a)
        f = rr.flip_probability
        assert est == pytest.approx(-2 * f * (1 - f) * 3 / (1 - 2 * f) ** 2)
