"""Streaming serialization: block iteration and incremental v3 writes.

The disk-to-disk maintenance path (PR 7) rests on two guarantees from
the serialization layer: ``iter_batch_rows`` streams a stored shard's
raw codes in bounded blocks while still verifying the recorded digest,
and ``StreamingBatchWriter``/``write_batch_streaming`` produce a v3
container **byte-identical** to the one-shot ``write_batch`` — the
format does not fork just because the writer streamed.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    SerializationError,
    read_batch,
    read_batch_info,
    write_batch,
    write_batch_streaming,
)
from repro.serving.serialization import (
    DEFAULT_BLOCK_ROWS,
    StreamingBatchWriter,
    iter_batch_rows,
)
from repro.serving.storage import STORAGE_SPECS, StorageSpec

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=32, sparsity=4, seed=3)


@pytest.fixture(scope="module")
def batch():
    sk = PrivateSketcher(_CONFIG)
    rng = np.random.default_rng(0)
    return sk.sketch_batch(rng.standard_normal((23, 64)), noise_rng=1)


def _template(tmp_path, batch):
    """A zero-row metadata carrier, the way maintenance obtains one."""
    path = tmp_path / "template.skb"
    write_batch(path, batch)
    return read_batch_info(path).meta


def _encode(batch, spec_name):
    spec = StorageSpec.parse(spec_name)
    scale = (
        StorageSpec.int8_step(float(np.max(np.abs(batch.values))))
        if spec.quantised
        else None
    )
    return spec.encode(np.asarray(batch.values, dtype=np.float64), scale), scale


class TestIterBatchRows:
    @pytest.mark.parametrize("spec_name", sorted(STORAGE_SPECS))
    @pytest.mark.parametrize("block_rows", [1, 7, 23, 64, DEFAULT_BLOCK_ROWS])
    def test_blocks_reassemble_the_stored_codes(
        self, tmp_path, batch, spec_name, block_rows
    ):
        codes, scale = _encode(batch, spec_name)
        path = tmp_path / "shard.skb"
        write_batch(path, batch, storage=spec_name, encoded=codes, scale=scale)
        info = read_batch_info(path)
        blocks = list(iter_batch_rows(info, block_rows))
        assert all(b.shape[0] <= block_rows for b in blocks)
        np.testing.assert_array_equal(np.concatenate(blocks), codes)

    def test_digest_mismatch_raises_at_exhaustion(self, tmp_path, batch):
        path = tmp_path / "shard.skb"
        write_batch(path, batch)
        info = read_batch_info(path)
        # corrupt one byte inside the values segment
        raw = bytearray(path.read_bytes())
        raw[info.values_offset + 5] ^= 0xFF
        path.write_bytes(bytes(raw))
        stream = iter_batch_rows(read_batch_info(path), block_rows=4)
        with pytest.raises(SerializationError, match="digest mismatch"):
            list(stream)
        # verify=False streams the corrupt bytes without complaint —
        # the caller opted out of the check
        blocks = list(
            iter_batch_rows(read_batch_info(path), block_rows=4, verify=False)
        )
        assert sum(b.shape[0] for b in blocks) == len(batch)

    def test_partial_consumption_verifies_nothing(self, tmp_path, batch):
        path = tmp_path / "shard.skb"
        write_batch(path, batch)
        stream = iter_batch_rows(read_batch_info(path), block_rows=4)
        next(stream)
        stream.close()  # no error: digest only checked at exhaustion

    def test_bytes_parsed_info_is_rejected(self, tmp_path, batch):
        path = tmp_path / "shard.skb"
        write_batch(path, batch)
        info = dataclasses.replace(read_batch_info(path), path=None)
        with pytest.raises(ValueError, match="bytes, not a file"):
            next(iter_batch_rows(info))

    def test_bad_block_rows_is_rejected(self, tmp_path, batch):
        path = tmp_path / "shard.skb"
        write_batch(path, batch)
        with pytest.raises(ValueError, match="block_rows"):
            next(iter_batch_rows(read_batch_info(path), block_rows=0))


class TestStreamingWriter:
    @pytest.mark.parametrize("spec_name", sorted(STORAGE_SPECS))
    @pytest.mark.parametrize("block_rows", [1, 5, 23])
    def test_byte_identical_to_one_shot_write(
        self, tmp_path, batch, spec_name, block_rows
    ):
        codes, scale = _encode(batch, spec_name)
        # the encoded= contract: batch.values must already be the
        # decoded rows the codes scan as (store.save() guarantees this)
        spec = StorageSpec.parse(spec_name)
        decoded = dataclasses.replace(
            batch, values=np.asarray(spec.decode(codes, scale), dtype=np.float64)
        )
        one_shot = tmp_path / "one-shot.skb"
        write_batch(one_shot, decoded, storage=spec_name, encoded=codes, scale=scale)
        streamed = tmp_path / "streamed.skb"
        blocks = [
            codes[i : i + block_rows] for i in range(0, codes.shape[0], block_rows)
        ]
        write_batch_streaming(
            streamed,
            blocks,
            _template(tmp_path, batch),
            storage=spec_name,
            scale=scale,
        )
        assert streamed.read_bytes() == one_shot.read_bytes()

    def test_labels_roundtrip(self, tmp_path, batch):
        labels = tuple(f"row-{i}" for i in range(len(batch)))
        codes, _ = _encode(batch, "f8")
        path = tmp_path / "labelled.skb"
        write_batch_streaming(
            path, [codes[:10], codes[10:]], _template(tmp_path, batch), labels=labels
        )
        assert read_batch(path).labels == labels

    def test_label_count_mismatch_is_rejected(self, tmp_path, batch):
        codes, _ = _encode(batch, "f8")
        with pytest.raises(ValueError, match="label"):
            write_batch_streaming(
                tmp_path / "bad.skb",
                [codes],
                _template(tmp_path, batch),
                labels=("only-one",),
            )

    def test_int8_requires_a_scale(self, tmp_path, batch):
        with pytest.raises(ValueError, match="scale"):
            StreamingBatchWriter(
                tmp_path / "s.skb", _template(tmp_path, batch), storage="int8"
            )

    def test_abort_removes_temp_and_partial_files(self, tmp_path, batch):
        codes, _ = _encode(batch, "f8")
        path = tmp_path / "aborted.skb"
        with pytest.raises(RuntimeError, match="boom"):
            with StreamingBatchWriter(path, _template(tmp_path, batch)) as writer:
                writer.append(codes[:8])
                raise RuntimeError("boom")
        leftovers = [p.name for p in tmp_path.iterdir() if "aborted" in p.name]
        assert leftovers == []

    def test_zero_row_commit_is_a_valid_empty_shard(self, tmp_path, batch):
        path = tmp_path / "empty.skb"
        with StreamingBatchWriter(path, _template(tmp_path, batch)) as writer:
            writer.commit()
        stored = read_batch(path)
        assert len(stored) == 0
        assert stored.config_digest == batch.config_digest
