"""Streaming maintenance under a hard address-space cap.

The load-bearing claim of :mod:`repro.serving.maintenance` is that
``compact_store`` / ``merge_stores`` are disk-to-disk with peak memory
O(one block) — the store is never loaded *or mapped* in full
(``RLIMIT_AS`` counts a mapping at map time, so even a lazy mmap would
trip the cap).  Each test runs the rewrite in a subprocess that first
caps its own address space at current-usage + a margin several times
smaller than the store, then streams a store through anyway.

A control subprocess allocating one store-sized buffer under the same
cap must die of ``MemoryError`` — proving the cap is tight enough that
a materialising implementation could not pass these tests.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import ShardedSketchStore

_CONFIG = SketchConfig(input_dim=64, epsilon=8.0, output_dim=64, sparsity=4, seed=17)
_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: rows per store; at output_dim=64 float64 that is ~20 MB of codes
_ROWS = 40_000
_STORE_BYTES = _ROWS * 64 * 8
#: address-space headroom the capped child gets above its import-time
#: usage — several times smaller than one store, far smaller than two
_MARGIN_BYTES = 8 * 1024 * 1024
_BLOCK_ROWS = 2048

_PRELUDE = textwrap.dedent(
    """
    import json, resource, sys
    import numpy as np
    from repro.serving.maintenance import compact_store, merge_stores

    def cap_address_space(margin):
        for line in open("/proc/self/status"):
            if line.startswith("VmSize:"):
                current = int(line.split()[1]) * 1024
                break
        resource.setrlimit(
            resource.RLIMIT_AS, (current + margin, resource.RLIM_INFINITY)
        )
    """
)


def _run(child_source, *argv):
    return subprocess.run(
        [sys.executable, "-c", _PRELUDE + textwrap.dedent(child_source), *argv],
        env={**os.environ, "PYTHONPATH": _SRC},
        capture_output=True,
        text=True,
    )


@pytest.fixture(scope="module")
def store_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("lowmem")
    sk = PrivateSketcher(_CONFIG)
    rng = np.random.default_rng(0)
    for name, seed in (("a", 1), ("b", 2)):
        store = ShardedSketchStore(shard_capacity=8192)
        # chunked appends keep the *builder* cheap too; positional
        # labels stay elided, as a big production store would have them
        for start in range(0, _ROWS, 8192):
            n = min(8192, _ROWS - start)
            store.add_batch(
                sk.sketch_batch(rng.standard_normal((n, 64)), noise_rng=seed)
            )
        store.save(base / name)
    return base


class TestTheCapHasTeeth:
    def test_one_store_sized_allocation_dies(self, store_dirs):
        proc = _run(
            """
            cap_address_space(int(sys.argv[1]))
            try:
                buffer = np.empty(int(sys.argv[2]), dtype=np.uint8)
                buffer[::4096] = 1
            except MemoryError:
                sys.exit(42)
            sys.exit(0)
            """,
            str(_MARGIN_BYTES),
            str(_STORE_BYTES),
        )
        assert proc.returncode == 42, proc.stderr


class TestCappedCompaction:
    def test_compact_re_encodes_a_store_bigger_than_the_cap(self, store_dirs):
        proc = _run(
            """
            cap_address_space(int(sys.argv[1]))
            summary = compact_store(
                sys.argv[2], storage="f4", block_rows=int(sys.argv[3])
            )
            print(json.dumps(summary))
            """,
            str(_MARGIN_BYTES),
            str(store_dirs / "a"),
            str(_BLOCK_ROWS),
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["rows"] == _ROWS
        assert summary["generation"] == 1
        assert summary["storage"] == "f4"
        loaded = ShardedSketchStore.load(store_dirs / "a", mmap=True)
        assert len(loaded) == _ROWS and loaded.storage.name == "f4"

    def test_merge_fuses_two_stores_bigger_than_the_cap(self, store_dirs):
        # runs after the compact test re-encoded "a" to f4, so an
        # explicit storage= re-unifies the specs — exercising the
        # decode/re-encode streaming path for one source and the
        # passthrough path for neither
        proc = _run(
            """
            cap_address_space(int(sys.argv[1]))
            summary = merge_stores(
                sys.argv[2], sys.argv[3], dest=sys.argv[4],
                storage="f4", block_rows=int(sys.argv[5]),
            )
            print(json.dumps(summary))
            """,
            str(_MARGIN_BYTES),
            str(store_dirs / "a"),
            str(store_dirs / "b"),
            str(store_dirs / "merged"),
            str(_BLOCK_ROWS),
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["rows"] == 2 * _ROWS
        merged = ShardedSketchStore.load(store_dirs / "merged", mmap=True)
        assert len(merged) == 2 * _ROWS
