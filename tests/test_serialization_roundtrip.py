"""Round-trip tests for sketch serialization formats.

Covers the JSON-header wire formats (:meth:`PrivateSketch.to_bytes`,
:meth:`SketchBatch.to_bytes`) and the versioned binary container of the
serving layer (:mod:`repro.serving.serialization`) — property-style:
many random payload shapes, plus the edge cases (empty batch,
non-contiguous values, object labels) and every rejection path (bad
magic, bad version, truncation at each layer, digest mismatch).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchBatch, SketchConfig
from repro.serving.serialization import (
    FORMAT_VERSION,
    MAGIC,
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    decode_label,
    encode_label,
    map_values,
    read_batch,
    read_batch_info,
    write_batch,
)

_CONFIG = SketchConfig(input_dim=64, epsilon=2.0, output_dim=32, sparsity=4, seed=5)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(n, seed=0, labels=()):
    rng = np.random.default_rng(seed)
    return _sketcher().sketch_batch(
        rng.standard_normal((n, 64)), noise_rng=seed, labels=labels
    )


def _assert_batches_equal(a: SketchBatch, b: SketchBatch) -> None:
    np.testing.assert_array_equal(a.values, b.values)  # bit-exact
    assert a.input_dim == b.input_dim
    assert a.output_dim == b.output_dim
    assert a.perturbation == b.perturbation
    assert a.noise_spec == b.noise_spec
    assert a.noise_second_moment == b.noise_second_moment
    assert a.guarantee == b.guarantee
    assert a.config_digest == b.config_digest


class TestPrivateSketchRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_sketches_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        sketch = _sketcher().sketch(rng.standard_normal(64), noise_rng=seed, label=f"s{seed}")
        restored = PrivateSketch.from_bytes(sketch.to_bytes())
        np.testing.assert_array_equal(restored.values, sketch.values)
        assert restored.label == sketch.label
        assert restored.config_digest == sketch.config_digest
        assert restored.noise_spec == sketch.noise_spec

    def test_extreme_values_roundtrip_bit_exact(self):
        sketch = _sketcher().sketch(np.ones(64), noise_rng=0)
        tweaked = dataclasses.replace(
            sketch,
            values=np.array([1e-308, -1e308, 0.0, np.pi] * 8),
        )
        restored = PrivateSketch.from_bytes(tweaked.to_bytes())
        np.testing.assert_array_equal(restored.values, tweaked.values)


class TestSketchBatchJsonRoundTrip:
    @pytest.mark.parametrize("n", [1, 3, 17])
    def test_random_batches_roundtrip(self, n):
        batch = _batch(n, seed=n, labels=tuple(f"row-{i}" for i in range(n)))
        restored = SketchBatch.from_bytes(batch.to_bytes())
        _assert_batches_equal(batch, restored)
        assert restored.labels == batch.labels

    def test_empty_batch_roundtrip(self):
        empty = _batch(3)[0:0]
        assert len(empty) == 0
        restored = SketchBatch.from_bytes(empty.to_bytes())
        assert len(restored) == 0
        assert restored.values.shape == (0, empty.output_dim)
        _assert_batches_equal(empty, restored)

    def test_non_contiguous_values_roundtrip(self):
        batch = _batch(8)
        strided = batch[::2]  # a view with a step — not C-contiguous
        assert not strided.values.flags["C_CONTIGUOUS"]
        restored = SketchBatch.from_bytes(strided.to_bytes())
        np.testing.assert_array_equal(restored.values, strided.values)

    def test_object_labels_stringified(self):
        batch = _batch(3, labels=(7, None, ("a", 1)))
        restored = SketchBatch.from_bytes(batch.to_bytes())
        assert restored.labels == ("7", "None", "('a', 1)")

    def test_truncated_payload_rejected(self):
        blob = _batch(4).to_bytes()
        with pytest.raises(ValueError, match="payload"):
            SketchBatch.from_bytes(blob[:-8])


class TestBinaryFormat:
    @pytest.mark.parametrize("n", [1, 5, 40])
    def test_roundtrip_bit_exact(self, n):
        batch = _batch(n, seed=n, labels=tuple(f"b{i}" for i in range(n)))
        restored = batch_from_bytes(batch_to_bytes(batch))
        _assert_batches_equal(batch, restored)
        assert restored.labels == batch.labels

    def test_empty_batch_roundtrip(self):
        empty = _batch(2)[0:0]
        restored = batch_from_bytes(batch_to_bytes(empty))
        assert len(restored) == 0
        _assert_batches_equal(empty, restored)

    def test_non_contiguous_values_roundtrip(self):
        strided = _batch(10)[1::3]
        assert not strided.values.flags["C_CONTIGUOUS"]
        restored = batch_from_bytes(batch_to_bytes(strided))
        np.testing.assert_array_equal(restored.values, strided.values)

    def test_label_types_preserved(self):
        # the v2 typed encoding: load(save(...)) gives back *equal* labels,
        # where the v1 container stringified everything
        labels = (42, None, 3.5, True, "s", ("a", 1), [1, 2], {"k": (7,)})
        batch = _batch(len(labels), labels=labels)
        restored = batch_from_bytes(batch_to_bytes(batch))
        assert restored.labels == labels
        assert [type(l) for l, _ in zip(restored.labels, labels)] == [
            type(l) for l in labels
        ]

    def test_unencodable_label_degrades_visibly(self):
        marker = object()
        batch = _batch(1, labels=(marker,))
        restored = batch_from_bytes(batch_to_bytes(batch))
        assert restored.labels == (str(marker),)

    def test_file_roundtrip(self, tmp_path):
        batch = _batch(6, seed=9)
        write_batch(tmp_path / "batch.skb", batch)
        _assert_batches_equal(batch, read_batch(tmp_path / "batch.skb"))

    def test_values_segment_is_aligned(self, tmp_path):
        write_batch(tmp_path / "batch.skb", _batch(3))
        info = read_batch_info(tmp_path / "batch.skb")
        assert info.values_offset % 64 == 0

    def test_header_only_parse_then_map(self, tmp_path):
        batch = _batch(12, seed=4, labels=tuple(range(12)))
        write_batch(tmp_path / "batch.skb", batch)
        info = read_batch_info(tmp_path / "batch.skb")
        assert info.n_rows == 12
        assert info.labels == tuple(range(12))
        assert info.meta.config_digest == batch.config_digest
        mapped = map_values(info)
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        np.testing.assert_array_equal(np.asarray(mapped), batch.values)

    def test_map_values_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "batch.skb"
        write_batch(path, _batch(8))
        info = read_batch_info(path)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(SerializationError, match="truncated"):
            map_values(info)

    # -- rejection paths ------------------------------------------------------

    def test_bad_magic_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="magic"):
            batch_from_bytes(b"XXXX" + blob[4:])

    def test_unsupported_version_rejected(self):
        blob = batch_to_bytes(_batch(2))
        forged = MAGIC + (FORMAT_VERSION + 1).to_bytes(2, "big") + blob[6:]
        with pytest.raises(SerializationError, match="version"):
            batch_from_bytes(forged)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(SerializationError, match="prefix"):
            batch_from_bytes(b"RSK")

    def test_truncated_header_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="header"):
            batch_from_bytes(blob[:20])

    def test_truncated_payload_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="payload"):
            batch_from_bytes(blob[:-8])

    def test_digest_mismatch_rejected(self):
        blob = bytearray(batch_to_bytes(_batch(2)))
        blob[-1] ^= 0xFF  # flip one payload bit
        with pytest.raises(SerializationError, match="digest mismatch"):
            batch_from_bytes(bytes(blob))

    def test_missing_header_field_rejected(self):
        import json

        blob = batch_to_bytes(_batch(2))
        header_len = int.from_bytes(blob[6:10], "big")
        header = json.loads(blob[10 : 10 + header_len])
        del header["values_sha256"]
        new_header = json.dumps(header).encode("utf-8")
        forged = (
            blob[:6]
            + len(new_header).to_bytes(4, "big")
            + new_header
            + blob[10 + header_len :]
        )
        with pytest.raises(SerializationError, match="missing required field"):
            batch_from_bytes(forged)

    def test_garbage_header_rejected(self):
        batch = _batch(1)
        payload = np.ascontiguousarray(batch.values).tobytes()
        garbage = b"{not json"
        forged = (
            MAGIC
            + FORMAT_VERSION.to_bytes(2, "big")
            + len(garbage).to_bytes(4, "big")
            + garbage
            + payload
        )
        with pytest.raises(SerializationError, match="JSON"):
            batch_from_bytes(forged)

    def test_label_count_mismatch_rejected_by_header_parse(self, tmp_path):
        # a buggy writer can produce a self-consistent header whose
        # label count disagrees with n_rows; the header-only (mmap)
        # parse must reject it just like the eager path does
        import json as _json

        from repro.serving.serialization import _PREFIX_LEN, _meta_digest

        path = tmp_path / "batch.skb"
        write_batch(path, _batch(5, labels=tuple("abcde")))
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[6:10], "big")
        header = _json.loads(blob[_PREFIX_LEN : _PREFIX_LEN + header_len])
        header["labels"] = header["labels"][:2]  # 2 labels, 5 rows
        meta = {k: v for k, v in header.items() if not k.endswith("sha256")}
        header["meta_sha256"] = _meta_digest(meta)
        forged_header = _json.dumps(header, sort_keys=True).encode()
        path.write_bytes(
            blob[:6]
            + len(forged_header).to_bytes(4, "big")
            + forged_header
            + blob[_PREFIX_LEN + header_len :]
        )
        with pytest.raises(SerializationError, match="2 labels for 5 rows"):
            read_batch_info(path)

    def test_metadata_corruption_rejected_without_reading_values(self, tmp_path):
        # a flipped bit in the header fails the metadata digest even on
        # the header-only parse that mmap loading uses
        path = tmp_path / "batch.skb"
        write_batch(path, _batch(4))
        blob = bytearray(path.read_bytes())
        target = blob.index(b'"perturbation"')
        blob[target + 1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError):
            read_batch_info(path)


class TestBinaryFormatV1:
    """The PR-2 container is still readable — the migration path."""

    def test_v1_roundtrip_stringifies_labels(self):
        batch = _batch(3, labels=(7, None, ("a", 1)))
        restored = batch_from_bytes(batch_to_bytes(batch, version=1))
        _assert_batches_equal(batch, restored)
        assert restored.labels == ("7", "None", "('a', 1)")

    def test_v1_file_reads_eagerly_and_mapped(self, tmp_path):
        batch = _batch(9, seed=3, labels=tuple(f"v{i}" for i in range(9)))
        path = tmp_path / "legacy.skb"
        write_batch(path, batch, version=1)
        _assert_batches_equal(batch, read_batch(path))
        info = read_batch_info(path)
        assert info.version == 1
        assert info.labels == batch.labels
        np.testing.assert_array_equal(np.asarray(map_values(info)), batch.values)

    def test_v1_digest_still_verified_on_eager_read(self, tmp_path):
        path = tmp_path / "legacy.skb"
        write_batch(path, _batch(2), version=1)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="digest mismatch"):
            read_batch(path)

    def test_unknown_write_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            batch_to_bytes(_batch(1), version=7)


class TestLabelCodec:
    @pytest.mark.parametrize(
        "label",
        [
            None,
            True,
            False,
            0,
            -17,
            2**63,
            3.5,
            float("inf"),
            "plain",
            "",
            (),
            (1, "a"),
            ((1, 2), [3, {"x": None}]),
            [1, [2, [3]]],
            {"a": 1, 2: (3,)},
        ],
    )
    def test_roundtrip_preserves_value_and_type(self, label):
        decoded = decode_label(encode_label(label))
        assert decoded == label
        assert type(decoded) is type(label)

    def test_nan_label_roundtrips(self):
        decoded = decode_label(encode_label(float("nan")))
        assert isinstance(decoded, float) and decoded != decoded

    def test_non_finite_labels_encode_as_strict_json(self):
        # the encoding is shared with the wire codec, which promises
        # RFC 8259 output: no bare NaN/Infinity tokens allowed
        import json

        for label in (float("nan"), float("inf"), float("-inf")):
            encoded = encode_label(label)
            json.dumps(encoded, allow_nan=False)  # must not raise
            decoded = decode_label(encoded)
            assert decoded == label or (decoded != decoded and label != label)

    def test_numpy_scalar_labels_decode_as_python_scalars(self):
        # regression: np.arange labels are np.int64, which is not an
        # `int` — they must survive as equal integers, not as strings
        for label, expected_type in [
            (np.int64(7), int),
            (np.int32(-3), int),
            (np.float64(2.5), float),
            (np.float32(0.5), float),
            (np.bool_(True), bool),
        ]:
            decoded = decode_label(encode_label(label))
            assert decoded == label
            assert type(decoded) is expected_type

    def test_random_nested_labels_roundtrip(self):
        rng = np.random.default_rng(0)

        def make(depth):
            kind = rng.integers(0, 7 if depth else 5)
            if kind == 0:
                return int(rng.integers(-1000, 1000))
            if kind == 1:
                return float(rng.standard_normal())
            if kind == 2:
                return str(rng.integers(0, 1000))
            if kind == 3:
                return None
            if kind == 4:
                return bool(rng.integers(0, 2))
            children = [make(depth - 1) for _ in range(int(rng.integers(0, 4)))]
            return tuple(children) if kind == 5 else children

        for _ in range(200):
            label = make(3)
            assert decode_label(encode_label(label)) == label

    def test_unknown_encoding_rejected(self):
        with pytest.raises(SerializationError, match="label"):
            decode_label({"__label__": "mystery"})
