"""Round-trip tests for sketch serialization formats.

Covers the JSON-header wire formats (:meth:`PrivateSketch.to_bytes`,
:meth:`SketchBatch.to_bytes`) and the versioned binary container of the
serving layer (:mod:`repro.serving.serialization`) — property-style:
many random payload shapes, plus the edge cases (empty batch,
non-contiguous values, object labels) and every rejection path (bad
magic, bad version, truncation at each layer, digest mismatch).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchBatch, SketchConfig
from repro.serving.serialization import (
    FORMAT_VERSION,
    MAGIC,
    SerializationError,
    batch_from_bytes,
    batch_to_bytes,
    read_batch,
    write_batch,
)

_CONFIG = SketchConfig(input_dim=64, epsilon=2.0, output_dim=32, sparsity=4, seed=5)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(n, seed=0, labels=()):
    rng = np.random.default_rng(seed)
    return _sketcher().sketch_batch(
        rng.standard_normal((n, 64)), noise_rng=seed, labels=labels
    )


def _assert_batches_equal(a: SketchBatch, b: SketchBatch) -> None:
    np.testing.assert_array_equal(a.values, b.values)  # bit-exact
    assert a.input_dim == b.input_dim
    assert a.output_dim == b.output_dim
    assert a.perturbation == b.perturbation
    assert a.noise_spec == b.noise_spec
    assert a.noise_second_moment == b.noise_second_moment
    assert a.guarantee == b.guarantee
    assert a.config_digest == b.config_digest


class TestPrivateSketchRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_sketches_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        sketch = _sketcher().sketch(rng.standard_normal(64), noise_rng=seed, label=f"s{seed}")
        restored = PrivateSketch.from_bytes(sketch.to_bytes())
        np.testing.assert_array_equal(restored.values, sketch.values)
        assert restored.label == sketch.label
        assert restored.config_digest == sketch.config_digest
        assert restored.noise_spec == sketch.noise_spec

    def test_extreme_values_roundtrip_bit_exact(self):
        sketch = _sketcher().sketch(np.ones(64), noise_rng=0)
        tweaked = dataclasses.replace(
            sketch,
            values=np.array([1e-308, -1e308, 0.0, np.pi] * 8),
        )
        restored = PrivateSketch.from_bytes(tweaked.to_bytes())
        np.testing.assert_array_equal(restored.values, tweaked.values)


class TestSketchBatchJsonRoundTrip:
    @pytest.mark.parametrize("n", [1, 3, 17])
    def test_random_batches_roundtrip(self, n):
        batch = _batch(n, seed=n, labels=tuple(f"row-{i}" for i in range(n)))
        restored = SketchBatch.from_bytes(batch.to_bytes())
        _assert_batches_equal(batch, restored)
        assert restored.labels == batch.labels

    def test_empty_batch_roundtrip(self):
        empty = _batch(3)[0:0]
        assert len(empty) == 0
        restored = SketchBatch.from_bytes(empty.to_bytes())
        assert len(restored) == 0
        assert restored.values.shape == (0, empty.output_dim)
        _assert_batches_equal(empty, restored)

    def test_non_contiguous_values_roundtrip(self):
        batch = _batch(8)
        strided = batch[::2]  # a view with a step — not C-contiguous
        assert not strided.values.flags["C_CONTIGUOUS"]
        restored = SketchBatch.from_bytes(strided.to_bytes())
        np.testing.assert_array_equal(restored.values, strided.values)

    def test_object_labels_stringified(self):
        batch = _batch(3, labels=(7, None, ("a", 1)))
        restored = SketchBatch.from_bytes(batch.to_bytes())
        assert restored.labels == ("7", "None", "('a', 1)")

    def test_truncated_payload_rejected(self):
        blob = _batch(4).to_bytes()
        with pytest.raises(ValueError, match="payload"):
            SketchBatch.from_bytes(blob[:-8])


class TestBinaryFormat:
    @pytest.mark.parametrize("n", [1, 5, 40])
    def test_roundtrip_bit_exact(self, n):
        batch = _batch(n, seed=n, labels=tuple(f"b{i}" for i in range(n)))
        restored = batch_from_bytes(batch_to_bytes(batch))
        _assert_batches_equal(batch, restored)
        assert restored.labels == batch.labels

    def test_empty_batch_roundtrip(self):
        empty = _batch(2)[0:0]
        restored = batch_from_bytes(batch_to_bytes(empty))
        assert len(restored) == 0
        _assert_batches_equal(empty, restored)

    def test_non_contiguous_values_roundtrip(self):
        strided = _batch(10)[1::3]
        assert not strided.values.flags["C_CONTIGUOUS"]
        restored = batch_from_bytes(batch_to_bytes(strided))
        np.testing.assert_array_equal(restored.values, strided.values)

    def test_object_labels_stringified(self):
        batch = _batch(2, labels=(42, [1, 2]))
        restored = batch_from_bytes(batch_to_bytes(batch))
        assert restored.labels == ("42", "[1, 2]")

    def test_file_roundtrip(self, tmp_path):
        batch = _batch(6, seed=9)
        write_batch(tmp_path / "batch.skb", batch)
        _assert_batches_equal(batch, read_batch(tmp_path / "batch.skb"))

    # -- rejection paths ------------------------------------------------------

    def test_bad_magic_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="magic"):
            batch_from_bytes(b"XXXX" + blob[4:])

    def test_unsupported_version_rejected(self):
        blob = batch_to_bytes(_batch(2))
        forged = MAGIC + (FORMAT_VERSION + 1).to_bytes(2, "big") + blob[6:]
        with pytest.raises(SerializationError, match="version"):
            batch_from_bytes(forged)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(SerializationError, match="prefix"):
            batch_from_bytes(b"RSK")

    def test_truncated_header_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="header"):
            batch_from_bytes(blob[:20])

    def test_truncated_payload_rejected(self):
        blob = batch_to_bytes(_batch(2))
        with pytest.raises(SerializationError, match="payload"):
            batch_from_bytes(blob[:-8])

    def test_digest_mismatch_rejected(self):
        blob = bytearray(batch_to_bytes(_batch(2)))
        blob[-1] ^= 0xFF  # flip one payload bit
        with pytest.raises(SerializationError, match="digest mismatch"):
            batch_from_bytes(bytes(blob))

    def test_missing_header_field_rejected(self):
        import json

        blob = batch_to_bytes(_batch(2))
        header_len = int.from_bytes(blob[6:10], "big")
        header = json.loads(blob[10 : 10 + header_len])
        del header["payload_sha256"]
        new_header = json.dumps(header).encode("utf-8")
        forged = (
            blob[:6]
            + len(new_header).to_bytes(4, "big")
            + new_header
            + blob[10 + header_len :]
        )
        with pytest.raises(SerializationError, match="missing required field"):
            batch_from_bytes(forged)

    def test_garbage_header_rejected(self):
        batch = _batch(1)
        payload = np.ascontiguousarray(batch.values).tobytes()
        garbage = b"{not json"
        forged = (
            MAGIC
            + FORMAT_VERSION.to_bytes(2, "big")
            + len(garbage).to_bytes(4, "big")
            + garbage
            + payload
        )
        with pytest.raises(SerializationError, match="JSON"):
            batch_from_bytes(forged)
