"""Tests for the baselines: Kenthapadi, Mir cropped moment, non-private JL."""

import math

import numpy as np
import pytest

from repro.baselines import CroppedSecondMoment, KenthapadiSketcher, NonPrivateJL
from repro.workloads import pair_at_distance


class TestKenthapadi:
    def test_exact_mode_matches_scan(self):
        sk = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=0)
        assert sk.l2_sensitivity == pytest.approx(sk.transform.sensitivity(2))
        assert sk.initialization_seconds >= 0.0

    def test_sigma_lemma2(self):
        sk = KenthapadiSketcher(64, 16, epsilon=0.5, delta=1e-5, seed=0)
        expected = sk.l2_sensitivity / 0.5 * math.sqrt(2 * math.log(1.25e5))
        assert sk.sigma == pytest.approx(expected)

    def test_legacy_sigma_theorem1(self):
        sk = KenthapadiSketcher(64, 16, epsilon=0.5, delta=1e-5, seed=0, legacy_sigma=True)
        assert sk.sigma == pytest.approx(4.0 / 0.5 * math.sqrt(math.log(1e5)))

    def test_legacy_sigma_side_condition(self):
        with pytest.raises(ValueError, match="ln"):
            KenthapadiSketcher(64, 16, epsilon=20.0, delta=1e-5, seed=0, legacy_sigma=True)

    def test_assumed_mode_skips_init(self):
        sk = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=0,
                                sensitivity_mode="assumed", assumed_bound=2.0)
        assert sk.l2_sensitivity == 2.0

    def test_privacy_holds_exact_always(self):
        sk = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=0)
        assert sk.privacy_holds()

    def test_privacy_fails_with_tight_assumption(self):
        failures = sum(
            not KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=s,
                                   sensitivity_mode="assumed", assumed_bound=0.9).privacy_holds()
            for s in range(20)
        )
        assert failures > 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            KenthapadiSketcher(8, 4, 1.0, 1e-5, sensitivity_mode="hope")

    def test_estimator_unbiased(self):
        rng = np.random.default_rng(0)
        x, y = pair_at_distance(64, 4.0, rng)
        estimates = []
        for seed in range(400):
            sk = KenthapadiSketcher(64, 32, epsilon=2.0, delta=1e-5, seed=seed)
            estimates.append(
                sk.estimate_sq_distance(sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng))
            )
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 16.0) < 5 * stderr

    def test_theoretical_variance_is_theorem2(self):
        from repro.core.variance import kenthapadi_variance

        sk = KenthapadiSketcher(64, 16, epsilon=1.0, delta=1e-5, seed=0)
        assert sk.theoretical_variance(9.0) == pytest.approx(
            kenthapadi_variance(16, sk.sigma, 9.0)
        )


class TestNonPrivateJL:
    def test_estimates_distance_within_jl_error(self):
        rng = np.random.default_rng(1)
        x, y = pair_at_distance(128, 5.0, rng)
        estimates = []
        for seed in range(300):
            jl = NonPrivateJL("sjlt", 128, 64, seed=seed, sparsity=4)
            estimates.append(jl.estimate_sq_distance(jl.sketch(x), jl.sketch(y)))
        assert np.mean(estimates) == pytest.approx(25.0, rel=0.1)

    def test_supports_all_transforms(self):
        x = np.ones(32)
        for name, kwargs in [("gaussian", {}), ("fjlt", {}), ("achlioptas", {})]:
            jl = NonPrivateJL(name, 32, 8, seed=0, **kwargs)
            assert jl.sketch(x).shape == (8,)


class TestCroppedSecondMoment:
    def test_exact_query(self):
        csm = CroppedSecondMoment(tau=4.0, epsilon=1.0)
        x = np.array([0, 1, 2, 3, 10])
        # min(x^2, 4) = [0, 1, 4, 4, 4]
        assert csm.exact(x) == pytest.approx(13.0)

    def test_rejects_non_integer(self):
        csm = CroppedSecondMoment(tau=4.0, epsilon=1.0)
        with pytest.raises(ValueError, match="integer"):
            csm.estimate(np.array([0.5, 1.0]))

    def test_central_estimator_unbiased(self):
        csm = CroppedSecondMoment(tau=4.0, epsilon=1.0, mode="central")
        rng = np.random.default_rng(2)
        x = np.array([0, 1, 2, 5] * 10)
        estimates = [csm.estimate(x, rng) for _ in range(3000)]
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - csm.exact(x)) < 5 * stderr

    def test_local_estimator_unbiased(self):
        csm = CroppedSecondMoment(tau=2.0, epsilon=2.0, mode="local")
        rng = np.random.default_rng(3)
        x = np.array([0, 1, 3] * 8)
        estimates = [csm.estimate(x, rng) for _ in range(3000)]
        stderr = np.std(estimates) / math.sqrt(len(estimates))
        assert abs(np.mean(estimates) - csm.exact(x)) < 5 * stderr

    def test_error_scales(self):
        local = CroppedSecondMoment(tau=3.0, epsilon=1.0, mode="local")
        central = CroppedSecondMoment(tau=3.0, epsilon=1.0, mode="central")
        # local error carries the sqrt(d) factor the paper quotes
        assert local.error_scale(400) == pytest.approx(2 * local.error_scale(100))
        assert central.error_scale(400) == central.error_scale(100)
        assert local.error_scale(400) > central.error_scale(400)

    def test_empirical_error_matches_scale(self):
        csm = CroppedSecondMoment(tau=2.0, epsilon=1.0, mode="local")
        rng = np.random.default_rng(4)
        x = np.zeros(256, dtype=int)
        errors = [abs(csm.estimate(x, rng) - 0.0) for _ in range(500)]
        # mean |sum of d Laplace(tau/eps)| ~ sqrt(2/pi) * error_scale
        expected = math.sqrt(2 / math.pi) * csm.error_scale(256)
        assert np.mean(errors) == pytest.approx(expected, rel=0.2)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CroppedSecondMoment(tau=1.0, epsilon=1.0, mode="federated")
