"""Unit tests for experiment-internal helper functions."""

import math

import numpy as np
import pytest

from repro.experiments.exp_crossover_note5 import (
    _delta_grid,
    _gaussian_variance,
    _laplace_variance,
    variance_crossover_delta,
)
from repro.experiments.exp_inner_product import _orthogonal_to
from repro.experiments.exp_lower_bound import _loglog_slope
from repro.experiments.exp_sensitivity import _tail_bound


class TestCrossoverHelpers:
    def test_laplace_variance_independent_of_delta(self):
        assert _laplace_variance(64, 8) == _laplace_variance(64, 8)

    def test_gaussian_variance_decreasing_in_delta(self):
        assert _gaussian_variance(64, 1e-3) < _gaussian_variance(64, 1e-9)

    def test_crossover_is_a_tie_point(self):
        k, s = 128, 8
        delta_star = variance_crossover_delta(k, s)
        lap = _laplace_variance(k, s)
        assert _gaussian_variance(k, delta_star) == pytest.approx(lap, rel=1e-3)

    def test_crossover_moves_with_sparsity(self):
        # larger s -> more Laplace noise -> Gaussian competitive at
        # smaller sigma -> crossover at larger ln(1/delta)
        assert variance_crossover_delta(256, 16) < variance_crossover_delta(64, 4)

    def test_delta_grid_spans_threshold(self):
        s = 8
        grid = _delta_grid(s)
        center = math.exp(-s)
        assert min(grid) < center < max(grid)
        assert all(0 < g < 0.5 for g in grid)


class TestMiscHelpers:
    def test_loglog_slope_of_power_law(self):
        xs = [10, 100, 1000]
        ys = [2 * math.sqrt(x) for x in xs]
        assert _loglog_slope(xs, ys) == pytest.approx(0.5, abs=1e-9)

    def test_loglog_slope_of_linear(self):
        xs = [10, 100, 1000]
        assert _loglog_slope(xs, xs) == pytest.approx(1.0, abs=1e-9)

    def test_orthogonal_to_is_orthogonal_unit(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64)
        v = _orthogonal_to(x, rng)
        assert abs(float(v @ x)) < 1e-9
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_sensitivity_tail_bound_is_probability(self):
        assert 0.0 <= _tail_bound() <= 1.0


class TestClusteredPointsWorkload:
    def test_shapes_and_labels(self):
        from repro.workloads import clustered_points

        rng = np.random.default_rng(1)
        points, labels, centers = clustered_points(32, 50, 3, rng)
        assert points.shape == (50, 32)
        assert labels.shape == (50,)
        assert centers.shape == (3, 32)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_points_near_their_centers(self):
        from repro.workloads import clustered_points

        rng = np.random.default_rng(2)
        points, labels, centers = clustered_points(
            32, 60, 3, rng, separation=50.0, spread=1.0
        )
        for point, label in zip(points, labels):
            own = float(np.sum((point - centers[label]) ** 2))
            others = [
                float(np.sum((point - centers[c]) ** 2))
                for c in range(3) if c != label
            ]
            assert own < min(others)

    def test_validation(self):
        from repro.workloads import clustered_points

        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            clustered_points(32, 0, 3, rng)
        with pytest.raises(ValueError):
            clustered_points(32, 10, 3, rng, separation=0.0)
