"""Store persistence hardening: atomic saves, mmap loads, compact/merge.

Regression coverage for the PR-3 persistence bugfixes (non-atomic
``save`` corrupting existing stores, stale shard files surviving an
overwrite) plus the new larger-than-RAM machinery: lazy memory-mapped
shard loading, compaction and merging.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    ExecutionPolicy,
    PairwiseQuery,
    RadiusQuery,
    SerializationError,
    ShardedSketchStore,
    TopKQuery,
    write_batch,
)
from repro.serving import store as store_module
from tests.helpers import (
    execute_cross as _cross,
    execute_top_k as _top_k,
    scan_jitter_atol,
    storage_roundtrip,
)

_CONFIG = SketchConfig(input_dim=128, epsilon=8.0, output_dim=64, sparsity=4, seed=11)


def _sketcher():
    return PrivateSketcher(_CONFIG)


def _batch(sk, n, seed, labels=()):
    rng = np.random.default_rng(seed)
    return sk.sketch_batch(rng.standard_normal((n, 128)), noise_rng=seed, labels=labels)


def _assert_same_store(a: ShardedSketchStore, b: ShardedSketchStore) -> None:
    assert len(a) == len(b)
    assert a.labels == b.labels
    stacked_a = np.concatenate([a.shard_values(i) for i in range(a.n_shards)])
    stacked_b = np.concatenate([b.shard_values(i) for i in range(b.n_shards)])
    np.testing.assert_array_equal(stacked_a, stacked_b)


class TestAtomicSave:
    def test_overwrite_leaves_no_stale_shards(self, tmp_path):
        # regression: the PR-2 save wrote shards in place, so saving a
        # 3-shard store over a 5-shard directory left shard-0000{3,4}
        # behind — and a subsequent load picked up a corrupted mixture
        sk = _sketcher()
        big = ShardedSketchStore(shard_capacity=4)
        big.add_batch(_batch(sk, 18, 1))  # 5 shards
        big.save(tmp_path / "store")
        assert len(list((tmp_path / "store").glob("shard-*.skb"))) == 5
        small = ShardedSketchStore(shard_capacity=8)
        small.add_batch(_batch(sk, 10, 2))  # 2 shards
        small.save(tmp_path / "store")
        names = sorted(p.name for p in (tmp_path / "store").iterdir())
        assert names == ["manifest.json", "shard-00000.skb", "shard-00001.skb"]
        _assert_same_store(ShardedSketchStore.load(tmp_path / "store"), small)

    def test_failed_save_preserves_existing_store(self, tmp_path, monkeypatch):
        # regression: a crash mid-save must not corrupt the store that
        # was already on disk
        sk = _sketcher()
        original = ShardedSketchStore(shard_capacity=4)
        original.add_batch(_batch(sk, 10, 3))
        original.save(tmp_path / "store")
        on_disk = (tmp_path / "store").glob("**/*")
        before = {p: p.read_bytes() for p in on_disk if p.is_file()}

        calls = {"n": 0}
        real = store_module.write_batch

        def explode_on_second(path, batch, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("disk full")
            return real(path, batch, **kwargs)

        monkeypatch.setattr(store_module, "write_batch", explode_on_second)
        doomed = ShardedSketchStore(shard_capacity=4)
        doomed.add_batch(_batch(sk, 12, 4))
        with pytest.raises(OSError, match="disk full"):
            doomed.save(tmp_path / "store")
        monkeypatch.undo()

        after = {
            p: p.read_bytes() for p in (tmp_path / "store").glob("**/*") if p.is_file()
        }
        assert after == before  # bit-for-bit untouched
        _assert_same_store(ShardedSketchStore.load(tmp_path / "store"), original)
        # and no staging litter next to the store
        assert sorted(p.name for p in tmp_path.iterdir()) == ["store"]

    def test_save_creates_parent_directories(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore()
        store.add_batch(_batch(sk, 3, 1))
        store.save(tmp_path / "a" / "b" / "store")
        assert len(ShardedSketchStore.load(tmp_path / "a" / "b" / "store")) == 3


class TestMmapLoad:
    def _saved(self, tmp_path, n=30, shard_capacity=8, labels=()):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=shard_capacity)
        store.add_batch(_batch(sk, n, 7, labels=labels))
        store.save(tmp_path / "store")
        return sk, store

    def test_mmap_roundtrip_bit_exact(self, tmp_path):
        sk, store = self._saved(tmp_path)
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        assert len(mapped) == len(store)
        assert mapped.labels == store.labels
        for i in range(store.n_shards):
            np.testing.assert_array_equal(
                np.asarray(mapped.shard_values(i)), store.shard_values(i)
            )
            np.testing.assert_array_equal(
                mapped.shard_sq_norms(i), store.shard_sq_norms(i)
            )

    def test_shards_materialise_lazily(self, tmp_path):
        sk, store = self._saved(tmp_path)
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        assert all(not shard.materialized for shard in mapped._shards)
        # touching rows of shard 0 must not map the other shards
        DistanceService(mapped).execute(PairwiseQuery(indices=(0, 1)))
        assert mapped._shards[0].materialized
        assert all(not shard.materialized for shard in mapped._shards[1:])

    def test_prefilter_skips_mapped_shards_without_reading_them(self, tmp_path):
        # regression: norm bounds used to be computed from the values,
        # so the prefilter itself materialised every mapped shard; they
        # now ride in the shard headers and skipped shards stay unread
        sk = _sketcher()
        base = _batch(sk, 32, 0)
        # well inside every storage spec's range (f2 overflows at ~6.5e4)
        values = np.zeros((32, 64))
        values[:, 0] = np.repeat(np.arange(4.0) * 1e4, 8)  # separated norms
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(dataclasses.replace(base, values=values, labels=()))
        store.save(tmp_path / "separated")
        query = dataclasses.replace(base.row(0), values=np.zeros(64))

        mapped = ShardedSketchStore.load(tmp_path / "separated", mmap=True)
        got = _top_k(DistanceService(mapped, ExecutionPolicy(prefilter=True)), query, 3)
        want = _top_k(DistanceService(store, ExecutionPolicy(prefilter=False)), query, 3)
        assert got == want
        assert mapped._shards[0].materialized  # the only shard that can win
        assert all(not shard.materialized for shard in mapped._shards[1:])

    def test_mmap_store_answers_identical_queries(self, tmp_path):
        sk, store = self._saved(tmp_path)
        eager = DistanceService(ShardedSketchStore.load(tmp_path / "store"))
        with DistanceService(
            ShardedSketchStore.load(tmp_path / "store", mmap=True),
            ExecutionPolicy(workers=4),
        ) as mapped:
            queries = _batch(sk, 3, 70)
            assert (
                mapped.execute(TopKQuery(queries=queries, k=6)).payload
                == eager.execute(TopKQuery(queries=queries, k=6)).payload
            )
            np.testing.assert_array_equal(_cross(mapped, queries), _cross(eager, queries))
            query = queries.row(0)
            cutoff = float(np.median(_cross(eager, query)))
            typed = RadiusQuery(query=query, radius_sq=cutoff)
            assert mapped.execute(typed).payload == eager.execute(typed).payload

    def test_appends_after_mmap_load_go_to_new_shards(self, tmp_path):
        sk, store = self._saved(tmp_path)
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        extra = _batch(sk, 5, 90)
        mapped.add_batch(extra)
        assert len(mapped) == len(store) + 5
        # the mapped shards are sealed: new rows landed in a fresh shard
        assert mapped.shard_sizes()[-1] == 5
        np.testing.assert_array_equal(
            mapped.shard_values(mapped.n_shards - 1),
            storage_roundtrip(mapped, extra.values),
        )
        # and a mixed mapped+in-memory store keeps serving correctly
        combined = ShardedSketchStore(shard_capacity=8)
        combined.add_batch(_batch(sk, 30, 7))
        combined.add_batch(extra)
        want = _top_k(DistanceService(combined), extra.row(0), 4)
        assert _top_k(DistanceService(mapped), extra.row(0), 4) == want

    def test_mmap_store_resaves_faithfully(self, tmp_path):
        sk, store = self._saved(tmp_path, labels=tuple(range(30)))
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        mapped.save(tmp_path / "copy")
        _assert_same_store(ShardedSketchStore.load(tmp_path / "copy"), store)

    def test_mmap_save_over_own_directory(self, tmp_path):
        sk, store = self._saved(tmp_path)
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        mapped.add_batch(_batch(sk, 4, 91))
        mapped.save(tmp_path / "store")  # reads the maps it is replacing
        reloaded = ShardedSketchStore.load(tmp_path / "store")
        assert len(reloaded) == 34
        _assert_same_store(reloaded, mapped)

    def test_v1_store_still_loads(self, tmp_path):
        # a store saved by the PR-2 writer: v1 shard blobs + manifest
        sk = _sketcher()
        batch = _batch(sk, 10, 5, labels=tuple(f"r{i}" for i in range(10)))
        root = tmp_path / "legacy"
        root.mkdir()
        write_batch(root / "shard-00000.skb", batch[:6], version=1)
        write_batch(root / "shard-00001.skb", batch[6:], version=1)
        (root / "manifest.json").write_text(
            json.dumps(
                {
                    "manifest_version": 1,
                    "shard_capacity": 6,
                    "n_shards": 2,
                    "n_rows": 10,
                    "config_digest": batch.config_digest,
                }
            )
        )
        for mmap in (False, True):
            loaded = ShardedSketchStore.load(root, mmap=mmap)
            assert loaded.labels == [f"r{i}" for i in range(10)]
            stacked = np.concatenate(
                [np.asarray(loaded.shard_values(i)) for i in range(loaded.n_shards)]
            )
            np.testing.assert_array_equal(stacked, batch.values)
        # migration: one save rewrites the store in the current format
        upgraded_path = tmp_path / "upgraded"
        ShardedSketchStore.load(root, mmap=True).save(upgraded_path)
        upgraded = ShardedSketchStore.load(upgraded_path)
        assert upgraded.labels == [f"r{i}" for i in range(10)]


class TestCompact:
    def test_compact_packs_partial_shards(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        store.add_batch(_batch(sk, 30, 7))
        store.save(tmp_path / "store")
        # mmap-loading preserves the on-disk shard layout (8/8/8/6);
        # appending then yields partial shards mid-store
        mapped = ShardedSketchStore.load(tmp_path / "store", mmap=True)
        mapped.add_batch(_batch(sk, 5, 8))
        assert mapped.shard_sizes() == [8, 8, 8, 6, 5]
        query = sk.sketch(np.ones(128), noise_rng=9)
        before = _top_k(DistanceService(mapped), query, 10)
        labels = mapped.labels
        mapped.compact()
        assert mapped.shard_sizes() == [8, 8, 8, 8, 3]
        assert mapped.labels == labels
        after = _top_k(DistanceService(mapped), query, 10)
        # same winners; estimates agree to the scan-jitter envelope (the
        # repack regroups shard GEMMs — exact on f8, ulp-ish on float32)
        assert [label for label, _ in after] == [label for label, _ in before]
        jitter = scan_jitter_atol(
            mapped, query.values, np.concatenate([np.asarray(v) for v in (
                mapped.shard_values(i) for i in range(mapped.n_shards))])
        )
        for (_, est_after), (_, est_before) in zip(after, before):
            assert est_after == pytest.approx(est_before, abs=jitter)

    def test_compact_empty_store_is_noop(self):
        store = ShardedSketchStore()
        assert store.compact() is store
        assert store.n_shards == 0

    def test_compact_then_save_roundtrips(self, tmp_path):
        sk = _sketcher()
        store = ShardedSketchStore(shard_capacity=8)
        for seed in range(4):
            store.add_batch(_batch(sk, 5, seed))  # 5+5+5+5 across shards
        store.compact().save(tmp_path / "store")
        loaded = ShardedSketchStore.load(tmp_path / "store")
        assert loaded.shard_sizes() == [8, 8, 4]
        _assert_same_store(loaded, store)


class TestMerge:
    def test_merge_concatenates_stores_in_order(self):
        sk = _sketcher()
        batch = _batch(sk, 24, 7, labels=tuple(range(24)))
        parts = []
        for lo, hi in ((0, 9), (9, 14), (14, 24)):
            part = ShardedSketchStore(shard_capacity=4)
            part.add_batch(batch[lo:hi], labels=list(range(lo, hi)))
            parts.append(part)
        merged = ShardedSketchStore.merge(*parts)
        reference = ShardedSketchStore(shard_capacity=4)
        reference.add_batch(batch)
        _assert_same_store(merged, reference)
        query = sk.sketch(np.zeros(128), noise_rng=1)
        assert _top_k(DistanceService(merged), query, 6) == _top_k(
            DistanceService(reference), query, 6
        )

    def test_merge_skips_empty_stores_and_respects_capacity(self):
        sk = _sketcher()
        a = ShardedSketchStore(shard_capacity=4)
        a.add_batch(_batch(sk, 6, 1))
        merged = ShardedSketchStore.merge(
            ShardedSketchStore(), a, shard_capacity=16
        )
        assert merged.shard_capacity == 16
        assert merged.shard_sizes() == [6]
        assert len(merged) == 6

    def test_merge_rejects_incompatible_stores(self):
        a = ShardedSketchStore()
        a.add_batch(_batch(_sketcher(), 3, 1))
        other = PrivateSketcher(dataclasses.replace(_CONFIG, seed=12))
        b = ShardedSketchStore()
        b.add_batch(
            other.sketch_batch(
                np.random.default_rng(0).standard_normal((3, 128)), noise_rng=0
            )
        )
        with pytest.raises(ValueError, match="different configurations"):
            ShardedSketchStore.merge(a, b)

    def test_merge_requires_a_store(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardedSketchStore.merge()

    def test_merge_mmap_stores_fuses_on_disk_data(self, tmp_path):
        sk = _sketcher()
        halves = []
        for i, (lo, hi) in enumerate(((0, 13), (13, 30))):
            part = ShardedSketchStore(shard_capacity=8)
            part.add_batch(_batch(sk, 30, 7)[lo:hi], labels=list(range(lo, hi)))
            part.save(tmp_path / f"part{i}")
            halves.append(ShardedSketchStore.load(tmp_path / f"part{i}", mmap=True))
        merged = ShardedSketchStore.merge(*halves)
        merged.save(tmp_path / "merged")
        loaded = ShardedSketchStore.load(tmp_path / "merged")
        assert loaded.labels == list(range(30))
        reference = ShardedSketchStore(shard_capacity=8)
        reference.add_batch(_batch(sk, 30, 7), labels=list(range(30)))
        _assert_same_store(loaded, reference)
