"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import Table, format_table


class TestTable:
    def test_add_row_and_render(self):
        table = Table(headers=["a", "b"])
        table.add_row(a=1, b="x")
        rendered = table.render()
        assert "a" in rendered and "b" in rendered
        assert "1" in rendered and "x" in rendered

    def test_unknown_column_rejected(self):
        table = Table(headers=["a"])
        with pytest.raises(KeyError, match="unknown columns"):
            table.add_row(c=1)

    def test_column_extraction(self):
        table = Table(headers=["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3, b=4)
        assert table.column("a") == [1, 3]

    def test_column_missing_header(self):
        table = Table(headers=["a"])
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_missing_cell_renders_empty(self):
        table = Table(headers=["a", "b"])
        table.add_row(a=1)
        assert table.column("b") == [None]
        assert "1" in table.render()

    def test_title_included(self):
        table = Table(headers=["a"], title="My Table")
        table.add_row(a=1)
        assert table.render().startswith("My Table")


class TestFormatting:
    def test_scientific_for_extreme_floats(self):
        out = format_table(["v"], [{"v": 1.23456e8}])
        assert "e+" in out

    def test_small_floats_scientific(self):
        out = format_table(["v"], [{"v": 1.2e-7}])
        assert "e-" in out

    def test_plain_floats_compact(self):
        out = format_table(["v"], [{"v": 3.14159}])
        assert "3.142" in out

    def test_bool_rendered_as_yes_no(self):
        out = format_table(["v"], [{"v": True}, {"v": False}])
        assert "yes" in out and "no" in out

    def test_zero_rendered_plainly(self):
        out = format_table(["v"], [{"v": 0.0}])
        assert " 0" in out or out.endswith("0")

    def test_alignment_consistent(self):
        out = format_table(["col"], [{"col": 1}, {"col": 100}])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1
