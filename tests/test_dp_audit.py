"""Tests for the white-box privacy audit."""

import math

import numpy as np
import pytest

from repro.dp.audit import audit_mechanism, delta_at_epsilon, privacy_loss_samples
from repro.dp.noise import GaussianNoise, LaplaceNoise


class TestPrivacyLossSamples:
    def test_laplace_loss_bounded_by_l1_over_scale(self):
        noise = LaplaceNoise(2.0)
        shift = np.array([0.5, -0.5, 1.0])
        losses = privacy_loss_samples(noise, shift, 20000, rng=np.random.default_rng(0))
        bound = np.abs(shift).sum() / 2.0
        assert losses.max() <= bound + 1e-12
        assert losses.min() >= -bound - 1e-12

    def test_laplace_loss_attains_bound(self):
        noise = LaplaceNoise(1.0)
        shift = np.array([1.0])
        losses = privacy_loss_samples(noise, shift, 50000, rng=np.random.default_rng(1))
        # loss = 1 whenever eta <= -1 (prob ~ e^-1/2 = 0.18): should be hit
        assert losses.max() == pytest.approx(1.0, abs=1e-9)

    def test_gaussian_loss_is_gaussian_with_known_moments(self):
        sigma = 2.0
        noise = GaussianNoise(sigma)
        shift = np.array([1.0, 1.0])
        losses = privacy_loss_samples(noise, shift, 200000, rng=np.random.default_rng(2))
        # L = (2<eta,c> + ||c||^2) / (2 sigma^2): mean ||c||^2/(2s^2), var ||c||^2/s^2
        c_sq = 2.0
        assert np.mean(losses) == pytest.approx(c_sq / (2 * sigma**2), abs=0.01)
        assert np.var(losses) == pytest.approx(c_sq / sigma**2, rel=0.05)

    def test_zero_shift_zero_loss(self):
        losses = privacy_loss_samples(
            LaplaceNoise(1.0), np.zeros(3), 100, rng=np.random.default_rng(3)
        )
        assert np.allclose(losses, 0.0)

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            privacy_loss_samples(LaplaceNoise(1.0), np.ones(2), 0)


class TestDeltaAtEpsilon:
    def test_zero_when_losses_below_epsilon(self):
        assert delta_at_epsilon(np.array([0.1, 0.5, 0.9]), 1.0) == 0.0

    def test_positive_when_losses_exceed(self):
        assert delta_at_epsilon(np.array([2.0, 0.0]), 1.0) > 0.0

    def test_monotone_decreasing_in_epsilon(self):
        losses = np.random.default_rng(4).normal(0.5, 1.0, 10000)
        d1 = delta_at_epsilon(losses, 0.5)
        d2 = delta_at_epsilon(losses, 1.5)
        assert d2 < d1

    def test_matches_gaussian_closed_form(self):
        """For the Gaussian mechanism, delta(eps) has a closed form."""
        from repro.dp.mechanisms import _gaussian_delta

        sigma, eps = 1.5, 0.7
        noise = GaussianNoise(sigma)
        shift = np.array([1.0])  # sensitivity-1 worst case
        losses = privacy_loss_samples(noise, shift, 400000, rng=np.random.default_rng(5))
        expected = _gaussian_delta(sigma, 1.0, eps)
        assert delta_at_epsilon(losses, eps) == pytest.approx(expected, rel=0.05)


class TestAuditMechanism:
    def test_correctly_calibrated_laplace_passes(self):
        noise = LaplaceNoise(1.0)  # sensitivity 1 at eps 1
        res = audit_mechanism(noise, np.array([1.0]), epsilon=1.0, n_samples=20000,
                              rng=np.random.default_rng(6))
        assert res.passed
        assert res.max_loss <= 1.0 + 1e-9

    def test_undercalibrated_laplace_fails(self):
        noise = LaplaceNoise(0.4)  # too little noise for eps=1 at sensitivity 1
        res = audit_mechanism(noise, np.array([1.0]), epsilon=1.0, n_samples=20000,
                              rng=np.random.default_rng(7))
        assert not res.passed

    def test_gaussian_passes_at_claimed_delta(self):
        from repro.dp.mechanisms import classical_gaussian_sigma

        sigma = classical_gaussian_sigma(1.0, 1.0, 1e-4)
        res = audit_mechanism(GaussianNoise(sigma), np.array([1.0]), epsilon=1.0,
                              delta=1e-4, n_samples=50000, rng=np.random.default_rng(8))
        assert res.passed

    def test_gaussian_fails_pure_dp_claim(self):
        """Gaussian noise can never deliver pure DP (unbounded loss)."""
        res = audit_mechanism(GaussianNoise(1.0), np.array([3.0]), epsilon=1.0,
                              delta=0.0, n_samples=50000, rng=np.random.default_rng(9))
        assert not res.passed

    def test_result_records_inputs(self):
        res = audit_mechanism(LaplaceNoise(1.0), np.array([0.5]), epsilon=1.0,
                              n_samples=1000, rng=np.random.default_rng(10))
        assert res.epsilon_claimed == 1.0
        assert res.n_samples == 1000
