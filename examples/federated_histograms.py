"""Federated streaming histograms with budget accounting.

The paper's Definition 1 models user-level privacy for histograms: one
user's activity changes the histogram by at most 1 in l1.  Here three
organisations observe event streams (item views), maintain streaming
SJLT sketches (O(s) per event — Theorem 3 item 4), and periodically
release private snapshots.  A coordinator compares the histograms
without seeing any raw counts, while each party's accountant enforces
its total privacy budget.

Run:  python examples/federated_histograms.py
"""

import numpy as np

from repro import PrivacyGuarantee, SketchConfig, SketchingSession
from repro.dp.accountant import BudgetExceededError
from repro.workloads import UpdateStream, materialize_stream


def main() -> None:
    dim = 8192  # item catalogue size
    config = SketchConfig(input_dim=dim, epsilon=1.0, output_dim=512, sparsity=8, seed=99)
    session = SketchingSession(config, budget=PrivacyGuarantee(3.0))

    streams = {
        "shop-eu": UpdateStream(dim=dim, n_updates=30000, seed=1, zipf_a=1.3),
        "shop-us": UpdateStream(dim=dim, n_updates=30000, seed=2, zipf_a=1.3),
        "shop-apac": UpdateStream(dim=dim, n_updates=12000, seed=3, zipf_a=1.8),
    }

    print(f"session: k={session.sketcher.output_dim}, s={session.sketcher.sparsity}, "
          f"{session.sketcher.guarantee} per release, budget 3-DP per party\n")

    released = {}
    for name, stream in streams.items():
        party = session.create_party(name)
        released[name] = party.release_stream(stream, label=f"{name}:day-1")
        print(f"{name:10s} released a sketch  (spent {party.spent()})")

    # the coordinator compares histograms from sketches alone
    names = list(streams)
    print("\npairwise squared distances (estimated vs true):")
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            est = session.estimate_sq_distance(released[names[i]], released[names[j]])
            true = float(
                np.sum(
                    (materialize_stream(streams[names[i]], dim)
                     - materialize_stream(streams[names[j]], dim)) ** 2
                )
            )
            print(f"  {names[i]:10s} vs {names[j]:10s}  est {est:12.0f}   true {true:12.0f}")

    # budget enforcement: the third release of a party blows its 3-DP budget
    eu = session.parties["shop-eu"]
    eu.release_stream(streams["shop-eu"], label="shop-eu:day-2")
    print(f"\nshop-eu after day-2 release: spent {eu.spent()}")
    try:
        eu.release_stream(streams["shop-eu"], label="shop-eu:day-3")
    except BudgetExceededError as exc:
        print(f"day-3 release blocked by the accountant:\n  {exc}")


if __name__ == "__main__":
    main()
