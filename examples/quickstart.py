"""Quickstart: privately estimate the distance between two vectors.

Two parties each hold a private vector.  They agree (publicly) on a
sketch configuration — which fixes the random projection — sketch their
vectors locally with secret noise, and publish the sketches.  Anyone
can then estimate the squared Euclidean distance between the originals.

The second half shows the batch API: a party holding a whole matrix of
vectors sketches every row in one vectorised pass (`sketch_batch`) and
an analyst estimates all pairwise distances at once
(`pairwise_sq_distances`).

The final sections show the serving workflow: accumulate releases into
a `ShardedSketchStore`, persist it to disk (atomically), reload it in a
fresh process — either eagerly or as lazy memory maps for stores larger
than RAM — and answer typed queries (`TopKQuery`, `RadiusQuery`, ...)
through `DistanceService.execute()`, serially or across a thread pool
of shard workers; shrink the store 2-8x with quantised shard storage
(`compact(storage="f4")`); route queries past most shards entirely with
IVF-style centroid routing (`compact(routing=True)` + an optional
`RoutingSpec(nprobe=N)` recall/latency dial); then serve the same store
**over the network** with `SketchQueryServer` and query it through a
`DistanceClient`, which speaks the same `execute()` protocol and
returns bit-identical results.  The "keep the store healthy" section
shows the LSM maintenance lifecycle: tombstone a release
(`delete(labels)` — no privacy-budget refund, see
`repro.serving.store`), let a background `MaintenancePolicy` compact
the store disk-to-disk into a new generation (peak RSS stays O(block),
not O(store)), and watch a `watch_interval=` server hot-swap the new
generation in with zero downtime.  The last section scales the server
out: multi-process `--processes N` workers with a `--cache` release
cache on one port, and a `RouterService` scatter-gathering across
several store servers while keeping answers bit-identical.

Going deeper: docs/ARCHITECTURE.md maps the layers this tour walks
through (and where the privacy budget is actually spent),
docs/FORMATS.md specifies the on-disk container and manifest, and
docs/OPERATIONS.md is the production runbook (env vars, CLI flags,
maintenance).

Run:  python examples/quickstart.py
"""

import resource
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    MaintenancePolicy,
    PrivateSketcher,
    RouterService,
    RoutingSpec,
    ShardedSketchStore,
    SketchConfig,
    SketchQueryServer,
    StoreMaintainer,
    TopKQuery,
    compact_store,
)


def main() -> None:
    rng = np.random.default_rng(7)
    dim = 4096

    # The two private inputs (imagine them on different machines).
    x = 10.0 * rng.standard_normal(dim)
    y = x + 0.6 * rng.standard_normal(dim)
    true_sq_distance = float((x - y) @ (x - y))

    # Public configuration: pure epsilon-DP via the paper's SJLT+Laplace
    # sketch.  The seed is public; the noise is not.
    config = SketchConfig(
        input_dim=dim,
        epsilon=4.0,          # per-release privacy budget
        alpha=0.3, beta=0.05,  # JL accuracy target -> k, s are derived
    )
    sketcher = PrivateSketcher(config)
    print(f"transform: {config.transform}  k={sketcher.output_dim}  s={sketcher.sparsity}")
    print(f"noise:     {sketcher.noise.name} (chosen by the Note 5 rule)")
    print(f"guarantee: {sketcher.guarantee} per release")

    # Each party sketches independently.
    sketch_x = sketcher.sketch(x, label="party-x")
    sketch_y = sketcher.sketch(y, label="party-y")

    # Sketches are plain bytes: safe to publish, store, or send.
    blob = sketch_x.to_bytes()
    print(f"sketch size: {len(blob)} bytes (vs {8 * dim} for the raw vector)")

    estimate = sketcher.estimate_sq_distance(sketch_x, sketch_y)
    sigma = sketcher.theoretical_variance(true_sq_distance) ** 0.5
    print(f"\ntrue  ||x - y||^2 = {true_sq_distance:10.3f}")
    print(f"est.  ||x - y||^2 = {estimate:10.3f}   (theory std ~ {sigma:.3f})")
    print(f"|error| / std     = {abs(estimate - true_sq_distance) / sigma:10.3f}")

    # -- batch mode: matrices in, distance matrices out --------------------
    # One party holds several vectors; sketch them all in one vectorised
    # pass (one independent noise draw per row) and publish the batch.
    crowd = 10.0 * rng.standard_normal((6, dim))
    batch = sketcher.sketch_batch(crowd, labels=tuple(f"row-{i}" for i in range(6)))

    # Anyone can now answer matrix-shaped queries from the release alone.
    pairwise = sketcher.pairwise_sq_distances(batch)       # (6, 6) estimates
    norms = sketcher.sq_norms(batch)                       # (6,) estimates
    true_pairwise = np.sum((crowd[:, None, :] - crowd[None, :, :]) ** 2, axis=-1)
    off_diagonal = ~np.eye(6, dtype=bool)
    rel_err = np.abs(pairwise - true_pairwise)[off_diagonal] / true_pairwise[off_diagonal]
    print(f"\nbatch of {len(batch)} rows -> pairwise matrix {pairwise.shape}")
    print(f"median relative error (off-diagonal): {np.median(rel_err):.3f}")
    print(f"squared-norm estimates: {np.round(norms, 1)}")

    # -- serving mode: build store -> persist -> reload -> query -----------
    # Releases accumulate into a sharded store (appends copy only the new
    # rows; per-shard norms are cached for queries), which persists as a
    # directory of versioned binary shards.  save() is atomic — a crash
    # mid-save never corrupts an existing store — and labels round-trip
    # with their types (integers stay integers).
    store = ShardedSketchStore(shard_capacity=4)
    store.add_batch(batch)                       # the release published above
    query = sketcher.sketch(crowd[0], label="query")
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "sketch-store"
        store.save(store_dir)                    # manifest + one blob per shard
        reloaded = ShardedSketchStore.load(store_dir)  # e.g. in another process

        # Every query is a typed object answered by one entry point:
        # execute() returns the payload plus stats (shards visited /
        # pruned by the norm-bound prefilter, rows scanned, wall time).
        service = DistanceService(reloaded)      # or session.serve(batch)
        result = service.execute(TopKQuery(queries=query, k=3))
        neighbors = result.payload[0]
        print(f"\nstore: {len(reloaded)} rows in {reloaded.n_shards} shards, "
              f"saved + reloaded bit-exactly")
        print("3 nearest stored rows to a fresh sketch of row-0 "
              "(label, estimated squared distance):")
        for label, estimate in neighbors:
            print(f"  {label:>6}  {estimate:10.3f}")
        print(f"stats: {result.stats.shards_visited} shards visited, "
              f"{result.stats.shards_pruned} pruned, "
              f"{result.stats.rows_scanned} rows scanned")

        # -- larger-than-RAM + parallel: mmap-load and fan out queries -----
        # mmap=True attaches each shard as a lazy memory map: nothing is
        # read until a query touches the shard, the OS pages rows in and
        # out on demand, and whole shards the norm-bound prefilter rules
        # out are never read at all.  An ExecutionPolicy with workers=N
        # dispatches per-shard distance blocks across a thread pool (BLAS
        # releases the GIL) — answers are bit-identical to serial, just
        # faster on multi-core machines.
        mapped = ShardedSketchStore.load(store_dir, mmap=True)
        with DistanceService(mapped, ExecutionPolicy(workers=4)) as parallel:
            parallel_hits = parallel.execute(TopKQuery(queries=query, k=3)).payload[0]
            assert parallel_hits == neighbors    # identical answers
        print(f"mmap-loaded store answers identically "
              f"({mapped.resident_shards}/{mapped.n_shards} shards touched "
              f"lazily, 4 query workers)")

        # -- shrink your store: quantised shard storage --------------------
        # The same accuracy-for-compactness dial the paper turns at the
        # sketch level exists at the storage level: build at full
        # precision, then compact(storage=...) re-encodes the shards as
        # f4 (half size), f2 (quarter) or scalar-quantised int8 with a
        # per-shard scale (eighth).  Queries run unchanged through the
        # same ShardView interface — f4 shards are scanned by a native
        # float32 GEMM — within the documented error envelope of
        # repro.theory.quantisation.  At 105k rows x k=64
        # (benchmarks/bench_quantised_store.py): f4 is exactly 2.0x
        # smaller on disk and in mapped memory with top-10 recall 1.000
        # vs the f8 ranking and ~1.2x faster scans; int8 is 8.0x
        # smaller at recall ~0.97.
        shrunk_dir = Path(tmp) / "sketch-store-f4"
        full = ShardedSketchStore.load(store_dir, mmap=True)
        full_bytes = full.nbytes
        full.compact(storage="f4").save(shrunk_dir)
        shrunk = ShardedSketchStore.load(shrunk_dir, mmap=True)  # mmap-serve it
        f4_hits = DistanceService(shrunk).execute(
            TopKQuery(queries=query, k=3)
        ).payload[0]
        assert [label for label, _ in f4_hits] == [label for label, _ in neighbors]
        print(f"f4 store: {shrunk.nbytes} stored-value bytes "
              f"(vs {full_bytes} at f8, {full_bytes / shrunk.nbytes:.1f}x), "
              f"same top-3 {shrunk.describe()['storage']}-served neighbors")

        # -- route your queries: sub-linear search over clustered data -----
        # compact(routing=True) reorders rows by k-means cluster and
        # persists one centroid + covering radius per shard.  Queries
        # then skip shards in two modes:
        #
        # * exact (the default once a table exists): a shard is pruned
        #   only when the centroid-ball bound *proves* it cannot beat
        #   the current top-k — answers stay bit-identical;
        # * approximate: RoutingSpec(nprobe=N) visits only the N
        #   shards with the nearest centroids — a recall/latency dial
        #   (benchmarks/bench_routed_search.py gates recall@10 >= 0.95
        #   at 105k rows; here the demo checks its own recall).
        #
        # Routing is pure post-processing of released sketches — zero
        # extra privacy budget (docs/ARCHITECTURE.md spells out why).
        routing_rng = np.random.default_rng(11)
        clustered_cfg = SketchConfig(input_dim=64, epsilon=4.0,
                                     output_dim=32, sparsity=4)
        clustered_sk = PrivateSketcher(clustered_cfg)
        centers = 10.0 * routing_rng.standard_normal((8, 64))
        points = (centers[routing_rng.integers(8, size=4000)]
                  + routing_rng.standard_normal((4000, 64)))
        clustered = ShardedSketchStore(shard_capacity=512)
        clustered.add_batch(clustered_sk.sketch_batch(points, noise_rng=1))
        routed_store = clustered.compact(routing=True)  # k-means + radii
        probe = clustered_sk.sketch_batch(
            centers[:1] + routing_rng.standard_normal((1, 64)), noise_rng=2
        )
        with DistanceService(
            routed_store, ExecutionPolicy(routing=False)
        ) as flat_svc:                           # routing off: full scan
            flat = flat_svc.execute(TopKQuery(queries=probe, k=10))
        with DistanceService(routed_store) as routed_svc:
            t0 = time.perf_counter()
            exact = routed_svc.execute(TopKQuery(queries=probe, k=10))
            exact_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            approx = routed_svc.execute(
                TopKQuery(queries=probe, k=10, routing=RoutingSpec(nprobe=2))
            )
            approx_s = time.perf_counter() - t0
        assert exact.payload == flat.payload     # exact mode: a proof
        exact_hits = {label for label, _ in exact.payload[0]}
        approx_hits = {label for label, _ in approx.payload[0]}
        recall = len(exact_hits & approx_hits) / len(exact_hits)
        print(f"\nrouted store: {routed_store.n_shards} shards, "
              f"{routed_store.describe()['routing']['n_clusters']} clusters")
        print(f"exact-routed: bit-identical top-10 in {exact_s * 1e3:.2f} ms, "
              f"{exact.stats.shards_routed} shards route-pruned, "
              f"{exact.stats.rows_scanned}/{exact.stats.rows_total} rows")
        print(f"nprobe=2:     recall@10 {recall:.2f} in {approx_s * 1e3:.2f} ms, "
              f"{approx.stats.rows_scanned}/{approx.stats.rows_total} rows")

        # -- keep the store healthy: delete -> policy -> live swap ---------
        # A long-lived store needs upkeep, and all of it is pure
        # post-processing of already-released sketches — zero extra
        # privacy budget.  Three moves:
        #
        # 1. Tombstone deletion.  delete(labels) marks rows dead; they
        #    vanish from every query immediately and are physically
        #    dropped at the next compaction.  Deletion never *refunds*
        #    budget — the noise was sampled and the budget spent at
        #    release time; a tombstone is an availability control, not
        #    a privacy rewind (full argument in repro.serving.store).
        #
        # 2. Streaming maintenance.  compact_store(dir) rewrites the
        #    saved directory disk-to-disk in bounded row blocks, so the
        #    peak RSS of maintaining a 100-GB store is a few MB, and
        #    publishes the rewrite atomically as a numbered *generation*
        #    sibling dir — a crash mid-compaction leaves the old
        #    generation untouched.  A MaintenancePolicy automates the
        #    LSM lifecycle (hot f8 write tier -> cold f4/int8 read tier,
        #    thresholds on tombstones/rows/bytes) and a StoreMaintainer
        #    thread runs it in the background.
        #
        # 3. Live swap.  A server started with watch_interval=SECONDS
        #    (CLI: --watch) polls the manifest and hot-swaps each new
        #    generation in with zero downtime: in-flight queries finish
        #    on the snapshot they started with, caches invalidate
        #    through the generation-aware store token.
        healthy_dir = Path(tmp) / "sketch-store-live"
        store.save(healthy_dir)
        with SketchQueryServer.from_store_dir(
            healthy_dir, port=0, watch_interval=0.05
        ).start() as live_server, DistanceClient(live_server.url) as live_client:
            before = live_client.health()
            living = ShardedSketchStore.load(healthy_dir)
            living.delete(["row-3"])             # tombstone, no budget refund
            living.save(healthy_dir)
            rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # cold_rows is tiny here so the demo store crosses the
            # hot->cold threshold; production values are millions
            policy = MaintenancePolicy(cold_storage="f4", min_tombstones=1,
                                       cold_rows=5)
            with StoreMaintainer(healthy_dir, policy, interval=60.0) as maintainer:
                summary = maintainer.run_once()  # or .start() a background thread
            rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            deadline = time.monotonic() + 30.0
            while not live_server.swaps:         # watcher picks the new gen up
                if time.monotonic() > deadline:
                    raise RuntimeError(f"no swap: {live_server.watch_error!r}")
                time.sleep(0.02)
            after = live_client.health()
            print(f"\nmaintenance: gen {before['generation']} -> "
                  f"{after['generation']}, {before['rows']} -> {after['rows']} "
                  f"rows ({summary['tombstones_dropped']} tombstone dropped, "
                  f"now {summary['storage']}), served across the swap with "
                  f"zero downtime; compaction RSS growth "
                  f"{max(0, rss_after - rss_before)} KB (disk-to-disk, "
                  f"O(block) however large the store)")

        # -- serve over the network ----------------------------------------
        # The saved store can be served to remote analysts with zero extra
        # dependencies.  From a shell you would run
        #
        #     python -m repro.serving.server --store sketch-store --port 8790
        #
        # Here we start the same server in-process; DistanceClient
        # implements the same execute() protocol as DistanceService, so
        # local and remote are interchangeable — and the payloads are
        # bit-identical, not approximately equal.  The client keeps its
        # TCP connection alive and reuses it across requests (a bounded
        # pool, thread-safe), retrying once on a stale connection.
        with SketchQueryServer.from_store_dir(store_dir, port=0).start() as server:
            client = DistanceClient(server.url)
            remote = client.execute(TopKQuery(queries=query, k=3))
            assert remote.payload[0] == neighbors   # bit-identical over HTTP
            print(f"served at {server.url}: {client.health()['rows']} rows; "
                  f"remote top-3 identical to local "
                  f"(server-side {remote.stats.elapsed_seconds * 1e3:.2f} ms, "
                  f"{client.connections_opened} TCP connection)")

        # -- scale out the server ------------------------------------------
        # Three independent dials, all preserving bit-identical answers:
        #
        # 1. More processes on one machine.
        #
        #        python -m repro.serving.server --store sketch-store \
        #            --port 8790 --processes 4 --cache 1024
        #
        #    forks 4 SO_REUSEPORT workers on the same port — the kernel
        #    spreads connections across them, each mmaps the same shard
        #    files (shared read-only through the page cache), so memory
        #    stays ~one store regardless of process count.  --cache N
        #    adds a bounded LRU of result envelopes per worker: a repeat
        #    of an identical query is served from memory.  Caching costs
        #    zero extra privacy budget — the noise was sampled when the
        #    sketches were *released*, so every query (first, cached, or
        #    retried) is post-processing of the same published data.
        #
        # 2. More machines.  A RouterService scatters each query across
        #    several store servers and merges the partial results with
        #    the same shard-ordered reduction the single-store engine
        #    uses — so the merged ranking is bit-identical to one big
        #    store.  It speaks execute() like everything else, so a
        #    SketchQueryServer can serve *it*, giving remote analysts
        #    one endpoint over the whole fleet.
        # split on the store's shard boundary: each backend's scan
        # blocks then have exactly the shapes the single store's shards
        # do, keeping the merged ranking bit-identical rather than
        # merely close (BLAS kernels may round differently for
        # different block shapes)
        half = store.shard_capacity
        part_a = ShardedSketchStore(shard_capacity=store.shard_capacity)
        part_b = ShardedSketchStore(shard_capacity=store.shard_capacity)
        part_a.add_batch(batch[:half])
        part_b.add_batch(batch[half:])
        backends = [
            SketchQueryServer(DistanceService(part), port=0).start()
            for part in (part_a, part_b)
        ]
        try:
            router = RouterService(
                [DistanceClient(b.url) for b in backends], close_backends=True
            )
            with SketchQueryServer(router, port=0).start() as front:
                with DistanceClient(front.url) as analyst:
                    routed = analyst.execute(TopKQuery(queries=query, k=3))
                    assert routed.payload[0] == neighbors  # merged == one store
                    print(f"router over {analyst.health()['backends']} backends "
                          f"at {front.url}: merged top-3 bit-identical")
        finally:
            for backend in backends:
                backend.close()


if __name__ == "__main__":
    main()
