"""Quickstart: privately estimate the distance between two vectors.

Two parties each hold a private vector.  They agree (publicly) on a
sketch configuration — which fixes the random projection — sketch their
vectors locally with secret noise, and publish the sketches.  Anyone
can then estimate the squared Euclidean distance between the originals.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PrivateSketcher, SketchConfig


def main() -> None:
    rng = np.random.default_rng(7)
    dim = 4096

    # The two private inputs (imagine them on different machines).
    x = 10.0 * rng.standard_normal(dim)
    y = x + 0.6 * rng.standard_normal(dim)
    true_sq_distance = float((x - y) @ (x - y))

    # Public configuration: pure epsilon-DP via the paper's SJLT+Laplace
    # sketch.  The seed is public; the noise is not.
    config = SketchConfig(
        input_dim=dim,
        epsilon=4.0,          # per-release privacy budget
        alpha=0.3, beta=0.05,  # JL accuracy target -> k, s are derived
    )
    sketcher = PrivateSketcher(config)
    print(f"transform: {config.transform}  k={sketcher.output_dim}  s={sketcher.sparsity}")
    print(f"noise:     {sketcher.noise.name} (chosen by the Note 5 rule)")
    print(f"guarantee: {sketcher.guarantee} per release")

    # Each party sketches independently.
    sketch_x = sketcher.sketch(x, label="party-x")
    sketch_y = sketcher.sketch(y, label="party-y")

    # Sketches are plain bytes: safe to publish, store, or send.
    blob = sketch_x.to_bytes()
    print(f"sketch size: {len(blob)} bytes (vs {8 * dim} for the raw vector)")

    estimate = sketcher.estimate_sq_distance(sketch_x, sketch_y)
    sigma = sketcher.theoretical_variance(true_sq_distance) ** 0.5
    print(f"\ntrue  ||x - y||^2 = {true_sq_distance:10.3f}")
    print(f"est.  ||x - y||^2 = {estimate:10.3f}   (theory std ~ {sigma:.3f})")
    print(f"|error| / std     = {abs(estimate - true_sq_distance) / sigma:10.3f}")


if __name__ == "__main__":
    main()
