"""Private nearest-neighbour search over a document corpus.

The paper's introduction motivates JL sketches with nearest-neighbour
search.  Here a set of hospitals each hold a document (a bag-of-words
histogram of case notes); they publish private sketches once, and a
researcher finds, for each document, its most similar peer — without
anyone revealing a document.

Run:  python examples/private_nearest_neighbors.py
"""

import numpy as np

from repro import PrivateSketcher, SketchConfig, estimate_distance_matrix
from repro.workloads import make_corpus


def main() -> None:
    rng = np.random.default_rng(3)
    n_docs, vocab = 24, 2048

    corpus = make_corpus(
        n_docs=n_docs, vocab_size=vocab, doc_length=4000, rng=rng, n_topics=3
    )
    print(f"corpus: {n_docs} documents, vocabulary {vocab}, 3 latent topics")

    config = SketchConfig(input_dim=vocab, epsilon=6.0, alpha=0.15, beta=0.05, seed=42)
    sketcher = PrivateSketcher(config)
    print(f"sketch: k={sketcher.output_dim}, s={sketcher.sparsity}, {sketcher.guarantee}")

    # Each "hospital" sketches its own document with its own secret noise.
    sketches = [
        sketcher.sketch(doc, noise_rng=None, label=f"hospital-{i}")
        for i, doc in enumerate(corpus.counts)
    ]

    # The researcher sees only sketches.
    estimated = estimate_distance_matrix(sketches)
    np.fill_diagonal(estimated, np.inf)
    nearest_private = estimated.argmin(axis=1)

    exact = corpus.pairwise_sq_distances()
    np.fill_diagonal(exact, np.inf)
    nearest_exact = exact.argmin(axis=1)

    same_topic = corpus.topics[nearest_private] == corpus.topics
    agree_with_exact = nearest_private == nearest_exact
    print("\ndoc  topic  private-NN  exact-NN  same-topic?")
    for i in range(n_docs):
        print(
            f"{i:3d}  {corpus.topics[i]:5d}  {nearest_private[i]:10d}  "
            f"{nearest_exact[i]:8d}  {'yes' if same_topic[i] else 'no'}"
        )
    print(f"\nprivate NN matches exact NN:   {agree_with_exact.mean():.0%}")
    print(f"private NN shares query topic: {same_topic.mean():.0%}")
    print("(privacy costs some precision; topic-level structure survives)")


if __name__ == "__main__":
    main()
