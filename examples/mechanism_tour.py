"""A tour of the paper's mechanism landscape.

Walks through the decisions the paper analyses:

1. Note 5 — Laplace vs Gaussian as a function of delta;
2. Section 7 — when the SJLT beats the Kenthapadi baseline;
3. Section 6.2.1 — the finite optimal sketch width k*;
4. Section 2.3.1 — discrete noise as a floating-point-safe drop-in;
5. a privacy-loss audit of the calibrated sketch.

Run:  python examples/mechanism_tour.py
"""

import math

import numpy as np

from repro import SketchConfig, PrivateSketcher, choose_noise_name
from repro.core.variance import kenthapadi_variance, sjlt_laplace_variance_bound
from repro.dp.audit import audit_mechanism
from repro.dp.mechanisms import classical_gaussian_sigma
from repro.dp.sensitivity import worst_case_neighbors
from repro.theory.bounds import optimal_output_dimension, sjlt_beats_iid_threshold


def tour_note5() -> None:
    print("=" * 70)
    print("1. Note 5: which noise should the SJLT use?")
    s = 8  # SJLT sensitivities: Delta_1 = sqrt(s), Delta_2 = 1
    for delta in (0.0, 1e-2, 1e-4, 1e-8, 1e-12):
        choice = choose_noise_name(math.sqrt(s), 1.0, epsilon=1.0, delta=delta)
        print(f"  delta = {delta:8.0e}  ->  {choice.noise_name:8s}  ({choice.reason})")


def tour_section7() -> None:
    print("=" * 70)
    print("2. Section 7: SJLT (Laplace) vs Kenthapadi (iid Gaussian), k=64, s=8")
    k, s, eps, dist_sq = 64, 8, 1.0, 16.0
    threshold = sjlt_beats_iid_threshold(s)
    print(f"   predicted crossover: delta ~ e^-s = {threshold:.2e}")
    sjlt = sjlt_laplace_variance_bound(k, s, eps, dist_sq)
    for delta in (1e-2, 1e-4, 1e-6, 1e-9, 1e-12):
        sigma = classical_gaussian_sigma(1.0, eps, delta)
        iid = kenthapadi_variance(k, sigma, dist_sq)
        winner = "SJLT" if sjlt < iid else "iid"
        print(f"  delta = {delta:6.0e}  var_sjlt = {sjlt:10.0f}  var_iid = {iid:10.0f}  -> {winner}")


def tour_optimal_k() -> None:
    print("=" * 70)
    print("3. Section 6.2.1: more dimensions is NOT always better under DP")
    from repro.dp.noise import LaplaceNoise

    noise = LaplaceNoise(math.sqrt(4) / 2.0)  # s=4, eps=2
    nu = 400.0  # max ||x-y||^2 over the domain
    k_star = optimal_output_dimension(nu, noise.second_moment, noise.fourth_moment)
    print(f"   for ||x-y||^2 <= {nu:g}: optimal k* = {k_star}")
    from repro.core.variance import general_variance, sjlt_transform_variance_bound

    for k in (k_star // 4, k_star, k_star * 4):
        var = general_variance(
            max(k, 1), nu, noise.second_moment, noise.fourth_moment,
            sjlt_transform_variance_bound(max(k, 1), nu),
        )
        marker = "  <- k*" if k == k_star else ""
        print(f"  k = {max(k, 1):5d}  variance = {var:12.0f}{marker}")


def tour_discrete() -> None:
    print("=" * 70)
    print("4. Section 2.3.1: discrete noise (floating-point-safe sampling)")
    dim = 1024
    for noise_name in ("laplace", "discrete_laplace"):
        config = SketchConfig(
            input_dim=dim, epsilon=1.0, output_dim=128, sparsity=4, noise=noise_name
        )
        sk = PrivateSketcher(config)
        print(
            f"  {noise_name:17s} E[eta^2] = {sk.noise.second_moment:8.3f}  "
            f"guarantee = {sk.guarantee}"
        )


def tour_audit() -> None:
    print("=" * 70)
    print("5. Auditing the calibrated sketch at its worst-case neighbour")
    config = SketchConfig(input_dim=512, epsilon=1.0, output_dim=64, sparsity=8, seed=5)
    sk = PrivateSketcher(config)
    x, x_prime = worst_case_neighbors(sk.transform, p=1)
    shift = sk.project(x_prime) - sk.project(x)
    result = audit_mechanism(
        sk.noise, shift, sk.guarantee.epsilon, sk.guarantee.delta,
        n_samples=50000, rng=np.random.default_rng(0),
    )
    print(f"  claimed: {sk.guarantee}")
    print(f"  max observed privacy loss: {result.max_loss:.6f} (<= epsilon: tight!)")
    print(f"  audit passed: {result.passed}")


def main() -> None:
    tour_note5()
    tour_section7()
    tour_optimal_k()
    tour_discrete()
    tour_audit()


if __name__ == "__main__":
    main()
