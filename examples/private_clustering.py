"""Private cluster assignment from sketches.

The paper's introduction cites clustering among the JL applications.
Here a set of devices each hold one feature vector; a coordinator holds
public (non-private) cluster centroids.  Each device publishes one
private sketch; the coordinator assigns every device to its nearest
centroid using only sketches — never seeing a feature vector — and we
score the assignment against the ground-truth mixture labels.

Run:  python examples/private_clustering.py
"""

import numpy as np

from repro import PrivateSketcher, SketchConfig, estimate_sq_distance
from repro.workloads import clustered_points


def main() -> None:
    rng = np.random.default_rng(21)
    d, n_points, n_clusters = 1024, 60, 4

    points, labels, centers = clustered_points(
        d, n_points, n_clusters, rng, separation=40.0, spread=1.0
    )
    print(f"{n_points} devices, {n_clusters} clusters, d={d}")

    config = SketchConfig(input_dim=d, epsilon=4.0, alpha=0.2, beta=0.05, seed=77)
    sketcher = PrivateSketcher(config)
    print(f"sketch: k={sketcher.output_dim}, s={sketcher.sparsity}, "
          f"{sketcher.guarantee} per device\n")

    # Each device publishes one sketch (its only release).
    device_sketches = [sketcher.sketch(p, noise_rng=None) for p in points]
    # Centroids are public, so the coordinator sketches them with zero
    # noise budget concerns — but they must go through the same public
    # transform to be comparable; noise keeps the estimator unbiased.
    center_sketches = [sketcher.sketch(c, noise_rng=None) for c in centers]

    assigned = np.empty(n_points, dtype=int)
    for i, sketch in enumerate(device_sketches):
        distances = [estimate_sq_distance(sketch, cs) for cs in center_sketches]
        assigned[i] = int(np.argmin(distances))

    accuracy = float(np.mean(assigned == labels))
    confusion = np.zeros((n_clusters, n_clusters), dtype=int)
    for true, got in zip(labels, assigned):
        confusion[true, got] += 1

    print("confusion matrix (rows = true cluster, cols = assigned):")
    for row in confusion:
        print("   " + " ".join(f"{v:4d}" for v in row))
    print(f"\nassignment accuracy from sketches alone: {accuracy:.0%}")

    # reference: how well does the non-private projection do?
    exact = np.empty(n_points, dtype=int)
    for i, p in enumerate(points):
        exact[i] = int(np.argmin([np.sum((p - c) ** 2) for c in centers]))
    print(f"exact-distance assignment accuracy:       {np.mean(exact == labels):.0%}")


if __name__ == "__main__":
    main()
