"""Private document similarity: inner products and norms from sketches.

Beyond distances, a single sketch per document supports unbiased
estimates of norms and inner products (the polarization identity of
Definition 4's LPP discussion), enabling cosine-style similarity
rankings between documents held by different parties.

Run:  python examples/document_similarity.py
"""

import numpy as np

from repro import (
    PrivateSketcher,
    SketchConfig,
    estimate_inner_product,
    estimate_sq_norm,
)
from repro.workloads import make_corpus


def main() -> None:
    rng = np.random.default_rng(11)
    vocab = 4096
    corpus = make_corpus(n_docs=10, vocab_size=vocab, doc_length=6000, rng=rng, n_topics=2)

    config = SketchConfig(input_dim=vocab, epsilon=8.0, alpha=0.15, beta=0.05, seed=17)
    sketcher = PrivateSketcher(config)
    print(f"k={sketcher.output_dim}, s={sketcher.sparsity}, {sketcher.guarantee} per doc\n")

    sketches = [sketcher.sketch(doc) for doc in corpus.counts]

    query = 0
    print(f"similarity of every document to document {query} "
          f"(topic {corpus.topics[query]}):\n")
    print("doc  topic  est_cosine  true_cosine")
    true_norms = np.linalg.norm(corpus.counts, axis=1)
    est_norms = [max(estimate_sq_norm(s), 1e-9) ** 0.5 for s in sketches]
    rows = []
    for j in range(1, corpus.n_docs):
        est_ip = estimate_inner_product(sketches[query], sketches[j])
        est_cos = est_ip / (est_norms[query] * est_norms[j])
        true_cos = float(corpus.counts[query] @ corpus.counts[j]) / (
            true_norms[query] * true_norms[j]
        )
        rows.append((j, corpus.topics[j], est_cos, true_cos))
        print(f"{j:3d}  {corpus.topics[j]:5d}  {est_cos:10.4f}  {true_cos:11.4f}")

    # ranking agreement: does the private ranking put same-topic docs first?
    rows.sort(key=lambda r: -r[2])
    top3_topics = [topic for _, topic, _, _ in rows[:3]]
    print(f"\nprivately-ranked top-3 topics: {top3_topics} "
          f"(query topic: {corpus.topics[query]})")


if __name__ == "__main__":
    main()
