"""Fail on dead relative links in the repository's documentation.

Checks every markdown link/image target in ``docs/**/*.md``,
``README.md`` and the doc pointers in ``examples/quickstart.py``
comments. External URLs (``http(s)://``, ``mailto:``) are skipped —
this is a *repo-consistency* check, not a crawler — and anchors are
verified against the target file's headings when the target is
markdown, so a renamed section breaks CI just like a renamed file.

Stdlib only, like everything else in the serving stack.

Run: ``python tools/check_docs_links.py`` (exit 1 on any dead link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# [text](target) and ![alt](target); targets with spaces are not used here
_MD_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
# bare doc-path mentions inside quickstart comments/docstrings
_DOC_MENTION = re.compile(r"(?:docs/[\w./-]+\.md|benchmarks/[\w./-]+\.py)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _heading_anchors(markdown: Path) -> set[str]:
    """GitHub-style anchors for every heading in a markdown file."""
    anchors = set()
    for line in markdown.read_text(encoding="utf-8").splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().lower()
        # the GitHub slug rule: drop everything but word chars, spaces
        # and hyphens, then hyphenate the spaces
        slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
        anchors.add(slug)
    return anchors


def _check_target(source: Path, target: str) -> str | None:
    """One link; returns an error message or ``None`` when it resolves."""
    if target.startswith(_EXTERNAL):
        return None
    path_part, _, anchor = target.partition("#")
    if not path_part:  # same-file anchor
        resolved = source
    else:
        resolved = (source.parent / path_part).resolve()
        if not resolved.exists():
            return f"{source.relative_to(ROOT)}: dead link -> {target}"
        if ROOT not in resolved.parents and resolved != ROOT:
            return f"{source.relative_to(ROOT)}: link escapes the repo -> {target}"
    if anchor and resolved.suffix == ".md":
        if anchor.lower() not in _heading_anchors(resolved):
            return (
                f"{source.relative_to(ROOT)}: dead anchor -> {target} "
                f"(no such heading in {resolved.name})"
            )
    return None


def _markdown_sources() -> list[Path]:
    sources = sorted((ROOT / "docs").glob("**/*.md"))
    readme = ROOT / "README.md"
    if readme.exists():
        sources.append(readme)
    return sources


def check() -> list[str]:
    errors = []
    for source in _markdown_sources():
        for match in _MD_LINK.finditer(source.read_text(encoding="utf-8")):
            error = _check_target(source, match.group(1))
            if error:
                errors.append(error)
    # quickstart's docstring/comments point readers at docs and
    # benchmarks by path; those pointers must not rot either
    quickstart = ROOT / "examples" / "quickstart.py"
    for mention in _DOC_MENTION.findall(quickstart.read_text(encoding="utf-8")):
        if not (ROOT / mention).exists():
            errors.append(f"examples/quickstart.py: dead doc pointer -> {mention}")
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print("docs links OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
