"""Centroid shard routing vs full scan at 105k rows.

The sub-linear search contract this PR ships, measured end to end on a
clustered workload (a mixture of well-separated Gaussians — the regime
IVF routing exists for; on uniform data the balls overlap and routing
legitimately keeps everything):

* **exactness** — the routed exact-mode top-10 payload must be
  *bit-identical* to the unrouted scan's (hard: the centroid-ball
  bound is a proof, not a heuristic — any divergence is a bug);
* **recall** — ``nprobe`` approximate routing must keep
  recall@10 >= 0.95 against the exact ranking (hard: the documented
  recall contract of ``RoutingSpec``);
* **work** — rows scanned must drop: exact routing prunes whole
  clusters by geometry alone, and ``nprobe`` scans only the probed
  shards.  Reported as scan fractions plus wall-clock timings (timings
  are informational — shared runners are noisy).

Queries execute one at a time: a batch visits the *union* of each
row's probes (the documented batch semantics), so per-query execution
is the honest measurement of how much work routing skips per request —
the shape a serving tier actually sees.

Emits ``BENCH_routed_search.json`` for the CI trajectory table.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_routed_search.py -v -s``
"""

import time

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    DistanceService,
    ExecutionPolicy,
    RoutingSpec,
    ShardedSketchStore,
    TopKQuery,
)

_D, _K, _S = 128, 64, 4
_ROWS = 105_000        # stored rows (>= 1e5 per the acceptance gate)
_CHUNK = 15_000        # sketching chunk, bounds peak memory
_SHARD = 8_192
_CENTERS = 24          # mixture components; one k-means cluster each
_QUERIES = 32
_TOP = 10
_NPROBE = 4
_REPEATS = 3

_MIN_RECALL = 0.95


def _build():
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    # mixture of Gaussians: cluster id per row, unit noise around centres
    centers = rng.standard_normal((_CENTERS, _D)) * 10.0
    data = centers[rng.integers(_CENTERS, size=_ROWS)] + rng.standard_normal(
        (_ROWS, _D)
    )
    store = ShardedSketchStore(shard_capacity=_SHARD, storage="f8")
    for start in range(0, _ROWS, _CHUNK):
        store.add_batch(
            sketcher.sketch_batch(data[start : start + _CHUNK], noise_rng=start)
        )
    # queries near cluster centres — the workload routing serves best
    near = centers[rng.integers(_CENTERS, size=_QUERIES)]
    queries = [
        sketcher.sketch_batch(
            near[i : i + 1] + rng.standard_normal((1, _D)), noise_rng=999_983 + i
        )
        for i in range(_QUERIES)
    ]
    return store, queries


def _run_queries(service, queries, routing=None):
    """Per-query best-of-N timings plus summed scan stats and payloads."""
    service.execute(TopKQuery(queries=queries[0], k=_TOP, routing=routing))  # warm
    total_s, scanned, total_rows, payloads = 0.0, 0, 0, []
    for batch in queries:
        query = TopKQuery(queries=batch, k=_TOP, routing=routing)
        best, result = float("inf"), None
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            result = service.execute(query)
            best = min(best, time.perf_counter() - t0)
        total_s += best
        scanned += result.stats.rows_scanned
        total_rows += result.stats.rows_total
        payloads.append(result.payload[0])
    return total_s, scanned / total_rows, payloads


def _recall(reference, candidate) -> float:
    per_query = [
        len({label for label, _ in ref} & {label for label, _ in got}) / len(ref)
        for ref, got in zip(reference, candidate)
    ]
    return float(np.mean(per_query))


def test_routed_search_is_exact_and_nprobe_keeps_recall(tmp_path, bench_record):
    store, queries = _build()
    # one cluster per mixture component: each ball is tight around its
    # component, the geometry the exact bound and nprobe both exploit
    store.compact(routing=_CENTERS, routing_seed=0)
    store.save(tmp_path / "routed")
    served = ShardedSketchStore.load(tmp_path / "routed", mmap=True)
    assert served.routing is not None, "routing table must survive save/load"

    with DistanceService(
        served, ExecutionPolicy(workers=1, routing=False)
    ) as unrouted_svc:
        unrouted_s, unrouted_frac, unrouted = _run_queries(unrouted_svc, queries)
    with DistanceService(served, ExecutionPolicy(workers=1)) as svc:
        routed_s, routed_frac, routed = _run_queries(svc, queries)
        nprobe_s, nprobe_frac, nprobe = _run_queries(
            svc, queries, RoutingSpec(nprobe=_NPROBE)
        )

    recall = _recall(routed, nprobe)
    identical = routed == unrouted

    print(
        f"\nstore: {_ROWS} rows in {served.n_shards} shards "
        f"({served.describe()['routing']['n_clusters']} clusters), "
        f"{_QUERIES} queries one at a time, k={_TOP}"
    )
    for name, seconds, frac in (
        ("unrouted", unrouted_s, unrouted_frac),
        ("exact-routed", routed_s, routed_frac),
        (f"nprobe={_NPROBE}", nprobe_s, nprobe_frac),
    ):
        print(
            f"{name:>14}: {seconds * 1e3:7.1f} ms total  "
            f"rows scanned {frac:6.1%}"
        )
    print(
        f"exact-routed bit-identical: {identical}; "
        f"nprobe recall@{_TOP} {recall:.3f} (gate {_MIN_RECALL})"
    )
    bench_record(
        "routed_search",
        workload=(
            f"top-{_TOP} x {_QUERIES} single queries over {_ROWS} clustered "
            f"rows ({_CENTERS} components), k={_K}, nprobe={_NPROBE}"
        ),
        timings={
            "unrouted_s": unrouted_s,
            "exact_routed_s": routed_s,
            "nprobe_s": nprobe_s,
        },
        speedups={
            "exact_routed_vs_unrouted": unrouted_s / routed_s,
            "nprobe_vs_unrouted": unrouted_s / nprobe_s,
        },
        rates={
            "scan_fraction_exact_pct": routed_frac * 100.0,
            "scan_fraction_nprobe_pct": nprobe_frac * 100.0,
        },
        recall={f"nprobe{_NPROBE}_at_{_TOP}": recall},
    )

    # -- hard gates -------------------------------------------------------
    assert identical, (
        "exact-mode routing changed the top-k payload — the centroid-ball "
        "bound pruned a shard it cannot prove hopeless"
    )
    assert recall >= _MIN_RECALL, (
        f"nprobe={_NPROBE} recall@{_TOP} {recall:.3f} below {_MIN_RECALL}"
    )
    # routing must actually skip work on clustered data
    assert routed_frac < unrouted_frac, (
        "exact routing scanned no fewer rows than the unrouted scan"
    )
    # a single query visits at most nprobe shards
    assert nprobe_frac <= _NPROBE * max(served.shard_sizes()) / len(served) + 1e-9
