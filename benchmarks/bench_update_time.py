"""EXP-UPD bench: O(s) streaming updates, plus a per-update micro-benchmark."""

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.core.streaming import StreamingSketch


def test_exp_upd_streaming(regenerate):
    result = regenerate("EXP-UPD")
    assert all(result.table.column("stream_eq_batch"))


def test_single_update_cost(benchmark):
    """One turnstile update on a large sketch — must touch only s coords."""
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=1 << 16, epsilon=1.0, output_dim=4096, sparsity=8)
    )
    streaming = StreamingSketch(sketcher)
    rng = np.random.default_rng(0)
    indices = rng.integers(0, 1 << 16, size=1024)

    state = {"i": 0}

    def one_update():
        streaming.update(int(indices[state["i"] % 1024]), 1.0)
        state["i"] += 1

    benchmark(one_update)
    assert streaming.n_updates > 0


def test_release_cost(benchmark):
    """Release = one noise vector + wrap: O(k)."""
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=4096, epsilon=1.0, output_dim=1024, sparsity=8)
    )
    streaming = StreamingSketch(sketcher)
    streaming.update(0, 1.0)
    sketch = benchmark(streaming.release, 7)
    assert sketch.values.shape == (1024,)
