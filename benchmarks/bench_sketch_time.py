"""EXP-S7-TIME bench: the Eq. (5) running-time regimes, plus direct
per-transform apply micro-benchmarks at a paper-regime size."""

import numpy as np
import pytest

from repro.transforms import create_transform

_D = 1 << 13
_K = 768
_S = 24


def test_exp_s7_time_regimes(regenerate):
    result = regenerate("EXP-S7-TIME")
    # shape: the FJLT is fastest at the top of the sweep (inside the window)
    assert result.table.rows[-1]["fastest_dense"] == "fjlt"


@pytest.mark.parametrize(
    "name,kwargs",
    [("sjlt", {"sparsity": _S}), ("fjlt", {"beta": 0.05})],
)
def test_apply_dense_vector(benchmark, name, kwargs):
    transform = create_transform(name, _D, _K, seed=0, **kwargs)
    x = np.random.default_rng(0).standard_normal(_D)
    out = benchmark(transform.apply, x)
    assert out.shape == (_K,)


def test_apply_sparse_vector_sjlt(benchmark):
    """Theorem 3 item 5: O(s * nnz + k) on sparse inputs."""
    transform = create_transform("sjlt", _D, _K, seed=0, sparsity=_S, precompute=False)
    rng = np.random.default_rng(1)
    idx = rng.choice(_D, 64, replace=False)
    vals = rng.standard_normal(64)
    out = benchmark(transform.apply_sparse, idx, vals)
    assert out.shape == (_K,)


def test_transform_construction_sjlt(benchmark):
    """SJLT construction needs no O(dk) work (hash tables only)."""
    counter = iter(range(10**9))

    def build():
        return create_transform("sjlt", _D, _K, seed=next(counter), sparsity=_S)

    transform = benchmark(build)
    assert transform.output_dim == _K
