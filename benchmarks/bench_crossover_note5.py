"""EXP-N5 bench: regenerate the Note 5 Laplace/Gaussian crossover table."""


def test_exp_n5_crossover(regenerate):
    result = regenerate("EXP-N5")
    # shape: both noises win somewhere in the delta sweep (a real crossover)
    optimal = set(result.table.column("optimal"))
    assert optimal == {"laplace", "gaussian"}
