"""EXP-OPTK bench: the finite variance-minimising output dimension."""


def test_exp_optk_finite_optimum(regenerate):
    result = regenerate("EXP-OPTK")
    theory = result.table.column("theory_var")
    # shape: the theoretical curve is not monotone — a real interior optimum
    assert min(theory) < theory[0]
    assert min(theory) < theory[-1]
