"""EXP-DISC bench: discrete noise utility, plus sampler micro-benchmarks."""

import numpy as np

from repro.dp.noise import (
    DiscreteGaussianNoise,
    DiscreteLaplaceNoise,
    GaussianNoise,
    LaplaceNoise,
)


def test_exp_disc_discrete_noise(regenerate):
    result = regenerate("EXP-DISC")
    gaussian_rows = [r for r in result.table.rows if r["pair"] == "gaussian"]
    assert all(r["m2_ratio"] <= 1.0 + 1e-9 for r in gaussian_rows)


def _bench_sampler(benchmark, noise):
    rng = np.random.default_rng(0)
    out = benchmark(noise.sample, 4096, rng)
    assert out.shape == (4096,)


def test_sample_laplace(benchmark):
    _bench_sampler(benchmark, LaplaceNoise(2.0))


def test_sample_gaussian(benchmark):
    _bench_sampler(benchmark, GaussianNoise(2.0))


def test_sample_discrete_laplace(benchmark):
    _bench_sampler(benchmark, DiscreteLaplaceNoise(2.0))


def test_sample_discrete_gaussian(benchmark):
    """Rejection sampling (Canonne et al.): expected O(1) per sample."""
    _bench_sampler(benchmark, DiscreteGaussianNoise(2.0))
