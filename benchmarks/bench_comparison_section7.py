"""EXP-S7-VAR bench: regenerate the Section 7 variance-comparison table."""


def test_exp_s7_variance_comparison(regenerate):
    result = regenerate("EXP-S7-VAR")
    winners = result.table.column("winner")
    # shape: the SJLT wins the small-delta end, the iid Gaussian the
    # large-delta end, and the FJLT-input variant never wins (k < d)
    assert winners[-1] == "sjlt"
    assert winners[0] == "iid"
    assert "fjlt" not in winners
