"""EXP-L8/C1 bench: regenerate the private-FJLT variance table."""


def test_exp_l8_c1_private_fjlt(regenerate):
    result = regenerate("EXP-L8")
    rows = {row["mode"]: row for row in result.table.rows}
    # shape: input perturbation pays the factor-d penalty (Lemma 8 vs Cor 1)
    assert rows["input"]["emp_var"] > rows["output"]["emp_var"]
