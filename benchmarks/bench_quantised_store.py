"""Quantised shard storage vs full precision at 105k rows.

The build-then-shrink workflow this PR ships: build a full-precision
store, ``compact(storage="f4")`` it, save both, and mmap-serve them
side by side.  Measures what the storage dial actually buys:

* **size** — stored-value bytes (the mmap working set) and on-disk
  directory bytes must shrink >= 2x for f4 vs f8 (hard: this is
  arithmetic, not timing — f4 is half of f8 and headers are elided to
  kilobytes), with int8 reported for the 8x end of the dial;
* **accuracy** — top-10 recall of the f4 store against the f8 ranking
  must be >= 0.95 (hard; the quantisation envelope is orders of
  magnitude below the sketch noise at this scale, so in practice it is
  ~1.0), int8 recall reported;
* **speed** — the f4 scan (native float32 GEMM, half the memory
  traffic) should beat the f8 scan per row
  (``QUANTISED_STORE_MIN_SPEEDUP``, soft — shared runners are noisy).

Emits ``BENCH_quantised_store.json`` for the CI trajectory table.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_quantised_store.py -v -s``
"""

import os
import time

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import DistanceService, ExecutionPolicy, ShardedSketchStore, TopKQuery

_D, _K, _S = 128, 64, 4
_ROWS = 105_000        # stored rows (>= 1e5 per the acceptance gate)
_CHUNK = 15_000        # sketching chunk, bounds peak memory
_SHARD = 8_192
_QUERIES = 32
_TOP = 10
_REPEATS = 3

_MIN_SPEEDUP = float(os.environ.get("QUANTISED_STORE_MIN_SPEEDUP", "1.05"))
_MIN_RECALL = 0.95


def _build():
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    store = ShardedSketchStore(shard_capacity=_SHARD, storage="f8")
    for start in range(0, _ROWS, _CHUNK):
        X = rng.standard_normal((min(_CHUNK, _ROWS - start), _D))
        store.add_batch(sketcher.sketch_batch(X, noise_rng=start))
    queries = sketcher.sketch_batch(
        rng.standard_normal((_QUERIES, _D)), noise_rng=999_983
    )
    return store, queries


def _dir_bytes(path) -> int:
    return sum(p.stat().st_size for p in path.iterdir())


def _time_top_k(service, queries):
    query = TopKQuery(queries=queries, k=_TOP)
    service.execute(query)  # warm: materialise maps, prime BLAS
    best, result = float("inf"), None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        result = service.execute(query).payload
        best = min(best, time.perf_counter() - t0)
    return best, result


def _recall(reference, candidate) -> float:
    """Mean fraction of the reference top-k recovered per query."""
    per_query = [
        len({label for label, _ in ref} & {label for label, _ in got}) / len(ref)
        for ref, got in zip(reference, candidate)
    ]
    return float(np.mean(per_query))


def test_f4_store_halves_bytes_and_keeps_recall(tmp_path, bench_record):
    store, queries = _build()
    store.save(tmp_path / "f8")

    # the documented shrink workflow: mmap the saved store, re-encode
    f4 = ShardedSketchStore.load(tmp_path / "f8", mmap=True).compact(storage="f4")
    f4.save(tmp_path / "f4")
    int8 = ShardedSketchStore.load(tmp_path / "f8", mmap=True).compact(storage="int8")
    int8.save(tmp_path / "int8")

    stores, seconds, results = {}, {}, {}
    for name in ("f8", "f4", "int8"):
        stores[name] = ShardedSketchStore.load(tmp_path / name, mmap=True)
        with DistanceService(stores[name], ExecutionPolicy(workers=1)) as service:
            seconds[name], results[name] = _time_top_k(service, queries)
    dir_bytes = {name: _dir_bytes(tmp_path / name) for name in stores}
    value_bytes = {name: stores[name].nbytes for name in stores}

    value_ratio = value_bytes["f8"] / value_bytes["f4"]
    disk_ratio = dir_bytes["f8"] / dir_bytes["f4"]
    recall_f4 = _recall(results["f8"], results["f4"])
    recall_int8 = _recall(results["f8"], results["int8"])
    speedup = seconds["f8"] / seconds["f4"]
    scans_per_s = _ROWS * _QUERIES / seconds["f4"]

    print(f"\nstore: {_ROWS} rows, k={_K}, {stores['f8'].n_shards} shards")
    for name in ("f8", "f4", "int8"):
        print(
            f"{name:>5}: {value_bytes[name] / 1e6:7.1f} MB values "
            f"({dir_bytes[name] / 1e6:7.1f} MB on disk)  "
            f"top-{_TOP} workload {seconds[name] * 1e3:7.1f} ms"
        )
    print(
        f"f4 vs f8: {value_ratio:.2f}x smaller values, {disk_ratio:.2f}x on disk, "
        f"recall@{_TOP} {recall_f4:.3f}, scan speedup {speedup:.2f}x "
        f"(gate {_MIN_SPEEDUP:g}x soft)"
        f"\nint8 vs f8: {value_bytes['f8'] / value_bytes['int8']:.2f}x smaller, "
        f"recall@{_TOP} {recall_int8:.3f}"
    )
    bench_record(
        "quantised_store",
        workload=f"top-{_TOP} x {_QUERIES} queries over {_ROWS} rows, k={_K}",
        timings={f"{n}_s": seconds[n] for n in seconds},
        speedups={"f4_vs_f8_scan": speedup},
        rates={"f4_row_scans_per_s": scans_per_s},
        sizes={
            **{f"{n}_value_bytes": value_bytes[n] for n in value_bytes},
            **{f"{n}_disk_bytes": dir_bytes[n] for n in dir_bytes},
        },
        recall={"f4_at_10": recall_f4, "int8_at_10": recall_int8},
    )

    # -- hard gates: size is arithmetic, recall is the accuracy contract --
    assert value_ratio >= 2.0, f"f4 values only {value_ratio:.3f}x smaller"
    assert disk_ratio >= 1.9, f"f4 store only {disk_ratio:.3f}x smaller on disk"
    assert recall_f4 >= _MIN_RECALL, (
        f"f4 recall@{_TOP} {recall_f4:.3f} below {_MIN_RECALL}"
    )
    # -- soft gate: timing on shared runners is noisy ---------------------
    assert speedup >= _MIN_SPEEDUP, (
        f"f4 scan only {speedup:.2f}x over f8 (threshold {_MIN_SPEEDUP:g}x)"
    )
