"""EXP-SENS bench: sensitivity distributions, plus the O(dk) init cost
the SJLT avoids (Section 2.1.1)."""

import numpy as np

from repro.transforms import create_transform, exact_sensitivity


def test_exp_sens_sensitivities(regenerate):
    result = regenerate("EXP-SENS")
    # shape: SJLT rows are deterministic (std == 0), gaussian/fjlt are not
    for row in result.table.rows:
        if row["transform"].startswith("sjlt"):
            assert row["std"] < 1e-9


def test_exact_sensitivity_scan_cost(benchmark):
    """The O(dk) initialisation Kenthapadi et al. need — measured."""
    transform = create_transform("gaussian", 4096, 256, seed=0)
    value = benchmark(exact_sensitivity, transform, 2)
    assert value > 0


def test_closed_form_sensitivity_cost(benchmark):
    """The SJLT's O(1) alternative."""
    transform = create_transform("sjlt", 4096, 256, seed=0, sparsity=8)
    value = benchmark(transform.sensitivity, 1)
    assert value == np.sqrt(8)
