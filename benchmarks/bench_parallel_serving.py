"""Shard-parallel + memory-mapped serving vs the serial in-RAM path.

Three configurations answer the same top-k / cross workload over a
105k-row store:

* **serial** — the PR-2 path: one thread streams all shards;
* **threaded** — ``ExecutionPolicy(workers=4)``: per-shard distance
  blocks run on a thread pool (BLAS releases the GIL);
* **mmap** — the same store reloaded with ``mmap=True``: shards are
  lazy memory maps, materialised only when a query touches them.

Gate: identical answers across all three (hard — bit-for-bit), the
mmap store must answer without eagerly materialising shards at load
time (hard), and the threaded path must beat serial by
``PARALLEL_SERVING_MIN_SPEEDUP`` (soft: defaults to 1.1 on machines
with >= 4 cores and is waived on smaller ones — thread parallelism
cannot win on a single core; CI pins its own threshold).

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_parallel_serving.py -v -s``
"""

import os
import time

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceService,
    ExecutionPolicy,
    ShardedSketchStore,
    TopKQuery,
)

_D, _K, _S = 128, 64, 4
_ROWS = 105_000        # stored rows (>= 1e5 per the acceptance gate)
_CHUNK = 15_000        # sketching chunk, bounds peak memory
_SHARD = 8_192         # 13 shards -> enough per-shard blocks to overlap
_QUERIES = 32          # batched queries amortise the merge
_TOP = 10
_REPEATS = 3           # best-of timing

_MIN_SPEEDUP = float(
    os.environ.get(
        "PARALLEL_SERVING_MIN_SPEEDUP",
        "1.1" if (os.cpu_count() or 1) >= 4 else "0",
    )
)


def _build():
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    store = ShardedSketchStore(shard_capacity=_SHARD)
    for start in range(0, _ROWS, _CHUNK):
        X = rng.standard_normal((min(_CHUNK, _ROWS - start), _D))
        store.add_batch(sketcher.sketch_batch(X, noise_rng=start))
    queries = sketcher.sketch_batch(
        rng.standard_normal((_QUERIES, _D)), noise_rng=999_983
    )
    return sketcher, store, queries


def _time_workload(service, queries):
    best = float("inf")
    result = None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        top = service.execute(TopKQuery(queries=queries, k=_TOP)).payload
        cross = service.execute(CrossQuery(queries=queries[:4])).payload
        best = min(best, time.perf_counter() - t0)
        result = (top, cross)
    return best, result


def test_threaded_serving_matches_serial_at_105k(tmp_path, bench_record):
    _, store, queries = _build()
    serial = DistanceService(store, ExecutionPolicy(workers=1, prefilter=False))
    serial_seconds, (serial_top, serial_cross) = _time_workload(serial, queries)

    with DistanceService(store, ExecutionPolicy(workers=4)) as threaded:
        threaded_seconds, (threaded_top, threaded_cross) = _time_workload(
            threaded, queries
        )

    # correctness is hard: bit-identical rankings and matrices
    assert threaded_top == serial_top
    np.testing.assert_array_equal(threaded_cross, serial_cross)

    # -- mmap: reload the same store lazily and answer from the maps -------
    store.save(tmp_path / "store")
    mapped_store = ShardedSketchStore.load(tmp_path / "store", mmap=True)
    assert mapped_store.resident_shards == 0  # nothing read at load time
    with DistanceService(mapped_store, ExecutionPolicy(workers=4)) as mapped:
        mapped_seconds, (mapped_top, mapped_cross) = _time_workload(mapped, queries)
    assert mapped_top == serial_top
    np.testing.assert_array_equal(mapped_cross, serial_cross)

    speedup = serial_seconds / threaded_seconds
    print(
        f"\nstore: {len(store)} rows, k={_K}, {store.n_shards} shards, "
        f"{os.cpu_count()} cores"
        f"\nserial   (1 thread):          {serial_seconds * 1e3:8.1f} ms/workload"
        f"\nthreaded (4 workers):         {threaded_seconds * 1e3:8.1f} ms/workload"
        f"\nmmap     (4 workers, lazy):   {mapped_seconds * 1e3:8.1f} ms/workload"
        f"\nthreaded speedup: {speedup:.2f}x (gate {_MIN_SPEEDUP:g}x)"
    )
    bench_record(
        "parallel_serving",
        workload=f"top-{_TOP}+cross over {len(store)} rows, {store.n_shards} shards",
        timings={
            "serial_s": serial_seconds,
            "threaded_s": threaded_seconds,
            "mmap_s": mapped_seconds,
        },
        speedups={"threaded_vs_serial": speedup},
        rates={"rows_per_s_threaded": len(store) * _QUERIES / threaded_seconds},
        sizes={"store_nbytes": store.nbytes},
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"threaded serving only {speedup:.2f}x over serial "
        f"(threshold {_MIN_SPEEDUP:g}x)"
    )


def test_prefilter_skips_work_on_separable_stores():
    """Norm-separated shards: the prefilter must cut shards scanned, not results."""
    import dataclasses

    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(1)
    template = sketcher.sketch_batch(rng.standard_normal((1, _D)), noise_rng=0)
    n, shards = 40_000, 10
    values = rng.standard_normal((n, _K))
    values[:, 0] += np.repeat(np.arange(shards) * 1e4, n // shards)  # separated norms
    batch = dataclasses.replace(template, values=values, labels=())
    store = ShardedSketchStore(shard_capacity=n // shards)
    store.add_batch(batch)
    query = dataclasses.replace(template.row(0), values=values[0].copy())

    on = DistanceService(store, ExecutionPolicy(prefilter=True))
    off = DistanceService(store, ExecutionPolicy(prefilter=False))
    top_k = TopKQuery(queries=query, k=_TOP)
    t0 = time.perf_counter()
    hits_off = [off.execute(top_k).payload[0] for _ in range(20)]
    off_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    results_on = [on.execute(top_k) for _ in range(20)]
    on_seconds = time.perf_counter() - t0
    hits_on = [result.payload[0] for result in results_on]
    assert hits_on == hits_off  # exactness is hard
    # the stats must show the prefilter actually skipping shards
    assert all(result.stats.shards_pruned >= shards // 2 for result in results_on)
    print(
        f"\nprefilter off: {off_seconds * 1e3:7.1f} ms / 20 queries"
        f"\nprefilter on:  {on_seconds * 1e3:7.1f} ms / 20 queries "
        f"({off_seconds / on_seconds:.1f}x)"
    )
    # soft sanity: skipping 9 of 10 shards should never be slower
    assert on_seconds <= off_seconds * 1.5
