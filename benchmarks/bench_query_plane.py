"""Local ``execute()`` vs HTTP round-trip throughput at 100k rows.

The query-plane redesign makes local and remote backends speak one
protocol: a :class:`~repro.serving.queries.TopKQuery` executed by a
:class:`~repro.serving.service.DistanceService` and by a
:class:`~repro.serving.client.DistanceClient` (against a
:class:`~repro.serving.server.SketchQueryServer` over the same saved,
memory-mapped store) must return **bit-identical** payloads.  This
benchmark pins that equality at 105k stored rows (hard) and reports the
throughput cost of the HTTP hop — wire encoding, one TCP round trip,
server-side decode — for single queries and for batched
``execute_many`` round trips, which amortise the hop across queries.

Timing is informational except for one sanity gate: a batched remote
round trip must beat issuing the same queries one-by-one remotely
(``QUERY_PLANE_MANY_MIN_SPEEDUP``, default 1.05x — the entire point
of ``/query-many`` is amortising the hop, though the keep-alive
connection pool shrank batching's edge by removing the per-request
TCP setup that one-by-one used to pay).

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_query_plane.py -v -s``
"""

import os
import time

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    RadiusQuery,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
)

_D, _K, _S = 128, 64, 4
_ROWS = 105_000
_CHUNK = 15_000
_SHARD = 8_192
_TOP = 10
_SINGLE_QUERIES = 24      # one-at-a-time round trips
_MANY_BATCH = 24          # queries per /query-many round trip
_REPEATS = 3

# the pooled keep-alive client narrowed this: one-by-one no longer pays
# a TCP setup per request, so batching's edge is the round trips alone
_MANY_MIN_SPEEDUP = float(os.environ.get("QUERY_PLANE_MANY_MIN_SPEEDUP", "1.05"))


def _build(tmp_path):
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    store = ShardedSketchStore(shard_capacity=_SHARD)
    for start in range(0, _ROWS, _CHUNK):
        X = rng.standard_normal((min(_CHUNK, _ROWS - start), _D))
        store.add_batch(sketcher.sketch_batch(X, noise_rng=start))
    store.save(tmp_path / "store")
    queries = [
        sketcher.sketch(rng.standard_normal(_D), noise_rng=1_000_000 + i)
        for i in range(_SINGLE_QUERIES)
    ]
    return sketcher, queries


def _best_of(fn):
    best, result = float("inf"), None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_http_round_trip_matches_local_at_105k(tmp_path, bench_record):
    _, queries = _build(tmp_path)
    typed = [TopKQuery(queries=q, k=_TOP) for q in queries]

    local = DistanceService(
        ShardedSketchStore.load(tmp_path / "store", mmap=True),
        ExecutionPolicy(workers=1),
    )
    local_seconds, local_results = _best_of(
        lambda: [local.execute(q).payload[0] for q in typed]
    )

    with SketchQueryServer.from_store_dir(
        tmp_path / "store", port=0, policy=ExecutionPolicy(workers=1)
    ).start() as server:
        client = DistanceClient(server.url)

        single_seconds, single_results = _best_of(
            lambda: [client.execute(q).payload[0] for q in typed]
        )
        many_seconds, many_results = _best_of(
            lambda: [r.payload[0] for r in client.execute_many(typed[:_MANY_BATCH])]
        )

        # correctness is hard: the HTTP hop must not change a single bit
        assert single_results == local_results
        assert many_results == local_results[:_MANY_BATCH]
        radius_sq = float(np.median([est for _, est in local_results[0]])) * 4
        r_query = RadiusQuery(query=queries[0], radius_sq=radius_sq)
        assert client.execute(r_query).payload == local.execute(r_query).payload
        c_query = CrossQuery(queries=queries[0])
        np.testing.assert_array_equal(
            client.execute(c_query).payload, local.execute(c_query).payload
        )

    n = len(typed)
    local_qps = n / local_seconds
    single_qps = n / single_seconds
    many_qps = _MANY_BATCH / many_seconds
    print(
        f"\nstore: {_ROWS} rows, k={_K}; top-{_TOP} over {n} queries"
        f"\nlocal execute():            {local_qps:8.1f} q/s"
        f"\nHTTP one-by-one:            {single_qps:8.1f} q/s"
        f"\nHTTP execute_many ({_MANY_BATCH:2d}/rt):  {many_qps:8.1f} q/s"
        f"\nbatched-vs-single speedup: {many_qps / single_qps:.2f}x "
        f"(gate {_MANY_MIN_SPEEDUP:g}x)"
    )
    bench_record(
        "query_plane",
        workload=f"top-{_TOP} at {_ROWS} rows: local vs HTTP vs /query-many",
        timings={
            "local_s": local_seconds,
            "http_single_s": single_seconds,
            "http_many_s": many_seconds,
        },
        speedups={"many_vs_single": many_qps / single_qps},
        rates={
            "local_q_per_s": local_qps,
            "http_single_q_per_s": single_qps,
            "http_many_q_per_s": many_qps,
        },
    )
    assert many_qps / single_qps >= _MANY_MIN_SPEEDUP, (
        f"/query-many only {many_qps / single_qps:.2f}x over one-by-one "
        f"(threshold {_MANY_MIN_SPEEDUP:g}x)"
    )
