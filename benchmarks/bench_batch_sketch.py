"""Batch sketching + pairwise estimation vs the per-row Python loop.

The PR's acceptance target: on a 512 x 4096 batch, ``sketch_batch`` +
``pairwise_sq_distances`` must be at least 10x faster than the
equivalent Python loop (one ``sketch`` call per row, one
``estimate_sq_distance`` call per pair), while producing the same
numbers to within 1e-9 per entry.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/bench_batch_sketch.py -v -s``
"""

import os
import time

import numpy as np
import pytest

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.hashing import prg

_N, _D, _K, _S = 512, 4096, 128, 4

#: The speedup gate.  10x is the acceptance target on a quiet machine;
#: shared CI runners override this down (timing there is noisy-neighbor
#: bound) while the 1e-9 agreement assertions stay hard everywhere.
_MIN_SPEEDUP = float(os.environ.get("BATCH_BENCH_MIN_SPEEDUP", "10"))


def _sketcher() -> PrivateSketcher:
    return PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )


def _loop_pipeline(sk, X, seed_context):
    """The pre-batch-API workload: scalar sketches, per-pair estimates."""
    generator = prg.derive_rng(42, seed_context)
    sketches = [sk.sketch(x, noise_rng=generator) for x in X]
    n = len(sketches)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            est = estimators.estimate_sq_distance(sketches[i], sketches[j])
            matrix[i, j] = matrix[j, i] = est
    return sketches, matrix


def _batch_pipeline(sk, X, seed_context):
    batch = sk.sketch_batch(X, noise_rng=prg.derive_rng(42, seed_context))
    return batch, estimators.pairwise_sq_distances(batch)


def _best_of(pipeline, sk, X, rounds=5):
    """Fastest of ``rounds`` runs (same treatment for both paths)."""
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = pipeline(sk, X, "bench")
        best = min(best, time.perf_counter() - start)
    return result, best


def test_batch_matches_loop_and_is_10x_faster(bench_record):
    sk = _sketcher()
    X = np.random.default_rng(0).standard_normal((_N, _D))

    # warm both paths so caches (hash tables, sparse projector) and BLAS
    # threads are initialised before timing
    _batch_pipeline(sk, X[:4], "warmup")
    _loop_pipeline(sk, X[:4], "warmup")

    (sketches, loop_matrix), loop_seconds = _best_of(_loop_pipeline, sk, X)
    (batch, batch_matrix), batch_seconds = _best_of(_batch_pipeline, sk, X)

    # correctness first: same noise stream -> per-row sketches agree, and
    # the Gram-based pairwise matrix agrees with the per-pair loop
    row_error = max(
        float(np.max(np.abs(batch.values[i] - sketches[i].values))) for i in range(_N)
    )
    matrix_error = float(np.max(np.abs(batch_matrix - loop_matrix)))
    assert row_error < 1e-9, f"per-row sketch mismatch: {row_error:g}"
    assert matrix_error < 1e-9, f"pairwise estimate mismatch: {matrix_error:g}"

    speedup = loop_seconds / batch_seconds
    print(
        f"\nloop:  {loop_seconds:8.3f}s  ({_N / loop_seconds:9.1f} rows/s)"
        f"\nbatch: {batch_seconds:8.3f}s  ({_N / batch_seconds:9.1f} rows/s)"
        f"\nspeedup: {speedup:.1f}x  (max row err {row_error:.2e}, "
        f"max matrix err {matrix_error:.2e})"
    )
    bench_record(
        "batch_sketch",
        workload=f"{_N}x{_D} sketch+pairwise vs scalar loop",
        timings={"loop_s": loop_seconds, "batch_s": batch_seconds},
        speedups={"batch_vs_loop": speedup},
        rates={"batch_rows_per_s": _N / batch_seconds},
        max_error={"row": row_error, "matrix": matrix_error},
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster than the loop "
        f"(threshold {_MIN_SPEEDUP:g}x)"
    )


@pytest.mark.parametrize("rows", [64, 512])
def test_sketch_batch_throughput(benchmark, rows):
    """Rows/sec of the batch sketching path alone (no estimation)."""
    sk = _sketcher()
    X = np.random.default_rng(1).standard_normal((rows, _D))
    sk.sketch_batch(X[:2], noise_rng=0)  # warm the sparse projector
    batch = benchmark(sk.sketch_batch, X, noise_rng=0)
    assert batch.values.shape == (rows, _K)
