"""EXP-SECRET bench: Blocki noise-free DP and the Upadhyay sparse attack."""


def test_exp_secret_projection(regenerate):
    result = regenerate("EXP-SECRET")
    rows = {row["quantity"]: row for row in result.table.rows}
    # shape: the support attack breaks the sparse secret projection only
    attack = rows["support-attack advantage"]
    assert attack["public_sjlt_sketch"] > 0.8  # secret SJLT broken
    assert abs(attack["secret_gaussian"]) < 0.15  # dense Gaussian safe
