"""Serving-tier load test: concurrent clients against a 105k-row store.

Three things are measured against one saved, memory-mapped store:

1. **Pooled vs one-shot transport** (gated): sustained q/s from
   concurrent clients issuing transport-bound queries through the
   keep-alive connection pool versus the same clients with
   ``pool_size=0`` (a fresh TCP connection per request — the pre-pool
   behaviour).  The pool must win by ``LOAD_BENCH_MIN_SPEEDUP``
   (default 1.05x): reusing a connection is the entire point.
2. **Realistic load latency** (informational): p50/p99 per-request
   latency and saturation throughput for concurrent top-10 queries.
3. **Correctness under every topology** (hard): pooled client, router
   over two half-stores behind HTTP backends, and a cached router
   frontend must all return payloads bit-identical to local
   ``execute()`` — a cache hit must be the byte-identical envelope.

Timing gates are soft against machine noise (tune via the env var);
correctness asserts are hard.  Results land in ``BENCH_load.json``
via the ``bench_record`` fixture for the trajectory ledger.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_load.py -v -s``
"""

import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    PairwiseQuery,
    RadiusQuery,
    RouterService,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
)

_D, _K, _S = 128, 64, 4
_ROWS = 105_000
_SPLIT = 45_000           # router leg: backend 0 gets [0, 45k), backend 1 the rest
_CHUNK = 15_000
_SHARD = 8_192
_TOP = 10
_THREADS = 8              # concurrent clients
_TRANSPORT_REQUESTS = 40  # per client, transport-bound leg
_TOPK_REQUESTS = 15       # per client, compute-bound leg

_MIN_SPEEDUP = float(os.environ.get("LOAD_BENCH_MIN_SPEEDUP", "1.05"))


def _build(tmp_path):
    """One 105k-row store plus the same rows split across two stores."""
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    combined = ShardedSketchStore(shard_capacity=_SHARD)
    parts = [ShardedSketchStore(shard_capacity=_SHARD) for _ in range(2)]
    for start in range(0, _ROWS, _CHUNK):
        X = rng.standard_normal((min(_CHUNK, _ROWS - start), _D))
        batch = sketcher.sketch_batch(X, noise_rng=start)
        combined.add_batch(batch)
        part = parts[0] if start < _SPLIT else parts[1]
        part.add_batch(batch, labels=range(start, start + len(batch)))
    combined.save(tmp_path / "store")
    parts[0].save(tmp_path / "part0")
    parts[1].save(tmp_path / "part1")
    queries = [
        sketcher.sketch(rng.standard_normal(_D), noise_rng=1_000_000 + i)
        for i in range(_THREADS)
    ]
    return sketcher, queries


def _spawn_server(store_dir, processes=2):
    """The CLI launcher as a load-test target: its own interpreter(s).

    An in-process server would share the benchmark's GIL with the
    client threads and measure interpreter scheduling, not transport.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SERVING_WORKERS", None)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving.server",
            "--store",
            str(store_dir),
            "--port",
            "0",
            "--processes",
            str(processes),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert " at http://" in banner, f"unexpected server banner: {banner!r}"
    return process, banner.rsplit(" at ", 1)[1].strip()


def _drive(url, pool_size, per_thread, make_query):
    """``_THREADS`` concurrent clients; returns (wall_s, sorted latencies)."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(_THREADS)

    def worker(thread_id: int) -> None:
        mine: list[float] = []
        try:
            with DistanceClient(url, pool_size=pool_size) as client:
                barrier.wait()
                for j in range(per_thread):
                    query = make_query(thread_id, j)
                    t0 = time.perf_counter()
                    client.execute(query)
                    mine.append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            with lock:
                errors.append(exc)
            return
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"load-client-{i}")
        for i in range(_THREADS)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, sorted(latencies)


def _percentile(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1, int(q * len(sorted_values)))]


def test_serving_tier_under_concurrent_load(tmp_path, bench_record):
    sketcher, queries = _build(tmp_path)
    local = DistanceService(
        ShardedSketchStore.load(tmp_path / "store", mmap=True),
        ExecutionPolicy(workers=1),
    )
    typed = [TopKQuery(queries=q, k=_TOP) for q in queries]
    local_top = [local.execute(q).payload[0] for q in typed]

    # the load target runs out of process (its own GIL); two SO_REUSEPORT
    # workers where the platform has them, the plain single process else
    server_process, url = _spawn_server(
        tmp_path / "store",
        processes=2 if hasattr(socket, "SO_REUSEPORT") else 1,
    )
    try:
        # -- correctness: the pooled client is bit-identical to local --------
        with DistanceClient(url) as checker:
            assert [checker.execute(q).payload[0] for q in typed] == local_top
            radius_sq = float(np.median([est for _, est in local_top[0]])) * 4
            r_query = RadiusQuery(query=queries[0], radius_sq=radius_sq)
            assert checker.execute(r_query).payload == local.execute(r_query).payload
            c_query = CrossQuery(queries=queries[0])
            np.testing.assert_array_equal(
                checker.execute(c_query).payload, local.execute(c_query).payload
            )
            assert checker.connections_opened == 1  # the whole pass: one conn

        # -- transport-bound leg (gated): pooled vs one-connection -----------
        # a tiny pairwise query makes the round trip, not the BLAS, the cost
        def transport_query(thread_id, j):
            base = (thread_id * 997 + j * 131) % (_ROWS - 3)
            return PairwiseQuery(indices=(base, base + 1, base + 2))

        _drive(url, 8, 5, transport_query)  # warm every worker's pages
        pooled_wall, _ = _drive(url, 8, _TRANSPORT_REQUESTS, transport_query)
        oneshot_wall, _ = _drive(url, 0, _TRANSPORT_REQUESTS, transport_query)
        total = _THREADS * _TRANSPORT_REQUESTS
        pooled_qps = total / pooled_wall
        oneshot_qps = total / oneshot_wall

        # -- compute-bound leg (informational): top-10 latency profile -------
        def topk_query(thread_id, j):
            return typed[(thread_id + j) % len(typed)]

        topk_wall, topk_lat = _drive(url, 8, _TOPK_REQUESTS, topk_query)
        topk_qps = _THREADS * _TOPK_REQUESTS / topk_wall
        p50 = _percentile(topk_lat, 0.50)
        p99 = _percentile(topk_lat, 0.99)
    finally:
        server_process.terminate()
        try:
            server_process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            server_process.kill()
            server_process.wait()

    # -- router + cache topology: still bit-identical to local ---------------
    # two cached store servers behind a router frontend: the first pass
    # computes, the second is served from the backends' release caches —
    # both must match the single-store local run bit for bit
    backend_servers = [
        SketchQueryServer.from_store_dir(
            tmp_path / part, port=0, policy=ExecutionPolicy(workers=1), cache=256
        ).start()
        for part in ("part0", "part1")
    ]
    try:
        router = RouterService(
            [DistanceClient(s.url) for s in backend_servers], close_backends=True
        )
        with SketchQueryServer(router, port=0).start() as front:
            with DistanceClient(front.url) as client:
                first = [client.execute(q).payload[0] for q in typed]
                assert first == local_top  # scatter-gather: bit-identical
                again = [client.execute(q).payload[0] for q in typed]
                assert again == local_top  # cache-served: still identical
        with DistanceClient(backend_servers[0].url) as probe:
            cache_stats = probe.health()["cache"]
        assert cache_stats["hits"] >= len(typed)  # pass 2 really hit the cache
    finally:
        for backend in backend_servers:
            backend.close()
    local.close()

    speedup = pooled_qps / oneshot_qps
    print(
        f"\nstore: {_ROWS} rows, k={_K}; {_THREADS} concurrent clients"
        f"\ntransport-bound (pairwise):  pooled {pooled_qps:8.1f} q/s"
        f"\n                             one-shot {oneshot_qps:7.1f} q/s"
        f"\n                             speedup {speedup:.2f}x (gate {_MIN_SPEEDUP:g}x)"
        f"\ntop-{_TOP} under load:          {topk_qps:8.1f} q/s"
        f"\n                             p50 {p50 * 1e3:7.2f} ms   p99 {p99 * 1e3:7.2f} ms"
    )
    bench_record(
        "load",
        workload=f"{_THREADS} concurrent clients over {_ROWS} rows "
        f"(pooled vs one-shot transport; top-{_TOP} latency; router+cache)",
        timings={"topk_p50_s": p50, "topk_p99_s": p99},
        speedups={"pooled_vs_oneshot": speedup},
        rates={
            "pooled_q_per_s": pooled_qps,
            "oneshot_q_per_s": oneshot_qps,
            "topk_q_per_s": topk_qps,
        },
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"connection pooling only {speedup:.2f}x over one-shot connections "
        f"(threshold {_MIN_SPEEDUP:g}x)"
    )
