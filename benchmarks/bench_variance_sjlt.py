"""EXP-T3 bench: regenerate the Theorem 3 table (the paper's main result)."""


def test_exp_t3_private_sjlt(regenerate):
    result = regenerate("EXP-T3")
    # shape: every configuration is pure DP and within the Theorem 3 bound
    assert all(result.table.column("pure_dp"))
    emp = result.table.column("emp_var")
    bound = result.table.column("thm3_bound")
    assert all(e <= 1.5 * b for e, b in zip(emp, bound))
