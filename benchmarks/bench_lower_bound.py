"""EXP-LB bench: the sqrt(k) additive-error landscape (Section 2.4)."""


def test_exp_lb_lower_bound(regenerate):
    result = regenerate("EXP-LB")
    # shape: randomized-response error grows with dimension
    rr = result.table.column("rr_mae")
    assert rr[-1] > rr[0]
