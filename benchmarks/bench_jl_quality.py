"""EXP-JL bench: the (alpha, beta) JL guarantee across all transforms."""


def test_exp_jl_distortion(regenerate):
    result = regenerate("EXP-JL")
    # shape: every transform's failure rate stays at/below beta (with slack)
    for row in result.table.rows:
        assert row["fail_rate"] <= row["beta"] + 0.05
