"""EXP-IP bench: inner-product/norm estimation from distance sketches."""


def test_exp_inner_product(regenerate):
    result = regenerate("EXP-IP")
    # shape: the variance bound covers every geometry regime
    assert all(result.table.column("within"))
