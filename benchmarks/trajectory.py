"""Print the benchmark trajectory table from ``BENCH_*.json`` records.

Each benchmark job writes one machine-readable record through the
``bench_record`` fixture (see ``benchmarks/conftest.py``); CI uploads
them as artifacts and this script renders whatever records it is given
as one aligned table — the per-commit perf ledger.  When
``$GITHUB_STEP_SUMMARY`` is set, a markdown copy lands in the workflow
summary page.

Usage::

    python benchmarks/trajectory.py BENCH_*.json
    python benchmarks/trajectory.py artifacts/**/BENCH_*.json
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

#: record sections rendered as metric columns, in display order
_SECTIONS = ("timings", "speedups", "rates", "sizes", "recall", "max_error")


def _flatten(record: dict) -> dict[str, str]:
    """One record's metrics as ``section.key -> rendered value``."""
    metrics: dict[str, str] = {}
    for section in _SECTIONS:
        for key, value in (record.get(section) or {}).items():
            if section == "sizes":
                rendered = f"{value / 1e6:.1f}MB"
            elif section == "timings":
                rendered = f"{value:.3f}s"
            elif section == "speedups":
                rendered = f"{value:.2f}x"
            elif section == "rates":
                rendered = f"{value:,.0f}/s"
            else:
                rendered = f"{value:.3g}"
            metrics[f"{section[:-1] if section.endswith('s') else section}.{key}"] = (
                rendered
            )
    return metrics


def load_records(paths: list[str]) -> list[dict]:
    records = []
    for raw in paths:
        path = Path(raw)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(record, dict) and "benchmark" in record:
            records.append(record)
        else:
            print(f"skipping {path}: not a benchmark record", file=sys.stderr)
    return sorted(records, key=lambda r: r["benchmark"])


def render(records: list[dict]) -> list[str]:
    """The trajectory table, one benchmark per block."""
    commit = next((r["commit"] for r in records if r.get("commit")), None)
    lines = [f"benchmark trajectory ({len(records)} records"
             f"{', commit ' + commit[:12] if commit else ''})", ""]
    for record in records:
        lines.append(f"{record['benchmark']}  —  {record.get('workload', '')}")
        metrics = _flatten(record)
        width = max((len(k) for k in metrics), default=0)
        for key, value in metrics.items():
            lines.append(f"    {key:<{width}}  {value:>12}")
        lines.append("")
    return lines


def main(argv: list[str]) -> int:
    records = load_records(argv)
    if not records:
        print("no benchmark records found", file=sys.stderr)
        return 1
    lines = render(records)
    print("\n".join(lines))
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write("```\n" + "\n".join(lines) + "\n```\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
