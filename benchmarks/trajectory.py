"""Print the benchmark trajectory table from ``BENCH_*.json`` records.

Each benchmark job writes one machine-readable record through the
``bench_record`` fixture (see ``benchmarks/conftest.py``); CI uploads
them as artifacts and this script renders whatever records it is given
as one aligned table — the per-commit perf ledger.  When
``$GITHUB_STEP_SUMMARY`` is set, a markdown copy lands in the workflow
summary page.

Artifacts alone leave the *trajectory* empty: nothing compares one
commit's numbers with the previous commit's.  The ``--history``
directory fixes that — ``snapshot`` persists the current records into
a numbered, commit-stamped subdirectory (``bench-history/0007-abc...``,
committed to the repository by CI on main), and a render with
``--history`` annotates every metric with its delta against the most
recent snapshot.

Usage::

    python benchmarks/trajectory.py BENCH_*.json
    python benchmarks/trajectory.py --history bench-history BENCH_*.json
    python benchmarks/trajectory.py snapshot --history bench-history BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

#: record sections rendered as metric columns, in display order
_SECTIONS = ("timings", "speedups", "rates", "sizes", "recall", "max_error")

_SNAPSHOT_DIR = re.compile(r"^(\d{4})-[0-9a-z]+$")


def _render_value(section: str, value) -> str:
    if section == "sizes":
        return f"{value / 1e6:.1f}MB"
    if section == "timings":
        return f"{value:.3f}s"
    if section == "speedups":
        return f"{value:.2f}x"
    if section == "rates":
        return f"{value:,.0f}/s"
    return f"{value:.3g}"


def _metric_name(section: str, key: str) -> str:
    return f"{section[:-1] if section.endswith('s') else section}.{key}"


def _flatten(record: dict) -> dict[str, str]:
    """One record's metrics as ``section.key -> rendered value``."""
    metrics: dict[str, str] = {}
    for section in _SECTIONS:
        for key, value in (record.get(section) or {}).items():
            metrics[_metric_name(section, key)] = _render_value(section, value)
    return metrics


def _raw_metrics(record: dict) -> dict[str, float]:
    """The same metrics, unrendered, for delta arithmetic."""
    metrics: dict[str, float] = {}
    for section in _SECTIONS:
        for key, value in (record.get(section) or {}).items():
            if isinstance(value, (int, float)):
                metrics[_metric_name(section, key)] = float(value)
    return metrics


def load_records(paths: list[str]) -> list[dict]:
    records = []
    for raw in paths:
        path = Path(raw)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(record, dict) and "benchmark" in record:
            records.append(record)
        else:
            print(f"skipping {path}: not a benchmark record", file=sys.stderr)
    return sorted(records, key=lambda r: r["benchmark"])


# -- the committed history ----------------------------------------------------


def snapshot_dirs(history: Path) -> list[Path]:
    """Snapshot subdirectories, oldest first (by their numeric prefix)."""
    if not history.is_dir():
        return []
    return sorted(
        (p for p in history.iterdir() if p.is_dir() and _SNAPSHOT_DIR.match(p.name)),
        key=lambda p: int(_SNAPSHOT_DIR.match(p.name).group(1)),
    )


def load_latest_snapshot(history: Path) -> tuple[str, dict[str, dict]]:
    """The newest snapshot as ``(name, {benchmark -> record})``."""
    snapshots = snapshot_dirs(history)
    if not snapshots:
        return "", {}
    latest = snapshots[-1]
    records = load_records([str(p) for p in sorted(latest.glob("BENCH_*.json"))])
    return latest.name, {record["benchmark"]: record for record in records}


def _commit_stamp() -> str:
    commit = os.environ.get("GITHUB_SHA")
    if not commit:
        try:
            commit = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            commit = "local"
    return commit[:12]


def write_snapshot(history: Path, paths: list[str]) -> Path:
    """Persist the given records as the next numbered snapshot directory."""
    records = load_records(paths)
    if not records:
        raise SystemExit("no benchmark records to snapshot")
    snapshots = snapshot_dirs(history)
    index = (
        int(_SNAPSHOT_DIR.match(snapshots[-1].name).group(1)) + 1 if snapshots else 1
    )
    target = history / f"{index:04d}-{_commit_stamp()}"
    target.mkdir(parents=True, exist_ok=False)
    for record in records:
        out = target / f"BENCH_{record['benchmark']}.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target


def _delta(section: str, old: float, new: float) -> str:
    if old == 0:
        return ""
    pct = (new - old) / abs(old) * 100.0
    if abs(pct) < 0.05:
        return "  (=)"
    return f"  ({pct:+.1f}%)"


def render(records: list[dict], previous: dict[str, dict] | None = None,
           previous_name: str = "") -> list[str]:
    """The trajectory table, one benchmark per block.

    With ``previous`` (the latest committed snapshot), every metric also
    shows its percentage change against that snapshot — the per-commit
    delta the history directory exists for.
    """
    commit = next((r["commit"] for r in records if r.get("commit")), None)
    header = (
        f"benchmark trajectory ({len(records)} records"
        f"{', commit ' + commit[:12] if commit else ''}"
        f"{', vs ' + previous_name if previous_name else ''})"
    )
    lines = [header, ""]
    for record in records:
        lines.append(f"{record['benchmark']}  —  {record.get('workload', '')}")
        metrics = _flatten(record)
        raw = _raw_metrics(record)
        old_raw = _raw_metrics((previous or {}).get(record["benchmark"], {}))
        width = max((len(k) for k in metrics), default=0)
        for key, value in metrics.items():
            suffix = ""
            if key in old_raw and key in raw:
                suffix = _delta(key.split(".", 1)[0], old_raw[key], raw[key])
            lines.append(f"    {key:<{width}}  {value:>12}{suffix}")
        lines.append("")
    return lines


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description="Render BENCH_*.json records; snapshot them into the "
        "committed history for per-commit deltas.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="BENCH_*.json record files",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="DIR",
        help="committed snapshot directory (bench-history); render shows "
        "deltas against its latest snapshot",
    )
    # 'snapshot' is peeled off before argparse: a positional subcommand
    # plus a variadic positional cannot straddle an optional argument
    argv = list(argv)
    snapshot = bool(argv) and argv[0] == "snapshot"
    args = parser.parse_args(argv[1:] if snapshot else argv)
    if snapshot:
        if args.history is None:
            parser.error("snapshot needs --history DIR")
        target = write_snapshot(args.history, args.paths)
        print(f"snapshot written to {target}")
        return 0

    records = load_records(args.paths)
    if not records:
        print("no benchmark records found", file=sys.stderr)
        return 1
    previous_name, previous = ("", None)
    if args.history is not None:
        previous_name, previous = load_latest_snapshot(args.history)
    lines = render(records, previous, previous_name)
    print("\n".join(lines))
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write("```\n" + "\n".join(lines) + "\n```\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
