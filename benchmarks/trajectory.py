"""Print the benchmark trajectory table from ``BENCH_*.json`` records.

Each benchmark job writes one machine-readable record through the
``bench_record`` fixture (see ``benchmarks/conftest.py``); CI uploads
them as artifacts and this script renders whatever records it is given
as one aligned table — the per-commit perf ledger.  When
``$GITHUB_STEP_SUMMARY`` is set, a markdown copy lands in the workflow
summary page.

Artifacts alone leave the *trajectory* empty: nothing compares one
commit's numbers with the previous commit's.  The ``--history``
directory fixes that — ``snapshot`` persists the current records into
a numbered, commit-stamped subdirectory (``bench-history/0007-abc...``,
committed to the repository by CI on main), and a render with
``--history`` annotates every metric with its delta against the most
recent snapshot.

The history also powers **regression alarms on sustained slowdowns**:
a single noisy delta on shared CI hardware means nothing, but the same
metric worsening in every one of the last ``--alarm-streak`` transitions
by more than ``--alarm-tolerance`` is a trend, not noise.  Alarms print
after the table and land in ``$GITHUB_STEP_SUMMARY`` as their own
section; they are advisory (exit status unchanged) — the job stays
green, the trend is impossible to miss.

Usage::

    python benchmarks/trajectory.py BENCH_*.json
    python benchmarks/trajectory.py --history bench-history BENCH_*.json
    python benchmarks/trajectory.py snapshot --history bench-history BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

#: record sections rendered as metric columns, in display order
_SECTIONS = ("timings", "speedups", "rates", "sizes", "recall", "max_error")

_SNAPSHOT_DIR = re.compile(r"^(\d{4})-[0-9a-z]+$")


def _render_value(section: str, value) -> str:
    if section == "sizes":
        return f"{value / 1e6:.1f}MB"
    if section == "timings":
        return f"{value:.3f}s"
    if section == "speedups":
        return f"{value:.2f}x"
    if section == "rates":
        return f"{value:,.0f}/s"
    return f"{value:.3g}"


def _metric_name(section: str, key: str) -> str:
    return f"{section[:-1] if section.endswith('s') else section}.{key}"


def _flatten(record: dict) -> dict[str, str]:
    """One record's metrics as ``section.key -> rendered value``."""
    metrics: dict[str, str] = {}
    for section in _SECTIONS:
        for key, value in (record.get(section) or {}).items():
            metrics[_metric_name(section, key)] = _render_value(section, value)
    return metrics


def _raw_metrics(record: dict) -> dict[str, float]:
    """The same metrics, unrendered, for delta arithmetic."""
    metrics: dict[str, float] = {}
    for section in _SECTIONS:
        for key, value in (record.get(section) or {}).items():
            if isinstance(value, (int, float)):
                metrics[_metric_name(section, key)] = float(value)
    return metrics


def load_records(paths: list[str]) -> list[dict]:
    records = []
    for raw in paths:
        path = Path(raw)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(record, dict) and "benchmark" in record:
            records.append(record)
        else:
            print(f"skipping {path}: not a benchmark record", file=sys.stderr)
    return sorted(records, key=lambda r: r["benchmark"])


# -- the committed history ----------------------------------------------------


def snapshot_dirs(history: Path) -> list[Path]:
    """Snapshot subdirectories, oldest first (by their numeric prefix)."""
    if not history.is_dir():
        return []
    return sorted(
        (p for p in history.iterdir() if p.is_dir() and _SNAPSHOT_DIR.match(p.name)),
        key=lambda p: int(_SNAPSHOT_DIR.match(p.name).group(1)),
    )


def load_latest_snapshot(history: Path) -> tuple[str, dict[str, dict]]:
    """The newest snapshot as ``(name, {benchmark -> record})``."""
    snapshots = snapshot_dirs(history)
    if not snapshots:
        return "", {}
    latest = snapshots[-1]
    records = load_records([str(p) for p in sorted(latest.glob("BENCH_*.json"))])
    return latest.name, {record["benchmark"]: record for record in records}


def load_previous_snapshot(
    history: Path, current_commit: str | None
) -> tuple[str, dict[str, dict]]:
    """The newest snapshot that is *not* the current commit's own.

    CI snapshots the current records and then renders, so the latest
    directory is frequently this very run's numbers — a delta against
    it is a self-comparison that renders every metric as a meaningless
    ``(=)``.  Snapshots whose commit stamp matches the current records'
    commit are skipped; with nothing older to fall back to, the caller
    renders absolute values with an explicit "no prior snapshot" note.
    """
    stamp = (current_commit or "")[:12]
    for snapshot in reversed(snapshot_dirs(history)):
        if stamp and snapshot.name.split("-", 1)[1] == stamp:
            continue
        records = load_records(
            [str(p) for p in sorted(snapshot.glob("BENCH_*.json"))]
        )
        return snapshot.name, {record["benchmark"]: record for record in records}
    return "", {}


def _commit_stamp() -> str:
    commit = os.environ.get("GITHUB_SHA")
    if not commit:
        try:
            commit = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            commit = "local"
    return commit[:12]


def write_snapshot(history: Path, paths: list[str]) -> Path:
    """Persist the given records as the next numbered snapshot directory."""
    records = load_records(paths)
    if not records:
        raise SystemExit("no benchmark records to snapshot")
    snapshots = snapshot_dirs(history)
    index = (
        int(_SNAPSHOT_DIR.match(snapshots[-1].name).group(1)) + 1 if snapshots else 1
    )
    target = history / f"{index:04d}-{_commit_stamp()}"
    target.mkdir(parents=True, exist_ok=False)
    for record in records:
        out = target / f"BENCH_{record['benchmark']}.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target


# -- sustained-slowdown alarms ------------------------------------------------

#: Which direction is *worse*, per metric prefix (the singularized
#: section from ``_metric_name``): +1 when growth is bad (time, bytes,
#: error), -1 when shrinkage is bad (speedups, throughput, recall).
_WORSE_SIGN = {
    "timing": 1.0,
    "size": 1.0,
    "max_error": 1.0,
    "speedup": -1.0,
    "rate": -1.0,
    "recall": -1.0,
}

#: metric prefix back to its record section, for rendering alarm values
_SECTION_OF = {_metric_name(s, "x").split(".", 1)[0]: s for s in _SECTIONS}


def _snapshot_metrics(snapshot: Path) -> dict[str, dict[str, float]]:
    records = load_records([str(p) for p in sorted(snapshot.glob("BENCH_*.json"))])
    return {record["benchmark"]: _raw_metrics(record) for record in records}


def find_alarms(
    records: list[dict],
    history: Path,
    *,
    streak: int = 3,
    tolerance: float = 0.05,
) -> list[str]:
    """Metrics that worsened through every one of the last ``streak`` steps.

    The chain under test is the last ``streak`` committed snapshots plus
    the current records — ``streak`` consecutive transitions.  A metric
    alarms only when *every* transition moves in its bad direction by
    more than ``tolerance`` (fractionally): one slow CI run cannot trip
    it, and neither can a slowdown that already recovered.  Metrics
    missing anywhere in the chain (new benchmarks, renamed keys) are
    skipped — an alarm must rest on a complete series.
    """
    snapshots = snapshot_dirs(history)[-streak:]
    if len(snapshots) < streak:
        return []
    series = [_snapshot_metrics(snapshot) for snapshot in snapshots]
    alarms = []
    for record in records:
        bench = record["benchmark"]
        current = _raw_metrics(record)
        for metric, value in current.items():
            sign = _WORSE_SIGN.get(metric.split(".", 1)[0])
            if sign is None:
                continue
            chain = [step.get(bench, {}).get(metric) for step in series] + [value]
            if any(v is None or v == 0 for v in chain[:-1]) or chain[-1] is None:
                continue
            worsened = all(
                sign * (new - old) / abs(old) > tolerance
                for old, new in zip(chain, chain[1:])
            )
            if not worsened:
                continue
            section = _SECTION_OF[metric.split(".", 1)[0]]
            total = sign * (chain[-1] - chain[0]) / abs(chain[0]) * 100.0
            alarms.append(
                f"{bench} {metric}: worse in {len(chain) - 1} consecutive "
                f"snapshots — {_render_value(section, chain[0])} -> "
                f"{_render_value(section, chain[-1])} "
                f"({total:+.1f}% cumulative, vs {snapshots[0].name})"
            )
    return alarms


def _emit_alarms(alarms: list[str]) -> list[str]:
    """Alarm block for stdout; mirrored into the step summary by main()."""
    if not alarms:
        return []
    lines = ["sustained regressions (same metric worse across the streak):"]
    lines += [f"  PERF ALARM: {alarm}" for alarm in alarms]
    lines.append("")
    return lines


def _delta(section: str, old: float, new: float) -> str:
    if old == 0:
        # a zero baseline has no percentage; say so instead of a silent
        # blank that reads like "no previous value recorded"
        return "  (was 0)"
    pct = (new - old) / abs(old) * 100.0
    if abs(pct) < 0.05:
        return "  (=)"
    return f"  ({pct:+.1f}%)"


def render(records: list[dict], previous: dict[str, dict] | None = None,
           previous_name: str = "", note: str = "") -> list[str]:
    """The trajectory table, one benchmark per block.

    With ``previous`` (the latest committed snapshot that is not this
    run's own), every metric also shows its percentage change against
    that snapshot — the per-commit delta the history directory exists
    for.  ``note`` is appended to the header: the caller uses it to say
    explicitly when a requested history had no prior snapshot to
    compare against, so absolute-only output never looks like an
    accident.
    """
    commit = next((r["commit"] for r in records if r.get("commit")), None)
    header = (
        f"benchmark trajectory ({len(records)} records"
        f"{', commit ' + commit[:12] if commit else ''}"
        f"{', vs ' + previous_name if previous_name else ''}"
        f"{', ' + note if note else ''})"
    )
    lines = [header, ""]
    for record in records:
        lines.append(f"{record['benchmark']}  —  {record.get('workload', '')}")
        metrics = _flatten(record)
        raw = _raw_metrics(record)
        old_raw = _raw_metrics((previous or {}).get(record["benchmark"], {}))
        width = max((len(k) for k in metrics), default=0)
        for key, value in metrics.items():
            suffix = ""
            if key in old_raw and key in raw:
                suffix = _delta(key.split(".", 1)[0], old_raw[key], raw[key])
            elif old_raw:
                # the benchmark existed in the snapshot but this metric
                # did not: new metric, not a rendering gap
                suffix = "  (new)"
            lines.append(f"    {key:<{width}}  {value:>12}{suffix}")
        lines.append("")
    return lines


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description="Render BENCH_*.json records; snapshot them into the "
        "committed history for per-commit deltas.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="BENCH_*.json record files",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="DIR",
        help="committed snapshot directory (bench-history); render shows "
        "deltas against its latest snapshot",
    )
    parser.add_argument(
        "--alarm-streak",
        type=int,
        default=3,
        metavar="K",
        help="alarm when a metric worsened in K consecutive snapshot "
        "transitions (needs --history with >= K snapshots; default 3)",
    )
    parser.add_argument(
        "--alarm-tolerance",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="fractional worsening a single transition must exceed to count "
        "toward the streak (default 0.05 = 5%%)",
    )
    # 'snapshot' is peeled off before argparse: a positional subcommand
    # plus a variadic positional cannot straddle an optional argument
    argv = list(argv)
    snapshot = bool(argv) and argv[0] == "snapshot"
    args = parser.parse_args(argv[1:] if snapshot else argv)
    if snapshot:
        if args.history is None:
            parser.error("snapshot needs --history DIR")
        target = write_snapshot(args.history, args.paths)
        print(f"snapshot written to {target}")
        return 0

    records = load_records(args.paths)
    if not records:
        print("no benchmark records found", file=sys.stderr)
        return 1
    if args.alarm_streak < 1:
        parser.error(f"--alarm-streak must be >= 1, got {args.alarm_streak}")
    if args.alarm_tolerance < 0:
        parser.error(f"--alarm-tolerance must be >= 0, got {args.alarm_tolerance}")
    previous_name, previous, note = ("", None, "")
    alarms: list[str] = []
    if args.history is not None:
        commit = next((r.get("commit") for r in records if r.get("commit")), None)
        previous_name, previous = load_previous_snapshot(args.history, commit)
        if not previous_name:
            # a history was asked for but holds nothing to compare with
            # (empty, or only this run's own snapshot): absolute values,
            # said out loud rather than silently delta-free
            note = "no prior snapshot — absolute values"
        alarms = find_alarms(
            records,
            args.history,
            streak=args.alarm_streak,
            tolerance=args.alarm_tolerance,
        )
    lines = render(records, previous, previous_name, note) + _emit_alarms(alarms)
    print("\n".join(lines))
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write("```\n" + "\n".join(lines) + "\n```\n")
            if alarms:
                # a dedicated markdown section so the trend is visible
                # without expanding the table block
                handle.write("\n### :warning: sustained benchmark regressions\n\n")
                for alarm in alarms:
                    handle.write(f"- {alarm}\n")
                handle.write(
                    f"\n(worse in each of the last {args.alarm_streak} "
                    f"snapshot transitions by > "
                    f"{args.alarm_tolerance:.0%}; advisory — the job "
                    "stays green)\n"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
