"""EXP-AUDIT bench: privacy-loss audit at worst-case neighbours."""


def test_exp_audit_privacy(regenerate):
    result = regenerate("EXP-AUDIT")
    rows = {row["mechanism"]: row for row in result.table.rows}
    assert rows["sjlt+laplace"]["passed"]
    assert not rows["sjlt+laplace (undercalibrated)"]["passed"]
