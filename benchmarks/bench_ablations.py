"""Ablations of the design choices DESIGN.md section 6 calls out.

Each benchmark varies exactly one choice and asserts the expected
direction of the effect:

* SJLT construction (b) graph vs (c) block — same sensitivities, same
  asymptotic variance; apply cost comparable;
* precomputed vs lazy SJLT hash tables — precompute buys apply speed at
  O(sd) memory, lazy keeps memory flat;
* classical vs analytic Gaussian calibration — analytic needs strictly
  less noise at the same (eps, delta);
* hash independence t=2 vs t=8 — higher independence costs Horner
  steps, but the projection statistics the estimator needs survive.
"""

import dataclasses

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.dp.mechanisms import analytic_gaussian_sigma, classical_gaussian_sigma
from repro.transforms.sjlt import SJLT

_D = 1 << 12
_K = 256
_S = 8


def _x():
    return np.random.default_rng(0).standard_normal(_D)


def test_ablation_block_construction_apply(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, construction="block")
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_graph_construction_apply(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, construction="graph")
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_graph_vs_block_same_sensitivities(benchmark):
    def sensitivities():
        block = SJLT(_D, _K, _S, seed=1, construction="block")
        graph = SJLT(_D, _K, _S, seed=1, construction="graph")
        return block.sensitivity(1), graph.sensitivity(1), block.sensitivity(2), graph.sensitivity(2)

    b1, g1, b2, g2 = benchmark(sensitivities)
    assert b1 == g1 and b2 == g2  # deterministic closed forms for both


def test_ablation_precomputed_apply(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, precompute=True)
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_lazy_apply(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, precompute=False)
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_lazy_matches_precomputed(benchmark):
    eager = SJLT(_D, _K, _S, seed=3, precompute=True)
    lazy = SJLT(_D, _K, _S, seed=3, precompute=False)
    x = _x()

    def both():
        return eager.apply(x), lazy.apply(x)

    a, b = benchmark(both)
    assert np.allclose(a, b)


def test_ablation_analytic_gaussian_noise_saving(benchmark):
    """The analytic calibration is strictly tighter at every (eps, delta)."""

    def ratios():
        out = []
        for eps in (0.3, 1.0, 3.0):
            for delta in (1e-4, 1e-8):
                out.append(
                    analytic_gaussian_sigma(1.0, eps, delta)
                    / classical_gaussian_sigma(1.0, min(eps, 1.0), delta)
                )
        return out

    values = benchmark(ratios)
    assert all(r < 1.0 for r in values)


def test_ablation_analytic_gaussian_variance_effect(benchmark):
    """End to end: analytic calibration lowers the estimator variance."""
    base = SketchConfig(
        input_dim=_D, epsilon=1.0, delta=1e-6, output_dim=_K, sparsity=_S,
        noise="gaussian",
    )

    def variances():
        classical = PrivateSketcher(base)
        analytic = PrivateSketcher(dataclasses.replace(base, analytic_gaussian=True))
        return classical.theoretical_variance(16.0), analytic.theoretical_variance(16.0)

    classical_var, analytic_var = benchmark(variances)
    assert analytic_var < classical_var


def test_ablation_independence_2(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, independence=2, precompute=False)
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_independence_8(benchmark):
    transform = SJLT(_D, _K, _S, seed=0, independence=8, precompute=False)
    out = benchmark(transform.apply, _x())
    assert out.shape == (_K,)


def test_ablation_independence_preserves_lpp(benchmark):
    """Even pairwise independence preserves LPP in expectation (the
    estimator's unbiasedness only needs 2-wise sign moments)."""
    x = np.random.default_rng(1).standard_normal(256)

    def mean_distortion():
        total = 0.0
        for seed in range(150):
            t = SJLT(256, 64, 4, seed=seed, independence=2)
            y = t.apply(x)
            total += float(y @ y)
        return total / 150 / float(x @ x)

    ratio = benchmark.pedantic(mean_distortion, rounds=1, iterations=1)
    assert 0.85 < ratio < 1.15
