"""Maintenance at scale: streaming RSS gates and a live-swap soak.

The PR-7 acceptance run, at the same 105k-row scale as the quantised
store benchmark but with the wide ``k=256`` sketches (~215 MB of stored
codes), so "streaming" is falsifiable:

* **compact RSS** — ``compact_store(storage="f4")`` (the full
  decode/re-encode demotion path) runs in a child process whose peak
  RSS growth over its import baseline must stay **under half the store
  size** (hard gate; the expected figure is a few block buffers, i.e.
  tens of MB — a materialising implementation costs the full 215 MB);
* **merge RSS** — ``merge_stores`` fusing the store with itself
  (210k rows through the roller) under the same child-process gate;
* **live swap** — a ``watch_interval`` server over the store is
  hammered with top-k / radius / cross from client threads while
  ``compact_store`` publishes generation 1 underneath it.  The store is
  packed and tombstone-free, so the passthrough rewrite is
  byte-identical and every answer across the swap must be
  **bit-identical**, with **zero failed requests** (hard gate).

Emits ``BENCH_maintenance_*.json`` records for the CI trajectory table.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_maintenance.py -v -s``
"""

import json
import os
import shutil
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    RadiusQuery,
    ShardedSketchStore,
    SketchQueryServer,
    TopKQuery,
    compact_store,
)

_D, _K, _S = 256, 256, 4
_ROWS = 105_000        # >= 1e5 per the acceptance gate
_CHUNK = 15_000        # sketching chunk, bounds the *builder's* memory
_SHARD = 8_192
_STORE_BYTES = _ROWS * _K * 8          # ~215 MB of stored codes
_RSS_GATE = _STORE_BYTES // 2          # streaming must stay under half
_SRC = str(Path(__file__).resolve().parents[1] / "src")

_CHILD = textwrap.dedent(
    """
    import json, resource, sys
    import numpy as np
    from repro.serving.maintenance import compact_store, merge_stores

    def rss():
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    baseline = rss()
    t0 = __import__("time").perf_counter()
    mode = sys.argv[1]
    if mode == "compact":
        summary = compact_store(sys.argv[2], storage=sys.argv[3] or None)
    else:
        summary = merge_stores(sys.argv[2], sys.argv[3], dest=sys.argv[4])
    seconds = __import__("time").perf_counter() - t0
    print(json.dumps({
        "baseline_rss": baseline,
        "peak_rss": rss(),
        "seconds": seconds,
        "rows": summary["rows"],
    }))
    """
)


def _run_child(*argv) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, *argv],
        env={**os.environ, "PYTHONPATH": _SRC},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("maintenance")
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(0)
    store = ShardedSketchStore(shard_capacity=_SHARD, storage="f8")
    for start in range(0, _ROWS, _CHUNK):
        X = rng.standard_normal((min(_CHUNK, _ROWS - start), _D))
        store.add_batch(sketcher.sketch_batch(X, noise_rng=start))
    root = base / "f8"
    store.save(root)
    queries = sketcher.sketch_batch(
        rng.standard_normal((4, _D)), noise_rng=999_983
    )
    return root, queries


def test_compact_rss_stays_o_block(store_dir, bench_record, tmp_path):
    root, _ = store_dir
    work = tmp_path / "compact"
    shutil.copytree(root, work)
    try:
        result = _run_child("compact", str(work), "f4")
    finally:
        shutil.rmtree(work, ignore_errors=True)
    delta = result["peak_rss"] - result["baseline_rss"]
    rate = result["rows"] / result["seconds"]
    print(
        f"\ncompact 105k rows (f8 -> f4): {result['seconds']:.2f}s "
        f"({rate:,.0f} rows/s), RSS growth {delta / 1e6:.1f} MB "
        f"(store {_STORE_BYTES / 1e6:.0f} MB, gate {_RSS_GATE / 1e6:.0f} MB)"
    )
    bench_record(
        "maintenance_compact",
        workload=f"compact_store f8->f4, {_ROWS} rows x k={_K}",
        timings={"compact_s": result["seconds"]},
        rates={"compact_rows_per_s": rate},
        sizes={"store_bytes": _STORE_BYTES, "peak_rss_delta_bytes": delta},
    )
    assert result["rows"] == _ROWS
    assert delta < _RSS_GATE, (
        f"compaction RSS grew {delta / 1e6:.0f} MB — not O(block) streaming"
    )


def test_merge_rss_stays_o_block(store_dir, bench_record, tmp_path):
    root, _ = store_dir
    dest = tmp_path / "merged"
    try:
        result = _run_child("merge", str(root), str(root), str(dest))
    finally:
        shutil.rmtree(dest, ignore_errors=True)
    delta = result["peak_rss"] - result["baseline_rss"]
    rate = result["rows"] / result["seconds"]
    print(
        f"\nmerge 2 x 105k rows: {result['seconds']:.2f}s "
        f"({rate:,.0f} rows/s), RSS growth {delta / 1e6:.1f} MB "
        f"(sources {2 * _STORE_BYTES / 1e6:.0f} MB, gate {_RSS_GATE / 1e6:.0f} MB)"
    )
    bench_record(
        "maintenance_merge",
        workload=f"merge_stores 2x{_ROWS} rows x k={_K}",
        timings={"merge_s": result["seconds"]},
        rates={"merge_rows_per_s": rate},
        sizes={"source_bytes": 2 * _STORE_BYTES, "peak_rss_delta_bytes": delta},
    )
    assert result["rows"] == 2 * _ROWS
    assert delta < _RSS_GATE, (
        f"merge RSS grew {delta / 1e6:.0f} MB — not O(block) streaming"
    )


def test_live_swap_serves_bit_identical_with_zero_failures(
    store_dir, bench_record
):
    root, queries = store_dir
    single = queries[0]
    with DistanceService(
        ShardedSketchStore.load(root, mmap=True), ExecutionPolicy(workers=1)
    ) as local:
        top_expected = local.execute(TopKQuery(queries=single, k=10)).payload
        cutoff = float(np.median([est for _, est in top_expected[0]])) * 4.0
        expected = {
            "top_k": top_expected,
            "radius": local.execute(
                RadiusQuery(query=single, radius_sq=cutoff)
            ).payload,
            "cross": local.execute(CrossQuery(queries=queries))
            .payload.tobytes(),
        }
    query_of = {
        "top_k": TopKQuery(queries=single, k=10),
        "radius": RadiusQuery(query=single, radius_sq=cutoff),
        "cross": CrossQuery(queries=queries),
    }
    stop = threading.Event()
    failures: list = []
    counts = {kind: 0 for kind in query_of}

    def hammer(kind, url):
        client = DistanceClient(url)
        while not stop.is_set():
            try:
                payload = client.execute(query_of[kind]).payload
                got = payload.tobytes() if kind == "cross" else payload
                if got != expected[kind]:
                    failures.append((kind, "drifted from the pre-swap answer"))
                    return
                counts[kind] += 1
            except Exception as exc:  # noqa: BLE001 - a failure IS the gate
                failures.append((kind, repr(exc)))
                return

    def wait_for(predicate, what, timeout=120.0):
        deadline = time.monotonic() + timeout
        while not (predicate() or failures):
            assert time.monotonic() < deadline, f"timed out waiting for {what}"
            time.sleep(0.05)

    t0 = time.perf_counter()
    with SketchQueryServer.from_store_dir(
        root, port=0, watch_interval=0.05
    ) as server:
        threads = [
            threading.Thread(target=hammer, args=(kind, server.url))
            for kind in query_of
        ]
        for thread in threads:
            thread.start()
        try:
            wait_for(lambda: all(c >= 2 for c in counts.values()), "warm-up")
            swap_t0 = time.perf_counter()
            compact_store(root)  # packed, tombstone-free f8: passthrough
            wait_for(lambda: server.swaps >= 1, "the live swap")
            swap_seconds = time.perf_counter() - swap_t0
            settled = dict(counts)
            wait_for(
                lambda: all(counts[k] >= settled[k] + 2 for k in counts),
                "post-swap queries",
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)
        swaps, watch_error = server.swaps, server.watch_error
    total = sum(counts.values())
    seconds = time.perf_counter() - t0
    print(
        f"\nlive swap: {total} requests across a generation swap "
        f"({swap_seconds:.2f}s rewrite-to-swap), 0 failures, "
        f"bit-identical answers ({seconds:.1f}s soak)"
    )
    bench_record(
        "maintenance_live_swap",
        workload=f"server hammer across compact_store swap, {_ROWS} rows",
        timings={"rewrite_to_swap_s": swap_seconds},
        rates={"soak_q_per_s": total / seconds},
    )
    assert failures == [], failures
    assert swaps >= 1 and watch_error is None
    assert all(count >= 4 for count in counts.values())
