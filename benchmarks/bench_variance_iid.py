"""EXP-T2 bench: regenerate the Theorem 2 variance table (Kenthapadi)."""


def test_exp_t2_theorem2_variance(regenerate):
    result = regenerate("EXP-T2")
    # shape: empirical/theoretical variance ratios concentrate around 1
    ratios = result.table.column("ratio")
    assert all(0.7 < r < 1.35 for r in ratios)
