"""Sharded serving vs the old rebuild-the-world index at 100k+ rows.

The workload this PR targets: a store that keeps *growing* while it
serves top-k queries.  The legacy ``PrivateNeighborIndex`` kept every
insert as a chunk and re-``np.concatenate``d all of them into one
matrix whenever a query followed an insert, then ranked with a full
``np.argsort`` over all ``n`` rows — O(n) copied bytes per add-then-
query cycle and O(n log n) per query.  The sharded store appends into
preallocated buffers (only the new rows are copied), reuses cached
per-shard norms, and selects top-k with ``argpartition``.

Gate: identical query answers (hard), and the serving path must beat
the legacy path by ``SERVING_BENCH_MIN_SPEEDUP`` (soft default 3x for
noisy CI; quiet machines see far more) on an interleaved
add + query workload over >= 100k stored sketches.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -v -s``
"""

import os
import time

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.serving import DistanceService, ShardedSketchStore, TopKQuery

_D, _K, _S = 128, 64, 4
_SEED_ROWS = 100_000   # rows in the store before the timed workload
_ROUNDS = 5            # interleaved (add, query...) cycles
_ADD_ROWS = 1_000      # rows appended per cycle
_QUERIES = 8           # top-k queries per cycle
_TOP = 10

_MIN_SPEEDUP = float(os.environ.get("SERVING_BENCH_MIN_SPEEDUP", "3"))


class _LegacyIndex:
    """The pre-serving ``PrivateNeighborIndex`` internals, verbatim.

    Chunks are concatenated lazily into one matrix; any insert
    invalidates the cache, so an add-then-query cycle recopies every
    stored row.  Queries run a full stable argsort over all rows.
    """

    def __init__(self, template):
        self._template = template
        self._chunks: list[np.ndarray] = []
        self._size = 0
        self._stacked_cache = None

    def add_batch(self, values: np.ndarray) -> None:
        self._chunks.append(values)
        self._size += values.shape[0]
        self._stacked_cache = None  # concatenated matrix is stale

    def _stacked(self) -> np.ndarray:
        if self._stacked_cache is None:
            self._stacked_cache = (
                self._chunks[0]
                if len(self._chunks) == 1
                else np.concatenate(self._chunks)
            )
        return self._stacked_cache

    def query(self, query_values: np.ndarray, top: int):
        stored = self._stacked()
        correction = estimators.sq_distance_correction(self._template)
        sq_a = np.einsum("ij,ij->i", stored, stored)
        sq_b = float(query_values @ query_values)
        est = sq_a + sq_b - 2.0 * (stored @ query_values) - correction
        order = np.argsort(est, kind="stable")[:top]
        return [(int(i), float(est[i])) for i in order]


def _workload(sketcher):
    """Pre-sketched seed rows, per-round additions and queries."""
    rng = np.random.default_rng(0)
    chunks = []
    for start in range(0, _SEED_ROWS, 20_000):  # chunked to bound memory
        X = rng.standard_normal((20_000, _D))
        chunks.append(sketcher.sketch_batch(X, noise_rng=start).values)
    seed_values = np.concatenate(chunks)
    adds = [
        sketcher.sketch_batch(rng.standard_normal((_ADD_ROWS, _D)), noise_rng=1000 + r)
        for r in range(_ROUNDS)
    ]
    queries = [
        sketcher.sketch(rng.standard_normal(_D), noise_rng=2000 + i)
        for i in range(_QUERIES)
    ]
    return seed_values, adds, queries


def test_serving_beats_legacy_rebuild_at_100k(bench_record):
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    seed_values, adds, queries = _workload(sketcher)
    template = adds[0][0:0]  # zero-row batch carrying the metadata
    seed_batch = adds[0].__class__(
        values=seed_values,
        input_dim=template.input_dim,
        output_dim=template.output_dim,
        perturbation=template.perturbation,
        noise_spec=template.noise_spec,
        noise_second_moment=template.noise_second_moment,
        guarantee=template.guarantee,
        config_digest=template.config_digest,
    )

    # -- legacy: chunk list + full concatenate rebuild + full sort ---------
    legacy = _LegacyIndex(template)
    legacy.add_batch(seed_values)
    legacy._stacked()  # pre-build so the timed loop measures *re*builds
    legacy_results = []
    start = time.perf_counter()
    for r in range(_ROUNDS):
        legacy.add_batch(np.asarray(adds[r].values))
        for q in queries:
            legacy_results.append(legacy.query(np.asarray(q.values), _TOP))
    legacy_seconds = time.perf_counter() - start

    # -- serving: sharded store + cached norms + argpartition top-k --------
    store = ShardedSketchStore(shard_capacity=32_768)
    store.add_batch(seed_batch)
    service = DistanceService(store)
    serving_results = []
    start = time.perf_counter()
    for r in range(_ROUNDS):
        store.add_batch(adds[r])
        for q in queries:
            serving_results.append(
                service.execute(TopKQuery(queries=q, k=_TOP)).payload[0]
            )
    serving_seconds = time.perf_counter() - start

    # correctness is hard: same winners, same estimates (ulp-level BLAS
    # differences aside; the query plane clamps reported estimates at 0),
    # regardless of how the rows are laid out
    assert len(serving_results) == len(legacy_results)
    for served, legacy_row in zip(serving_results, legacy_results):
        assert [label for label, _ in served] == [label for label, _ in legacy_row]
        for (_, est_a), (_, est_b) in zip(served, legacy_row):
            assert abs(est_a - max(est_b, 0.0)) < 1e-6

    n_final = _SEED_ROWS + _ROUNDS * _ADD_ROWS
    per_query_legacy = legacy_seconds / len(legacy_results)
    per_query_serving = serving_seconds / len(serving_results)
    speedup = legacy_seconds / serving_seconds
    print(
        f"\nstore size: {n_final} rows, k={_K}, {store.n_shards} shards"
        f"\nlegacy  (rebuild + full sort): {legacy_seconds:8.3f}s "
        f"({per_query_legacy * 1e3:7.2f} ms/query)"
        f"\nserving (shards + cached norms): {serving_seconds:8.3f}s "
        f"({per_query_serving * 1e3:7.2f} ms/query)"
        f"\nspeedup: {speedup:.1f}x"
    )
    bench_record(
        "serving",
        workload=f"interleaved add+query at {n_final} rows, k={_K}",
        timings={"legacy_s": legacy_seconds, "serving_s": serving_seconds},
        speedups={"serving_vs_legacy": speedup},
        rates={"queries_per_s": len(serving_results) / serving_seconds},
        sizes={"store_nbytes": store.nbytes},
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"serving path only {speedup:.1f}x faster than the legacy rebuild "
        f"(threshold {_MIN_SPEEDUP:g}x)"
    )


def test_incremental_add_copies_only_new_rows():
    """Appending a chunk must not scale with rows already stored."""
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=_D, epsilon=4.0, output_dim=_K, sparsity=_S)
    )
    rng = np.random.default_rng(1)
    chunk = sketcher.sketch_batch(rng.standard_normal((1_000, _D)), noise_rng=0)

    def add_time(prefill_rows: int) -> float:
        store = ShardedSketchStore(shard_capacity=32_768)
        if prefill_rows:
            big = sketcher.sketch_batch(
                rng.standard_normal((prefill_rows, _D)), noise_rng=1
            )
            store.add_batch(big)
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            store.add_batch(chunk)
            best = min(best, time.perf_counter() - t0)
        return best

    small, large = add_time(0), add_time(60_000)
    print(f"\nappend 1000 rows: empty store {small * 1e3:.2f} ms, "
          f"60k-row store {large * 1e3:.2f} ms")
    # the legacy path would recopy all 60k rows; shards copy only the new
    # 1000.  Allow generous slack for allocator noise.
    assert large < 50 * max(small, 1e-4)
