"""Shared fixtures for the benchmark suite.

Every benchmark file regenerates one paper table/claim (see DESIGN.md's
per-experiment index) through the ``regenerate`` fixture, which times a
single full run of the experiment, prints the resulting table, and
asserts that every shape check reproduced the paper's claim.

Benchmarks run experiments at ``smoke`` scale so the suite stays fast;
EXPERIMENTS.md records the ``full``-scale numbers produced via
``python -m repro.experiments all``.

The ``bench_record`` fixture is the perf ledger: every system benchmark
writes one machine-readable ``BENCH_<name>.json`` (timings, speedups,
rows/s, store bytes — whatever it measured) next to the working
directory (or under ``$BENCH_JSON_DIR``).  CI uploads the files as
artifacts and ``benchmarks/trajectory.py`` prints them as one table, so
the perf trajectory is tracked per commit instead of lost in job logs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture
def bench_record():
    """Write one ``BENCH_<name>.json`` perf record; returns its path.

    ``fields`` is a flat-ish JSON-serialisable mapping — by convention
    ``timings`` (seconds), ``speedups`` (ratios), ``rates`` (rows/s or
    q/s) and ``sizes`` (bytes) sub-dicts, plus anything else worth
    tracking.  The commit comes from ``$GITHUB_SHA`` when CI sets it.
    """

    def write(name: str, **fields) -> Path:
        record = {
            "benchmark": name,
            "commit": os.environ.get("GITHUB_SHA"),
            **fields,
        }
        out_dir = Path(os.environ.get("BENCH_JSON_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    return write


@pytest.fixture
def regenerate(benchmark):
    """Time one experiment run and assert its claims reproduced."""

    def run(experiment_id: str, scale: str = "smoke", seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        failing = [name for name, ok in result.checks.items() if not ok]
        assert result.passed, f"{experiment_id} failed checks: {failing}"
        print()
        print(result.render())
        return result

    return run
