"""Shared fixtures for the benchmark suite.

Every benchmark file regenerates one paper table/claim (see DESIGN.md's
per-experiment index) through the ``regenerate`` fixture, which times a
single full run of the experiment, prints the resulting table, and
asserts that every shape check reproduced the paper's claim.

Benchmarks run experiments at ``smoke`` scale so the suite stays fast;
EXPERIMENTS.md records the ``full``-scale numbers produced via
``python -m repro.experiments all``.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture
def regenerate(benchmark):
    """Time one experiment run and assert its claims reproduced."""

    def run(experiment_id: str, scale: str = "smoke", seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        failing = [name for name, ok in result.checks.items() if not ok]
        assert result.passed, f"{experiment_id} failed checks: {failing}"
        print()
        print(result.render())
        return result

    return run
