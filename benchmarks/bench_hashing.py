"""Micro-benchmarks for the hashing substrate (the SJLT's inner loop)."""

import numpy as np

from repro.hashing.kwise import KWiseHash, SignHash
from repro.transforms.hadamard import fwht, hadamard_matrix

_KEYS = np.arange(1 << 14)


def test_kwise_hash_throughput(benchmark):
    h = KWiseHash(8, 1024, rng=0)
    out = benchmark(h, _KEYS)
    assert out.shape == _KEYS.shape


def test_sign_hash_throughput(benchmark):
    s = SignHash(8, rng=0)
    out = benchmark(s, _KEYS)
    assert set(np.unique(out)) <= {-1, 1}


def test_pairwise_vs_8wise_cost(benchmark):
    """Independence costs one Horner step per degree: measure t=2."""
    h = KWiseHash(2, 1024, rng=0)
    out = benchmark(h, _KEYS)
    assert out.shape == _KEYS.shape


def test_fwht_throughput(benchmark):
    x = np.random.default_rng(0).standard_normal(1 << 14)
    out = benchmark(fwht, x)
    assert out.shape == x.shape


def test_fwht_beats_dense_multiply(benchmark):
    """O(d log d) vs O(d^2): the FJLT's speed source, at d = 4096."""
    import time

    d = 1 << 12
    x = np.random.default_rng(1).standard_normal(d)
    out = benchmark(fwht, x)
    assert out.shape == (d,)

    h = hadamard_matrix(d)
    start = time.perf_counter()
    for _ in range(5):
        h @ x
    dense = (time.perf_counter() - start) / 5
    assert benchmark.stats.stats.median < dense
