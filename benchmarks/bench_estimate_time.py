"""Theorem 3 item 5 bench: estimation from two sketches costs O(k)."""

import numpy as np

from repro.core.estimators import estimate_sq_distance
from repro.core.sketch import PrivateSketcher, SketchConfig


def _sketch_pair(k: int):
    sketcher = PrivateSketcher(
        SketchConfig(input_dim=1024, epsilon=1.0, output_dim=k, sparsity=8)
    )
    rng = np.random.default_rng(0)
    a = sketcher.sketch(rng.standard_normal(1024), noise_rng=1)
    b = sketcher.sketch(rng.standard_normal(1024), noise_rng=2)
    return a, b


def test_estimate_small_k(benchmark):
    a, b = _sketch_pair(64)
    value = benchmark(estimate_sq_distance, a, b)
    assert np.isfinite(value)


def test_estimate_large_k(benchmark):
    a, b = _sketch_pair(4096)
    value = benchmark(estimate_sq_distance, a, b)
    assert np.isfinite(value)


def test_serialization_roundtrip_cost(benchmark):
    from repro.core.sketch import PrivateSketch

    a, _ = _sketch_pair(1024)

    def roundtrip():
        return PrivateSketch.from_bytes(a.to_bytes())

    restored = benchmark(roundtrip)
    assert np.allclose(restored.values, a.values)
