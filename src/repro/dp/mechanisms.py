"""Differential-privacy mechanisms and noise calibration.

Lemma 1 (Laplace mechanism) and Lemma 2 (Gaussian mechanism) from the
paper, plus the practically-motivated variants the paper cites in
Section 2.3.1: discrete Laplace, discrete Gaussian and Mironov's
snapping mechanism.  The analytic Gaussian calibration of Balle & Wang
(ICML 2018) is included as an extension — it is strictly tighter than
the classical ``sqrt(2 ln(1.25/delta))`` formula and remains valid for
``epsilon > 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.noise import (
    DiscreteGaussianNoise,
    DiscreteLaplaceNoise,
    GaussianNoise,
    LaplaceNoise,
    NoiseDistribution,
)
from repro.hashing import prg
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class PrivacyGuarantee:
    """An ``(epsilon, delta)`` differential-privacy guarantee (Definition 2)."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or not math.isfinite(self.epsilon):
            raise ValueError(f"epsilon must be positive and finite, got {self.epsilon}")
        if not 0.0 <= self.delta < 1.0:
            raise ValueError(f"delta must lie in [0, 1), got {self.delta}")

    @property
    def is_pure(self) -> bool:
        """True for pure epsilon-DP (``delta == 0``)."""
        return self.delta == 0.0

    def compose(self, other: "PrivacyGuarantee") -> "PrivacyGuarantee":
        """Basic sequential composition: parameters add."""
        return PrivacyGuarantee(self.epsilon + other.epsilon, self.delta + other.delta)

    def __str__(self) -> str:
        if self.is_pure:
            return f"{self.epsilon:.4g}-DP"
        return f"({self.epsilon:.4g}, {self.delta:.3g})-DP"


@dataclass(frozen=True)
class AdditiveMechanism:
    """Release ``vector + noise`` under a sensitivity bound.

    The mechanism is *output perturbation* in the paper's sense: the
    vector being released is ``Sx`` and ``sensitivity`` bounds how much
    it can move between neighbouring inputs (in the norm matching the
    noise: ``l1`` for Laplace-family noise, ``l2`` for Gaussian-family).
    """

    noise: NoiseDistribution
    guarantee: PrivacyGuarantee
    sensitivity: float

    def randomize(self, vector, rng=None) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        generator = prg.as_generator(rng)
        return vector + self.noise.sample(vector.size, generator).reshape(vector.shape)


def laplace_mechanism(l1_sensitivity: float, epsilon: float) -> AdditiveMechanism:
    """Lemma 1: ``Lap(Delta_1 / epsilon)`` noise gives pure epsilon-DP."""
    l1_sensitivity = check_positive(l1_sensitivity, "l1_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    noise = LaplaceNoise(l1_sensitivity / epsilon)
    return AdditiveMechanism(noise, PrivacyGuarantee(epsilon), l1_sensitivity)


def classical_gaussian_sigma(l2_sensitivity: float, epsilon: float, delta: float) -> float:
    """Lemma 2: ``sigma >= Delta_2 / epsilon * sqrt(2 ln(1.25/delta))``.

    The classical analysis is valid for ``epsilon <= 1``; for larger
    epsilon prefer :func:`analytic_gaussian_sigma`.
    """
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_probability(delta, "delta")
    return l2_sensitivity / epsilon * math.sqrt(2.0 * math.log(1.25 / delta))


def _gaussian_delta(sigma: float, l2_sensitivity: float, epsilon: float) -> float:
    """Exact delta of the Gaussian mechanism (Balle & Wang, Theorem 5).

    ``delta = Phi(mu/2 - eps/mu) - e^eps * Phi(-mu/2 - eps/mu)`` with
    ``mu = Delta_2 / sigma``.
    """
    mu = l2_sensitivity / sigma
    shift = epsilon / mu
    return _std_normal_cdf(mu / 2.0 - shift) - math.exp(epsilon) * _std_normal_cdf(
        -mu / 2.0 - shift
    )


def _std_normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def analytic_gaussian_sigma(
    l2_sensitivity: float, epsilon: float, delta: float, tolerance: float = 1e-12
) -> float:
    """Smallest sigma achieving ``(epsilon, delta)``-DP (Balle & Wang 2018).

    Solves ``delta(sigma) = delta`` by bisection; ``delta(sigma)`` is
    strictly decreasing in ``sigma``.  Always at most the classical
    calibration, and valid for every ``epsilon > 0``.
    """
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_probability(delta, "delta")

    # Bracket: the classical sigma over-delivers (delta too small); tiny
    # sigma under-delivers.
    high = max(classical_gaussian_sigma(l2_sensitivity, min(epsilon, 1.0), delta), 1e-6)
    while _gaussian_delta(high, l2_sensitivity, epsilon) > delta:  # pragma: no cover
        high *= 2.0
    low = high
    while _gaussian_delta(low, l2_sensitivity, epsilon) < delta and low > 1e-300:
        low /= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if high - low < tolerance * high:
            break
        if _gaussian_delta(mid, l2_sensitivity, epsilon) > delta:
            low = mid
        else:
            high = mid
    return high


def gaussian_mechanism(
    l2_sensitivity: float, epsilon: float, delta: float, analytic: bool = False
) -> AdditiveMechanism:
    """Lemma 2's Gaussian mechanism; ``analytic=True`` uses Balle-Wang."""
    if analytic:
        sigma = analytic_gaussian_sigma(l2_sensitivity, epsilon, delta)
    else:
        sigma = classical_gaussian_sigma(l2_sensitivity, epsilon, delta)
    noise = GaussianNoise(sigma)
    return AdditiveMechanism(noise, PrivacyGuarantee(epsilon, delta), l2_sensitivity)


def discrete_laplace_mechanism(l1_sensitivity: float, epsilon: float) -> AdditiveMechanism:
    """Geometric mechanism: pure epsilon-DP for integer-valued queries.

    Requires integer-valued release vectors to inherit the pure-DP
    guarantee (the paper's Section 2.3.1 discussion); the scale matches
    the continuous Laplace calibration.
    """
    l1_sensitivity = check_positive(l1_sensitivity, "l1_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    noise = DiscreteLaplaceNoise(l1_sensitivity / epsilon)
    return AdditiveMechanism(noise, PrivacyGuarantee(epsilon), l1_sensitivity)


def discrete_gaussian_mechanism(
    l2_sensitivity: float, epsilon: float, delta: float, analytic: bool = True
) -> AdditiveMechanism:
    """Discrete Gaussian mechanism (Canonne, Kamath & Steinke 2020).

    Their Theorem 7 shows the discrete Gaussian with a given sigma
    enjoys essentially the continuous mechanism's guarantee; we
    calibrate sigma exactly as for the continuous case.
    """
    if analytic:
        sigma = analytic_gaussian_sigma(l2_sensitivity, epsilon, delta)
    else:
        sigma = classical_gaussian_sigma(l2_sensitivity, epsilon, delta)
    noise = DiscreteGaussianNoise(sigma)
    return AdditiveMechanism(noise, PrivacyGuarantee(epsilon, delta), l2_sensitivity)


class SnappingMechanism:
    """Mironov's snapping mechanism for floating-point-safe Laplace release.

    ``M(x) = clamp_B( Lambda * round( (clamp_B(x) + Lap(b)) / Lambda ) )``
    with ``Lambda`` the smallest power of two at least ``b``.  Guarantees
    ``(epsilon', 0)``-DP for a slightly larger ``epsilon'`` than the
    underlying Laplace scale would suggest and adds rounding error of at
    most ``Lambda/2`` — the "additional error of approximately
    ``Delta_1/epsilon``" the paper quotes in Section 2.3.1.

    This is a *scalar* mechanism applied coordinate-wise; it does not
    feed the unbiased estimator (the snapping bias is unknown), so it
    lives outside the sketcher and is exercised directly in tests and
    the mechanism-tour example.
    """

    def __init__(self, l1_sensitivity: float, epsilon: float, bound: float) -> None:
        self.sensitivity = check_positive(l1_sensitivity, "l1_sensitivity")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.bound = check_positive(bound, "bound")
        self.scale = self.sensitivity / self.epsilon
        self.lattice = 2.0 ** math.ceil(math.log2(self.scale))
        # Mironov Theorem 1: the effective epsilon grows by the machine-
        # precision terms; we surface the standard conservative bound.
        machine_eta = 2.0**-52
        self.effective_epsilon = self.epsilon * (1.0 + 12.0 * self.bound * machine_eta) + (
            2.0 * machine_eta * self.bound / self.scale
        )

    def randomize(self, vector, rng=None) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        generator = prg.as_generator(rng)
        clamped = np.clip(vector, -self.bound, self.bound)
        noisy = clamped + generator.laplace(0.0, self.scale, size=vector.shape)
        snapped = self.lattice * np.round(noisy / self.lattice)
        return np.clip(snapped, -self.bound, self.bound)
