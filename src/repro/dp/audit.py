"""White-box privacy auditing of additive-noise sketches.

For an additive mechanism ``M(x) = Sx + eta`` with i.i.d. coordinate
noise, the privacy loss between neighbours ``x`` and ``x'`` at output
``o = Sx + eta`` is

    L(o) = sum_i [ log f(eta_i) - log f(eta_i + c_i) ],
    c = S(x - x'),

because ``o - Sx' = eta + c``.  Sampling ``eta`` from the noise itself
samples ``L`` under the ``x`` world, giving an exact Monte-Carlo view of
the privacy-loss distribution:

* pure epsilon-DP requires ``L <= epsilon`` almost surely (checked as a
  hard maximum for Laplace noise),
* approximate DP requires
  ``delta(eps) = E[ (1 - e^{eps - L})_+ ] <= delta`` — the standard
  privacy-loss characterisation of ``(eps, delta)``-DP.

This is a *verification* audit: it uses the known densities, so a
passing result certifies the calibration arithmetic (not the sampler's
floating-point behaviour, for which see the discrete distributions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.noise import NoiseDistribution
from repro.hashing import prg
from repro.utils.validation import as_float_vector


@dataclass(frozen=True)
class AuditResult:
    """Outcome of a privacy-loss audit."""

    epsilon_claimed: float
    delta_claimed: float
    max_loss: float
    delta_at_epsilon: float
    n_samples: int

    @property
    def passed(self) -> bool:
        """Whether the observed loss profile is consistent with the claim.

        For a pure-DP claim the max observed loss must not exceed
        epsilon (up to floating-point slack); for approximate DP the
        Monte-Carlo delta at epsilon must not exceed the claimed delta
        by more than sampling error (three binomial standard errors).
        """
        slack = 1e-9 * max(1.0, abs(self.epsilon_claimed))
        if self.delta_claimed == 0.0:
            return self.max_loss <= self.epsilon_claimed + slack
        stderr = 3.0 * np.sqrt(
            max(self.delta_claimed * (1 - self.delta_claimed), 1e-12) / self.n_samples
        )
        return self.delta_at_epsilon <= self.delta_claimed + stderr


def privacy_loss_samples(
    noise: NoiseDistribution,
    shift,
    n_samples: int,
    rng=None,
) -> np.ndarray:
    """Sample the privacy-loss random variable for output shift ``shift``.

    ``shift`` is ``S(x - x')`` for the neighbouring pair under audit.
    """
    shift = as_float_vector(shift, "shift")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    generator = prg.as_generator(rng)
    eta = noise.sample(n_samples * shift.size, generator).reshape(n_samples, shift.size)
    log_num = noise.log_density(eta)
    log_den = noise.log_density(eta + shift[np.newaxis, :])
    return (log_num - log_den).sum(axis=1)


def delta_at_epsilon(losses: np.ndarray, epsilon: float) -> float:
    """Monte-Carlo estimate of ``delta(eps) = E[(1 - e^{eps - L})_+]``."""
    losses = np.asarray(losses, dtype=np.float64)
    excess = losses - epsilon
    return float(np.mean(np.where(excess > 0, -np.expm1(-excess), 0.0)))


def audit_mechanism(
    noise: NoiseDistribution,
    shift,
    epsilon: float,
    delta: float = 0.0,
    n_samples: int = 20000,
    rng=None,
) -> AuditResult:
    """Audit an additive mechanism against its claimed guarantee.

    Parameters
    ----------
    noise:
        The calibrated noise distribution.
    shift:
        ``S(x - x')`` for the neighbouring pair to attack — use
        :func:`repro.dp.sensitivity.worst_case_neighbors` to pick the
        pair maximising the loss.
    epsilon, delta:
        The claimed guarantee.
    """
    losses = privacy_loss_samples(noise, shift, n_samples, rng)
    return AuditResult(
        epsilon_claimed=float(epsilon),
        delta_claimed=float(delta),
        max_loss=float(losses.max()),
        delta_at_epsilon=delta_at_epsilon(losses, epsilon),
        n_samples=n_samples,
    )
