"""Privacy budget accounting across sketch releases.

Each party in the distributed protocol may release several sketches
(e.g. one per epoch of a data stream); composition theorems bound the
total privacy loss.  We implement basic composition and the advanced
composition theorem (Dwork & Roth, Theorem 3.20, in its heterogeneous
form), which is all the paper's setting requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dp.mechanisms import PrivacyGuarantee
from repro.utils.validation import check_probability


class BudgetExceededError(RuntimeError):
    """Raised when a release would exceed the configured privacy budget."""


@dataclass(frozen=True)
class PrivacyEvent:
    """One recorded release: a label plus its stand-alone guarantee."""

    label: str
    guarantee: PrivacyGuarantee


@dataclass(frozen=True)
class BudgetRemainder:
    """Unspent budget: like a guarantee, but zero is a legal value.

    :class:`~repro.dp.mechanisms.PrivacyGuarantee` requires a strictly
    positive epsilon (a mechanism cannot be calibrated to epsilon = 0),
    but *remaining budget* legitimately reaches zero in either
    parameter, so the accountant reports it with this type instead.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon < 0 or self.delta < 0:
            raise ValueError(
                f"remainders cannot be negative, got ({self.epsilon}, {self.delta})"
            )

    @property
    def exhausted(self) -> bool:
        """True when no epsilon is left to spend."""
        return self.epsilon == 0.0


@dataclass
class PrivacyAccountant:
    """Tracks releases and reports composed ``(epsilon, delta)`` totals.

    Parameters
    ----------
    budget:
        Optional hard cap; :meth:`spend` raises
        :class:`BudgetExceededError` when basic composition would pass
        it.  ``None`` means unlimited (tracking only).
    """

    budget: PrivacyGuarantee | None = None
    events: list[PrivacyEvent] = field(default_factory=list)

    def spend(self, guarantee: PrivacyGuarantee, label: str = "release") -> PrivacyEvent:
        """Record a release, enforcing the budget under basic composition."""
        event = PrivacyEvent(label, guarantee)
        if self.budget is not None:
            total = self._basic_after(event)
            if total.epsilon > self.budget.epsilon + 1e-12 or total.delta > self.budget.delta + 1e-15:
                raise BudgetExceededError(
                    f"release {label!r} ({guarantee}) would exceed budget "
                    f"{self.budget} (already spent {self.total_basic()})"
                )
        self.events.append(event)
        return event

    def _basic_after(self, event: PrivacyEvent) -> PrivacyGuarantee:
        eps = sum(e.guarantee.epsilon for e in self.events) + event.guarantee.epsilon
        delta = sum(e.guarantee.delta for e in self.events) + event.guarantee.delta
        return PrivacyGuarantee(eps, delta)

    def total_basic(self) -> PrivacyGuarantee:
        """Basic sequential composition: epsilons and deltas add."""
        if not self.events:
            raise ValueError("no releases recorded yet")
        eps = sum(e.guarantee.epsilon for e in self.events)
        delta = sum(e.guarantee.delta for e in self.events)
        return PrivacyGuarantee(eps, delta)

    def total_advanced(self, delta_slack: float) -> PrivacyGuarantee:
        """Advanced composition with extra failure probability ``delta_slack``.

        Heterogeneous form:
        ``eps' = sqrt(2 ln(1/delta') * sum eps_i^2) + sum eps_i (e^eps_i - 1)``,
        ``delta' = delta_slack + sum delta_i``.
        """
        if not self.events:
            raise ValueError("no releases recorded yet")
        delta_slack = check_probability(delta_slack, "delta_slack")
        sum_sq = sum(e.guarantee.epsilon**2 for e in self.events)
        linear = sum(
            e.guarantee.epsilon * (math.exp(e.guarantee.epsilon) - 1.0) for e in self.events
        )
        eps = math.sqrt(2.0 * math.log(1.0 / delta_slack) * sum_sq) + linear
        delta = delta_slack + sum(e.guarantee.delta for e in self.events)
        return PrivacyGuarantee(eps, delta)

    def best_total(self, delta_slack: float = 0.0) -> PrivacyGuarantee:
        """The tighter of basic and advanced composition.

        With ``delta_slack == 0`` only basic composition is available
        (advanced composition inherently spends extra delta).
        """
        basic = self.total_basic()
        if delta_slack <= 0.0:
            return basic
        advanced = self.total_advanced(delta_slack)
        return advanced if advanced.epsilon < basic.epsilon else basic

    @property
    def n_releases(self) -> int:
        return len(self.events)

    def remaining(self) -> BudgetRemainder | None:
        """Budget left under basic composition (``None`` if unlimited).

        Both parameters are clamped at zero, symmetrically: an exactly
        exhausted epsilon *or* delta reports as a zero remainder rather
        than raising — exhaustion is a state, not an error (attempting
        to :meth:`spend` past it is what raises).
        """
        if self.budget is None:
            return None
        if not self.events:
            return BudgetRemainder(self.budget.epsilon, self.budget.delta)
        spent = self.total_basic()
        return BudgetRemainder(
            max(self.budget.epsilon - spent.epsilon, 0.0),
            max(self.budget.delta - spent.delta, 0.0),
        )
