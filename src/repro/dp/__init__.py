"""Differential-privacy substrate: noise, mechanisms, accounting, auditing."""

from repro.dp.accountant import (
    BudgetExceededError,
    BudgetRemainder,
    PrivacyAccountant,
    PrivacyEvent,
)
from repro.dp.audit import AuditResult, audit_mechanism, delta_at_epsilon, privacy_loss_samples
from repro.dp.mechanisms import (
    AdditiveMechanism,
    PrivacyGuarantee,
    SnappingMechanism,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
    discrete_gaussian_mechanism,
    discrete_laplace_mechanism,
    gaussian_mechanism,
    laplace_mechanism,
)
from repro.dp.noise import (
    NOISE_DISTRIBUTIONS,
    DiscreteGaussianNoise,
    DiscreteLaplaceNoise,
    GaussianNoise,
    LaplaceNoise,
    NoiseDistribution,
    noise_from_spec,
)
from repro.dp.randomized_response import RandomizedResponse
from repro.dp.sensitivity import (
    SensitivityProfile,
    exact_sensitivity,
    is_neighboring,
    sensitivity_profile,
    worst_case_neighbors,
)

__all__ = [
    "NOISE_DISTRIBUTIONS",
    "AdditiveMechanism",
    "AuditResult",
    "BudgetExceededError",
    "BudgetRemainder",
    "DiscreteGaussianNoise",
    "DiscreteLaplaceNoise",
    "GaussianNoise",
    "LaplaceNoise",
    "NoiseDistribution",
    "PrivacyAccountant",
    "PrivacyEvent",
    "PrivacyGuarantee",
    "RandomizedResponse",
    "SensitivityProfile",
    "SnappingMechanism",
    "analytic_gaussian_sigma",
    "audit_mechanism",
    "classical_gaussian_sigma",
    "delta_at_epsilon",
    "discrete_gaussian_mechanism",
    "discrete_laplace_mechanism",
    "exact_sensitivity",
    "gaussian_mechanism",
    "is_neighboring",
    "laplace_mechanism",
    "noise_from_spec",
    "privacy_loss_samples",
    "sensitivity_profile",
    "worst_case_neighbors",
]
