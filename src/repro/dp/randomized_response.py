"""Randomized response (Warner 1965) for binary vectors.

Section 2.4 of the paper contrasts the McGregor et al. lower bound —
any two-party DP protocol for Hamming distance incurs additive error
``Omega~(sqrt(k))`` — with the observation that plain randomized
response achieves ``O(sqrt(k))``.  This module provides that baseline
so EXP-LB can plot both against the paper's sketches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dp.mechanisms import PrivacyGuarantee
from repro.hashing import prg
from repro.utils.validation import check_positive


class RandomizedResponse:
    """Per-bit randomized response with pure epsilon-DP (attribute level).

    Each bit is kept with probability ``e^eps / (1 + e^eps)`` and
    flipped otherwise, which is exactly epsilon-DP for neighbouring
    binary vectors differing in one coordinate.
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.keep_probability = math.exp(epsilon) / (1.0 + math.exp(epsilon))
        self.guarantee = PrivacyGuarantee(epsilon)

    @property
    def flip_probability(self) -> float:
        return 1.0 - self.keep_probability

    def randomize(self, bits, rng=None) -> np.ndarray:
        """Flip each bit independently with the calibrated probability."""
        bits = _as_bits(bits)
        generator = prg.as_generator(rng)
        flips = generator.random(bits.size) < self.flip_probability
        return np.where(flips, 1.0 - bits, bits)

    def estimate_hamming(self, released_a, released_b) -> float:
        """Unbiased Hamming-distance estimate from two RR releases.

        With flip probability ``f``: agreeing bits disagree after RR
        with probability ``2f(1-f)``, differing bits with
        ``f^2 + (1-f)^2``, so
        ``H_hat = (H_obs - 2f(1-f) d) / (1 - 2f)^2``.
        """
        a = _as_bits(released_a)
        b = _as_bits(released_b)
        if a.size != b.size:
            raise ValueError(f"dimension mismatch: {a.size} vs {b.size}")
        f = self.flip_probability
        observed = float(np.sum(a != b))
        baseline = 2.0 * f * (1.0 - f) * a.size
        return (observed - baseline) / (1.0 - 2.0 * f) ** 2

    def estimator_standard_error(self, dim: int) -> float:
        """The ``O(sqrt(k))`` error scale the paper quotes.

        Upper bound on the standard deviation of
        :meth:`estimate_hamming`: each of the ``dim`` disagreement
        indicators has variance at most 1/4, scaled by the debiasing
        factor ``(1 - 2f)^-2``.
        """
        f = self.flip_probability
        return 0.5 * math.sqrt(dim) / (1.0 - 2.0 * f) ** 2


def _as_bits(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-d bit vector, got shape {arr.shape}")
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise ValueError("randomized response requires a binary vector")
    return arr
