"""Zero-mean noise distributions with exact second and fourth moments.

The generic estimator of Lemma 3 needs exactly two numbers from the
noise distribution ``D``: ``E[eta^2]`` (for the bias correction) and
``E[eta^4]`` (for the variance).  Every distribution here exposes both
in closed form — including the discrete alternatives from Section 2.3.1
(Mironov's floating-point caveat; Canonne-Kamath-Steinke's discrete
Gaussian) whose moments we evaluate by exact series summation.

Each distribution also exposes its log-density so the white-box privacy
audit (:mod:`repro.dp.audit`) can compute privacy-loss samples.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import cached_property

import numpy as np

from repro.theory.moments import (
    two_sided_geometric_fourth_moment,
    two_sided_geometric_second_moment,
)
from repro.utils.validation import check_positive


class NoiseDistribution(ABC):
    """A zero-mean, symmetric noise distribution over the reals (or integers)."""

    #: Short identifier used in tables and serialized sketches.
    name: str = "abstract"

    @abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. samples."""

    def sample_rows(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        """Draw an ``(n, dim)`` matrix of i.i.d. samples, row by row.

        The contract (relied on by the batch sketching path): the
        generator stream is consumed exactly as ``n`` successive
        ``sample(dim, rng)`` calls, so batch and scalar releases see
        identical noise.  The default loops to keep that true for
        rejection samplers; distributions that consume the stream one
        element at a time override this with a single vectorised draw.
        """
        out = np.empty((n, dim))
        for i in range(n):
            out[i] = self.sample(dim, rng)
        return out

    @property
    @abstractmethod
    def second_moment(self) -> float:
        """``E[eta^2]`` — the estimator's bias-correction constant."""

    @property
    @abstractmethod
    def fourth_moment(self) -> float:
        """``E[eta^4]`` — enters the estimator's variance (Lemma 3)."""

    @abstractmethod
    def log_density(self, values: np.ndarray) -> np.ndarray:
        """Log of the density (or pmf) at ``values``."""

    @property
    def variance(self) -> float:
        """Alias for :attr:`second_moment` (the mean is zero)."""
        return self.second_moment

    def noise_variance_term(self, k: int) -> float:
        """The additive variance the noise contributes to ``E_gen`` at
        distance zero: ``2k E[eta^4] + 2k E[eta^2]^2`` (Lemma 3)."""
        return 2.0 * k * (self.fourth_moment + self.second_moment**2)

    def spec(self) -> dict:
        """A JSON-serialisable description (for sketch serialization)."""
        return {"name": self.name, **self._params()}

    @abstractmethod
    def _params(self) -> dict:
        """Distribution parameters for :meth:`spec`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v:.6g}" for k, v in self._params().items())
        return f"{type(self).__name__}({params})"


class LaplaceNoise(NoiseDistribution):
    """``Lap(scale)``: the paper's choice for pure epsilon-DP (Lemma 1).

    Note 4 moments: ``E[eta^2] = 2 b^2``, ``E[eta^4] = 24 b^4``.
    """

    name = "laplace"

    def __init__(self, scale: float) -> None:
        self.scale = check_positive(scale, "scale")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.laplace(0.0, self.scale, size=size)

    def sample_rows(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        # inverse-CDF sampling is element-sequential: one (n * dim) draw
        # consumes the stream exactly like n successive dim-sized draws
        return self.sample(n * dim, rng).reshape(n, dim)

    @property
    def second_moment(self) -> float:
        return 2.0 * self.scale**2

    @property
    def fourth_moment(self) -> float:
        return 24.0 * self.scale**4

    def log_density(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return -np.abs(values) / self.scale - math.log(2.0 * self.scale)

    def _params(self) -> dict:
        return {"scale": self.scale}


class GaussianNoise(NoiseDistribution):
    """``N(0, sigma^2)``: the Kenthapadi et al. choice ((eps, delta)-DP).

    Note 4 moments: ``E[eta^2] = sigma^2``, ``E[eta^4] = 3 sigma^4``.
    """

    name = "gaussian"

    def __init__(self, sigma: float) -> None:
        self.sigma = check_positive(sigma, "sigma")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=size)

    def sample_rows(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        # the ziggurat sampler is also element-sequential (verified by
        # the batch-vs-scalar consistency suite)
        return self.sample(n * dim, rng).reshape(n, dim)

    @property
    def second_moment(self) -> float:
        return self.sigma**2

    @property
    def fourth_moment(self) -> float:
        return 3.0 * self.sigma**4

    def log_density(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return -(values**2) / (2.0 * self.sigma**2) - 0.5 * math.log(
            2.0 * math.pi * self.sigma**2
        )

    def _params(self) -> dict:
        return {"sigma": self.sigma}


class DiscreteLaplaceNoise(NoiseDistribution):
    """Two-sided geometric on the integers: ``P[X=z] ∝ exp(-|z|/scale)``.

    The discrete analogue of ``Lap(scale)`` discussed in Section 2.3.1;
    sampling is exact (difference of two geometrics) and immune to the
    floating-point attack of Mironov (2012).
    """

    name = "discrete_laplace"

    def __init__(self, scale: float) -> None:
        self.scale = check_positive(scale, "scale")

    @property
    def ratio(self) -> float:
        """The geometric ratio ``q = exp(-1/scale)``."""
        return math.exp(-1.0 / self.scale)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        success = 1.0 - self.ratio
        plus = rng.geometric(success, size=size) - 1
        minus = rng.geometric(success, size=size) - 1
        return (plus - minus).astype(np.float64)

    @property
    def second_moment(self) -> float:
        return two_sided_geometric_second_moment(self.ratio)

    @property
    def fourth_moment(self) -> float:
        return two_sided_geometric_fourth_moment(self.ratio)

    def log_density(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if not np.allclose(values, np.round(values)):
            raise ValueError("discrete Laplace pmf is supported on the integers")
        q = self.ratio
        return np.abs(values) * math.log(q) + math.log((1.0 - q) / (1.0 + q))

    def _params(self) -> dict:
        return {"scale": self.scale}


class DiscreteGaussianNoise(NoiseDistribution):
    """The discrete Gaussian ``N_Z(0, sigma^2)`` of Canonne, Kamath & Steinke.

    ``P[X=z] ∝ exp(-z^2 / (2 sigma^2))`` on the integers.  Sampled by
    their exact rejection scheme from a discrete Laplace envelope; its
    variance is *at most* ``sigma^2`` (their Corollary 9 — checked in
    EXP-DISC), so utility never degrades versus the continuous Gaussian.

    Moments have no elementary closed form; we evaluate the defining
    series to machine precision (the summand decays like ``e^-z^2``).
    """

    name = "discrete_gaussian"

    def __init__(self, sigma: float) -> None:
        self.sigma = check_positive(sigma, "sigma")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        t = math.floor(self.sigma) + 1
        envelope = DiscreteLaplaceNoise(float(t))
        sigma_sq = self.sigma**2
        out = np.empty(size, dtype=np.float64)
        filled = 0
        while filled < size:
            batch = max(2 * (size - filled), 16)
            candidate = envelope.sample(batch, rng)
            exponent = -((np.abs(candidate) - sigma_sq / t) ** 2) / (2.0 * sigma_sq)
            accepted = candidate[rng.random(batch) < np.exp(exponent)]
            take = min(accepted.size, size - filled)
            out[filled : filled + take] = accepted[:take]
            filled += take
        return out

    @cached_property
    def _series(self) -> tuple[float, float, float]:
        """(normaliser, E[X^2], E[X^4]) by exact summation."""
        radius = max(30, int(math.ceil(12.0 * self.sigma)))
        z = np.arange(-radius, radius + 1, dtype=np.float64)
        weights = np.exp(-(z**2) / (2.0 * self.sigma**2))
        total = float(weights.sum())
        m2 = float((z**2 * weights).sum() / total)
        m4 = float((z**4 * weights).sum() / total)
        return total, m2, m4

    @property
    def second_moment(self) -> float:
        return self._series[1]

    @property
    def fourth_moment(self) -> float:
        return self._series[2]

    def log_density(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if not np.allclose(values, np.round(values)):
            raise ValueError("discrete Gaussian pmf is supported on the integers")
        normaliser = self._series[0]
        return -(values**2) / (2.0 * self.sigma**2) - math.log(normaliser)

    def _params(self) -> dict:
        return {"sigma": self.sigma}


#: Registry used by sketch (de)serialization.
NOISE_DISTRIBUTIONS = {
    "laplace": LaplaceNoise,
    "gaussian": GaussianNoise,
    "discrete_laplace": DiscreteLaplaceNoise,
    "discrete_gaussian": DiscreteGaussianNoise,
}


def noise_from_spec(spec: dict) -> NoiseDistribution:
    """Rebuild a noise distribution from :meth:`NoiseDistribution.spec`."""
    spec = dict(spec)
    name = spec.pop("name")
    try:
        cls = NOISE_DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(f"unknown noise distribution {name!r}") from None
    return cls(**spec)
