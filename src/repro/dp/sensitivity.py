"""Sensitivity analysis of linear transforms (Definition 3).

For a linear map ``S`` and the paper's neighbouring relation
``||x - x'||_1 <= 1``, the ``l_p``-sensitivity equals the maximum column
``p``-norm of ``S`` (Note 3: any unit-``l1`` difference is a convex
combination of signed basis vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transforms.base import LinearTransform, exact_sensitivity
from repro.utils.validation import as_float_vector


def is_neighboring(x, y, tolerance: float = 1e-12) -> bool:
    """Whether ``x`` and ``y`` are neighbours per Definition 1."""
    x = as_float_vector(x, "x")
    y = as_float_vector(y, "y")
    if x.size != y.size:
        raise ValueError(f"dimension mismatch: {x.size} vs {y.size}")
    return float(np.abs(x - y).sum()) <= 1.0 + tolerance


@dataclass(frozen=True)
class SensitivityProfile:
    """Exact ``l1``/``l2`` sensitivities plus how they were obtained."""

    l1: float
    l2: float
    closed_form: bool

    def for_order(self, p: float) -> float:
        if p == 1:
            return self.l1
        if p == 2:
            return self.l2
        raise ValueError(f"profile only stores p in {{1, 2}}, asked for {p}")


def sensitivity_profile(transform: LinearTransform, block_size: int = 256) -> SensitivityProfile:
    """Compute the transform's ``l1``/``l2`` sensitivities.

    Uses the closed form when the transform provides one (the SJLT's
    deterministic ``Delta_1 = sqrt(s)``, ``Delta_2 = 1``), otherwise the
    ``O(dk)`` exact column scan — the initialisation cost of
    Section 2.1.1 that the paper's construction avoids.
    """
    closed = transform.has_closed_form_sensitivity
    return SensitivityProfile(
        l1=transform.sensitivity(1, block_size=block_size),
        l2=transform.sensitivity(2, block_size=block_size),
        closed_form=closed,
    )


def worst_case_neighbors(
    transform: LinearTransform, p: float = 1, block_size: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """A neighbouring pair realising the transform's ``l_p``-sensitivity.

    Returns ``(x, x')`` with ``x' = x + e_j*`` where ``j*`` is the column
    of maximum ``p``-norm; used by the privacy audit to attack the
    mechanism where the noise calibration is tightest.
    """
    worst_norm = -1.0
    worst_index = 0
    for start in range(0, transform.input_dim, block_size):
        stop = min(start + block_size, transform.input_dim)
        block = transform.column_block(np.arange(start, stop))
        if np.isinf(p):
            norms = np.abs(block).max(axis=0)
        else:
            norms = (np.abs(block) ** p).sum(axis=0) ** (1.0 / p)
        local = int(norms.argmax())
        if norms[local] > worst_norm:
            worst_norm = float(norms[local])
            worst_index = start + local
    x = np.zeros(transform.input_dim)
    x_prime = x.copy()
    x_prime[worst_index] = 1.0
    return x, x_prime


__all__ = [
    "SensitivityProfile",
    "exact_sensitivity",
    "is_neighboring",
    "sensitivity_profile",
    "worst_case_neighbors",
]
