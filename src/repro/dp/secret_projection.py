"""Secret-projection privacy (Blocki et al. 2012) and its limits.

Section 2.3 of the paper: if the projection matrix is kept *secret*,
the i.i.d. Gaussian JL transform itself preserves differential privacy
— no additive noise at all, so estimates enjoy the raw JL accuracy.
Two caveats the paper stresses, both reproduced here:

* the trick needs the input to be bounded away from zero
  (``||x||_2 >= w``) — Blocki et al. regularise singular values for the
  same reason; and it is *unattainable in the distributed setting*,
  where the matrix must be public for parties to sketch independently;
* Upadhyay (2014) proved the trick **fails for sparse projections**:
  the sparsity pattern of ``Sx`` leaks the input's support.  The
  :func:`sparsity_attack` distinguisher makes that concrete.

For a secret i.i.d. ``N(0, 1/k)`` matrix, the released vector's
marginal distribution is exactly ``N(0, ||x||^2/k I_k)`` — the
mechanism is equivalent to publishing ``k`` Gaussians whose variance
carries the (private) norm.  All privacy arithmetic below analyses that
exact form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dp.mechanisms import PrivacyGuarantee
from repro.hashing import prg
from repro.utils.validation import as_float_vector, check_positive, check_probability


@dataclass(frozen=True)
class SecretProjectionRelease:
    """One secret-projection release ``Sx`` (the matrix is discarded)."""

    values: np.ndarray

    def estimate_sq_norm(self) -> float:
        """Unbiased ``||x||^2`` estimate: ``E||Sx||^2 = ||x||^2``.

        Variance ``2||x||^4/k`` — the JL-lemma accuracy with *zero*
        additive noise, which is Blocki et al.'s selling point.
        """
        return float(self.values @ self.values)


class SecretGaussianProjection:
    """Noise-free DP release of ``Sx`` with a secret Gaussian ``S``.

    Parameters
    ----------
    output_dim:
        Sketch width ``k``.
    norm_floor:
        The promise ``||x||_2 >= norm_floor`` (the ``w`` regulariser of
        Blocki et al.).  Inputs violating it are rejected — releasing
        them would void the guarantee.
    delta:
        Target failure probability; epsilon is then determined by
        ``k`` and ``norm_floor`` via :func:`secret_projection_epsilon`.
    """

    def __init__(self, output_dim: int, norm_floor: float, delta: float) -> None:
        if output_dim < 1:
            raise ValueError(f"output_dim must be >= 1, got {output_dim}")
        self.output_dim = int(output_dim)
        self.norm_floor = check_positive(norm_floor, "norm_floor")
        self.delta = check_probability(delta, "delta")
        self.guarantee = PrivacyGuarantee(
            secret_projection_epsilon(self.output_dim, self.norm_floor, self.delta),
            self.delta,
        )

    def release(self, x, rng=None) -> SecretProjectionRelease:
        """Release ``Sx`` for a fresh secret ``S`` (never reuse ``S``)."""
        x = as_float_vector(x, "x")
        norm = float(np.linalg.norm(x))
        if norm < self.norm_floor - 1e-12:
            raise ValueError(
                f"||x|| = {norm:.4g} violates the norm floor {self.norm_floor:.4g}; "
                "the Blocki et al. guarantee does not cover this input"
            )
        generator = prg.as_generator(rng)
        matrix = generator.standard_normal((self.output_dim, x.size)) / math.sqrt(
            self.output_dim
        )
        return SecretProjectionRelease(matrix @ x)


def _variance_ratio(norm_floor: float) -> float:
    """Worst-case per-coordinate variance ratio between neighbours.

    Neighbours satisfy ``||x - x'||_1 <= 1`` hence ``||x - x'||_2 <= 1``,
    so ``| ||x||^2 - ||x'||^2 | <= 2||x|| + 1``; relative to
    ``||x||^2 >= w^2`` the ratio is maximised at ``||x|| = w``.
    """
    w = norm_floor
    return 1.0 + (2.0 * w + 1.0) / w**2


def secret_projection_epsilon(output_dim: int, norm_floor: float, delta: float) -> float:
    """Privacy of the secret Gaussian projection at the given parameters.

    The release distributions of two neighbours are ``N(0, a^2 I_k)``
    and ``N(0, b^2 I_k)`` with ``r = max(a,b)^2/min(a,b)^2 <=
    _variance_ratio(w)``.  The privacy loss has two one-sided regimes:

    * sampling under the *smaller*-variance world the loss is at most
      ``(k/2) ln r`` deterministically (the quadratic term only
      subtracts);
    * sampling under the *larger*-variance world the loss is
      ``-(k/2) ln r + (r-1)/(2r) Z`` with ``Z ~ chi^2_k``, bounded
      except with probability delta via Laurent-Massart
      ``Z <= k + 2 sqrt(k t) + 2t``, ``t = ln(1/delta)``.

    The guarantee takes the larger of the two.
    """
    if output_dim < 1:
        raise ValueError(f"output_dim must be >= 1, got {output_dim}")
    check_positive(norm_floor, "norm_floor")
    delta = check_probability(delta, "delta")
    r = _variance_ratio(norm_floor)
    t = math.log(1.0 / delta)
    k = float(output_dim)
    chi_tail = k + 2.0 * math.sqrt(k * t) + 2.0 * t
    log_term = 0.5 * k * math.log(r)
    heavy_tail = -log_term + 0.5 * (r - 1.0) / r * chi_tail
    return max(log_term, heavy_tail)


def privacy_loss_samples_secret(
    output_dim: int, norm_x: float, norm_x_prime: float, n_samples: int, rng=None
) -> np.ndarray:
    """Exact privacy-loss samples for the secret Gaussian projection.

    The release under ``x`` is ``N(0, a^2 I_k)`` with ``a^2 =
    ||x||^2/k``; the loss at output ``y`` is
    ``k ln(b/a) + ||y||^2/2 (1/b^2 - 1/a^2)`` — sampled here under the
    ``x`` world so audits can check ``delta(eps)`` empirically.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    generator = prg.as_generator(rng)
    a_sq = norm_x**2 / output_dim
    b_sq = norm_x_prime**2 / output_dim
    y = generator.normal(0.0, math.sqrt(a_sq), size=(n_samples, output_dim))
    y_sq = (y**2).sum(axis=1)
    return 0.5 * output_dim * math.log(b_sq / a_sq) + 0.5 * y_sq * (1.0 / b_sq - 1.0 / a_sq)


def sparsity_attack(release_values: np.ndarray, baseline_nnz: int) -> bool:
    """Upadhyay's observation as a distinguisher.

    For a secret *sparse* projection, ``Sx`` has at most
    ``s * ||x||_0`` non-zero coordinates: the support size leaks
    ``||x||_0``.  The attacker guesses "the input had the larger
    support" iff the release has more than ``baseline_nnz`` non-zeros.
    Against a dense Gaussian projection every coordinate is almost
    surely non-zero regardless of the input, so the attack is blind.
    """
    observed = int(np.count_nonzero(np.asarray(release_values)))
    return observed > baseline_nnz


def attack_advantage(
    make_release,
    x_small_support,
    x_large_support,
    baseline_nnz: int,
    trials: int,
    rng=None,
) -> float:
    """Distinguishing advantage of :func:`sparsity_attack`.

    ``make_release(x, rng)`` must return the released vector.  Returns
    ``P[guess large | large] - P[guess large | small]`` in ``[-1, 1]``;
    any value far from 0 certifies a privacy failure.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    generator = prg.as_generator(rng)
    hits_large = 0
    hits_small = 0
    for _ in range(trials):
        hits_large += sparsity_attack(make_release(x_large_support, generator), baseline_nnz)
        hits_small += sparsity_attack(make_release(x_small_support, generator), baseline_nnz)
    return (hits_large - hits_small) / trials
