"""Closed-form theory from the paper: dimensions, moments and crossovers.

* :mod:`repro.theory.bounds` — optimal output dimension ``k``, SJLT
  sparsity ``s``, FJLT density ``q``, the Note 5 Laplace/Gaussian
  crossover, the Section 7 variance crossovers and the Eq. (5) FJLT
  speed window.
* :mod:`repro.theory.moments` — Note 4 moment formulas for the Laplace
  and Gaussian distributions plus the two-sided geometric used by the
  discrete Laplace mechanism.
* :mod:`repro.theory.jl` — Johnson-Lindenstrauss distortion helpers.
* :mod:`repro.theory.quantisation` — worst-case error envelopes for the
  serving layer's low-precision shard storage, composable with the
  paper's sketch variance.
"""

from repro.theory.bounds import (
    fjlt_density,
    fjlt_speed_window,
    fjlt_time,
    jl_output_dimension,
    laplace_beats_gaussian,
    laplace_beats_gaussian_threshold,
    optimal_output_dimension,
    sjlt_beats_fjlt_threshold,
    sjlt_beats_iid_threshold,
    sjlt_dimensions,
    sjlt_sparsity,
    sjlt_time,
)
from repro.theory.moments import (
    double_factorial,
    gaussian_moment,
    laplace_moment,
    two_sided_geometric_fourth_moment,
    two_sided_geometric_second_moment,
)
from repro.theory.quantisation import (
    accumulation_gamma,
    coordinate_error,
    sq_distance_error_bound,
    sq_norm_error_bound,
)

__all__ = [
    "accumulation_gamma",
    "coordinate_error",
    "double_factorial",
    "fjlt_density",
    "fjlt_speed_window",
    "fjlt_time",
    "gaussian_moment",
    "jl_output_dimension",
    "laplace_beats_gaussian",
    "laplace_beats_gaussian_threshold",
    "laplace_moment",
    "optimal_output_dimension",
    "sjlt_beats_fjlt_threshold",
    "sjlt_beats_iid_threshold",
    "sjlt_dimensions",
    "sjlt_sparsity",
    "sjlt_time",
    "sq_distance_error_bound",
    "sq_norm_error_bound",
    "two_sided_geometric_fourth_moment",
    "two_sided_geometric_second_moment",
]
