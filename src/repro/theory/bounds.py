"""Dimension, sparsity and crossover formulas from the paper.

Asymptotic statements (``Theta``, big-O) carry explicit constants here so
the library is runnable; each constant is documented and overridable.
The *crossover* formulas (Note 5, Section 7) are exact consequences of
the variance expressions and carry no hidden constants.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive, check_unit_range

#: Default constant in ``k = C * alpha^-2 * ln(1/beta)``.  C = 8 matches the
#: standard sub-Gaussian JL proof and keeps empirical failure rates below
#: beta for every transform in this library (validated by EXP-JL).
JL_DIMENSION_CONSTANT: float = 8.0

#: Default constant in ``s = C * alpha^-1 * ln(1/beta)`` (Kane & Nelson
#: give s = Theta(alpha^-1 log(1/beta)); C = 2 reproduces their plots).
SJLT_SPARSITY_CONSTANT: float = 2.0

#: Default constant in the FJLT density ``q = min(C log^2(1/beta)/d, 1)``.
FJLT_DENSITY_CONSTANT: float = 1.0


def jl_output_dimension(alpha: float, beta: float, constant: float = JL_DIMENSION_CONSTANT) -> int:
    """Optimal JL output dimension ``k = Theta(alpha^-2 log(1/beta))``.

    Jayram & Nelson / Kane, Meka & Nelson prove this is optimal and, in
    particular, independent of the input dimension ``d``.
    """
    alpha = check_unit_range(alpha, "alpha")
    beta = check_unit_range(beta, "beta")
    constant = check_positive(constant, "constant")
    return max(1, math.ceil(constant * alpha**-2 * math.log(1.0 / beta)))


def sjlt_sparsity(alpha: float, beta: float, constant: float = SJLT_SPARSITY_CONSTANT) -> int:
    """SJLT column sparsity ``s = O(alpha^-1 log(1/beta))`` (Kane & Nelson)."""
    alpha = check_unit_range(alpha, "alpha")
    beta = check_unit_range(beta, "beta")
    constant = check_positive(constant, "constant")
    return max(1, math.ceil(constant * alpha**-1 * math.log(1.0 / beta)))


def sjlt_dimensions(
    alpha: float,
    beta: float,
    dimension_constant: float = JL_DIMENSION_CONSTANT,
    sparsity_constant: float = SJLT_SPARSITY_CONSTANT,
) -> tuple[int, int]:
    """Return ``(k, s)`` for the SJLT with ``k`` rounded up to a multiple of ``s``.

    The block construction (c) divides the ``k`` output coordinates into
    ``s`` blocks of size ``k/s``, so ``s`` must divide ``k``.
    """
    k = jl_output_dimension(alpha, beta, dimension_constant)
    s = sjlt_sparsity(alpha, beta, sparsity_constant)
    s = min(s, k)
    if k % s:
        k += s - (k % s)
    return k, s


def fjlt_density(d: int, beta: float, constant: float = FJLT_DENSITY_CONSTANT) -> float:
    """FJLT sparse-Gaussian density ``q = min(Theta(log^2(1/beta)/d), 1)``."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    beta = check_unit_range(beta, "beta")
    constant = check_positive(constant, "constant")
    return min(constant * math.log(1.0 / beta) ** 2 / d, 1.0)


# ---------------------------------------------------------------------------
# Crossovers (Note 5 and Section 7).  These are exact, constant-free
# consequences of the variance formulas.
# ---------------------------------------------------------------------------


def laplace_beats_gaussian_threshold(delta1: float, delta2: float) -> float:
    """The delta below which Laplace noise yields lower variance (Eq. 3).

    Laplace wins iff ``Delta_1 < Delta_2 sqrt(ln(1/delta))``, i.e.
    ``delta < exp(-Delta_1^2 / Delta_2^2)``.
    """
    delta1 = check_positive(delta1, "delta1")
    delta2 = check_positive(delta2, "delta2")
    return math.exp(-((delta1 / delta2) ** 2))


def laplace_beats_gaussian(delta: float, delta1: float, delta2: float) -> bool:
    """Whether the Note 5 rule selects Laplace noise at privacy level delta."""
    if delta <= 0:  # pure DP requested: Gaussian cannot deliver it at all
        return True
    return delta < laplace_beats_gaussian_threshold(delta1, delta2)


def sjlt_beats_iid_threshold(s: int) -> float:
    """Section 7: private SJLT (Laplace) beats Kenthapadi iff ``delta < e^-s``."""
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    return math.exp(-float(s))


def sjlt_beats_fjlt_threshold(s: int, k: int, d: int) -> float:
    """Section 7: private SJLT beats private FJLT iff ``delta < e^-O(sk/d)``."""
    if min(s, k, d) < 1:
        raise ValueError("s, k and d must all be >= 1")
    return math.exp(-float(s) * float(k) / float(d))


def fjlt_speed_window(
    alpha: float, beta: float, low_constant: float = 1.0, high_constant: float = 1.0
) -> tuple[float, float]:
    """Eq. (5): the FJLT is faster than the SJLT for ``d`` in this window.

    Returns ``(d_low, d_high)`` with ``d_low = C_lo log^2(1/beta)/alpha``
    and ``d_high = beta^(-C_hi/alpha) = e^(C_hi * s0)`` where ``s0 =
    alpha^-1 log(1/beta)``.
    """
    alpha = check_unit_range(alpha, "alpha")
    beta = check_unit_range(beta, "beta")
    log_term = math.log(1.0 / beta)
    d_low = low_constant * log_term**2 / alpha
    d_high = math.exp(high_constant * log_term / alpha)
    return d_low, d_high


def fjlt_time(d: int, alpha: float, beta: float) -> float:
    """Model cost ``max(d log d, alpha^-2 log^3(1/beta))`` of one FJLT apply."""
    log_term = math.log(1.0 / beta)
    return max(d * math.log2(max(d, 2)), log_term**3 / alpha**2)


def sjlt_time(d: int, alpha: float, beta: float) -> float:
    """Model cost ``s * d`` of one dense SJLT apply."""
    return sjlt_sparsity(alpha, beta) * d


def optimal_output_dimension(max_sq_norm: float, second_moment: float, fourth_moment: float) -> int:
    """Section 6.2.1: variance-minimising ``k* = nu / sqrt(E[eta^4] + E[eta^2]^2)``.

    ``nu`` is an upper bound on ``||x - y||_2^2`` over the input domain.
    """
    max_sq_norm = check_positive(max_sq_norm, "max_sq_norm")
    second_moment = check_positive(second_moment, "second_moment")
    fourth_moment = check_positive(fourth_moment, "fourth_moment")
    return max(1, round(max_sq_norm / math.sqrt(fourth_moment + second_moment**2)))
