"""Johnson-Lindenstrauss distortion helpers (EXP-JL).

The JL lemma: a random projection ``S`` preserves ``||x||^2`` within a
factor ``1 +/- alpha`` with probability at least ``1 - beta``.  These
helpers measure the empirical distortion of any transform factory so the
LPP substrates can be validated against the lemma.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_float_vector, check_unit_range


def distortion(x, projected) -> float:
    """Squared-norm distortion ``||Sx||^2 / ||x||^2`` of one projection."""
    x = as_float_vector(x, "x")
    projected = as_float_vector(projected, "projected")
    denom = float(np.dot(x, x))
    if denom == 0.0:
        raise ValueError("x must be non-zero to measure distortion")
    return float(np.dot(projected, projected)) / denom


def empirical_failure_rate(
    transform_factory,
    x,
    alpha: float,
    trials: int,
    seed: int = 0,
) -> float:
    """Fraction of independent transforms distorting ``||x||^2`` beyond 1 +/- alpha.

    ``transform_factory(seed)`` must return a fresh transform supporting
    ``apply``.  The JL lemma promises this rate is at most ``beta`` when
    ``k >= C alpha^-2 ln(1/beta)``.
    """
    x = as_float_vector(x, "x")
    alpha = check_unit_range(alpha, "alpha")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    failures = 0
    for trial in range(trials):
        transform = transform_factory(seed + trial)
        ratio = distortion(x, transform.apply(x))
        if not (1.0 - alpha) <= ratio <= (1.0 + alpha):
            failures += 1
    return failures / trials


def distortion_samples(transform_factory, x, trials: int, seed: int = 0) -> np.ndarray:
    """Sample ``trials`` squared-norm distortion ratios for vector ``x``."""
    x = as_float_vector(x, "x")
    samples = np.empty(trials, dtype=np.float64)
    for trial in range(trials):
        transform = transform_factory(seed + trial)
        samples[trial] = distortion(x, transform.apply(x))
    return samples
