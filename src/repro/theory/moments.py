"""Moment formulas used throughout the variance analysis.

Note 4 of the paper: for ``L ~ Lap(b)`` and ``G ~ N(0, sigma^2)``,

* ``E[L^n] = n! * b^n`` for even ``n`` (0 for odd ``n``),
* ``E[G^n] = (n-1)!! * sigma^n`` for even ``n`` (0 for odd ``n``).

The two-sided geometric moments back the discrete Laplace mechanism
(Section 2.3.1 cites discrete alternatives to continuous noise).
"""

from __future__ import annotations


def double_factorial(n: int) -> int:
    """Return ``n!! = n * (n-2) * (n-4) * ...`` with ``0!! = (-1)!! = 1``."""
    if n < -1:
        raise ValueError(f"double factorial undefined for n={n}")
    result = 1
    while n > 1:
        result *= n
        n -= 2
    return result


def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def laplace_moment(order: int, scale: float) -> float:
    """Central moment ``E[L^order]`` of ``Lap(scale)`` (Note 4)."""
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if order % 2 == 1:
        return 0.0
    return float(_factorial(order)) * scale**order


def gaussian_moment(order: int, sigma: float) -> float:
    """Central moment ``E[G^order]`` of ``N(0, sigma^2)`` (Note 4)."""
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if order % 2 == 1:
        return 0.0
    return float(double_factorial(order - 1)) * sigma**order


def two_sided_geometric_second_moment(q: float) -> float:
    """``E[X^2]`` for the two-sided geometric with ratio ``q``.

    The distribution has pmf ``P[X=z] = (1-q)/(1+q) * q^|z|`` on the
    integers; it is the discrete analogue of the Laplace distribution
    with scale ``b = -1/ln(q)``.
    """
    _check_ratio(q)
    return 2.0 * q / (1.0 - q) ** 2


def two_sided_geometric_fourth_moment(q: float) -> float:
    """``E[X^4]`` for the two-sided geometric with ratio ``q``.

    Derived from the generating function ``sum z^4 q^z =
    q(1 + 11q + 11q^2 + q^3)/(1-q)^5``.
    """
    _check_ratio(q)
    numerator = 2.0 * q * (1.0 + 11.0 * q + 11.0 * q**2 + q**3)
    return numerator / ((1.0 + q) * (1.0 - q) ** 4)


def _check_ratio(q: float) -> None:
    if not 0.0 < q < 1.0:
        raise ValueError(f"geometric ratio q must lie in (0, 1), got {q}")
