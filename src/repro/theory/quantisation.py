"""Worst-case error envelopes for quantised shard storage.

The serving layer can hold released sketch rows at reduced precision
(``f4`` / ``f2`` / scalar-quantised ``int8`` — see
:mod:`repro.serving.storage`).  The paper's estimators are unbiased
over the *sketch noise*; storage quantisation adds a second, purely
deterministic perturbation on top.  This module gives closed-form,
conservative bounds on that perturbation, asserted coordinate-for-
coordinate by the property suite (``tests/test_quantised_properties.py``).

**Model.**  A stored row ``v`` (float64) decodes to ``v' = v + dv`` with
per-coordinate rounding ``|dv_i| <= e_v`` (:func:`coordinate_error`).
For the float32-scanned specs the query ``u`` is additionally cast down
once inside the distance kernel (``|du_i| <= e_u``) and the inner
products accumulate in float32, with classical summation error at most
``gamma_k = k*eps / (1 - k*eps)`` relative to ``sum |u_i||v'_i|``
(``eps = 2**-24``; any summation tree rounds each product at most ``k``
times, so the bound holds for blocked/SIMD BLAS schedules too).  The
squared norms and the debias correction always accumulate in float64
(`repro.core.estimators.cross_sq_distances_from_parts`), so they only
contribute the quantisation of ``v`` itself.

The served squared-distance estimate therefore differs from the
full-precision one by at most::

    |est_q - est_f8| <=   2*||v||*||dv|| + ||dv||^2              (norm term)
                        + 2*(||du||*(||v||+||dv||) + ||u||*||dv||)  (cross term)
                        + 2*gamma_k*(||u||+||du||)*(||v||+||dv||)   (accumulation)

with ``||dv|| <= sqrt(k)*e_v`` and ``||du|| <= sqrt(k)*e_u``
(:func:`sq_distance_error_bound`).  For ``f8`` storage every term is
zero and the bound collapses to the float64 slack.

**Composition with the paper's sketch variance.**  Quantisation error
is deterministic and bounded, the sketch error is random and unbiased:
the served estimate satisfies
``|est_q - d(x, y)^2| <= |est_f8 - d(x, y)^2| + bound`` — i.e. the
paper's concentration bounds (Lemma 3 / Lemma 8, the variance formulas
of :mod:`repro.theory.moments`) hold for quantised serving after
widening every deviation by the envelope, and the envelope shrinks the
store by 2-8x.  In the intended regime (``f4`` over sketches whose
coordinates are O(1)-scaled) the envelope is orders of magnitude below
one standard deviation of the sketch noise, so ranking quality is
essentially unchanged — the quantised-store benchmark pins recall@10.
"""

from __future__ import annotations

import numpy as np

#: Unit roundoff of float32 / float16 (round-to-nearest half ulp).
EPS_F4 = 2.0 ** -24
EPS_F2 = 2.0 ** -11

#: Absolute rounding floor in the subnormal range, where the relative
#: bound above does not apply (half the smallest subnormal step).
TINY_F4 = 2.0 ** -150
TINY_F2 = 2.0 ** -25

#: Relative slack charged for the float64 arithmetic both paths share
#: (reference and served estimates round at ~2**-53 per operation; this
#: dominates it by orders of magnitude without loosening anything).
F8_SLACK = 1e-12

_FLOAT32_SCANNED = ("f4", "f2", "int8")


def _storage_name(storage) -> str:
    """Accept a :class:`~repro.serving.storage.StorageSpec` or its name."""
    return getattr(storage, "name", storage)


def coordinate_error(storage, max_abs: float, scale: float | None = None) -> float:
    """Worst-case per-coordinate decode error for rows peaking at ``max_abs``.

    ``f4``/``f2`` round each stored coordinate to the nearest
    representable (half-ulp relative error, plus the subnormal floor);
    ``int8`` rounds to the nearest multiple of the shard's ``scale``
    (half a step), plus the float32 rounding of the decode multiply.
    Values must be finite and, for ``f2``, inside its ~6.5e4 range —
    the store enforces the former and the envelope presumes the latter.
    """
    name = _storage_name(storage)
    if name == "f8":
        return 0.0
    if name == "f4":
        return max_abs * EPS_F4 + TINY_F4
    if name == "f2":
        return max_abs * EPS_F2 + TINY_F2
    if name == "int8":
        if scale is None:
            raise ValueError("the int8 envelope needs the shard's scale")
        return 0.5 * scale + max_abs * EPS_F4
    raise ValueError(f"unknown storage spec {storage!r}")


def accumulation_gamma(storage, dim: int) -> float:
    """``gamma_k`` for the kernel's inner-product accumulation.

    Zero for ``f8`` (the float64 path's own rounding rides in the
    shared slack); the classical ``k*eps/(1 - k*eps)`` with float32
    ``eps`` for the float32-scanned specs.
    """
    if _storage_name(storage) == "f8":
        return 0.0
    ke = dim * EPS_F4
    return ke / (1.0 - ke)


def sq_distance_error_bound(
    storage, query: np.ndarray, row: np.ndarray, scale: float | None = None
) -> float:
    """Conservative bound on ``|served estimate - float64 estimate|``.

    ``query`` and ``row`` are the float64 sketch vectors; ``scale`` is
    the storing shard's int8 step (ignored otherwise).  The bound is
    the closed form derived in the module docstring — every factor an
    over-estimate, so it holds coordinate-for-coordinate for any
    rounding the kernel's GEMM actually performs.
    """
    u = np.asarray(query, dtype=np.float64)
    v = np.asarray(row, dtype=np.float64)
    k = v.size
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    e_v = coordinate_error(storage, float(np.max(np.abs(v))) if k else 0.0, scale)
    dv = np.sqrt(k) * e_v
    if _storage_name(storage) in _FLOAT32_SCANNED:
        e_u = (float(np.max(np.abs(u))) if k else 0.0) * EPS_F4 + TINY_F4
    else:
        e_u = 0.0
    du = np.sqrt(k) * e_u
    gamma = accumulation_gamma(storage, k)
    bound = (
        2.0 * norm_v * dv
        + dv * dv
        + 2.0 * (du * (norm_v + dv) + norm_u * dv)
        + 2.0 * gamma * (norm_u + du) * (norm_v + dv)
    )
    slack = F8_SLACK * (norm_u * norm_u + norm_v * norm_v + 2.0 * norm_u * norm_v + 1.0)
    return bound + slack


def sq_norm_error_bound(storage, row: np.ndarray, scale: float | None = None) -> float:
    """Bound on ``| ||v'||^2 - ||v||^2 |`` for a stored row.

    The norms query and the prefilter's cached norms are float64 sums
    over the decoded row, so only the decode perturbation enters:
    ``2*||v||*||dv|| + ||dv||^2`` plus the shared float64 slack.
    """
    v = np.asarray(row, dtype=np.float64)
    k = v.size
    norm_v = float(np.linalg.norm(v))
    e_v = coordinate_error(storage, float(np.max(np.abs(v))) if k else 0.0, scale)
    dv = np.sqrt(k) * e_v
    return 2.0 * norm_v * dv + dv * dv + F8_SLACK * (norm_v * norm_v + 1.0)
