"""EXP-L8 / EXP-C1 — the two private FJLT variants.

* Lemma 8 (input perturbation): ``E_FJLTi = 1/k ||Phi(x+eta) -
  Phi(y+mu)||^2 - 2 d sigma^2`` is unbiased with variance at most
  ``3/k ||z||^4 + O(d^2 sigma^4/k + d sigma^2 ||z||^2)``.
* Corollary 1 (output perturbation): ``E_FJLTo`` is unbiased with
  variance at most ``3/k ||z||^4 + O(k sigma^4 + sigma^2 ||z||^2)``.

We verify unbiasedness, that the bounds hold, and the paper's
qualitative point that input perturbation pays an extra factor of ``d``
in the noise terms (output-perturbation variance is far smaller here,
at the price of the Note 6 sensitivity-initialisation issue).
"""

from __future__ import annotations

import numpy as np

from repro.core.variance import fjlt_input_variance_bound, fjlt_output_variance_bound
from repro.dp.mechanisms import classical_gaussian_sigma
from repro.experiments.harness import Experiment, summarize, trials_for, unbiased
from repro.hashing import prg
from repro.transforms.fjlt import FJLT
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_INPUT_DIM = 256
_OUTPUT_DIM = 64
_DISTANCE = 4.0
_EPSILON = 1.0
_DELTA = 1e-6


class FJLTVarianceExperiment(Experiment):
    id = "EXP-L8"
    title = "Private FJLT: input vs output perturbation"
    paper_reference = "Lemma 8 and Corollary 1"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=200, full=1500)
        rng = prg.derive_rng(seed, "exp-l8")
        x, y = pair_at_distance(_INPUT_DIM, _DISTANCE, rng)
        dist_sq = _DISTANCE**2
        # Both modes have sensitivity (essentially) 1: exactly 1 for the
        # input mode; concentrated near 1 for the normalised FJLT output.
        sigma = classical_gaussian_sigma(1.0, _EPSILON, _DELTA)

        table = Table(
            headers=["mode", "k", "d", "sigma", "mean_est", "z_bias", "emp_var", "bound", "within"],
            title=(
                f"EXP-L8/C1: d={_INPUT_DIM}, k={_OUTPUT_DIM}, eps={_EPSILON}, "
                f"delta={_DELTA:g}, {trials} trials"
            ),
        )
        checks: dict[str, bool] = {}
        results = {}
        for mode in ("input", "output"):
            estimates, density = _monte_carlo(mode, x, y, sigma, trials, rng)
            summary = summarize(estimates, dist_sq)
            if mode == "input":
                bound = fjlt_input_variance_bound(
                    _OUTPUT_DIM, _INPUT_DIM, sigma, dist_sq, density
                )
            else:
                bound = fjlt_output_variance_bound(_OUTPUT_DIM, sigma, dist_sq)
            # allow 5% formula slack plus four standard errors of the
            # Monte-Carlo variance estimate (heavy-tailed estimator)
            centered = estimates - summary["mean"]
            var_se = np.sqrt(
                max(float(np.mean(centered**4)) - summary["var"] ** 2, 0.0) / trials
            )
            within = summary["var"] <= 1.05 * bound + 4.0 * var_se
            table.add_row(
                mode=mode,
                k=_OUTPUT_DIM,
                d=_INPUT_DIM,
                sigma=sigma,
                mean_est=summary["mean"],
                z_bias=summary["z_bias"],
                emp_var=summary["var"],
                bound=bound,
                within=within,
            )
            checks[f"unbiased ({mode})"] = unbiased(summary)
            checks[f"variance bound holds ({mode})"] = within
            results[mode] = summary
        checks["input perturbation pays the factor-d penalty"] = (
            results["input"]["var"] > 3.0 * results["output"]["var"]
        )
        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "output perturbation here fixes sigma from Delta_2 ~= 1 (the "
            "concentrated value); Note 6 discusses the initialisation cost "
            "of making that exact"
        )
        return result


def _monte_carlo(
    mode: str, x: np.ndarray, y: np.ndarray, sigma: float, trials: int, rng: np.random.Generator
) -> tuple[np.ndarray, float]:
    d = x.size
    estimates = np.empty(trials)
    density = 1.0
    for trial in range(trials):
        transform = FJLT(d, _OUTPUT_DIM, seed=int(rng.integers(0, 2**62)))
        density = transform.density
        if mode == "input":
            u = transform.apply(x + rng.normal(0.0, sigma, d))
            v = transform.apply(y + rng.normal(0.0, sigma, d))
            correction = 2.0 * d * sigma**2
        else:
            u = transform.apply(x) + rng.normal(0.0, sigma, _OUTPUT_DIM)
            v = transform.apply(y) + rng.normal(0.0, sigma, _OUTPUT_DIM)
            correction = 2.0 * _OUTPUT_DIM * sigma**2
        diff = u - v
        estimates[trial] = diff @ diff - correction
    return estimates, density
