"""EXP-T3 — Theorem 3: the private SJLT estimator (the paper's main result).

Claims reproduced:

1. ``E_SJLT`` with Laplace ``Lap(sqrt(s)/eps)`` noise is unbiased;
2. its variance obeys the Theorem 3 bound
   ``2/k ||z||^4 + 16 s/eps^2 ||z||^2 + 56 k s^2/eps^4``
   (explicit constants via Lemma 3 + Note 4), and in fact matches the
   *exact* Lemma 3 expression built from the exact SJLT transform
   variance ``2/k (||z||_2^4 - ||z||_4^4)`` (Lemma 10's proof);
3. the sketch is pure epsilon-DP (noise calibrated to the closed-form
   ``Delta_1 = sqrt(s)`` — no initialisation scan needed).

Both Kane-Nelson constructions (block = paper's (c), graph = (b)) are
exercised.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.core.variance import general_variance, sjlt_laplace_variance_bound, sjlt_transform_variance_exact
from repro.experiments.harness import Experiment, summarize, trials_for, unbiased
from repro.hashing import prg
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_INPUT_DIM = 512
_DISTANCE = 4.0
_EPSILON = 1.0


class SJLTVarianceExperiment(Experiment):
    id = "EXP-T3"
    title = "Private SJLT: unbiasedness, exact variance and pure DP"
    paper_reference = "Theorem 3 / Lemma 10 / Section 6.2.3"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=200, full=1500)
        rng = prg.derive_rng(seed, "exp-t3")
        x, y = pair_at_distance(_INPUT_DIM, _DISTANCE, rng)
        z = x - y
        dist_sq = float(z @ z)

        table = Table(
            headers=[
                "construction", "k", "s", "mean_est", "z_bias",
                "emp_var", "exact_var", "ratio", "thm3_bound", "pure_dp",
            ],
            title=f"EXP-T3: d={_INPUT_DIM}, eps={_EPSILON}, ||x-y||^2={dist_sq:g}, {trials} trials",
        )
        checks: dict[str, bool] = {}
        for construction in ("block", "graph"):
            for k, s in ((128, 4), (256, 8)):
                config = SketchConfig(
                    input_dim=_INPUT_DIM,
                    epsilon=_EPSILON,
                    output_dim=k,
                    sparsity=s,
                    sjlt_construction=construction,
                )
                estimates, pure = _monte_carlo(config, x, y, trials, rng)
                summary = summarize(estimates, dist_sq)
                noise_m2 = 2.0 * s / _EPSILON**2
                noise_m4 = 24.0 * s**2 / _EPSILON**4
                exact = general_variance(
                    k, dist_sq, noise_m2, noise_m4, sjlt_transform_variance_exact(k, z)
                )
                bound = sjlt_laplace_variance_bound(k, s, _EPSILON, dist_sq)
                ratio = summary["var"] / exact
                table.add_row(
                    construction=construction,
                    k=k,
                    s=s,
                    mean_est=summary["mean"],
                    z_bias=summary["z_bias"],
                    emp_var=summary["var"],
                    exact_var=exact,
                    ratio=ratio,
                    thm3_bound=bound,
                    pure_dp=pure,
                )
                tag = f"({construction}, k={k}, s={s})"
                checks[f"unbiased {tag}"] = unbiased(summary)
                checks[f"variance matches Lemma 3 exactly {tag}"] = 0.75 < ratio < 1.35
                # The Monte-Carlo variance is itself noisy; allow four of
                # its standard errors (estimated from the fourth central
                # moment) on top of a 5% formula slack.
                centered = estimates - summary["mean"]
                var_se = np.sqrt(
                    max(float(np.mean(centered**4)) - summary["var"] ** 2, 0.0) / trials
                )
                checks[f"Theorem 3 bound holds {tag}"] = (
                    summary["var"] <= 1.05 * bound + 4.0 * var_se
                )
                checks[f"pure epsilon-DP {tag}"] = pure
        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "exact_var combines Lemma 3 with the exact SJLT transform variance "
            "2/k(||z||_2^4 - ||z||_4^4); thm3_bound uses the simpler 2/k ||z||^4"
        )
        return result


def _monte_carlo(
    config: SketchConfig, x: np.ndarray, y: np.ndarray, trials: int, rng: np.random.Generator
) -> tuple[np.ndarray, bool]:
    estimates = np.empty(trials)
    pure = True
    for trial in range(trials):
        sketcher = PrivateSketcher(dataclasses.replace(config, seed=int(rng.integers(0, 2**62))))
        pure = pure and sketcher.guarantee.is_pure and sketcher.noise.name == "laplace"
        sx = sketcher.sketch(x, noise_rng=rng)
        sy = sketcher.sketch(y, noise_rng=rng)
        estimates[trial] = sketcher.estimate_sq_distance(sx, sy)
    return estimates, pure
