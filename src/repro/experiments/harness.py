"""Experiment harness: run one paper claim, print one paper-style table.

The paper has no numbered tables or figures (it is a theory paper), so
each experiment reproduces one *quantitative claim* — a theorem's
variance formula, a crossover, a running-time regime — and reports

* an ascii table with the swept parameters and measured quantities, and
* a set of named boolean *shape checks* (who wins, does the bound hold,
  is the estimator unbiased within Monte-Carlo error) that encode the
  claim being reproduced.

``scale="smoke"`` shrinks trial counts so the whole suite runs in
seconds (used by the benchmark harness); ``scale="full"`` is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.utils.tables import Table

SCALES = ("smoke", "full")


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    paper_reference: str
    table: Table
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every shape check reproduced the paper's claim."""
        return all(self.checks.values())

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   paper reference: {self.paper_reference}",
            "",
            self.table.render(),
            "",
        ]
        for name, ok in self.checks.items():
            lines.append(f"   [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class Experiment(ABC):
    """One reproducible claim.  Subclasses set the metadata class attrs."""

    id: str = "EXP-?"
    title: str = ""
    paper_reference: str = ""

    @abstractmethod
    def run(self, scale: str = "full", seed: int = 0) -> ExperimentResult:
        """Execute and return the table + shape checks."""

    def _result(self, table: Table) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_reference=self.paper_reference,
            table=table,
        )

    @staticmethod
    def _check_scale(scale: str) -> str:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        return scale


def trials_for(scale: str, smoke: int, full: int) -> int:
    """Pick the trial count for the requested scale."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return smoke if scale == "smoke" else full


def summarize(estimates, true_value: float) -> dict:
    """Mean/variance summary of Monte-Carlo estimates against ground truth.

    Returns mean, variance, the standardised bias ``z_bias = (mean -
    true) / stderr(mean)`` (|z| < ~4 is consistent with unbiasedness)
    and the stderr itself.
    """
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.size < 2:
        raise ValueError("need at least two estimates to summarise")
    mean = float(arr.mean())
    var = float(arr.var(ddof=1))
    stderr = float(np.sqrt(var / arr.size))
    z_bias = (mean - true_value) / stderr if stderr > 0 else 0.0
    return {"mean": mean, "var": var, "stderr": stderr, "z_bias": float(z_bias)}


def unbiased(summary: dict, z_threshold: float = 5.0) -> bool:
    """Monte-Carlo consistency check for unbiasedness."""
    return abs(summary["z_bias"]) < z_threshold
