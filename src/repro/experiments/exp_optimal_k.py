"""EXP-OPTK — Section 6.2.1: the variance-minimising output dimension.

Claim reproduced: the Lemma 3 variance, as a function of ``k``, is
minimised at ``k* = ||z||^2 / sqrt(E[eta^4] + E[eta^2]^2)`` — larger
``k`` reduces JL distortion but pays more total noise, so a *finite*
``k`` is optimal in the private setting (unlike the non-private JL
lemma, where more dimensions only help accuracy).

We sweep ``k`` around the predicted optimum, with both the theoretical
curve and a Monte-Carlo estimate, and check the empirical argmin lands
within a factor of ~2 of ``k*``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.variance import general_variance, sjlt_transform_variance_bound
from repro.dp.noise import LaplaceNoise
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.theory.bounds import optimal_output_dimension
from repro.transforms.sjlt import SJLT
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_D = 1024
_S = 4
_EPSILON = 4.0
_DISTANCE = 24.0


class OptimalKExperiment(Experiment):
    id = "EXP-OPTK"
    title = "A finite k minimises the private estimator's variance"
    paper_reference = "Section 6.2.1"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=300, full=2000)
        rng = prg.derive_rng(seed, "exp-optk")
        x, y = pair_at_distance(_D, _DISTANCE, rng)
        dist_sq = _DISTANCE**2

        noise = LaplaceNoise(math.sqrt(_S) / _EPSILON)
        k_star = optimal_output_dimension(dist_sq, noise.second_moment, noise.fourth_moment)
        k_star = max(_S, (k_star // _S) * _S)  # block construction: s | k

        table = Table(
            headers=["k", "theory_var", "emp_var", "is_k_star"],
            title=(
                f"EXP-OPTK: d={_D}, s={_S}, eps={_EPSILON}, ||z||^2={dist_sq:g}, "
                f"predicted k* = {k_star}"
            ),
        )
        checks: dict[str, bool] = {}
        k_values = sorted(
            {max(_S, (int(k_star * f) // _S) * _S) for f in (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)}
        )
        theory, empirical = {}, {}
        for k in k_values:
            theory[k] = general_variance(
                k, dist_sq, noise.second_moment, noise.fourth_moment,
                sjlt_transform_variance_bound(k, dist_sq),
            )
            estimates = np.empty(trials)
            for t in range(trials):
                transform = SJLT(_D, k, _S, seed=int(rng.integers(0, 2**62)))
                u = transform.apply(x) + noise.sample(k, rng)
                v = transform.apply(y) + noise.sample(k, rng)
                estimates[t] = (u - v) @ (u - v) - 2.0 * k * noise.second_moment
            empirical[k] = float(estimates.var(ddof=1))
            table.add_row(k=k, theory_var=theory[k], emp_var=empirical[k], is_k_star=(k == k_star))

        theory_argmin = min(theory, key=theory.get)
        emp_argmin = min(empirical, key=empirical.get)
        checks["theoretical curve minimised at k* (within one grid step)"] = (
            _within_grid_step(theory_argmin, k_star, k_values)
        )
        checks["empirical argmin within ~2x of k*"] = 0.4 <= emp_argmin / k_star <= 2.5
        checks["variance rises again for k >> k* (finite optimum)"] = (
            theory[k_values[-1]] > theory[theory_argmin]
            and empirical[k_values[-1]] > empirical[emp_argmin]
        )
        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "k* trades JL distortion (~1/k) against total noise (~k); the "
            "non-private intuition 'larger k is safer' fails under DP"
        )
        return result


def _within_grid_step(found: int, target: int, grid: list) -> bool:
    grid = sorted(grid)
    idx = grid.index(found)
    neighbours = {grid[max(0, idx - 1)], found, grid[min(len(grid) - 1, idx + 1)]}
    return target in neighbours
