"""EXP-N5 — Note 5 / Eq. (3): the Laplace-vs-Gaussian crossover.

Claim reproduced: for a transform with sensitivities ``Delta_1,
Delta_2``, Laplace noise yields lower estimator variance than Gaussian
noise exactly when ``delta < exp(-Delta_1^2/Delta_2^2)`` — for the SJLT
(``Delta_1 = sqrt(s)``, ``Delta_2 = 1``) this is ``delta < e^-s``.

The Note 5 rule compares the *noise magnitudes* ``m``; the true
variance crossover (computed here by bisection on the exact Lemma 3
formulas) agrees with it up to the constants hidden in the paper's
``O(.)`` — we check ``ln(1/delta*)`` stays within a constant factor of
``s`` across sparsities, and that the rule picks the variance-optimal
noise whenever delta is a factor of 10 away from the crossover.
A Monte-Carlo spot check at one delta on each side confirms the
orderings empirically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanism_choice import choose_noise_name
from repro.core.variance import general_variance, sjlt_transform_variance_bound
from repro.dp.mechanisms import classical_gaussian_sigma
from repro.dp.noise import GaussianNoise, LaplaceNoise
from repro.experiments.harness import Experiment, summarize, trials_for
from repro.hashing import prg
from repro.theory.bounds import laplace_beats_gaussian_threshold
from repro.transforms.sjlt import SJLT
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_EPSILON = 1.0
_DIST_SQ = 16.0
_INPUT_DIM = 512


def _laplace_variance(k: int, s: int) -> float:
    noise = LaplaceNoise(math.sqrt(s) / _EPSILON)
    return general_variance(
        k, _DIST_SQ, noise.second_moment, noise.fourth_moment,
        sjlt_transform_variance_bound(k, _DIST_SQ),
    )


def _gaussian_variance(k: int, delta: float) -> float:
    sigma = classical_gaussian_sigma(1.0, _EPSILON, delta)
    noise = GaussianNoise(sigma)
    return general_variance(
        k, _DIST_SQ, noise.second_moment, noise.fourth_moment,
        sjlt_transform_variance_bound(k, _DIST_SQ),
    )


def variance_crossover_delta(k: int, s: int) -> float:
    """The delta where the exact variances tie (bisection on log delta)."""
    lap = _laplace_variance(k, s)
    low, high = -80.0, math.log(0.49)  # log-delta bracket
    if _gaussian_variance(k, math.exp(high)) > lap:
        return math.exp(high)  # Laplace wins everywhere in range
    for _ in range(200):
        mid = 0.5 * (low + high)
        if _gaussian_variance(k, math.exp(mid)) > lap:
            low = mid
        else:
            high = mid
    return math.exp(0.5 * (low + high))


class CrossoverExperiment(Experiment):
    id = "EXP-N5"
    title = "Laplace beats Gaussian iff delta < e^(-Delta1^2/Delta2^2)"
    paper_reference = "Note 5 / Eq. (3); Section 6.2.3 (delta < e^-s)"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=200, full=1000)
        rng = prg.derive_rng(seed, "exp-n5")

        table = Table(
            headers=[
                "s", "k", "delta", "rule", "var_laplace", "var_gaussian",
                "optimal", "rule_agrees",
            ],
            title=f"EXP-N5: SJLT sensitivities, eps={_EPSILON}, ||z||^2={_DIST_SQ:g}",
        )
        checks: dict[str, bool] = {}
        for s in (4, 8, 16):
            k = 16 * s
            threshold = laplace_beats_gaussian_threshold(math.sqrt(s), 1.0)
            crossover = variance_crossover_delta(k, s)
            checks[f"ln(1/delta*) within 4x of s (s={s})"] = (
                s / 4.0 <= math.log(1.0 / crossover) <= 4.0 * s
            )
            for delta in _delta_grid(s):
                rule = choose_noise_name(math.sqrt(s), 1.0, _EPSILON, delta).noise_name
                var_lap = _laplace_variance(k, s)
                var_gauss = _gaussian_variance(k, delta)
                optimal = "laplace" if var_lap < var_gauss else "gaussian"
                agree = rule == optimal
                table.add_row(
                    s=s, k=k, delta=delta, rule=rule, var_laplace=var_lap,
                    var_gaussian=var_gauss, optimal=optimal, rule_agrees=agree,
                )
                # The rule's threshold e^-s and the exact variance
                # crossover differ by the O(1) constants of Theorem 3;
                # agreement is only promised outside the band they span.
                lo = min(crossover, threshold) / 50.0
                hi = max(crossover, threshold) * 50.0
                if not lo <= delta <= hi:
                    checks[f"rule optimal at delta={delta:g} (s={s})"] = agree
            checks[f"rule threshold e^-s brackets variance crossover (s={s})"] = (
                crossover * 1e-4 <= threshold <= crossover * 1e4
            )

        checks.update(self._monte_carlo_spot_check(trials, rng))
        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "the rule compares noise magnitudes (Note 5); the variance "
            "crossover differs only in the O(1) constants of Theorem 3"
        )
        return result

    def _monte_carlo_spot_check(self, trials: int, rng: np.random.Generator) -> dict[str, bool]:
        """Empirical variance ordering on each side of the crossover."""
        s, k = 8, 128
        x, y = pair_at_distance(_INPUT_DIM, math.sqrt(_DIST_SQ), rng)
        crossover = variance_crossover_delta(k, s)
        out = {}
        for label, delta in (("below", crossover * 1e-4), ("above", min(crossover * 1e4, 0.4))):
            var_lap = _empirical_variance(x, y, k, s, LaplaceNoise(math.sqrt(s) / _EPSILON), trials, rng)
            sigma = classical_gaussian_sigma(1.0, _EPSILON, delta)
            var_gauss = _empirical_variance(x, y, k, s, GaussianNoise(sigma), trials, rng)
            if label == "below":
                out[f"MC: Laplace wins at delta={delta:.2g}"] = var_lap < var_gauss
            else:
                out[f"MC: Gaussian wins at delta={delta:.2g}"] = var_gauss < var_lap
        return out


def _empirical_variance(x, y, k, s, noise, trials, rng) -> float:
    estimates = np.empty(trials)
    for trial in range(trials):
        transform = SJLT(x.size, k, s, seed=int(rng.integers(0, 2**62)))
        u = transform.apply(x) + noise.sample(k, rng)
        v = transform.apply(y) + noise.sample(k, rng)
        diff = u - v
        estimates[trial] = diff @ diff - 2.0 * k * noise.second_moment
    return summarize(estimates, _DIST_SQ)["var"]


def _delta_grid(s: int) -> list[float]:
    """Deltas spanning both sides of e^-s."""
    center = math.exp(-float(s))
    return [min(center * 10.0**shift, 0.4) for shift in (-6, -3, -1, 0, 1, 3, 6)]
