"""EXP-LB — Section 2.4: the sqrt(k) additive-error landscape.

McGregor et al. prove any two-party DP protocol for Hamming distance on
``k``-dimensional binary vectors incurs additive error
``Omega~(sqrt(k))``; randomized response achieves ``O(sqrt(k))``.

Claims reproduced on binary workloads (where squared Euclidean distance
equals Hamming distance):

* the RR estimator's additive error grows as ``~ sqrt(dim)``
  (log-log slope ~ 0.5);
* our private SJLT sketch's error also respects the lower bound (it
  cannot beat ``sqrt(k)``), with its documented dependence on
  ``||x - y||^2`` and ``k`` rather than ``d``;
* the Mir et al. cropped-second-moment local baseline shows the
  ``O_eps(tau sqrt(d))`` error the paper quotes, which our sketch beats
  on sparse inputs (the Section 2.2 comparison).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.mir import CroppedSecondMoment
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.dp.randomized_response import RandomizedResponse
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.utils.tables import Table
from repro.workloads import binary_pair

_EPSILON = 2.0
_S = 4


class LowerBoundExperiment(Experiment):
    id = "EXP-LB"
    title = "Additive error vs the sqrt(k) lower bound (RR and sketches)"
    paper_reference = "Section 2.4 (McGregor et al.); Section 2.2 (Mir et al.)"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=100, full=400)
        rng = prg.derive_rng(seed, "exp-lb")

        table = Table(
            headers=["dim", "hamming", "rr_mae", "sketch_mae", "mir_local_mae", "sqrt_dim"],
            title=f"EXP-LB: binary vectors, eps={_EPSILON}, {trials} trials per row",
        )
        checks: dict[str, bool] = {}
        dims = (64, 256, 1024)
        rr_errors, sketch_errors = {}, {}
        for dim in dims:
            hamming = dim // 8
            x, y = binary_pair(dim, hamming, rng)
            rr = RandomizedResponse(_EPSILON)
            rr_err = np.empty(trials)
            for t in range(trials):
                est = rr.estimate_hamming(rr.randomize(x, rng), rr.randomize(y, rng))
                rr_err[t] = abs(est - hamming)

            config = SketchConfig(
                input_dim=dim, epsilon=_EPSILON, output_dim=max(16, dim // 4), sparsity=_S
            )
            sketch_err = np.empty(trials)
            for t in range(trials):
                sk = PrivateSketcher(
                    SketchConfig(
                        input_dim=dim, epsilon=_EPSILON,
                        output_dim=config.output_dim, sparsity=_S,
                        seed=int(rng.integers(0, 2**62)),
                    )
                )
                est = sk.estimate_sq_distance(sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng))
                sketch_err[t] = abs(est - hamming)

            mir = CroppedSecondMoment(tau=1.0, epsilon=_EPSILON, mode="local")
            mir_err = np.empty(trials)
            diff = np.abs(x - y)
            true_cropped = mir.exact(diff)
            for t in range(trials):
                mir_err[t] = abs(mir.estimate(diff, rng) - true_cropped)

            rr_errors[dim] = float(rr_err.mean())
            sketch_errors[dim] = float(sketch_err.mean())
            table.add_row(
                dim=dim,
                hamming=hamming,
                rr_mae=rr_errors[dim],
                sketch_mae=sketch_errors[dim],
                mir_local_mae=float(mir_err.mean()),
                sqrt_dim=math.sqrt(dim),
            )

        rr_slope = _loglog_slope(dims, [rr_errors[d] for d in dims])
        checks["RR error scales ~ sqrt(dim) (slope in [0.3, 0.7])"] = 0.3 <= rr_slope <= 0.7
        # the lower bound: no protocol beats ~sqrt(k)/eps up to logs; we
        # check our sketch doesn't (impossibly) drop below it.
        for dim in dims:
            k = max(16, dim // 4)
            floor = math.sqrt(k) / (_EPSILON * 20.0)  # generous log slack
            checks[f"sketch error respects Omega~(sqrt(k)) (dim={dim})"] = (
                sketch_errors[dim] >= floor
            )
        result = self._result(table)
        result.checks = checks
        result.notes.append(f"RR log-log error slope vs dim: {rr_slope:.2f} (0.5 expected)")
        result.notes.append(
            "mir_local_mae reproduces the O_eps(tau sqrt(d)) scaling of the "
            "cropped second moment in the local/pan-private regime"
        )
        return result


def _loglog_slope(xs, ys) -> float:
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    return float(np.polyfit(lx, ly, 1)[0])
