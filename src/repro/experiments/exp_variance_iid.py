"""EXP-T2 — Theorem 2: variance of the Kenthapadi et al. estimator.

Claim reproduced: ``E_iid`` is unbiased for ``||x - y||^2`` and

    Var[E_iid] = 2/k ||z||^4 + 8 sigma^2 ||z||^2 + 8 sigma^4 k

*exactly* (not just as a bound).  We sweep ``k`` and ``sigma``, draw a
fresh i.i.d. Gaussian transform and fresh noise per trial (the paper's
setting: sigma fixed independently of the realisation of P), and
compare the Monte-Carlo variance against the formula.
"""

from __future__ import annotations

import numpy as np

from repro.core.variance import kenthapadi_variance
from repro.experiments.harness import Experiment, trials_for, summarize, unbiased
from repro.hashing import prg
from repro.transforms.gaussian import GaussianTransform
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_INPUT_DIM = 256
_DISTANCE = 4.0


class IIDVarianceExperiment(Experiment):
    id = "EXP-T2"
    title = "Kenthapadi et al. estimator: unbiasedness and exact variance"
    paper_reference = "Theorem 2"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=200, full=1500)
        rng = prg.derive_rng(seed, "exp-t2")
        x, y = pair_at_distance(_INPUT_DIM, _DISTANCE, rng)
        dist_sq = _DISTANCE**2

        table = Table(
            headers=["k", "sigma", "mean_est", "z_bias", "emp_var", "theory_var", "ratio"],
            title=f"EXP-T2: d={_INPUT_DIM}, ||x-y||^2={dist_sq:g}, {trials} trials",
        )
        checks: dict[str, bool] = {}
        for k in (64, 128):
            for sigma in (0.5, 1.0):
                estimates = _monte_carlo(x, y, k, sigma, trials, rng)
                summary = summarize(estimates, dist_sq)
                theory = kenthapadi_variance(k, sigma, dist_sq)
                ratio = summary["var"] / theory
                table.add_row(
                    k=k,
                    sigma=sigma,
                    mean_est=summary["mean"],
                    z_bias=summary["z_bias"],
                    emp_var=summary["var"],
                    theory_var=theory,
                    ratio=ratio,
                )
                checks[f"unbiased (k={k}, sigma={sigma})"] = unbiased(summary)
                checks[f"variance matches formula (k={k}, sigma={sigma})"] = 0.7 < ratio < 1.35

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "ratio is empirical/theoretical variance; Theorem 2 is exact, so "
            "ratios concentrate around 1"
        )
        return result


def _monte_carlo(
    x: np.ndarray, y: np.ndarray, k: int, sigma: float, trials: int, rng: np.random.Generator
) -> np.ndarray:
    dim = x.size
    estimates = np.empty(trials)
    for trial in range(trials):
        transform = GaussianTransform(dim, k, seed=int(rng.integers(0, 2**62)))
        u = transform.apply(x) + rng.normal(0.0, sigma, k)
        v = transform.apply(y) + rng.normal(0.0, sigma, k)
        diff = u - v
        estimates[trial] = diff @ diff - 2.0 * k * sigma**2
    return estimates
