"""EXP-JL — the JL guarantee underlying every construction.

Claim reproduced: with ``k = Theta(alpha^-2 log(1/beta))`` every
transform in the library preserves squared norms within ``1 +/- alpha``
with probability at least ``1 - beta`` (JL lemma / Lemma 5 for the
FJLT / Kane-Nelson for the SJLT), and all satisfy LPP (Definition 4)
so the Lemma 3 estimator machinery applies to each.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.theory.bounds import jl_output_dimension, sjlt_dimensions
from repro.theory.jl import distortion_samples
from repro.transforms import create_transform
from repro.utils.tables import Table
from repro.workloads import gaussian_vector, sparse_vector

_ALPHA = 0.25
_BETA = 0.05
_D = 512


class JLQualityExperiment(Experiment):
    id = "EXP-JL"
    title = "All transforms satisfy the (alpha, beta) JL guarantee and LPP"
    paper_reference = "JL lemma; Lemma 5 (FJLT); Section 6.1 (SJLT); Definition 4"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=150, full=1000)
        rng = prg.derive_rng(seed, "exp-jl")
        k, s = sjlt_dimensions(_ALPHA, _BETA)
        k_plain = jl_output_dimension(_ALPHA, _BETA)

        table = Table(
            headers=["transform", "k", "vector", "mean_distortion", "fail_rate", "beta"],
            title=f"EXP-JL: alpha={_ALPHA}, beta={_BETA}, d={_D}, {trials} transforms per row",
        )
        checks: dict[str, bool] = {}
        specs = [
            ("gaussian", k_plain, {}),
            ("achlioptas", k_plain, {}),
            ("dks", k_plain, {"sparsity": min(s, k_plain)}),
            ("sjlt", k, {"sparsity": s}),
            ("fjlt", k_plain, {"beta": _BETA}),
        ]
        vectors = {
            "dense": gaussian_vector(_D, rng),
            "sparse": sparse_vector(_D, max(4, _D // 64), rng),
        }
        for name, dim, kwargs in specs:
            for vec_name, vector in vectors.items():
                def factory(trial_seed, _name=name, _dim=dim, _kw=kwargs):
                    return create_transform(_name, _D, _dim, seed=trial_seed, **_kw)

                samples = distortion_samples(factory, vector, trials, seed=seed)
                fail_rate = float(np.mean((samples < 1 - _ALPHA) | (samples > 1 + _ALPHA)))
                mean = float(samples.mean())
                table.add_row(
                    transform=name,
                    k=dim,
                    vector=vec_name,
                    mean_distortion=mean,
                    fail_rate=fail_rate,
                    beta=_BETA,
                )
                # binomial slack: beta + 3 sqrt(beta/trials)
                slack = _BETA + 3.0 * np.sqrt(_BETA / trials)
                checks[f"failure rate <= beta ({name}, {vec_name})"] = fail_rate <= slack
                checks[f"LPP holds ({name}, {vec_name})"] = (
                    abs(mean - 1.0) < 5.0 * float(samples.std(ddof=1)) / np.sqrt(trials)
                )
        result = self._result(table)
        result.checks = checks
        return result
