"""EXP-SENS — sensitivities: the structural heart of the paper's argument.

Claims reproduced:

* Note 1 / Section 2.1.1: the i.i.d. Gaussian transform's
  ``l2``-sensitivity is only *concentrated* near 1 —
  ``Pr[Delta_2 > 2] <= delta'`` for ``k > 2 ln d + 2 ln(1/delta')`` —
  so exact calibration needs an ``O(dk)`` scan and the "assumed"
  calibration silently fails for some draws (Note 2);
* Section 6.2.3: the SJLT's sensitivities are *deterministic*:
  ``Delta_1 = sqrt(s)`` and ``Delta_2 = 1`` exactly, for both
  constructions — no scan, no failure probability;
* Note 6: the FJLT's ``l2``-sensitivity concentrates around 1 but is
  random, inheriting the same initialisation issue for output
  perturbation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.kenthapadi import KenthapadiSketcher
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.transforms import create_transform, exact_sensitivity
from repro.utils.tables import Table

_D = 256
_K = 64
_S = 8


class SensitivityExperiment(Experiment):
    id = "EXP-SENS"
    title = "Deterministic SJLT sensitivities vs random Gaussian/FJLT ones"
    paper_reference = "Note 1 / Note 2 / Section 2.1.1 / Section 6.2.3 / Note 6"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=50, full=300)
        rng = prg.derive_rng(seed, "exp-sens")

        table = Table(
            headers=[
                "transform", "quantity", "mean", "std", "min", "max", "closed_form_exact",
            ],
            title=f"EXP-SENS: d={_D}, k={_K}, s={_S}, {trials} independent draws",
        )
        checks: dict[str, bool] = {}

        specs = [
            ("sjlt", {"sparsity": _S, "construction": "block"}),
            ("sjlt", {"sparsity": _S, "construction": "graph"}),
            ("gaussian", {}),
            ("fjlt", {}),
        ]
        for name, kwargs in specs:
            label = name if "construction" not in kwargs else f"{name}-{kwargs['construction']}"
            l1_samples = np.empty(trials)
            l2_samples = np.empty(trials)
            closed_exact = True
            for trial in range(trials):
                t = create_transform(name, _D, _K, seed=int(rng.integers(0, 2**62)), **kwargs)
                scan_l1 = exact_sensitivity(t, 1)
                scan_l2 = exact_sensitivity(t, 2)
                l1_samples[trial] = scan_l1
                l2_samples[trial] = scan_l2
                if t.has_closed_form_sensitivity:
                    closed_exact = closed_exact and (
                        math.isclose(t.sensitivity(1), scan_l1, rel_tol=1e-9)
                        and math.isclose(t.sensitivity(2), scan_l2, rel_tol=1e-9)
                    )
            for quantity, samples in (("Delta_1", l1_samples), ("Delta_2", l2_samples)):
                table.add_row(
                    transform=label,
                    quantity=quantity,
                    mean=float(samples.mean()),
                    std=float(samples.std(ddof=1)),
                    min=float(samples.min()),
                    max=float(samples.max()),
                    closed_form_exact=closed_exact if t.has_closed_form_sensitivity else "-",
                )
            if name == "sjlt":
                checks[f"{label}: Delta_1 == sqrt(s) deterministically"] = bool(
                    np.allclose(l1_samples, math.sqrt(_S), rtol=1e-9)
                )
                checks[f"{label}: Delta_2 == 1 deterministically"] = bool(
                    np.allclose(l2_samples, 1.0, rtol=1e-9)
                )
                checks[f"{label}: closed form matches exact scan"] = closed_exact
            else:
                checks[f"{label}: Delta_2 is random (std > 0)"] = float(l2_samples.std()) > 1e-6
                checks[f"{label}: Delta_2 concentrates near 1 (mean in [0.8, 1.6])"] = (
                    0.8 < float(l2_samples.mean()) < 1.6
                )

        checks.update(self._note_2_failure_check(trials, rng))

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "Note 1 tail bound at threshold 2: "
            f"Pr[Delta_2 > 2] <= {_tail_bound():.2e} for the Gaussian transform"
        )
        return result

    def _note_2_failure_check(self, trials: int, rng: np.random.Generator) -> dict[str, bool]:
        """Reproduce Note 2: assumed-sensitivity calibration can fail.

        With an artificially tight assumed bound (below the typical
        draw) the privacy_holds() predicate must fail for some draws,
        while exact mode never fails; with the paper's bound of 2 and a
        reasonable k, failures must be at most the Note 1 tail bound.
        """
        failures_tight = 0
        failures_note1 = 0
        for trial in range(trials):
            seed = int(rng.integers(0, 2**62))
            tight = KenthapadiSketcher(
                _D, _K, epsilon=1.0, delta=1e-6, seed=seed,
                sensitivity_mode="assumed", assumed_bound=1.0,
            )
            failures_tight += not tight.privacy_holds()
            note1 = KenthapadiSketcher(
                _D, _K, epsilon=1.0, delta=1e-6, seed=seed,
                sensitivity_mode="assumed", assumed_bound=2.0,
            )
            failures_note1 += not note1.privacy_holds()
        bound = _tail_bound()
        return {
            "Note 2: assuming Delta_2 <= 1 fails for some draws": failures_tight > 0,
            "Note 1: Pr[Delta_2 > 2] within tail bound": (
                failures_note1 / trials <= max(bound * 5.0, 3.0 / trials)
            ),
        }


def _tail_bound() -> float:
    """Chi-squared + union tail bound on ``Pr[Delta_2 > 2]`` (Note 1)."""
    t_sq = 4.0
    log_tail = 0.5 * _K * (math.log(t_sq) + 1.0 - t_sq)
    return min(1.0, _D * math.exp(log_tail))
