"""EXP-UPD — Theorem 3, item 4: ``O(s)`` streaming updates.

Claims reproduced:

* one ``(index, delta)`` update touches exactly ``s`` sketch
  coordinates, so the per-update cost is independent of both ``k`` and
  ``d`` (we sweep ``k`` at fixed ``s`` and check the cost stays flat
  within noise, while a dense transform's update cost grows with k);
* the streaming sketch is *exactly* the batch sketch of the
  materialised vector (no approximation is introduced by streaming).
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.core.streaming import StreamingSketch
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.utils.tables import Table
from repro.utils.timing import median_runtime
from repro.workloads import UpdateStream, materialize_stream

_D = 4096
_S = 8


class StreamingExperiment(Experiment):
    id = "EXP-UPD"
    title = "Streaming updates cost O(s), independent of k and d"
    paper_reference = "Theorem 3, item 4"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        n_updates = trials_for(scale, smoke=2000, full=20000)
        rng = prg.derive_rng(seed, "exp-upd")

        table = Table(
            headers=["k", "s", "touched_coords", "us_per_update", "dense_us_per_update", "stream_eq_batch"],
            title=f"EXP-UPD: d={_D}, {n_updates} turnstile updates per row",
        )
        checks: dict[str, bool] = {}
        per_update: dict[int, float] = {}
        for k in (64, 256, 1024):
            config = SketchConfig(input_dim=_D, epsilon=1.0, output_dim=k, sparsity=_S)
            sketcher = PrivateSketcher(config)
            stream = UpdateStream(dim=_D, n_updates=n_updates, seed=seed, deletions=0.1)
            events = list(stream)

            streaming = StreamingSketch(sketcher)
            seconds = median_runtime(lambda: _replay(streaming, events), repeats=3, warmup=1)
            per_event = seconds / n_updates
            per_update[k] = per_event

            # dense-transform reference: a coordinate update costs O(k)
            dense_cfg = SketchConfig(
                input_dim=_D, epsilon=1.0, delta=1e-6, transform="achlioptas",
                noise="gaussian", output_dim=k,
            )
            dense = StreamingSketch(PrivateSketcher(dense_cfg))
            dense_events = events[: max(200, n_updates // 20)]
            dense_seconds = median_runtime(lambda: _replay(dense, dense_events), repeats=3)
            dense_per_event = dense_seconds / len(dense_events)

            check_stream = StreamingSketch(sketcher)
            check_stream.consume(events)
            vec = materialize_stream(events, _D)
            equal = bool(
                np.allclose(check_stream.current_projection(), sketcher.project(vec), atol=1e-9)
            )
            table.add_row(
                k=k,
                s=_S,
                touched_coords=sketcher.transform.update_cost,
                us_per_update=per_event * 1e6,
                dense_us_per_update=dense_per_event * 1e6,
                stream_eq_batch=equal,
            )
            checks[f"streaming == batch (k={k})"] = equal
            checks[f"update touches exactly s coords (k={k})"] = (
                sketcher.transform.update_cost == _S
            )

        spread = max(per_update.values()) / min(per_update.values())
        checks["per-update cost flat in k (max/min < 3)"] = spread < 3.0
        largest_k = max(per_update)
        result = self._result(table)
        result.checks = checks
        result.notes.append(
            f"sjlt per-update spread across k: {spread:.2f}x "
            f"(a dense transform pays O(k): see dense_us_per_update at k={largest_k})"
        )
        return result


def _replay(streaming: StreamingSketch, events) -> None:
    for index, delta in events:
        streaming.update(index, delta)
