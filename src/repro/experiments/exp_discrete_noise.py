"""EXP-DISC — Section 2.3.1: discrete noise as a floating-point-safe drop-in.

Claims reproduced (from the works the paper cites):

* the discrete Gaussian of Canonne-Kamath-Steinke has variance *at
  most* that of the continuous Gaussian with the same sigma (their
  Corollary; "identical or slightly better utility");
* the discrete Laplace (two-sided geometric) matches the continuous
  Laplace's moments as the scale grows (the ``(1 + O(1/scale))``
  discretisation overhead quoted from [20]);
* plugged into the Lemma 3 estimator, both discrete distributions keep
  it unbiased — the library's moment bookkeeping, not just the
  continuous special case, is correct.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.dp.noise import (
    DiscreteGaussianNoise,
    DiscreteLaplaceNoise,
    GaussianNoise,
    LaplaceNoise,
)
from repro.experiments.harness import Experiment, summarize, trials_for, unbiased
from repro.hashing import prg
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_D = 256
_K = 64
_S = 4


class DiscreteNoiseExperiment(Experiment):
    id = "EXP-DISC"
    title = "Discrete Laplace/Gaussian: utility matches continuous noise"
    paper_reference = "Section 2.3.1 (Mironov; Google; Canonne et al.)"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=200, full=1200)
        rng = prg.derive_rng(seed, "exp-disc")

        table = Table(
            headers=["pair", "scale_param", "continuous_m2", "discrete_m2", "m2_ratio"],
            title="EXP-DISC: second moments, discrete vs continuous",
        )
        checks: dict[str, bool] = {}
        for sigma in (0.8, 2.0, 5.0):
            cont = GaussianNoise(sigma)
            disc = DiscreteGaussianNoise(sigma)
            ratio = disc.second_moment / cont.second_moment
            table.add_row(
                pair="gaussian", scale_param=sigma,
                continuous_m2=cont.second_moment, discrete_m2=disc.second_moment,
                m2_ratio=ratio,
            )
            checks[f"discrete Gaussian variance <= continuous (sigma={sigma})"] = (
                disc.second_moment <= cont.second_moment * (1.0 + 1e-9)
            )
        for scale_param in (1.0, 3.0, 10.0):
            cont = LaplaceNoise(scale_param)
            disc = DiscreteLaplaceNoise(scale_param)
            ratio = disc.second_moment / cont.second_moment
            table.add_row(
                pair="laplace", scale_param=scale_param,
                continuous_m2=cont.second_moment, discrete_m2=disc.second_moment,
                m2_ratio=ratio,
            )
            checks[f"discrete Laplace m2 within 30% of continuous (b={scale_param})"] = (
                0.7 <= ratio <= 1.3
            )

        # Estimator unbiasedness with discrete noise end to end.
        x, y = pair_at_distance(_D, 4.0, rng)
        for noise_name in ("discrete_laplace", "discrete_gaussian"):
            delta = 0.0 if noise_name == "discrete_laplace" else 1e-6
            estimates = np.empty(trials)
            for t in range(trials):
                sk = PrivateSketcher(
                    SketchConfig(
                        input_dim=_D, epsilon=1.0, delta=delta, output_dim=_K,
                        sparsity=_S, noise=noise_name, seed=int(rng.integers(0, 2**62)),
                    )
                )
                estimates[t] = sk.estimate_sq_distance(
                    sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
                )
            summary = summarize(estimates, 16.0)
            checks[f"estimator unbiased with {noise_name}"] = unbiased(summary)

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "m2_ratio -> 1 as the scale grows: the discretisation overhead "
            "vanishes, matching the (1 + (1+2/eps)/2^k) bound quoted in 2.3.1"
        )
        return result
