"""Registry mapping experiment IDs to their implementations.

The IDs follow DESIGN.md's per-experiment index; each maps to one claim
in the paper.  ``run_experiment`` is the single entry point used by the
CLI, the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.exp_audit import AuditExperiment
from repro.experiments.exp_comparison import ComparisonExperiment
from repro.experiments.exp_crossover_note5 import CrossoverExperiment
from repro.experiments.exp_discrete_noise import DiscreteNoiseExperiment
from repro.experiments.exp_inner_product import InnerProductExperiment
from repro.experiments.exp_jl_quality import JLQualityExperiment
from repro.experiments.exp_lower_bound import LowerBoundExperiment
from repro.experiments.exp_optimal_k import OptimalKExperiment
from repro.experiments.exp_secret_projection import SecretProjectionExperiment
from repro.experiments.exp_sensitivity import SensitivityExperiment
from repro.experiments.exp_streaming import StreamingExperiment
from repro.experiments.exp_timing import TimingExperiment
from repro.experiments.exp_variance_fjlt import FJLTVarianceExperiment
from repro.experiments.exp_variance_iid import IIDVarianceExperiment
from repro.experiments.exp_variance_sjlt import SJLTVarianceExperiment
from repro.experiments.harness import Experiment, ExperimentResult

EXPERIMENTS: dict[str, type[Experiment]] = {
    cls.id: cls
    for cls in (
        IIDVarianceExperiment,
        SJLTVarianceExperiment,
        FJLTVarianceExperiment,
        CrossoverExperiment,
        ComparisonExperiment,
        TimingExperiment,
        StreamingExperiment,
        JLQualityExperiment,
        SensitivityExperiment,
        LowerBoundExperiment,
        DiscreteNoiseExperiment,
        AuditExperiment,
        OptimalKExperiment,
        SecretProjectionExperiment,
        InnerProductExperiment,
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Instantiate an experiment by ID (case-insensitive)."""
    key = experiment_id.upper()
    try:
        return EXPERIMENTS[key]()
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Run one experiment end to end."""
    return get_experiment(experiment_id).run(scale=scale, seed=seed)


def run_all(scale: str = "full", seed: int = 0) -> list[ExperimentResult]:
    """Run every registered experiment in ID order."""
    return [run_experiment(eid, scale=scale, seed=seed) for eid in sorted(EXPERIMENTS)]
