"""EXP-S7-VAR — Section 7: variance comparison of the three methods.

Claims reproduced (with the paper's exact-constant variance formulas,
which EXP-T2/T3/L8 validate against Monte-Carlo):

* the private SJLT (Laplace) beats the Kenthapadi i.i.d. estimator
  exactly in the small-delta regime ``delta < e^-Theta(s)``;
* the i.i.d. estimator always beats the input-perturbed FJLT
  (the FJLT's noise terms carry factors of ``d`` and ``k < d``);
* the SJLT-vs-FJLT variance crossover sits at
  ``delta ~ e^-O(sk/d)`` (Section 7's final comparison).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.variance import (
    fjlt_input_variance_bound,
    kenthapadi_variance,
    sjlt_laplace_variance_bound,
)
from repro.dp.mechanisms import classical_gaussian_sigma
from repro.dp.noise import LaplaceNoise
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.theory.bounds import fjlt_density, sjlt_beats_fjlt_threshold, sjlt_beats_iid_threshold
from repro.transforms.gaussian import GaussianTransform
from repro.transforms.sjlt import SJLT
from repro.utils.tables import Table
from repro.workloads import pair_at_distance

_EPSILON = 1.0
_DIST_SQ = 16.0
_D = 256
_K = 64
_S = 8


class ComparisonExperiment(Experiment):
    id = "EXP-S7-VAR"
    title = "Section 7 variance ordering: SJLT vs i.i.d. vs FJLT"
    paper_reference = "Section 7 (variance comparison)"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=150, full=600)
        rng = prg.derive_rng(seed, "exp-s7-var")
        density = fjlt_density(_D, 0.05)

        table = Table(
            headers=["delta", "sjlt_laplace", "iid_gaussian", "fjlt_input", "winner"],
            title=(
                f"EXP-S7-VAR: d={_D}, k={_K}, s={_S}, eps={_EPSILON}, "
                f"||z||^2={_DIST_SQ:g} (theoretical variances)"
            ),
        )
        checks: dict[str, bool] = {}
        sjlt_var = sjlt_laplace_variance_bound(_K, _S, _EPSILON, _DIST_SQ)
        rows = {}
        for exponent in (-1, -2, -3, -4, -6, -9, -12, -15):
            delta = 10.0**exponent
            sigma = classical_gaussian_sigma(1.0, _EPSILON, delta)
            iid_var = kenthapadi_variance(_K, sigma, _DIST_SQ)
            fjlt_var = fjlt_input_variance_bound(_K, _D, sigma, _DIST_SQ, density)
            variances = {"sjlt": sjlt_var, "iid": iid_var, "fjlt": fjlt_var}
            winner = min(variances, key=variances.get)
            rows[delta] = variances
            table.add_row(
                delta=delta,
                sjlt_laplace=sjlt_var,
                iid_gaussian=iid_var,
                fjlt_input=fjlt_var,
                winner=winner,
            )

        iid_threshold = sjlt_beats_iid_threshold(_S)
        fjlt_threshold = sjlt_beats_fjlt_threshold(_S, _K, _D)
        checks["iid always beats fjlt-input (k < d)"] = all(
            v["iid"] < v["fjlt"] for v in rows.values()
        )
        checks[f"sjlt beats iid for delta << e^-s ({iid_threshold:.2g})"] = all(
            rows[d]["sjlt"] < rows[d]["iid"] for d in rows if d < iid_threshold * 1e-2
        )
        checks["iid beats sjlt at large delta (delta = 0.1)"] = rows[0.1]["iid"] < rows[0.1]["sjlt"]
        checks["sjlt-vs-iid ordering flips across the sweep"] = (
            len({rows[d]["sjlt"] < rows[d]["iid"] for d in rows}) == 2
        )
        checks.update(self._monte_carlo_spot_check(trials, rng))

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            f"predicted thresholds: sjlt-beats-iid at e^-s = {iid_threshold:.2g}, "
            f"sjlt-beats-fjlt at e^-(sk/d) = {fjlt_threshold:.2g}"
        )
        result.notes.append(
            "variance formulas are the exact-constant versions validated "
            "against Monte-Carlo in EXP-T2/EXP-T3/EXP-L8"
        )
        return result

    def _monte_carlo_spot_check(self, trials: int, rng: np.random.Generator) -> dict[str, bool]:
        """Confirm the sjlt-vs-iid flip empirically at one delta per side."""
        x, y = pair_at_distance(_D, math.sqrt(_DIST_SQ), rng)
        noise = LaplaceNoise(math.sqrt(_S) / _EPSILON)
        sjlt_est = np.empty(trials)
        for trial in range(trials):
            t = SJLT(_D, _K, _S, seed=int(rng.integers(0, 2**62)))
            u = t.apply(x) + noise.sample(_K, rng)
            v = t.apply(y) + noise.sample(_K, rng)
            sjlt_est[trial] = (u - v) @ (u - v) - 2.0 * _K * noise.second_moment
        out = {}
        for label, delta in (("small delta", 1e-12), ("large delta", 0.1)):
            sigma = classical_gaussian_sigma(1.0, _EPSILON, delta)
            iid_est = np.empty(trials)
            for trial in range(trials):
                t = GaussianTransform(_D, _K, seed=int(rng.integers(0, 2**62)))
                u = t.apply(x) + rng.normal(0.0, sigma, _K)
                v = t.apply(y) + rng.normal(0.0, sigma, _K)
                iid_est[trial] = (u - v) @ (u - v) - 2.0 * _K * sigma**2
            sjlt_wins = sjlt_est.var(ddof=1) < iid_est.var(ddof=1)
            if label == "small delta":
                out[f"MC: sjlt beats iid at delta={delta:g}"] = sjlt_wins
            else:
                out[f"MC: iid beats sjlt at delta={delta:g}"] = not sjlt_wins
        return out
