"""Experiment harness reproducing every quantitative claim in the paper.

See DESIGN.md section 3 for the experiment index and
``python -m repro.experiments list`` for the runnable inventory.
"""

from repro.experiments.harness import Experiment, ExperimentResult, summarize, trials_for, unbiased
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "run_all",
    "run_experiment",
    "summarize",
    "trials_for",
    "unbiased",
]
