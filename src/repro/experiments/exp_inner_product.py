"""EXP-IP — inner products and norms from the same sketches (extension).

Definition 4's note: any LPP transform preserves inner products via the
polarization identity, so the sketches built for distances also answer
``<x, y>`` and ``||x||^2`` queries.  The paper states this in passing;
we verify it quantitatively and validate our explicit-constant variance
bound for the inner-product estimator
(:func:`repro.core.variance.inner_product_variance_bound`):

* ``<u, v>`` is unbiased for ``<x, y>`` with **no correction term**
  (the independent noises are orthogonal in expectation);
* ``||u||^2 - k E[eta^2]`` is unbiased for ``||x||^2``;
* empirical variances stay below the bound across geometry regimes
  (orthogonal, correlated, antipodal pairs).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.core.variance import inner_product_variance_bound
from repro.experiments.harness import Experiment, summarize, trials_for, unbiased
from repro.hashing import prg
from repro.utils.tables import Table
from repro.workloads import unit_vector

_D = 256
_K = 64
_S = 4
_EPSILON = 2.0


class InnerProductExperiment(Experiment):
    id = "EXP-IP"
    title = "Inner-product and norm estimation from distance sketches"
    paper_reference = "Definition 4 (LPP implies inner products); extension"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=300, full=1500)
        rng = prg.derive_rng(seed, "exp-ip")
        config = SketchConfig(input_dim=_D, epsilon=_EPSILON, output_dim=_K, sparsity=_S)

        table = Table(
            headers=["pair", "true_ip", "mean_est", "z_bias", "emp_var", "bound", "within"],
            title=f"EXP-IP: d={_D}, k={_K}, eps={_EPSILON}, {trials} trials",
        )
        checks: dict[str, bool] = {}

        base = 4.0 * unit_vector(_D, rng)
        pairs = {
            "orthogonal": (base, 4.0 * _orthogonal_to(base, rng)),
            "correlated": (base, 0.5 * base + 2.0 * _orthogonal_to(base, rng)),
            "antipodal": (base, -base),
        }
        for name, (x, y) in pairs.items():
            true_ip = float(x @ y)
            values = np.empty(trials)
            for t in range(trials):
                sk = PrivateSketcher(
                    dataclasses.replace(config, seed=int(rng.integers(0, 2**62)))
                )
                values[t] = estimators.estimate_inner_product(
                    sk.sketch(x, noise_rng=rng), sk.sketch(y, noise_rng=rng)
                )
            summary = summarize(values, true_ip)
            reference = PrivateSketcher(config)
            bound = inner_product_variance_bound(
                _K, float(x @ x), float(y @ y), true_ip, reference.noise.second_moment
            )
            centered = values - summary["mean"]
            var_se = np.sqrt(
                max(float(np.mean(centered**4)) - summary["var"] ** 2, 0.0) / trials
            )
            within = summary["var"] <= 1.05 * bound + 4.0 * var_se
            table.add_row(
                pair=name,
                true_ip=true_ip,
                mean_est=summary["mean"],
                z_bias=summary["z_bias"],
                emp_var=summary["var"],
                bound=bound,
                within=within,
            )
            checks[f"inner product unbiased ({name})"] = unbiased(summary)
            checks[f"variance bound holds ({name})"] = within

        # norm estimation through the same machinery
        norm_values = np.empty(trials)
        x = pairs["correlated"][0]
        for t in range(trials):
            sk = PrivateSketcher(dataclasses.replace(config, seed=int(rng.integers(0, 2**62))))
            norm_values[t] = estimators.estimate_sq_norm(sk.sketch(x, noise_rng=rng))
        norm_summary = summarize(norm_values, float(x @ x))
        checks["squared norm unbiased"] = unbiased(norm_summary)

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "no bias correction is needed for <u, v>: the independent "
            "zero-mean noises vanish in expectation"
        )
        return result


def _orthogonal_to(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    v = unit_vector(x.size, rng)
    v = v - (v @ x) / (x @ x) * x
    return v / np.linalg.norm(v)
