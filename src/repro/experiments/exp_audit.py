"""EXP-AUDIT — Definitions 1-2: the sketches deliver their claimed privacy.

A white-box likelihood-ratio audit (:mod:`repro.dp.audit`) samples the
privacy-loss random variable at the *worst-case* neighbouring pair (the
transform column of maximum norm).  Claims checked:

* the SJLT + Laplace sketch is pure epsilon-DP: the loss never exceeds
  epsilon, and at the worst-case neighbour it *touches* epsilon (the
  calibration is tight — Lemma 1 with ``Delta_1 = sqrt(s)`` exactly);
* the Gaussian-calibrated sketches satisfy their ``(eps, delta)`` claim
  (Monte-Carlo ``delta(eps)`` below the claimed delta);
* the audit has power: an undercalibrated mechanism (noise scaled for
  half the true sensitivity) is caught.
"""

from __future__ import annotations

from repro.dp.audit import audit_mechanism
from repro.dp.mechanisms import classical_gaussian_sigma
from repro.dp.noise import GaussianNoise, LaplaceNoise
from repro.dp.sensitivity import worst_case_neighbors
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.transforms import create_transform
from repro.utils.tables import Table

_D = 256
_K = 64
_S = 8
_EPSILON = 1.0
_DELTA = 1e-4


class AuditExperiment(Experiment):
    id = "EXP-AUDIT"
    title = "Privacy-loss audit at worst-case neighbours"
    paper_reference = "Definitions 1-2; Lemmas 1-2; Section 6.2.3"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        n_samples = trials_for(scale, smoke=20000, full=200000)
        rng = prg.derive_rng(seed, "exp-audit")

        table = Table(
            headers=["mechanism", "eps", "delta", "max_loss", "delta_at_eps", "passed"],
            title=f"EXP-AUDIT: worst-case neighbours, {n_samples} loss samples each",
        )
        checks: dict[str, bool] = {}

        # 1) SJLT + Laplace (the paper's main mechanism): pure DP, tight.
        sjlt = create_transform("sjlt", _D, _K, seed=seed, sparsity=_S)
        x, x_prime = worst_case_neighbors(sjlt, p=1)
        shift = sjlt.apply(x_prime) - sjlt.apply(x)
        laplace = LaplaceNoise(sjlt.sensitivity(1) / _EPSILON)
        res = audit_mechanism(laplace, shift, _EPSILON, 0.0, n_samples, rng)
        table.add_row(
            mechanism="sjlt+laplace", eps=_EPSILON, delta=0.0,
            max_loss=res.max_loss, delta_at_eps=res.delta_at_epsilon, passed=res.passed,
        )
        checks["sjlt+laplace: loss never exceeds eps (pure DP)"] = res.passed
        checks["sjlt+laplace: calibration tight (max loss > 0.9 eps)"] = (
            res.max_loss > 0.9 * _EPSILON
        )

        # 2) Gaussian on the iid transform with exact sensitivity.
        gauss_t = create_transform("gaussian", _D, _K, seed=seed)
        gx, gx_prime = worst_case_neighbors(gauss_t, p=2)
        gshift = gauss_t.apply(gx_prime) - gauss_t.apply(gx)
        sigma = classical_gaussian_sigma(gauss_t.sensitivity(2), _EPSILON, _DELTA)
        gres = audit_mechanism(GaussianNoise(sigma), gshift, _EPSILON, _DELTA, n_samples, rng)
        table.add_row(
            mechanism="iid+gaussian", eps=_EPSILON, delta=_DELTA,
            max_loss=gres.max_loss, delta_at_eps=gres.delta_at_epsilon, passed=gres.passed,
        )
        checks["iid+gaussian: delta(eps) below claimed delta"] = gres.passed

        # 3) Audit power: undercalibrated noise must FAIL.
        under = LaplaceNoise(sjlt.sensitivity(1) / (2.0 * _EPSILON))  # half the scale
        ures = audit_mechanism(under, shift, _EPSILON, 0.0, n_samples, rng)
        table.add_row(
            mechanism="sjlt+laplace (undercalibrated)", eps=_EPSILON, delta=0.0,
            max_loss=ures.max_loss, delta_at_eps=ures.delta_at_epsilon, passed=ures.passed,
        )
        checks["audit catches undercalibrated noise"] = not ures.passed

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "the worst-case pair differs in the transform column of maximal "
            "norm (Definition 3 / Note 3)"
        )
        return result
