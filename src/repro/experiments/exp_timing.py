"""EXP-S7-TIME — Section 7 / Eq. (5): running-time regimes.

Claims reproduced:

* sketch time: the FJLT costs ``O(max(d log d, alpha^-2 log^3(1/beta)))``
  per apply while the SJLT costs ``O(s d)`` on dense inputs, so the
  FJLT wins for ``d`` above ``~ log^2(1/beta)/alpha`` (Eq. 5's window);
* the i.i.d. Gaussian transform costs ``O(k d)`` per apply *and* needs
  an ``O(dk)`` exact-sensitivity initialisation (Section 2.1.1) that
  the SJLT avoids entirely (closed-form sensitivities);
* on sparse inputs the SJLT's ``O(s ||x||_0 + k)`` path is far cheaper
  than any dense apply (Theorem 3, item 5).

Timing shape checks are deliberately coarse (factor-level) so they are
robust to machine noise.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.theory.bounds import fjlt_speed_window
from repro.transforms.fjlt import FJLT
from repro.transforms.gaussian import GaussianTransform
from repro.transforms.sjlt import SJLT
from repro.utils.tables import Table
from repro.utils.timing import Timer, median_runtime

_ALPHA = 0.125
_BETA = 0.05
_K = 1536  # = 8 * alpha^-2 * ln(1/beta), rounded to a multiple of s
_S = 48  # = 2 * alpha^-1 * ln(1/beta)
_SPARSE_NNZ = 64
#: The i.i.d. Gaussian transform is materialised as a dense k x d matrix;
#: beyond this d it is impractical on a laptop (itself a paper point).
_GAUSSIAN_MAX_D = 1 << 12


class TimingExperiment(Experiment):
    id = "EXP-S7-TIME"
    title = "Running-time regimes: SJLT vs FJLT vs i.i.d. Gaussian"
    paper_reference = "Section 7 / Eq. (5); Theorem 3 items 4-5; Section 2.1.1"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        repeats = trials_for(scale, smoke=3, full=9)
        max_power = trials_for(scale, smoke=12, full=15)
        rng = prg.derive_rng(seed, "exp-s7-time")

        d_low, d_high = fjlt_speed_window(_ALPHA, _BETA)
        table = Table(
            headers=[
                "d", "sjlt_apply_ms", "fjlt_apply_ms", "gauss_apply_ms",
                "sjlt_sparse_ms", "gauss_init_ms", "fastest_dense",
            ],
            title=(
                f"EXP-S7-TIME: k={_K}, s={_S} (alpha={_ALPHA}, beta={_BETA}); "
                f"Eq.(5) window ~ ({d_low:.0f}, {d_high:.2g})"
            ),
        )
        checks: dict[str, bool] = {}
        measurements: dict[int, dict[str, float]] = {}
        for power in range(8, max_power + 1):
            d = 1 << power
            row = self._measure(d, repeats, rng)
            measurements[d] = row
            fastest = min(
                (name for name in ("sjlt", "fjlt", "gauss") if row.get(name) is not None),
                key=lambda name: row[name],
            )
            table.add_row(
                d=d,
                sjlt_apply_ms=row["sjlt"] * 1e3,
                fjlt_apply_ms=row["fjlt"] * 1e3,
                gauss_apply_ms=row["gauss"] * 1e3 if row["gauss"] is not None else "-",
                sjlt_sparse_ms=row["sjlt_sparse"] * 1e3,
                gauss_init_ms=row["gauss_init"] * 1e3 if row["gauss_init"] is not None else "-",
                fastest_dense=fastest,
            )

        d_max = max(measurements)
        d_min = min(measurements)
        largest = measurements[d_max]
        checks["fjlt beats sjlt at the top of the d sweep (inside Eq.5 window)"] = (
            largest["fjlt"] < largest["sjlt"]
        )
        gauss_ds = [d for d, row in measurements.items() if row["gauss"] is not None]
        d_gauss = max(gauss_ds)
        checks["sparse transforms beat the iid Gaussian at large d"] = (
            measurements[d_gauss]["sjlt"] < measurements[d_gauss]["gauss"]
            and measurements[d_gauss]["fjlt"] < measurements[d_gauss]["gauss"]
        )
        checks["sjlt sparse-input apply beats every dense apply at large d"] = (
            largest["sjlt_sparse"] < min(largest["sjlt"], largest["fjlt"])
        )
        init_small = measurements[d_min]["gauss_init"]
        init_large = measurements[d_gauss]["gauss_init"]
        checks["gaussian O(dk) init cost grows with d"] = (
            init_large > init_small * (d_gauss / d_min) * 0.2
        )
        checks["sjlt apply scales ~linearly in d (O(sd))"] = (
            measurements[d_max]["sjlt"] > measurements[d_min]["sjlt"] * (d_max / d_min) * 0.05
        )

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "gauss columns stop at d=2^12: the dense k x d matrix alone is "
            f"{_K * _GAUSSIAN_MAX_D * 8 / 2**20:.0f} MiB there — the practicality "
            "gap the paper's sparsity argument is about"
        )
        result.notes.append(f"sparse input has {_SPARSE_NNZ} non-zeros; sjlt path is O(s*nnz + k)")
        return result

    def _measure(self, d: int, repeats: int, rng: np.random.Generator) -> dict:
        x = rng.standard_normal(d)
        sparse_idx = rng.choice(d, size=min(_SPARSE_NNZ, d), replace=False)
        sparse_val = rng.standard_normal(sparse_idx.size)
        seed = int(rng.integers(0, 2**62))

        sjlt = SJLT(d, _K, _S, seed=seed)
        fjlt = FJLT(d, _K, seed=seed, beta=_BETA)
        row: dict[str, float | None] = {
            "sjlt": median_runtime(lambda: sjlt.apply(x), repeats=repeats),
            "fjlt": median_runtime(lambda: fjlt.apply(x), repeats=repeats),
            "sjlt_sparse": median_runtime(
                lambda: sjlt.apply_sparse(sparse_idx, sparse_val), repeats=repeats
            ),
        }
        if d <= _GAUSSIAN_MAX_D:
            gauss = GaussianTransform(d, _K, seed=seed)
            row["gauss"] = median_runtime(lambda: gauss.apply(x), repeats=repeats)
            with Timer() as timer:
                gauss.sensitivity(2)
            row["gauss_init"] = timer.elapsed
        else:
            row["gauss"] = None
            row["gauss_init"] = None
        return row
