"""CLI for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run EXP-T3 [--scale smoke] [--seed 7]
    python -m repro.experiments all [--scale full]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment IDs")

    run = sub.add_parser("run", help="run one or more experiments by ID")
    run.add_argument("ids", nargs="+", help="experiment IDs, e.g. EXP-T3")
    run.add_argument("--scale", choices=("smoke", "full"), default="full")
    run.add_argument("--seed", type=int, default=0)

    allp = sub.add_parser("all", help="run every experiment")
    allp.add_argument("--scale", choices=("smoke", "full"), default="full")
    allp.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for eid in sorted(EXPERIMENTS):
            cls = EXPERIMENTS[eid]
            print(f"{eid:14s} {cls.title}  [{cls.paper_reference}]")
        return 0

    if args.command == "run":
        results = [run_experiment(eid, scale=args.scale, seed=args.seed) for eid in args.ids]
    else:
        results = run_all(scale=args.scale, seed=args.seed)

    failures = 0
    for result in results:
        print(result.render())
        print()
        if not result.passed:
            failures += 1
    print(f"{len(results) - failures}/{len(results)} experiments reproduced their claims")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
