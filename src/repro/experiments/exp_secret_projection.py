"""EXP-SECRET — Section 2.3: secret projections, their power and limits.

Claims reproduced:

* **Blocki et al.**: with a *secret* i.i.d. Gaussian projection, the
  release ``Sx`` is (eps, delta)-DP with **no additive noise**, so the
  norm estimate enjoys raw JL accuracy — far below any noisy public
  sketch's variance (why the central model is easier, and why the
  paper's distributed setting cannot use it);
* the guarantee needs the ``||x|| >= w`` norm floor, and the claimed
  epsilon survives an exact privacy-loss audit at the worst-case
  neighbour ``x = w e_1`` vs ``x' = (w+1) e_1``;
* **Upadhyay**: the same trick with a secret *sparse* projection fails
  — a support-counting distinguisher attains near-perfect advantage,
  while it is blind against the dense Gaussian projection.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import PrivateSketcher, SketchConfig
from repro.dp.audit import delta_at_epsilon
from repro.dp.secret_projection import (
    SecretGaussianProjection,
    attack_advantage,
    privacy_loss_samples_secret,
)
from repro.experiments.harness import Experiment, trials_for
from repro.hashing import prg
from repro.transforms.sjlt import SJLT
from repro.utils.tables import Table

_D = 256
_K = 64
_S = 4
_NORM_FLOOR = 64.0
_DELTA = 1e-6


class SecretProjectionExperiment(Experiment):
    id = "EXP-SECRET"
    title = "Secret projections: noise-free DP (Blocki) vs sparse failure (Upadhyay)"
    paper_reference = "Section 2.3 (Blocki et al. 2012; Upadhyay 2014)"

    def run(self, scale: str = "full", seed: int = 0):
        self._check_scale(scale)
        trials = trials_for(scale, smoke=300, full=2000)
        loss_samples = trials_for(scale, smoke=20000, full=200000)
        rng = prg.derive_rng(seed, "exp-secret")

        table = Table(
            headers=["quantity", "secret_gaussian", "public_sjlt_sketch", "note"],
            title=f"EXP-SECRET: d={_D}, k={_K}, norm floor w={_NORM_FLOOR:g}",
        )
        checks: dict[str, bool] = {}

        # -- utility: norm estimation variance, secret vs public --------
        # x sits exactly on the norm floor: the regime where the public
        # sketch's noise is largest relative to the JL error.
        x = rng.standard_normal(_D)
        x *= _NORM_FLOOR / np.linalg.norm(x)
        x_sq = float(x @ x)
        mechanism = SecretGaussianProjection(_K, _NORM_FLOOR, _DELTA)
        secret_estimates = np.array(
            [mechanism.release(x, rng).estimate_sq_norm() for _ in range(trials)]
        )
        public_estimates = np.empty(trials)
        for t in range(trials):
            sketcher = PrivateSketcher(
                SketchConfig(
                    input_dim=_D,
                    epsilon=mechanism.guarantee.epsilon,
                    delta=_DELTA,
                    output_dim=_K,
                    sparsity=_S,
                    seed=int(rng.integers(0, 2**62)),
                )
            )
            public_estimates[t] = sketcher.estimate_sq_norm(sketcher.sketch(x, noise_rng=rng))
        secret_var = float(secret_estimates.var(ddof=1))
        public_var = float(public_estimates.var(ddof=1))
        jl_var = 2.0 / _K * x_sq**2
        # Public norm-estimator variance, exactly: Var[||Sx||^2]
        # + 4 m2 ||x||^2 + k (m4 - m2^2) (cross terms vanish).
        reference = PrivateSketcher(
            SketchConfig(
                input_dim=_D, epsilon=mechanism.guarantee.epsilon, delta=_DELTA,
                output_dim=_K, sparsity=_S,
            )
        )
        m2 = reference.noise.second_moment
        m4 = reference.noise.fourth_moment
        public_theory = jl_var + 4.0 * m2 * x_sq + _K * (m4 - m2**2)
        table.add_row(
            quantity="norm-estimate variance",
            secret_gaussian=secret_var,
            public_sjlt_sketch=public_var,
            note=(
                f"theory: secret {jl_var:.3g} (pure JL), public {public_theory:.3g} "
                f"(premium {public_theory / jl_var:.3f}x)"
            ),
        )
        checks["secret estimator unbiased"] = (
            abs(secret_estimates.mean() - x_sq)
            < 5.0 * secret_estimates.std(ddof=1) / np.sqrt(trials)
        )
        checks["secret variance matches raw JL 2/k ||x||^4 (no noise)"] = (
            0.7 * jl_var < secret_var < 1.4 * jl_var
        )
        checks["public variance matches JL + noise premium"] = (
            0.7 * public_theory < public_var < 1.4 * public_theory
        )
        # The premium is only O(s/k + k m4/||x||^4) relative — the
        # paper's "high utility even under DP" point — but it is real.
        checks["noise premium positive (public pays for publicity)"] = (
            public_theory > 1.1 * jl_var
        )

        # -- privacy: audit the Blocki guarantee at the worst case, in
        # both loss directions (the distributions are asymmetric) -------
        eps_claimed = mechanism.guarantee.epsilon
        delta_hat = max(
            delta_at_epsilon(
                privacy_loss_samples_secret(
                    _K, _NORM_FLOOR, _NORM_FLOOR + 1.0, loss_samples, rng
                ),
                eps_claimed,
            ),
            delta_at_epsilon(
                privacy_loss_samples_secret(
                    _K, _NORM_FLOOR + 1.0, _NORM_FLOOR, loss_samples, rng
                ),
                eps_claimed,
            ),
        )
        table.add_row(
            quantity="privacy audit",
            secret_gaussian=delta_hat,
            public_sjlt_sketch=0.0,
            note=f"delta_hat at claimed eps={eps_claimed:.3g} (target {_DELTA:g})",
        )
        checks["claimed (eps, delta) survives the exact audit"] = delta_hat <= _DELTA * 5 + 3e-5

        # -- Upadhyay: secret sparse projections leak -------------------
        sparse_small = np.zeros(_D)
        sparse_small[0] = _NORM_FLOOR
        sparse_large = sparse_small.copy()
        sparse_large[1] = 1.0  # a neighbour with one extra support element

        def sjlt_release(vec, generator):
            transform = SJLT(_D, _K, _S, seed=int(generator.integers(0, 2**62)))
            return transform.apply(vec)

        def gaussian_release(vec, generator):
            return mechanism.release(vec, generator).values

        attack_trials = trials_for(scale, smoke=200, full=1000)
        sjlt_adv = attack_advantage(
            sjlt_release, sparse_small, sparse_large, _S, attack_trials, rng
        )
        gauss_adv = attack_advantage(
            gaussian_release, sparse_small, sparse_large, _K - 1, attack_trials, rng
        )
        table.add_row(
            quantity="support-attack advantage",
            secret_gaussian=gauss_adv,
            public_sjlt_sketch=sjlt_adv,
            note="advantage ~ 1 certifies privacy failure",
        )
        checks["attack breaks the secret SJLT (Upadhyay)"] = sjlt_adv > 0.8
        checks["attack blind against the secret Gaussian"] = abs(gauss_adv) < 0.15

        result = self._result(table)
        result.checks = checks
        result.notes.append(
            "the secret-projection route is unavailable in the paper's "
            "distributed setting: parties need the public matrix to sketch"
        )
        return result
