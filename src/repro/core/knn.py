"""Nearest-neighbour index over published private sketches.

The paper's introduction motivates the sketches with approximate
nearest-neighbour search; this module provides the adoption-grade API:
collect published :class:`~repro.core.sketch.PrivateSketch` objects and
answer top-``m`` / radius queries with the unbiased distance estimator.

The index never touches raw data — it is an *analyst-side* structure
built entirely from releases, so adding a sketch spends no additional
privacy budget beyond the release itself.

The heavy lifting lives in :mod:`repro.serving`: the index is a thin
facade over a :class:`~repro.serving.store.ShardedSketchStore` (appends
land in preallocated shards — no full-matrix recopy per insert) queried
through :meth:`~repro.serving.service.DistanceService.execute` with the
typed queries of :mod:`repro.serving.queries` (per-shard cached norms,
``argpartition``-based top-``k`` selection instead of a full sort).
Rankings order by the raw unbiased estimates, whose debias correction
can overshoot at tiny distances; the *reported* estimates are clamped
at zero through :func:`repro.core.estimators.clamp_sq_estimates` (the
single owner of that rule), so this index never returns a negative
distance estimate.
"""

from __future__ import annotations

from repro.core.sketch import PrivateSketch, SketchBatch
from repro.serving.execution import ExecutionPolicy
from repro.serving.queries import RadiusQuery, TopKQuery
from repro.serving.service import DistanceService
from repro.serving.store import DEFAULT_SHARD_CAPACITY, ShardedSketchStore


class PrivateNeighborIndex:
    """A flat index of private sketches supporting distance queries.

    ``policy`` selects how queries are executed (serial, or fanned out
    across a thread pool of shard workers with norm-bound
    prefiltering); results are identical whatever the policy.
    """

    def __init__(
        self,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        self._store = ShardedSketchStore(shard_capacity=shard_capacity)
        self._service = DistanceService(self._store, policy=policy)

    @classmethod
    def from_store(
        cls, store: ShardedSketchStore, policy: ExecutionPolicy | None = None
    ) -> "PrivateNeighborIndex":
        """Wrap an existing store — e.g. one loaded with ``mmap=True``."""
        index = cls.__new__(cls)
        index._store = store
        index._service = DistanceService(store, policy=policy)
        return index

    @property
    def store(self) -> ShardedSketchStore:
        """The backing sharded store (shared, not a copy)."""
        return self._store

    def close(self) -> None:
        """Release the query worker pool (no-op for serial policies)."""
        self._service.close()

    def __enter__(self) -> "PrivateNeighborIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def add(self, sketch: PrivateSketch, label=None) -> None:
        """Register a published sketch (label defaults to its position)."""
        self._store.add(sketch, label=label)

    def add_batch(self, batch: SketchBatch, labels=None) -> None:
        """Register every row of a published batch at once.

        The batch's payload is appended into the store's shards — no
        per-row copies, no rebuild of previously added rows.
        """
        self._store.add_batch(batch, labels=labels)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def labels(self) -> list:
        return self._store.labels

    def query(self, sketch: PrivateSketch, top: int = 1) -> list[tuple[object, float]]:
        """The ``top`` entries closest to ``sketch``.

        Returns ``(label, estimated squared distance)`` pairs in
        ascending distance order, ties broken by insertion order.
        """
        return self._service.execute(TopKQuery(queries=sketch, k=top)).payload[0]

    def query_batch(self, batch: SketchBatch, top: int = 1) -> list[list[tuple[object, float]]]:
        """Answer one top-``m`` query per row of ``batch`` in a single pass.

        Every (entry, query) pair is scored through the shard-streaming
        estimators; the result is a list of :meth:`query`-style
        rankings, one per row.
        """
        return self._service.execute(TopKQuery(queries=batch, k=top)).payload

    def query_radius(self, sketch: PrivateSketch, radius_sq: float) -> list[tuple[object, float]]:
        """All entries with estimated squared distance at most ``radius_sq``."""
        return self._service.execute(
            RadiusQuery(query=sketch, radius_sq=radius_sq)
        ).payload
