"""Nearest-neighbour index over published private sketches.

The paper's introduction motivates the sketches with approximate
nearest-neighbour search; this module provides the adoption-grade API:
collect published :class:`~repro.core.sketch.PrivateSketch` objects and
answer top-``m`` / radius queries with the unbiased distance estimator.

The index never touches raw data — it is an *analyst-side* structure
built entirely from releases, so adding a sketch spends no additional
privacy budget beyond the release itself.

Queries run through the vectorised batch estimators: releases are kept
as matrix chunks (a whole :class:`~repro.core.sketch.SketchBatch` is
stored as-is, never exploded into per-row sketches), concatenated
lazily into one matrix, and every query is a single
:func:`~repro.core.estimators.cross_sq_distances` call instead of a
Python loop over entries.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import estimators
from repro.core.sketch import PrivateSketch, SketchBatch


class PrivateNeighborIndex:
    """A flat index of private sketches supporting distance queries."""

    def __init__(self) -> None:
        self._chunks: list[SketchBatch] = []
        self._labels: list[object] = []
        self._size = 0
        self._stacked_cache: SketchBatch | None = None

    def _append_chunk(self, chunk: SketchBatch, labels) -> None:
        if self._chunks:
            estimators.check_compatible(self._chunks[0], chunk)
        self._labels.extend(labels)
        self._chunks.append(chunk)
        self._size += len(chunk)
        self._stacked_cache = None  # concatenated matrix is stale

    def add(self, sketch: PrivateSketch, label=None) -> None:
        """Register a published sketch (label defaults to its position)."""
        self._append_chunk(
            SketchBatch.from_sketches([sketch]),
            [self._size if label is None else label],
        )

    def add_batch(self, batch: SketchBatch, labels=None) -> None:
        """Register every row of a published batch at once.

        The batch's payload is stored as one chunk — no per-row copies.
        """
        if labels is None:
            labels = batch.labels or range(self._size, self._size + len(batch))
        elif len(labels) != len(batch):
            raise ValueError(f"got {len(labels)} labels for {len(batch)} rows")
        self._append_chunk(batch, list(labels))

    def __len__(self) -> int:
        return self._size

    @property
    def labels(self) -> list:
        return list(self._labels)

    def _stacked(self) -> SketchBatch:
        if self._stacked_cache is None:
            if len(self._chunks) == 1:
                self._stacked_cache = self._chunks[0]
            else:
                self._stacked_cache = dataclasses.replace(
                    self._chunks[0],
                    values=np.concatenate([c.values for c in self._chunks]),
                    labels=(),
                )
        return self._stacked_cache

    def _estimates_for(self, sketch: PrivateSketch) -> np.ndarray:
        """Estimated squared distances from every entry to ``sketch``."""
        if not self._size:
            raise ValueError("the index is empty")
        return estimators.cross_sq_distances(self._stacked(), sketch)[:, 0]

    def query(self, sketch: PrivateSketch, top: int = 1) -> list[tuple[object, float]]:
        """The ``top`` entries closest to ``sketch``.

        Returns ``(label, estimated squared distance)`` pairs in
        ascending distance order.  Estimates can be negative (the
        unbiased correction may overshoot at tiny distances); ordering
        is still meaningful because the correction is a constant shift.
        """
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        estimates = self._estimates_for(sketch)
        order = np.argsort(estimates, kind="stable")[:top]
        return [(self._labels[i], float(estimates[i])) for i in order]

    def query_batch(self, batch: SketchBatch, top: int = 1) -> list[list[tuple[object, float]]]:
        """Answer one top-``m`` query per row of ``batch`` in a single pass.

        One ``cross_sq_distances`` call scores every (entry, query) pair;
        the result is a list of :meth:`query`-style rankings, one per row.
        """
        if not self._size:
            raise ValueError("the index is empty")
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        estimates = estimators.cross_sq_distances(self._stacked(), batch)
        results = []
        for j in range(estimates.shape[1]):
            order = np.argsort(estimates[:, j], kind="stable")[:top]
            results.append([(self._labels[i], float(estimates[i, j])) for i in order])
        return results

    def query_radius(self, sketch: PrivateSketch, radius_sq: float) -> list[tuple[object, float]]:
        """All entries with estimated squared distance at most ``radius_sq``."""
        if radius_sq < 0:
            raise ValueError(f"radius_sq must be >= 0, got {radius_sq}")
        if not self._size:
            return []
        estimates = self._estimates_for(sketch)
        order = np.argsort(estimates, kind="stable")
        return [
            (self._labels[i], float(estimates[i]))
            for i in order
            if estimates[i] <= radius_sq
        ]
