"""Nearest-neighbour index over published private sketches.

The paper's introduction motivates the sketches with approximate
nearest-neighbour search; this module provides the adoption-grade API:
collect published :class:`~repro.core.sketch.PrivateSketch` objects and
answer top-``m`` / radius queries with the unbiased distance estimator.

The index never touches raw data — it is an *analyst-side* structure
built entirely from releases, so adding a sketch spends no additional
privacy budget beyond the release itself.
"""

from __future__ import annotations

from repro.core import estimators
from repro.core.sketch import PrivateSketch


class PrivateNeighborIndex:
    """A flat index of private sketches supporting distance queries."""

    def __init__(self) -> None:
        self._sketches: list[PrivateSketch] = []
        self._labels: list[object] = []

    def add(self, sketch: PrivateSketch, label=None) -> None:
        """Register a published sketch (label defaults to its position)."""
        if self._sketches:
            estimators.check_compatible(self._sketches[0], sketch)
        self._labels.append(len(self._sketches) if label is None else label)
        self._sketches.append(sketch)

    def __len__(self) -> int:
        return len(self._sketches)

    @property
    def labels(self) -> list:
        return list(self._labels)

    def query(self, sketch: PrivateSketch, top: int = 1) -> list[tuple[object, float]]:
        """The ``top`` entries closest to ``sketch``.

        Returns ``(label, estimated squared distance)`` pairs in
        ascending distance order.  Estimates can be negative (the
        unbiased correction may overshoot at tiny distances); ordering
        is still meaningful because the correction is a constant shift.
        """
        if not self._sketches:
            raise ValueError("the index is empty")
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        scored = [
            (label, estimators.estimate_sq_distance(entry, sketch))
            for label, entry in zip(self._labels, self._sketches)
        ]
        scored.sort(key=lambda pair: pair[1])
        return scored[:top]

    def query_radius(self, sketch: PrivateSketch, radius_sq: float) -> list[tuple[object, float]]:
        """All entries with estimated squared distance at most ``radius_sq``."""
        if radius_sq < 0:
            raise ValueError(f"radius_sq must be >= 0, got {radius_sq}")
        hits = [
            (label, estimate)
            for label, entry in zip(self._labels, self._sketches)
            if (estimate := estimators.estimate_sq_distance(entry, sketch)) <= radius_sq
        ]
        hits.sort(key=lambda pair: pair[1])
        return hits
