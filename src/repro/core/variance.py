"""Theoretical variance formulas for every estimator in the paper.

These are the exact-constant versions of:

* Lemma 3  — the generic decomposition
  ``Var[E_gen] = Var[||Sz||^2] + 8 E[eta^2] ||z||^2 + 2k E[eta^4]
  + 2k E[eta^2]^2``;
* Theorem 2 — Kenthapadi et al.'s i.i.d. Gaussian estimator;
* Theorem 3 — the private SJLT with Laplace noise;
* Corollary 1 / Lemma 8 — the two private FJLT variants;
* Lemma 10 — the SJLT's exact (not just bounded) transform variance
  ``2/k (||z||_2^4 - ||z||_4^4)``.

EXP-T2/T3/L8/C1 compare Monte-Carlo variances against these functions.
"""

from __future__ import annotations

import numpy as np

from repro.dp.noise import NoiseDistribution
from repro.utils.validation import as_float_vector, check_positive


def general_variance(
    k: int, dist_sq: float, second_moment: float, fourth_moment: float, transform_variance: float
) -> float:
    """Lemma 3's exact variance of ``E_gen`` for any LPP transform."""
    _check_k(k)
    return (
        transform_variance
        + 8.0 * second_moment * dist_sq
        + 2.0 * k * fourth_moment
        + 2.0 * k * second_moment**2
    )


def noise_variance(k: int, dist_sq: float, noise: NoiseDistribution) -> float:
    """Just the noise-induced part of Lemma 3 (transform variance excluded)."""
    _check_k(k)
    return general_variance(k, dist_sq, noise.second_moment, noise.fourth_moment, 0.0)


# -- transform-only variances -------------------------------------------------


def iid_gaussian_transform_variance(k: int, dist_sq: float) -> float:
    """``Var[||Pz||^2] = 2/k ||z||^4`` for i.i.d. ``N(0, 1/k)`` entries."""
    _check_k(k)
    return 2.0 / k * dist_sq**2


def sjlt_transform_variance_exact(k: int, z) -> float:
    """Lemma 10 (proof): ``Var[||Sz||^2] = 2/k (||z||_2^4 - ||z||_4^4)`` exactly."""
    _check_k(k)
    z = as_float_vector(z, "z")
    l2_sq = float(np.dot(z, z))
    l4_4 = float(np.sum(z**4))
    return 2.0 / k * (l2_sq**2 - l4_4)


def sjlt_transform_variance_bound(k: int, dist_sq: float) -> float:
    """Lemma 10: ``Var[||Sz||^2] <= 2/k ||z||^4``."""
    _check_k(k)
    return 2.0 / k * dist_sq**2


def fjlt_transform_variance_bound(k: int, dist_sq: float) -> float:
    """Lemma 7: ``Var[1/k ||Phi z||^2] <= 3/k ||z||^4``."""
    _check_k(k)
    return 3.0 / k * dist_sq**2


# -- estimator variances (paper results with explicit constants) ---------------


def kenthapadi_variance(k: int, sigma: float, dist_sq: float) -> float:
    """Theorem 2: ``Var[E_iid] = 2/k ||z||^4 + 8 sigma^2 ||z||^2 + 8 sigma^4 k``."""
    check_positive(sigma, "sigma")
    return iid_gaussian_transform_variance(k, dist_sq) + 8.0 * sigma**2 * dist_sq + 8.0 * sigma**4 * k


def sjlt_laplace_variance_bound(k: int, s: int, epsilon: float, dist_sq: float) -> float:
    """Theorem 3 with constants: Laplace scale ``b = sqrt(s)/eps`` gives
    ``E[eta^2] = 2s/eps^2`` and ``E[eta^4] = 24 s^2/eps^4``, hence

    ``Var <= 2/k ||z||^4 + 16 s/eps^2 ||z||^2 + 56 k s^2/eps^4``.
    """
    check_positive(epsilon, "epsilon")
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    m2 = 2.0 * s / epsilon**2
    m4 = 24.0 * s**2 / epsilon**4
    return general_variance(k, dist_sq, m2, m4, sjlt_transform_variance_bound(k, dist_sq))


def sjlt_gaussian_variance_bound(k: int, sigma: float, dist_sq: float) -> float:
    """Section 6.2.3: SJLT + Gaussian matches Kenthapadi's noise terms."""
    check_positive(sigma, "sigma")
    return sjlt_transform_variance_bound(k, dist_sq) + 8.0 * sigma**2 * dist_sq + 8.0 * sigma**4 * k


def fjlt_output_variance_bound(k: int, sigma: float, dist_sq: float) -> float:
    """Corollary 1: ``Var <= 3/k ||z||^4 + 8 sigma^2 ||z||^2 + 8 sigma^4 k``."""
    check_positive(sigma, "sigma")
    return fjlt_transform_variance_bound(k, dist_sq) + 8.0 * sigma**2 * dist_sq + 8.0 * sigma**4 * k


def fjlt_variance_coefficient(d: int, density: float) -> float:
    """The exact per-``1/k`` coefficient in the FJLT's squared-norm variance.

    From the Lemma 11 primitives, for any fixed ``v``:
    ``Var[1/k ||Phi v||^2] = (2 + 9/d (1/q - 1))/k * ||v||_2^4
    - 6/(dk) (1/q - 1) ||v||_4^4``, so the coefficient below (which
    equals 3 when ``q >= 1/(d/9 + 1)``, Lemma 7's regime) bounds the
    variance as ``coeff/k * ||v||^4``.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if not 0 < density <= 1:
        raise ValueError(f"density must lie in (0, 1], got {density}")
    return 2.0 + 9.0 / d * (1.0 / density - 1.0)


def input_perturbation_variance_bound(
    k: int,
    d: int,
    dist_sq: float,
    noise_w2: float,
    noise_w4: float,
    transform_coefficient: float,
) -> float:
    """Variance bound for input perturbation with any symmetric noise.

    Let ``w = eta - mu`` be the coordinate-wise difference noise with
    ``E[w^2] = noise_w2`` and ``E[w^4] = noise_w4``, and let the
    transform satisfy ``Var[1/k ||S v||^2] <= c/k ||v||^4`` for fixed
    ``v`` (``c = transform_coefficient``).  Conditioning on ``w``:

    ``Var = E_w[Var_S | w] + Var_w(||z + w||^2)
         <= c/k E||z + w||^4 + 4 ||z||^2 w2 + d (w4 - w2^2)``

    with ``E||z + w||^4 = ||z||^4 + (4 + 2d) w2 ||z||^2
    + d (w4 - w2^2) + d^2 w2^2`` — exactly the paper's
    ``O(d^2 sigma^4 / k + d sigma^2 ||z||^2)`` shape (Lemma 8).
    """
    _check_k(k)
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    fourth = (
        dist_sq**2
        + (4.0 + 2.0 * d) * noise_w2 * dist_sq
        + d * (noise_w4 - noise_w2**2)
        + d**2 * noise_w2**2
    )
    direct = 4.0 * dist_sq * noise_w2 + d * (noise_w4 - noise_w2**2)
    return transform_coefficient / k * fourth + direct


def fjlt_input_variance_bound(
    k: int, d: int, sigma: float, dist_sq: float, density: float
) -> float:
    """Lemma 8 with explicit constants.

    Input noise ``eta, mu ~ N(0, sigma^2)^d`` gives difference noise
    ``w ~ N(0, 2 sigma^2)^d`` (``w2 = 2 sigma^2``, ``w4 = 3 w2^2``);
    see :func:`input_perturbation_variance_bound` for the derivation.
    """
    check_positive(sigma, "sigma")
    w2 = 2.0 * sigma**2
    w4 = 3.0 * w2**2
    coefficient = fjlt_variance_coefficient(d, density)
    return input_perturbation_variance_bound(k, d, dist_sq, w2, w4, coefficient)


def inner_product_variance_bound(
    k: int,
    x_sq: float,
    y_sq: float,
    inner_product: float,
    second_moment: float,
    transform_coefficient: float = 2.0,
) -> float:
    """Variance bound for the inner-product estimator ``<Sx+eta, Sy+mu>``.

    Decomposing over the independent noise vectors:
    ``Var = Var_S[<Sx, Sy>] + m2 E||Sx||^2 + m2 E||Sy||^2 + k m2^2``.
    For the transforms here ``Var_S[<Sx, Sy>] <= c/k (||x||^2 ||y||^2 +
    <x, y>^2)`` with ``c = transform_coefficient`` (2 for the SJLT-style
    maps, exact for i.i.d. Gaussian with c = 1; 3 for the FJLT) — this
    is our derivation, not the paper's, validated empirically in the
    test suite.
    """
    _check_k(k)
    transform_var = transform_coefficient / k * (x_sq * y_sq + inner_product**2)
    return transform_var + second_moment * (x_sq + y_sq) + k * second_moment**2


def chebyshev_interval(estimate: float, variance: float, failure_prob: float) -> tuple[float, float]:
    """Two-sided Chebyshev confidence interval for an unbiased estimator.

    ``P[|E - mean| >= sqrt(Var / p)] <= p``; conservative but assumption
    free, which suits the heavy-tailed Laplace-noise estimators.
    """
    if not 0.0 < failure_prob < 1.0:
        raise ValueError(f"failure_prob must lie in (0, 1), got {failure_prob}")
    if variance < 0.0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    radius = (variance / failure_prob) ** 0.5
    return estimate - radius, estimate + radius


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
