"""Estimators over released sketches (the analyst side of the protocol).

All estimators are pure functions of :class:`PrivateSketch` /
:class:`SketchBatch` objects — they need no access to the sketcher, the
transform or the data, which is the whole point of the distributed
setting: anyone can estimate from published sketches.

* squared distance: ``||u - v||^2 - 2 * m * E[eta^2]`` where ``m`` is
  the number of noisy coordinates (``k`` for output perturbation, ``d``
  for input perturbation) — unbiased by Lemma 3 / Lemma 8;
* squared norm: ``||u||^2 - m * E[eta^2]`` — unbiased by the same
  argument with a single noise vector;
* inner product: ``<u, v>`` — already unbiased because the transform
  satisfies ``E[S^T S] = I`` and the noise is independent and zero-mean.

The matrix-shaped variants (:func:`pairwise_sq_distances`,
:func:`cross_sq_distances`, :func:`sq_norms`) apply the same debiasing
entry-wise but compute every pair through one Gram matrix (a single
BLAS call) instead of a Python loop over pairs.  They accept either a
:class:`~repro.core.sketch.SketchBatch` or a single sketch (treated as
a one-row batch).
"""

from __future__ import annotations

import math

import numpy as np

try:  # BLAS syrk computes the Gram matrix in half the flops of gemm
    from scipy.linalg.blas import dsyrk as _dsyrk
except ImportError:  # pragma: no cover - exercised only without scipy
    _dsyrk = None


#: Metadata fields that the estimators consume; two releases claiming
#: the same configuration digest must agree on every one of them, or
#: the debias corrections would silently mix constants from different
#: mechanisms.
_ESTIMATION_METADATA = (
    "input_dim",
    "output_dim",
    "perturbation",
    "noise_spec",
    "noise_second_moment",
    "guarantee",
)


def check_compatible(a, b) -> None:
    """Ensure two releases (sketches or batches) share a public config.

    Compares the sketch dimension — the *last* axis of ``values`` — so a
    1-D sketch and a 2-D batch (or two batches with different row
    counts) are judged on the same quantity.  Beyond the digest, the
    estimator-relevant metadata must also agree: a release whose digest
    matches but whose noise metadata differs (a tampered or corrupted
    header — legitimate sketchers derive both from the same config) is
    rejected here, so every construction path that funnels releases
    together — stores, services, estimators — fails fast instead of
    mixing debias constants.
    """
    if a.config_digest != b.config_digest:
        raise ValueError(
            "sketches come from different configurations "
            f"({a.config_digest} vs {b.config_digest}); estimates would be meaningless"
        )
    if a.values.shape[-1] != b.values.shape[-1]:
        raise ValueError(
            f"sketch dimensions differ: {a.values.shape[-1]} vs {b.values.shape[-1]}"
        )
    for field in _ESTIMATION_METADATA:
        if getattr(a, field) != getattr(b, field):
            raise ValueError(
                f"releases claim the same configuration ({a.config_digest}) but "
                f"disagree on {field} ({getattr(a, field)!r} vs "
                f"{getattr(b, field)!r}); the metadata was tampered with or "
                "corrupted, and estimates would be meaningless"
            )


def noise_coordinates(sketch) -> int:
    """Number of coordinates carrying noise: ``d`` for input perturbation."""
    return sketch.input_dim if sketch.perturbation == "input" else sketch.output_dim


def sq_distance_correction(release) -> float:
    """The distance estimator's debias term ``2 m E[eta^2]`` (Lemma 3).

    ``m`` is :func:`noise_coordinates`; the single owner of this
    constant, shared by the scalar/matrix estimators and the serving
    layer.
    """
    return 2.0 * noise_coordinates(release) * release.noise_second_moment


def sq_norm_correction(release) -> float:
    """The squared-norm estimator's debias term ``m E[eta^2]``.

    Half of :func:`sq_distance_correction` (one noise vector instead of
    two); the single owner shared by :func:`estimate_sq_norm`,
    :func:`sq_norms` and the serving layer's norms query.
    """
    return noise_coordinates(release) * release.noise_second_moment


def clamp_sq_estimates(values):
    """Clamp debiased squared estimates at ``0.0`` — the single owner.

    The unbiased correction of :func:`sq_distance_correction` can
    overshoot at tiny true distances and produce a *negative* squared
    estimate.  Whenever a negative estimate must be presented as a
    distance-like quantity, it clamps to zero **here and only here** —
    :func:`estimate_distance` and the serving query plane's top-k /
    radius payloads all route through this function, so the policy is
    decided exactly once instead of per call site.

    The raw unbiased values stay available where unbiasedness matters:
    :func:`estimate_sq_distance` and the matrix estimators
    (:func:`pairwise_sq_distances`, :func:`cross_sq_distances`,
    :func:`sq_norms`) never clamp.  Clamping happens *after* ordering
    decisions — rankings and radius membership are computed on the raw
    values, so the constant-shift ordering argument is unaffected.

    Accepts a scalar or an array; returns the same shape.
    """
    if np.isscalar(values):
        return max(float(values), 0.0)
    return np.maximum(values, 0.0)


def estimate_sq_distance(a, b) -> float:
    """Unbiased squared-Euclidean-distance estimator (Lemma 3 / Lemma 8)."""
    check_compatible(a, b)
    diff = a.values - b.values
    return float(np.dot(diff, diff)) - sq_distance_correction(a)


def estimate_distance(a, b) -> float:
    """Distance estimate ``sqrt(clamp(estimate))``.

    The square root introduces (vanishing) bias; use
    :func:`estimate_sq_distance` when unbiasedness matters.  Negative
    debiased estimates clamp through :func:`clamp_sq_estimates`.
    """
    return math.sqrt(clamp_sq_estimates(estimate_sq_distance(a, b)))


def estimate_sq_norm(sketch) -> float:
    """Unbiased squared-norm estimator from a single sketch."""
    values = sketch.values
    return float(np.dot(values, values)) - sq_norm_correction(sketch)


def estimate_inner_product(a, b) -> float:
    """Unbiased inner-product estimator ``<u, v>``.

    Unbiased without any correction: the two sketches carry independent
    noise, so cross terms vanish in expectation.
    """
    check_compatible(a, b)
    return float(np.dot(a.values, b.values))


# -- matrix-shaped estimators -------------------------------------------------


def _as_rows(sketch_or_batch) -> np.ndarray:
    """View a release's payload as an ``(n, k)`` matrix (1-row for sketches)."""
    values = np.asarray(sketch_or_batch.values, dtype=np.float64)
    return values[np.newaxis, :] if values.ndim == 1 else values


def _pairwise_from_values(values: np.ndarray, correction: float) -> np.ndarray:
    if _dsyrk is not None and values.shape[0] > 1:
        upper = _dsyrk(1.0, np.ascontiguousarray(values), trans=0, lower=0)
        gram = upper + upper.T  # syrk leaves the other triangle zero...
        np.fill_diagonal(gram, np.diagonal(upper))  # ...but doubles the diagonal
    else:
        gram = values @ values.T
        gram = 0.5 * (gram + gram.T)  # plain matmul is only symmetric up to fp
    norms = np.diagonal(gram)
    out = norms[:, np.newaxis] + norms[np.newaxis, :] - 2.0 * gram - correction
    np.fill_diagonal(out, 0.0)
    return out


def sq_norms(batch) -> np.ndarray:
    """Unbiased squared-norm estimates for every row of a batch."""
    values = _as_rows(batch)
    return np.einsum("ij,ij->i", values, values) - sq_norm_correction(batch)


def pairwise_sq_distances(batch) -> np.ndarray:
    """All-pairs unbiased squared-distance estimates within one batch.

    Entry ``(i, j)`` is debiased exactly like
    :func:`estimate_sq_distance` on rows ``i`` and ``j``; the diagonal
    is zero by convention (a row paired with itself carries no
    independent noise, so the off-diagonal correction would not apply).
    Entries can be negative — the unbiased correction may overshoot at
    tiny distances.
    """
    values = _as_rows(batch)
    return _pairwise_from_values(values, sq_distance_correction(batch))


def cross_sq_distances_from_parts(
    a: np.ndarray, sq_a: np.ndarray, b: np.ndarray, sq_b: np.ndarray, correction: float
) -> np.ndarray:
    """The cross-distance kernel with caller-supplied squared norms.

    Computes ``sq_a[i] + sq_b[j] - 2 <a_i, b_j> - correction`` — exactly
    the arithmetic of :func:`cross_sq_distances` — but takes the norm
    terms precomputed, so a serving layer that caches ``sq_b`` per shard
    pays only the inner-product BLAS call per query.  No validation is
    performed; callers are responsible for compatibility checks.

    **Mixed precision.**  When ``b`` is float32 — a low-precision shard
    served by the quantised store — the inner products run as a native
    float32 GEMM (the queries in ``a`` are cast down once, the big
    operand streams at half the memory traffic through sgemm), while
    the norm sums and the debias correction still accumulate in float64
    from the caller's float64 ``sq_a``/``sq_b``.  The result is always
    float64.  The extra rounding this admits is part of the documented
    quantisation envelope (:mod:`repro.theory.quantisation`); the
    float64 path is bit-for-bit unchanged.
    """
    if b.dtype == np.float32:
        products = np.asarray(a, dtype=np.float32) @ b.T
        products = products.astype(np.float64)
    else:
        products = a @ b.T
    return sq_a[:, np.newaxis] + sq_b[np.newaxis, :] - 2.0 * products - correction


def cross_sq_distances(batch_a, batch_b) -> np.ndarray:
    """Unbiased squared-distance estimates between two batches.

    Entry ``(i, j)`` estimates the distance between the vector behind
    row ``i`` of ``batch_a`` and row ``j`` of ``batch_b``.  Every entry
    is corrected (the two batches carry independent noise draws) — so
    ``cross_sq_distances(A, A)`` matches ``pairwise_sq_distances(A)``
    only off the diagonal, where the independence assumption holds.
    """
    check_compatible(batch_a, batch_b)
    a, b = _as_rows(batch_a), _as_rows(batch_b)
    correction = sq_distance_correction(batch_a)
    sq_a = np.einsum("ij,ij->i", a, a)
    sq_b = np.einsum("ij,ij->i", b, b)
    return cross_sq_distances_from_parts(a, sq_a, b, sq_b, correction)


def estimate_distance_matrix(sketches) -> np.ndarray:
    """All-pairs squared-distance estimates for sketches or a batch.

    Entry ``(i, j)`` is the unbiased estimate between sketches ``i`` and
    ``j``; the diagonal is zero by convention.  Accepts a
    :class:`~repro.core.sketch.SketchBatch` or any iterable of
    compatible :class:`~repro.core.sketch.PrivateSketch` objects.
    """
    values = getattr(sketches, "values", None)
    if values is not None and np.ndim(values) == 2:  # a SketchBatch (duck-typed)
        return pairwise_sq_distances(sketches)
    # a single PrivateSketch falls through and fails below like any
    # other non-iterable — a 1x1 zero "matrix" would hide the mistake
    sketches = list(sketches)
    if not sketches:
        return np.zeros((0, 0))
    first = sketches[0]
    for other in sketches[1:]:
        check_compatible(first, other)
    values = np.stack([np.asarray(s.values, dtype=np.float64) for s in sketches])
    return _pairwise_from_values(values, sq_distance_correction(first))
