"""Estimators over released sketches (the analyst side of the protocol).

All estimators are pure functions of :class:`PrivateSketch` objects —
they need no access to the sketcher, the transform or the data, which is
the whole point of the distributed setting: anyone can estimate from
published sketches.

* squared distance: ``||u - v||^2 - 2 * m * E[eta^2]`` where ``m`` is
  the number of noisy coordinates (``k`` for output perturbation, ``d``
  for input perturbation) — unbiased by Lemma 3 / Lemma 8;
* squared norm: ``||u||^2 - m * E[eta^2]`` — unbiased by the same
  argument with a single noise vector;
* inner product: ``<u, v>`` — already unbiased because the transform
  satisfies ``E[S^T S] = I`` and the noise is independent and zero-mean.
"""

from __future__ import annotations

import math

import numpy as np


def check_compatible(a, b) -> None:
    """Ensure two sketches came from the same public configuration."""
    if a.config_digest != b.config_digest:
        raise ValueError(
            "sketches come from different configurations "
            f"({a.config_digest} vs {b.config_digest}); estimates would be meaningless"
        )
    if a.values.size != b.values.size:
        raise ValueError(f"sketch sizes differ: {a.values.size} vs {b.values.size}")


def noise_coordinates(sketch) -> int:
    """Number of coordinates carrying noise: ``d`` for input perturbation."""
    return sketch.input_dim if sketch.perturbation == "input" else sketch.output_dim


def estimate_sq_distance(a, b) -> float:
    """Unbiased squared-Euclidean-distance estimator (Lemma 3 / Lemma 8)."""
    check_compatible(a, b)
    diff = a.values - b.values
    correction = 2.0 * noise_coordinates(a) * a.noise_second_moment
    return float(np.dot(diff, diff)) - correction


def estimate_distance(a, b) -> float:
    """Distance estimate ``sqrt(max(estimate, 0))``.

    The square root introduces (vanishing) bias; use
    :func:`estimate_sq_distance` when unbiasedness matters.
    """
    return math.sqrt(max(estimate_sq_distance(a, b), 0.0))


def estimate_sq_norm(sketch) -> float:
    """Unbiased squared-norm estimator from a single sketch."""
    values = sketch.values
    correction = noise_coordinates(sketch) * sketch.noise_second_moment
    return float(np.dot(values, values)) - correction


def estimate_inner_product(a, b) -> float:
    """Unbiased inner-product estimator ``<u, v>``.

    Unbiased without any correction: the two sketches carry independent
    noise, so cross terms vanish in expectation.
    """
    check_compatible(a, b)
    return float(np.dot(a.values, b.values))


def estimate_distance_matrix(sketches) -> np.ndarray:
    """All-pairs squared-distance estimates for a list of sketches.

    Entry ``(i, j)`` is the unbiased estimate between sketches ``i`` and
    ``j``; the diagonal is zero by convention.
    """
    sketches = list(sketches)
    n = len(sketches)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            est = estimate_sq_distance(sketches[i], sketches[j])
            out[i, j] = out[j, i] = est
    return out
