"""Core library: the paper's primary contribution.

:class:`SketchConfig` + :class:`PrivateSketcher` implement the private
JL sketches (Theorem 3 and friends); :mod:`repro.core.estimators` holds
the analyst-side estimators; :mod:`repro.core.variance` the theoretical
variance formulas; :mod:`repro.core.streaming` and
:mod:`repro.core.protocol` the streaming and multi-party layers.
"""

# Leaf modules first: knn and protocol pull in repro.serving, which
# imports back into repro.core submodules — initialising estimators and
# sketch before them keeps that re-entry safe even if serving ever
# imports a name re-exported here instead of from the leaf module.
from repro.core.estimators import (
    cross_sq_distances,
    estimate_distance,
    estimate_distance_matrix,
    estimate_inner_product,
    estimate_sq_distance,
    estimate_sq_norm,
    pairwise_sq_distances,
    sq_norms,
)
from repro.core.mechanism_choice import MechanismChoice, build_mechanism, choose_noise_name
from repro.core.sketch import (
    PrivateSketch,
    PrivateSketcher,
    SketchBatch,
    SketchConfig,
    rebuild_noise,
)
from repro.core.streaming import StreamingSketch
from repro.core.ensemble import EnsembleSketch, EnsembleSketcher
from repro.core.knn import PrivateNeighborIndex
from repro.core.protocol import Party, SketchingSession
from repro.core import variance

__all__ = [
    "EnsembleSketch",
    "EnsembleSketcher",
    "MechanismChoice",
    "Party",
    "PrivateNeighborIndex",
    "PrivateSketch",
    "PrivateSketcher",
    "SketchBatch",
    "SketchConfig",
    "SketchingSession",
    "StreamingSketch",
    "build_mechanism",
    "choose_noise_name",
    "cross_sq_distances",
    "estimate_distance",
    "estimate_distance_matrix",
    "estimate_inner_product",
    "estimate_sq_distance",
    "estimate_sq_norm",
    "pairwise_sq_distances",
    "rebuild_noise",
    "sq_norms",
    "variance",
]
