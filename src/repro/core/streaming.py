"""Streaming sketches: Theorem 3, item 4 — ``O(s)`` per update.

The SJLT touches exactly ``s`` sketch coordinates per input coordinate,
so a running projection ``S x_t`` can absorb a turnstile update
``(index, delta)`` in ``O(s)`` time, independent of both ``d`` and
``k``.  Noise is added only at *release* time; releasing repeatedly
spends privacy budget per release (track it with a
:class:`repro.dp.accountant.PrivacyAccountant`).
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import PrivateSketch, PrivateSketcher
from repro.hashing import prg
from repro.utils.validation import check_index


class StreamingSketch:
    """A running projection supporting ``O(update_cost)`` coordinate updates."""

    def __init__(self, sketcher: PrivateSketcher) -> None:
        if sketcher.perturbation != "output":
            raise ValueError(
                "streaming requires output perturbation (input noise must be "
                "added before the transform, which a stream never materialises)"
            )
        self.sketcher = sketcher
        self._accumulator = np.zeros(sketcher.output_dim)
        self.n_updates = 0

    @property
    def update_cost(self) -> int:
        """Sketch coordinates touched per update (``s`` for the SJLT)."""
        return self.sketcher.transform.update_cost

    def update(self, index: int, delta: float) -> None:
        """Absorb the turnstile update ``x[index] += delta``."""
        index = check_index(index, self.sketcher.config.input_dim)
        rows, values = self.sketcher.transform.coordinate_embedding(index)
        self._accumulator[rows] += delta * values
        self.n_updates += 1

    def update_batch(self, indices, deltas) -> None:
        """Absorb many updates in one vectorised pass.

        By linearity the net effect of the events equals the projection
        of their sparse sum, so the whole batch is one
        :meth:`LinearTransform.apply_sparse` call — ``O(s * m + k)``
        for ``m`` events instead of a Python loop over them.  Duplicate
        indices accumulate, exactly as repeated :meth:`update` calls.
        """
        indices = np.asarray(indices, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)
        if indices.shape != deltas.shape or indices.ndim != 1:
            raise ValueError("indices and deltas must be parallel 1-d arrays")
        if indices.size == 0:
            return
        self._accumulator += self.sketcher.transform.apply_sparse(indices, deltas)
        self.n_updates += int(indices.size)

    def consume(self, stream) -> None:
        """Absorb an iterable of ``(index, delta)`` events."""
        for index, delta in stream:
            self.update(int(index), float(delta))

    def current_projection(self) -> np.ndarray:
        """The *non-private* running projection ``S x_t`` (do not publish)."""
        return self._accumulator.copy()

    def release(self, noise_rng=None, label: str = "") -> PrivateSketch:
        """Release a private sketch of the current stream state.

        Each call draws fresh noise and costs one unit of privacy
        budget; callers doing multiple releases must account for
        composition.
        """
        generator = prg.as_generator(noise_rng)
        noisy = self._accumulator + self.sketcher.noise.sample(
            self.sketcher.output_dim, generator
        )
        return self.sketcher._wrap(noisy, label)
