"""The distributed sketching protocol.

Section 2 of the paper: data is split among parties who may never be
online simultaneously.  All parties share the *public* transform seed
(so their projections agree), each keeps its noise *secret*, and each
release is recorded against the party's privacy budget.

``SketchingSession`` is the coordination object: construct it from one
:class:`~repro.core.sketch.SketchConfig`, hand each data owner a
:class:`Party`, and let anyone estimate from the published sketches.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchBatch, SketchConfig
from repro.core.streaming import StreamingSketch
from repro.core import estimators
from repro.dp.accountant import BudgetExceededError, PrivacyAccountant
from repro.dp.mechanisms import PrivacyGuarantee
from repro.hashing import prg
from repro.serving.execution import ExecutionPolicy
from repro.serving.service import DistanceService
from repro.utils.validation import as_float_matrix


class Party:
    """One data owner: secret noise seed plus a privacy accountant."""

    def __init__(self, session: "SketchingSession", name: str, noise_seed: int | None) -> None:
        self._session = session
        self.name = name
        self._noise_seed = prg.fresh_seed() if noise_seed is None else int(noise_seed)
        self._release_counter = 0
        self.accountant = PrivacyAccountant(budget=session.budget)

    def release(self, x, label: str = "") -> PrivateSketch:
        """Sketch and publish ``x``, spending privacy budget."""
        sketcher = self._session.sketcher
        self.accountant.spend(sketcher.guarantee, label or f"{self.name}:{self._release_counter}")
        rng = prg.derive_rng(self._noise_seed, "party-noise", self.name, self._release_counter)
        self._release_counter += 1
        return sketcher.sketch(x, noise_rng=rng, label=label or self.name)

    def release_batch(self, X, labels=None) -> SketchBatch:
        """Sketch and publish every row of ``X``, spending budget per row.

        Each row is one release under basic composition, so ``n`` rows
        cost ``n`` times the per-release guarantee.  Spending is atomic:
        an over-budget batch records no events and publishes nothing.
        """
        sketcher = self._session.sketcher
        X = as_float_matrix(X, sketcher.config.input_dim, "X")
        start = self._release_counter
        if labels is None:
            labels = tuple(f"{self.name}:{start + i}" for i in range(X.shape[0]))
        elif len(labels) != X.shape[0]:
            raise ValueError(f"got {len(labels)} labels for {X.shape[0]} rows")
        checkpoint = len(self.accountant.events)
        try:
            for label in labels:
                self.accountant.spend(sketcher.guarantee, str(label))
        except BudgetExceededError:
            del self.accountant.events[checkpoint:]
            raise
        rng = prg.derive_rng(self._noise_seed, "party-noise-batch", self.name, start)
        self._release_counter += X.shape[0]
        return sketcher.sketch_batch(X, noise_rng=rng, labels=tuple(labels))

    def release_stream(self, stream, label: str = "") -> PrivateSketch:
        """Consume a ``(index, delta)`` stream and publish one sketch."""
        sketcher = self._session.sketcher
        streaming = StreamingSketch(sketcher)
        streaming.consume(stream)
        self.accountant.spend(sketcher.guarantee, label or f"{self.name}:{self._release_counter}")
        rng = prg.derive_rng(self._noise_seed, "party-noise", self.name, self._release_counter)
        self._release_counter += 1
        return streaming.release(noise_rng=rng, label=label or self.name)

    def spent(self) -> PrivacyGuarantee:
        """Total budget spent so far (basic composition)."""
        return self.accountant.total_basic()


class SketchingSession:
    """Shared public configuration binding a set of parties together."""

    def __init__(self, config: SketchConfig, budget: PrivacyGuarantee | None = None) -> None:
        self.config = config
        self.budget = budget
        self.sketcher = PrivateSketcher(config)
        self.parties: dict[str, Party] = {}

    def create_party(self, name: str, noise_seed: int | None = None) -> Party:
        """Register a data owner; ``noise_seed`` stays secret to them."""
        if name in self.parties:
            raise ValueError(f"party {name!r} already exists")
        party = Party(self, name, noise_seed)
        self.parties[name] = party
        return party

    def serve(
        self,
        *batches: SketchBatch,
        shard_capacity: int | None = None,
        policy: ExecutionPolicy | None = None,
        storage=None,
    ) -> DistanceService:
        """Stand up a distance-serving endpoint over released batches.

        Builds a :class:`~repro.serving.store.ShardedSketchStore`,
        appends any ``batches`` already released, and returns the
        :class:`~repro.serving.service.DistanceService` whose
        :meth:`~repro.serving.service.DistanceService.execute` answers
        the typed query algebra of :mod:`repro.serving.queries`.  The
        store stays reachable via ``service.store`` for incremental
        adds and for persistence (``store.save`` /
        ``ShardedSketchStore.load``).  ``policy`` selects serial or
        shard-parallel query execution
        (:class:`~repro.serving.execution.ExecutionPolicy`).

        The store is pinned to this session's configuration digest, so
        every batch — here and in any later ``service.store.add_batch``
        — must come from this session's configuration or is rejected
        up front (the check lives in the store layer; see
        ``ShardedSketchStore(expected_digest=...)``).  ``storage``
        selects the store's precision
        (:class:`~repro.serving.storage.StorageSpec`; default from
        ``REPRO_STORE_DTYPE``, falling back to full-precision ``f8``).
        """
        return DistanceService.from_batches(
            *batches,
            shard_capacity=shard_capacity,
            policy=policy,
            expected_digest=self.config.digest(),
            storage=storage,
        )

    # Estimation requires only published sketches, so these simply proxy
    # the stateless estimator functions for convenience.

    def estimate_sq_distance(self, a: PrivateSketch, b: PrivateSketch) -> float:
        return estimators.estimate_sq_distance(a, b)

    def estimate_distance(self, a: PrivateSketch, b: PrivateSketch) -> float:
        return estimators.estimate_distance(a, b)

    def estimate_inner_product(self, a: PrivateSketch, b: PrivateSketch) -> float:
        return estimators.estimate_inner_product(a, b)

    def estimate_sq_norm(self, sketch: PrivateSketch) -> float:
        return estimators.estimate_sq_norm(sketch)

    def pairwise_sq_distances(self, batch: SketchBatch) -> np.ndarray:
        return estimators.pairwise_sq_distances(batch)

    def cross_sq_distances(self, batch_a: SketchBatch, batch_b: SketchBatch) -> np.ndarray:
        return estimators.cross_sq_distances(batch_a, batch_b)

    def sq_norms(self, batch: SketchBatch) -> np.ndarray:
        return estimators.sq_norms(batch)
