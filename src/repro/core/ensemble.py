"""Median-of-estimates ensembles: trading budget for tail robustness.

The JL lemma's failure probability ``beta`` is driven down by
*repetition*: run ``R`` independent sketches and take the median of the
``R`` unbiased estimates.  The paper uses the same repetition argument
implicitly (``k = Theta(alpha^-2 log(1/beta))`` bakes the boost into
one transform); the ensemble makes the trade explicit and composable —
each repetition runs at ``epsilon/R`` so the *total* budget under basic
composition equals the configured ``epsilon``.

The median estimator is no longer exactly unbiased (the per-repetition
distribution is mildly skewed), but its deviation probability decays
exponentially in ``R`` instead of polynomially via Chebyshev — the
right tool when a single wild estimate is worse than a small bias.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass

from repro.core import estimators
from repro.core.sketch import PrivateSketch, PrivateSketcher, SketchConfig
from repro.dp.mechanisms import PrivacyGuarantee
from repro.hashing import prg


@dataclass(frozen=True)
class EnsembleSketch:
    """An ordered tuple of per-repetition private sketches."""

    sketches: tuple[PrivateSketch, ...]

    @property
    def repetitions(self) -> int:
        return len(self.sketches)

    def to_bytes(self) -> bytes:
        """Length-prefixed concatenation of the member sketches."""
        parts = [len(self.sketches).to_bytes(4, "big")]
        for sketch in self.sketches:
            blob = sketch.to_bytes()
            parts.append(len(blob).to_bytes(8, "big"))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EnsembleSketch":
        count = int.from_bytes(blob[:4], "big")
        offset = 4
        sketches = []
        for _ in range(count):
            size = int.from_bytes(blob[offset : offset + 8], "big")
            offset += 8
            sketches.append(PrivateSketch.from_bytes(blob[offset : offset + size]))
            offset += size
        if offset != len(blob):
            raise ValueError("trailing bytes after the last ensemble member")
        return cls(tuple(sketches))


class EnsembleSketcher:
    """``R`` independent sketchers at ``epsilon/R`` each; median estimates.

    The total privacy cost of one :meth:`sketch` call is exactly the
    configured ``(epsilon, delta)`` (basic composition over the ``R``
    members, each calibrated at ``epsilon/R`` and ``delta/R``).
    """

    def __init__(self, config: SketchConfig, repetitions: int = 5) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.config = config
        self.repetitions = int(repetitions)
        self.members: list[PrivateSketcher] = []
        for r in range(repetitions):
            child = dataclasses.replace(
                config,
                epsilon=config.epsilon / repetitions,
                delta=config.delta / repetitions,
                seed=prg.child_seed(config.seed, "ensemble", r),
            )
            self.members.append(PrivateSketcher(child))

    @property
    def guarantee(self) -> PrivacyGuarantee:
        """Total guarantee of one ensemble release (basic composition)."""
        total = self.members[0].guarantee
        for member in self.members[1:]:
            total = total.compose(member.guarantee)
        return total

    def sketch(self, x, noise_rng=None, label: str = "") -> EnsembleSketch:
        """Release one sketch per member (one full budget unit in total)."""
        generator = prg.as_generator(noise_rng)
        return EnsembleSketch(
            tuple(member.sketch(x, noise_rng=generator, label=label) for member in self.members)
        )

    def estimate_sq_distance(self, a: EnsembleSketch, b: EnsembleSketch) -> float:
        """Median of the per-repetition unbiased estimates."""
        self._check(a, b)
        values = [
            estimators.estimate_sq_distance(sa, sb)
            for sa, sb in zip(a.sketches, b.sketches)
        ]
        return float(statistics.median(values))

    def estimate_sq_distance_mean(self, a: EnsembleSketch, b: EnsembleSketch) -> float:
        """Mean combiner: exactly unbiased, but no tail boost."""
        self._check(a, b)
        values = [
            estimators.estimate_sq_distance(sa, sb)
            for sa, sb in zip(a.sketches, b.sketches)
        ]
        return float(sum(values) / len(values))

    def _check(self, a: EnsembleSketch, b: EnsembleSketch) -> None:
        if a.repetitions != self.repetitions or b.repetitions != self.repetitions:
            raise ValueError(
                f"ensemble size mismatch: sketcher has {self.repetitions}, "
                f"sketches have {a.repetitions} and {b.repetitions}"
            )
