"""Note 5's mechanism selection rule.

Given the transform's sensitivities and the target ``(epsilon, delta)``,
choose the noise family minimising the estimator variance:

* ``delta = 0`` forces Laplace (only the Laplace mechanism delivers
  pure DP);
* otherwise Laplace wins iff ``Delta_1 < Delta_2 sqrt(ln(1/delta))``,
  equivalently ``delta < exp(-Delta_1^2 / Delta_2^2)`` (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dp.mechanisms import (
    AdditiveMechanism,
    discrete_gaussian_mechanism,
    discrete_laplace_mechanism,
    gaussian_mechanism,
    laplace_mechanism,
)
from repro.theory.bounds import laplace_beats_gaussian_threshold
from repro.utils.validation import check_positive, check_probability

#: Noise families the sketcher understands.
NOISE_CHOICES = ("auto", "laplace", "gaussian", "discrete_laplace", "discrete_gaussian")


@dataclass(frozen=True)
class MechanismChoice:
    """The outcome of the Note 5 rule, with its reasoning captured."""

    noise_name: str
    threshold_delta: float
    reason: str


def choose_noise_name(delta1: float, delta2: float, epsilon: float, delta: float) -> MechanismChoice:
    """Apply Note 5: pick ``laplace`` or ``gaussian``."""
    check_positive(delta1, "delta1")
    check_positive(delta2, "delta2")
    check_positive(epsilon, "epsilon")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    threshold = laplace_beats_gaussian_threshold(delta1, delta2)
    if delta == 0.0:
        return MechanismChoice(
            "laplace", threshold, "delta = 0 requires pure DP; only Laplace delivers it"
        )
    delta = check_probability(delta, "delta")
    if delta < threshold:
        return MechanismChoice(
            "laplace",
            threshold,
            f"delta = {delta:.3g} < exp(-Delta1^2/Delta2^2) = {threshold:.3g}: "
            "Laplace variance is lower (Eq. 3)",
        )
    return MechanismChoice(
        "gaussian",
        threshold,
        f"delta = {delta:.3g} >= exp(-Delta1^2/Delta2^2) = {threshold:.3g}: "
        "Gaussian variance is lower (Eq. 3)",
    )


def build_mechanism(
    noise_name: str,
    delta1: float,
    delta2: float,
    epsilon: float,
    delta: float,
    analytic_gaussian: bool = False,
) -> AdditiveMechanism:
    """Instantiate the calibrated mechanism for a resolved noise name."""
    if noise_name == "laplace":
        return laplace_mechanism(delta1, epsilon)
    if noise_name == "discrete_laplace":
        return discrete_laplace_mechanism(delta1, epsilon)
    if noise_name == "gaussian":
        _require_delta(noise_name, delta)
        return gaussian_mechanism(delta2, epsilon, delta, analytic=analytic_gaussian)
    if noise_name == "discrete_gaussian":
        _require_delta(noise_name, delta)
        return discrete_gaussian_mechanism(delta2, epsilon, delta, analytic=True)
    raise ValueError(f"unknown noise {noise_name!r}; choose from {NOISE_CHOICES}")


def _require_delta(noise_name: str, delta: float) -> None:
    if delta <= 0:
        raise ValueError(
            f"{noise_name} noise provides only approximate DP; set delta > 0 "
            "or use laplace/discrete_laplace for pure DP"
        )
