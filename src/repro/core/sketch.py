"""The public sketching API: configuration, sketcher and private sketches.

A :class:`PrivateSketcher` owns a public random transform (derived from
the shared seed) and a calibrated noise distribution (chosen by Note 5
unless pinned).  Calling :meth:`PrivateSketcher.sketch` on a vector
returns a :class:`PrivateSketch` — safe to publish — from which squared
distances, norms and inner products can be estimated without further
access to the data.

Typical use::

    config = SketchConfig(input_dim=10_000, epsilon=1.0)
    sketcher = PrivateSketcher(config)
    sketch_x = sketcher.sketch(x)        # done by the party holding x
    sketch_y = sketcher.sketch(y)        # done by the party holding y
    d2 = sketcher.estimate_sq_distance(sketch_x, sketch_y)

Batch use — the matrix-shaped workload of all-pairs distance release.
:meth:`PrivateSketcher.sketch_batch` sketches every row of a matrix in
one vectorised pass (one independent noise draw per row, one shared
config digest) and returns a :class:`SketchBatch`, from which the
analyst-side matrix estimators answer whole query workloads at once::

    batch = sketcher.sketch_batch(X)               # X is (n, d)
    d2_matrix = sketcher.pairwise_sq_distances(batch)   # (n, n)
    norms = sketcher.sq_norms(batch)                    # (n,)

Row ``i`` of a batch equals ``sketcher.sketch(X[i])`` with the same
noise stream, so the scalar and batch paths are interchangeable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.core import estimators
from repro.core.mechanism_choice import (
    NOISE_CHOICES,
    MechanismChoice,
    build_mechanism,
    choose_noise_name,
)
from repro.core.variance import (
    chebyshev_interval,
    fjlt_transform_variance_bound,
    fjlt_variance_coefficient,
    general_variance,
    input_perturbation_variance_bound,
    sjlt_transform_variance_bound,
)
from repro.dp.mechanisms import PrivacyGuarantee
from repro.dp.noise import noise_from_spec
from repro.dp.sensitivity import SensitivityProfile, sensitivity_profile
from repro.hashing import prg
from repro.theory.bounds import (
    jl_output_dimension,
    optimal_output_dimension,
    sjlt_dimensions,
    sjlt_sparsity,
)
from repro.transforms import TRANSFORMS, create_transform
from repro.utils.timing import Timer
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_positive,
    check_unit_range,
)

_PERTURBATIONS = ("auto", "output", "input")


@dataclass(frozen=True)
class SketchConfig:
    """Everything needed to reconstruct a sketcher (the *public* state).

    Parameters
    ----------
    input_dim:
        Dimension ``d`` of the data vectors.
    epsilon, delta:
        The per-release differential-privacy target.  ``delta = 0``
        requests pure DP (forces a Laplace-family noise).
    alpha, beta:
        JL accuracy parameters; used to derive ``output_dim`` and
        ``sparsity`` when they are not given explicitly.
    transform:
        Registry name: ``sjlt`` (default, the paper's main result),
        ``fjlt``, ``gaussian`` (Kenthapadi), ``achlioptas`` or ``dks``.
    noise:
        ``auto`` (Note 5 rule), or pin one of ``laplace``, ``gaussian``,
        ``discrete_laplace``, ``discrete_gaussian``.
    perturbation:
        ``output`` (noise on the sketch, the paper's main setting) or
        ``input`` (noise on the data, Lemma 8); ``auto`` maps the FJLT
        to ``input`` and everything else to ``output``.
    seed:
        The **public** transform seed shared by all parties.
    """

    input_dim: int
    epsilon: float
    delta: float = 0.0
    alpha: float = 0.25
    beta: float = 0.05
    transform: str = "sjlt"
    noise: str = "auto"
    perturbation: str = "auto"
    output_dim: int | None = None
    sparsity: int | None = None
    seed: int = 0
    analytic_gaussian: bool = False
    sjlt_construction: str = "block"
    fjlt_density: float | None = None

    def __post_init__(self) -> None:
        if self.input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {self.input_dim}")
        check_positive(self.epsilon, "epsilon")
        if self.delta < 0 or self.delta >= 1:
            raise ValueError(f"delta must lie in [0, 1), got {self.delta}")
        check_unit_range(self.alpha, "alpha")
        check_unit_range(self.beta, "beta")
        if self.transform not in TRANSFORMS:
            raise ValueError(
                f"unknown transform {self.transform!r}; available: {sorted(TRANSFORMS)}"
            )
        if self.noise not in NOISE_CHOICES:
            raise ValueError(f"unknown noise {self.noise!r}; choose from {NOISE_CHOICES}")
        if self.perturbation not in _PERTURBATIONS:
            raise ValueError(
                f"perturbation must be one of {_PERTURBATIONS}, got {self.perturbation!r}"
            )

    def canonical(self) -> dict:
        """A JSON-serialisable canonical form (drives the digest)."""
        return asdict(self)

    def digest(self) -> str:
        """Hash identifying sketch compatibility (same transform + noise)."""
        payload = json.dumps(self.canonical(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True, eq=False)
class PrivateSketch:
    """A released, differentially private sketch ``Sx + eta``.

    The payload plus the metadata needed to estimate from it; contains
    nothing derived from the secret noise draw beyond the values
    themselves.
    """

    values: np.ndarray
    input_dim: int
    output_dim: int
    perturbation: str
    noise_spec: dict
    noise_second_moment: float
    guarantee: PrivacyGuarantee
    config_digest: str
    label: str = ""

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing byte string."""
        header = {
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "perturbation": self.perturbation,
            "noise_spec": self.noise_spec,
            "noise_second_moment": self.noise_second_moment,
            "epsilon": self.guarantee.epsilon,
            "delta": self.guarantee.delta,
            "config_digest": self.config_digest,
            "label": self.label,
        }
        return json.dumps(header).encode("utf-8") + b"\n" + self.values.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PrivateSketch":
        """Inverse of :meth:`to_bytes`."""
        newline = blob.index(b"\n")
        header = json.loads(blob[:newline].decode("utf-8"))
        values = np.frombuffer(blob[newline + 1 :], dtype=np.float64).copy()
        if values.size != header["output_dim"]:
            raise ValueError(
                f"payload has {values.size} values, header says {header['output_dim']}"
            )
        return cls(
            values=values,
            input_dim=header["input_dim"],
            output_dim=header["output_dim"],
            perturbation=header["perturbation"],
            noise_spec=header["noise_spec"],
            noise_second_moment=header["noise_second_moment"],
            guarantee=PrivacyGuarantee(header["epsilon"], header["delta"]),
            config_digest=header["config_digest"],
            label=header.get("label", ""),
        )


@dataclass(frozen=True, eq=False)
class SketchBatch:
    """A stack of released private sketches sharing one configuration.

    ``values`` has shape ``(n, k)`` — row ``i`` is the published sketch
    of input row ``i``, carrying its own independent noise draw.  The
    metadata (noise spec, second moment, guarantee, config digest) is
    shared across rows, which is what makes the vectorised estimators
    in :mod:`repro.core.estimators` valid on whole batches at once.

    Indexing with an ``int`` materialises that row as a standalone
    :class:`PrivateSketch`; indexing with a slice or index array yields
    a sub-batch.  Iteration yields rows as sketches.
    """

    values: np.ndarray
    input_dim: int
    output_dim: int
    perturbation: str
    noise_spec: dict
    noise_second_moment: float
    guarantee: PrivacyGuarantee
    config_digest: str
    labels: tuple = ()

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-dimensional, got shape {values.shape}")
        if values.shape[1] != self.output_dim:
            raise ValueError(
                f"values have sketch dimension {values.shape[1]}, "
                f"expected output_dim={self.output_dim}"
            )
        object.__setattr__(self, "values", values)
        labels = tuple(self.labels)
        if labels and len(labels) != values.shape[0]:
            raise ValueError(
                f"got {len(labels)} labels for {values.shape[0]} rows"
            )
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.values.shape[0]

    def __iter__(self):
        return (self.row(i) for i in range(len(self)))

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            return self.row(int(item))
        values = self.values[item]
        labels = tuple(np.array(self.labels, dtype=object)[item]) if self.labels else ()
        return dataclasses.replace(self, values=values, labels=labels)

    def row(self, i: int) -> PrivateSketch:
        """Row ``i`` as a standalone :class:`PrivateSketch`."""
        n = len(self)
        if not -n <= i < n:
            raise IndexError(f"row index {i} out of range for batch of {n}")
        i %= n
        return PrivateSketch(
            values=self.values[i].copy(),
            input_dim=self.input_dim,
            output_dim=self.output_dim,
            perturbation=self.perturbation,
            noise_spec=self.noise_spec,
            noise_second_moment=self.noise_second_moment,
            guarantee=self.guarantee,
            config_digest=self.config_digest,
            label=str(self.labels[i]) if self.labels else "",
        )

    @classmethod
    def from_sketches(cls, sketches) -> "SketchBatch":
        """Stack compatible :class:`PrivateSketch` objects into a batch."""
        sketches = list(sketches)
        if not sketches:
            raise ValueError("cannot build a batch from zero sketches")
        first = sketches[0]
        for other in sketches[1:]:
            estimators.check_compatible(first, other)
        return cls(
            values=np.stack([np.asarray(s.values, dtype=np.float64) for s in sketches]),
            input_dim=first.input_dim,
            output_dim=first.output_dim,
            perturbation=first.perturbation,
            noise_spec=first.noise_spec,
            noise_second_moment=first.noise_second_moment,
            guarantee=first.guarantee,
            config_digest=first.config_digest,
            labels=tuple(s.label for s in sketches),
        )

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing byte string."""
        header = {
            "n_rows": len(self),
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "perturbation": self.perturbation,
            "noise_spec": self.noise_spec,
            "noise_second_moment": self.noise_second_moment,
            "epsilon": self.guarantee.epsilon,
            "delta": self.guarantee.delta,
            "config_digest": self.config_digest,
            "labels": [str(label) for label in self.labels],
        }
        return json.dumps(header).encode("utf-8") + b"\n" + self.values.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SketchBatch":
        """Inverse of :meth:`to_bytes`."""
        newline = blob.index(b"\n")
        header = json.loads(blob[:newline].decode("utf-8"))
        flat = np.frombuffer(blob[newline + 1 :], dtype=np.float64)
        n, k = header["n_rows"], header["output_dim"]
        if flat.size != n * k:
            raise ValueError(f"payload has {flat.size} values, header says {n} x {k}")
        return cls(
            values=flat.copy().reshape(n, k),
            input_dim=header["input_dim"],
            output_dim=k,
            perturbation=header["perturbation"],
            noise_spec=header["noise_spec"],
            noise_second_moment=header["noise_second_moment"],
            guarantee=PrivacyGuarantee(header["epsilon"], header["delta"]),
            config_digest=header["config_digest"],
            labels=tuple(header.get("labels", ())),
        )


class PrivateSketcher:
    """Builds private sketches and estimates distances between them."""

    def __init__(self, config: SketchConfig) -> None:
        self.config = config
        self.output_dim, self.sparsity = _resolve_dimensions(config)
        self.transform = _build_transform(config, self.output_dim, self.sparsity)
        self.perturbation = (
            ("input" if config.transform == "fjlt" else "output")
            if config.perturbation == "auto"
            else config.perturbation
        )

        with Timer() as timer:
            if self.perturbation == "input":
                # Perturbing the input: neighbours differ by <= 1 in l1,
                # hence also <= 1 in l2 (Lemma 8's observation).
                self.sensitivities = SensitivityProfile(l1=1.0, l2=1.0, closed_form=True)
            else:
                self.sensitivities = sensitivity_profile(self.transform)
        #: Seconds spent resolving sensitivities — the O(dk) initialisation
        #: cost of Section 2.1.1 when no closed form exists.
        self.initialization_seconds = timer.elapsed

        if config.noise == "auto":
            self.choice: MechanismChoice | None = choose_noise_name(
                self.sensitivities.l1, self.sensitivities.l2, config.epsilon, config.delta
            )
            noise_name = self.choice.noise_name
        else:
            self.choice = None
            noise_name = config.noise
        self.mechanism = build_mechanism(
            noise_name,
            self.sensitivities.l1,
            self.sensitivities.l2,
            config.epsilon,
            config.delta,
            analytic_gaussian=config.analytic_gaussian,
        )

    # -- properties -----------------------------------------------------------

    @property
    def noise(self):
        """The calibrated noise distribution."""
        return self.mechanism.noise

    @property
    def guarantee(self) -> PrivacyGuarantee:
        """Per-release privacy guarantee."""
        return self.mechanism.guarantee

    @property
    def noise_dimension(self) -> int:
        """Coordinates receiving noise: ``k`` (output) or ``d`` (input)."""
        return self.config.input_dim if self.perturbation == "input" else self.output_dim

    @property
    def distance_correction(self) -> float:
        """The estimator's bias correction ``2 * noise_dim * E[eta^2]``."""
        return 2.0 * self.noise_dimension * self.noise.second_moment

    # -- sketching --------------------------------------------------------------

    def sketch(self, x, noise_rng=None, label: str = "") -> PrivateSketch:
        """Release a private sketch of ``x``.

        ``noise_rng`` is the party's *secret* randomness (a Generator,
        an int seed, or ``None`` for fresh entropy).
        """
        x = as_float_vector(x, "x")
        if x.size != self.config.input_dim:
            raise ValueError(f"x has dimension {x.size}, expected {self.config.input_dim}")
        generator = prg.as_generator(noise_rng)
        if self.perturbation == "input":
            noisy_input = x + self.noise.sample(x.size, generator)
            values = self.transform.apply(noisy_input)
        else:
            values = self.transform.apply(x) + self.noise.sample(self.output_dim, generator)
        return self._wrap(values, label)

    def sketch_batch(self, X, noise_rng=None, labels=()) -> SketchBatch:
        """Release private sketches of every row of ``X`` in one pass.

        The projection runs as a single matrix operation
        (:meth:`LinearTransform.apply_batch`) and each row receives its
        own independent noise draw, taken from ``noise_rng`` in row
        order — so a batch release matches sketching the rows one at a
        time with the same generator to machine precision (identical
        noise, identical projection up to BLAS summation order).
        ``labels`` may be empty or one label per row.
        """
        generator = prg.as_generator(noise_rng)
        if self.perturbation == "input":
            X = as_float_matrix(X, self.config.input_dim, "X")
            values = self.transform.apply_batch(
                X + self.noise.sample_rows(X.shape[0], X.shape[1], generator)
            )
        else:
            # apply_batch validates, so the common path checks X once
            values = self.transform.apply_batch(X)
            values += self.noise.sample_rows(values.shape[0], self.output_dim, generator)
        return SketchBatch(
            values=values,
            input_dim=self.config.input_dim,
            output_dim=self.output_dim,
            perturbation=self.perturbation,
            noise_spec=self.noise.spec(),
            noise_second_moment=self.noise.second_moment,
            guarantee=self.guarantee,
            config_digest=self.config.digest(),
            labels=tuple(labels),
        )

    def sketch_sparse(self, indices, values, noise_rng=None, label: str = "") -> PrivateSketch:
        """Release a sketch of a sparse vector in ``O(s * nnz + k)``.

        Only meaningful for output perturbation (input noise is dense by
        construction).
        """
        if self.perturbation == "input":
            raise ValueError("sparse sketching requires output perturbation")
        generator = prg.as_generator(noise_rng)
        projected = self.transform.apply_sparse(indices, values)
        noisy = projected + self.noise.sample(self.output_dim, generator)
        return self._wrap(noisy, label)

    def project(self, x) -> np.ndarray:
        """The *non-private* projection ``Sx`` (for tests and baselines)."""
        return self.transform.apply(as_float_vector(x, "x"))

    def _wrap(self, values: np.ndarray, label: str) -> PrivateSketch:
        return PrivateSketch(
            values=values,
            input_dim=self.config.input_dim,
            output_dim=self.output_dim,
            perturbation=self.perturbation,
            noise_spec=self.noise.spec(),
            noise_second_moment=self.noise.second_moment,
            guarantee=self.guarantee,
            config_digest=self.config.digest(),
            label=label,
        )

    # -- estimation --------------------------------------------------------------

    def estimate_sq_distance(self, a: PrivateSketch, b: PrivateSketch) -> float:
        """Unbiased estimate of ``||x - y||_2^2`` (Lemma 3 / Theorem 3)."""
        return estimators.estimate_sq_distance(a, b)

    def estimate_distance(self, a: PrivateSketch, b: PrivateSketch) -> float:
        """Estimate of ``||x - y||_2`` (clipped at zero before the root)."""
        return estimators.estimate_distance(a, b)

    def estimate_sq_norm(self, sketch: PrivateSketch) -> float:
        """Unbiased estimate of ``||x||_2^2`` from a single sketch."""
        return estimators.estimate_sq_norm(sketch)

    def estimate_inner_product(self, a: PrivateSketch, b: PrivateSketch) -> float:
        """Unbiased estimate of ``<x, y>`` (no correction needed)."""
        return estimators.estimate_inner_product(a, b)

    def pairwise_sq_distances(self, batch: SketchBatch) -> np.ndarray:
        """All-pairs unbiased squared-distance estimates within a batch."""
        return estimators.pairwise_sq_distances(batch)

    def cross_sq_distances(self, batch_a: SketchBatch, batch_b: SketchBatch) -> np.ndarray:
        """Unbiased squared-distance estimates between two batches."""
        return estimators.cross_sq_distances(batch_a, batch_b)

    def sq_norms(self, batch: SketchBatch) -> np.ndarray:
        """Unbiased squared-norm estimates for every row of a batch."""
        return estimators.sq_norms(batch)

    # -- theory ---------------------------------------------------------------------

    def theoretical_variance(self, dist_sq: float) -> float:
        """Lemma 3 variance of the distance estimator at true ``||x-y||^2``.

        Uses the transform's variance *bound* (2/k for SJLT-style maps,
        3/k for the FJLT), so this upper-bounds the Monte-Carlo variance.
        """
        k = self.output_dim
        if self.config.transform == "fjlt":
            transform_var = fjlt_transform_variance_bound(k, dist_sq)
        else:
            transform_var = sjlt_transform_variance_bound(k, dist_sq)
        if self.perturbation == "output":
            return general_variance(
                k, dist_sq, self.noise.second_moment, self.noise.fourth_moment, transform_var
            )
        # Input perturbation: the difference noise w = eta - mu has
        # E[w^2] = 2 m2 and E[w^4] = 2 m4 + 6 m2^2.
        m2, m4 = self.noise.second_moment, self.noise.fourth_moment
        if self.config.transform == "fjlt":
            coefficient = fjlt_variance_coefficient(
                self.transform.padded_dim, self.transform.density
            )
        else:
            coefficient = 2.0  # Lemma 10 holds per fixed vector
        return input_perturbation_variance_bound(
            k, self.config.input_dim, dist_sq, 2.0 * m2, 2.0 * m4 + 6.0 * m2**2, coefficient
        )

    def recommended_output_dim(self, max_sq_distance: float) -> int:
        """Section 6.2.1's variance-minimising ``k*`` for a known domain."""
        return optimal_output_dimension(
            max_sq_distance, self.noise.second_moment, self.noise.fourth_moment
        )

    def distance_confidence_interval(
        self, a: PrivateSketch, b: PrivateSketch, failure_prob: float = 0.05
    ) -> tuple[float, float]:
        """Chebyshev interval for ``||x - y||^2`` around the estimate.

        Plugs the (clipped) point estimate into the theoretical variance
        formula, so the interval is approximate when the estimate is far
        from the truth, but remains conservative in the regimes the
        paper targets (variance grows with distance).
        """
        estimate = estimators.estimate_sq_distance(a, b)
        variance = self.theoretical_variance(max(estimate, 0.0))
        return chebyshev_interval(estimate, variance, failure_prob)


def _resolve_dimensions(config: SketchConfig) -> tuple[int, int | None]:
    """Derive ``(output_dim, sparsity)`` from the config and JL theory."""
    k = config.output_dim
    s = config.sparsity
    needs_sparsity = config.transform in ("sjlt", "dks")
    if not needs_sparsity:
        if s is not None:
            raise ValueError(f"transform {config.transform!r} takes no sparsity")
        return (k if k is not None else jl_output_dimension(config.alpha, config.beta)), None

    if k is None and s is None:
        return sjlt_dimensions(config.alpha, config.beta)
    if k is None:
        k = jl_output_dimension(config.alpha, config.beta)
    if s is None:
        s = min(sjlt_sparsity(config.alpha, config.beta), k)
    if s < 1 or s > k:
        raise ValueError(f"sparsity must lie in [1, {k}], got {s}")
    if config.transform == "sjlt" and k % s:
        k += s - (k % s)  # round k up so the block construction is valid
    return k, s


def _build_transform(config: SketchConfig, output_dim: int, sparsity: int | None):
    kwargs: dict = {}
    if config.transform in ("sjlt", "dks"):
        kwargs["sparsity"] = sparsity
    if config.transform == "sjlt":
        kwargs["construction"] = config.sjlt_construction
    if config.transform == "fjlt":
        kwargs["beta"] = config.beta
        if config.fjlt_density is not None:
            kwargs["density"] = config.fjlt_density
    return create_transform(
        config.transform, config.input_dim, output_dim, seed=config.seed, **kwargs
    )


def rebuild_noise(sketch: PrivateSketch):
    """Reconstruct the noise distribution recorded in a sketch."""
    return noise_from_spec(sketch.noise_spec)
