"""Fast Walsh-Hadamard transform (FWHT).

The FJLT of Ailon & Chazelle multiplies by a normalised Hadamard matrix
``H`` with ``H[f, j] = (-1)^<f-1, j-1> / sqrt(d)`` (binary inner product
of the index bits) — the Sylvester ordering computed by the classic
in-place butterfly recursion in ``O(d log d)``.
"""

from __future__ import annotations

import numpy as np


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def fwht(x, normalized: bool = False) -> np.ndarray:
    """Walsh-Hadamard transform along the last axis.

    Parameters
    ----------
    x:
        Array whose last-axis length is a power of two.
    normalized:
        If true, scale by ``1/sqrt(n)`` so the transform is orthonormal
        (``fwht(fwht(x, True), True) == x``).

    Returns a new array; the input is not modified.
    """
    arr = np.array(x, dtype=np.float64, copy=True)
    n = arr.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"FWHT length must be a power of two, got {n}")
    flat = arr.reshape(-1, n)
    half = 1
    while half < n:
        view = flat.reshape(flat.shape[0], n // (2 * half), 2, half)
        top = view[:, :, 0, :].copy()
        bottom = view[:, :, 1, :].copy()
        view[:, :, 0, :] = top + bottom
        view[:, :, 1, :] = top - bottom
        half *= 2
    if normalized:
        flat /= np.sqrt(n)
    return flat.reshape(arr.shape)


def hadamard_matrix(n: int, normalized: bool = False) -> np.ndarray:
    """The ``n x n`` Sylvester Hadamard matrix (``n`` a power of two)."""
    if not is_power_of_two(n):
        raise ValueError(f"Hadamard order must be a power of two, got {n}")
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    if normalized:
        h = h / np.sqrt(n)
    return h


def pad_to_power_of_two(x: np.ndarray) -> np.ndarray:
    """Zero-pad the last axis of ``x`` up to the next power of two."""
    n = x.shape[-1]
    target = next_power_of_two(n)
    if target == n:
        return x
    pad_width = [(0, 0)] * (x.ndim - 1) + [(0, target - n)]
    return np.pad(x, pad_width)
