"""The linear-transform abstraction every JL projection implements.

A transform is a random ``k x d`` matrix ``S`` with the Length Preserving
Property (Definition 4): ``E[||Sx||^2] = ||x||^2``.  The privacy analysis
only needs two more things from it: its exact ``l_p``-sensitivities
(Definition 3: the maximum column ``p``-norm) and, for streaming, the
embedding of a single coordinate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_batch, as_float_matrix, check_index

try:  # scipy is optional: CooProjector falls back to a bincount scatter
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

#: Max contribution-buffer entries per chunk in the bincount fallback.
_SCATTER_BUFFER = 1 << 22


class LinearTransform(ABC):
    """A random linear map ``S : R^d -> R^k`` satisfying LPP.

    Subclasses must be deterministic functions of their ``seed`` so that
    distributed parties sharing the seed construct identical transforms.
    """

    #: Short identifier used by the factory and in experiment tables.
    name: str = "abstract"

    def __init__(self, input_dim: int, output_dim: int, seed: int) -> None:
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        if output_dim < 1:
            raise ValueError(f"output_dim must be >= 1, got {output_dim}")
        self.input_dim = int(input_dim)
        self.output_dim = int(output_dim)
        self.seed = int(seed)

    # -- projection ---------------------------------------------------------

    def apply(self, x) -> np.ndarray:
        """Project ``x`` (a ``(d,)`` vector or ``(n, d)`` batch) to ``R^k``."""
        batch, single = self._as_batch(x)
        out = self._apply_batch(np.ascontiguousarray(batch))
        return out[0] if single else out

    def apply_batch(self, X) -> np.ndarray:
        """Project an ``(n, d)`` matrix of row vectors to ``(n, k)``.

        The batched entry point every vectorised caller should use: one
        validated pass through the transform's matrix implementation
        (a single BLAS call or sparse matmul) instead of a Python loop
        per row.  ``n = 0`` is legal and yields a ``(0, k)`` result.
        """
        return self._apply_batch(as_float_matrix(X, self.input_dim, "X"))

    @abstractmethod
    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        """Core projection of a validated ``(n, d)`` float64 matrix.

        Row ``i`` of the result must equal ``apply(X[i])`` exactly (same
        floating-point summation order), so the batch and scalar paths
        stay interchangeable to machine precision.
        """

    def apply_sparse(self, indices, values) -> np.ndarray:
        """Project a sparse vector given as parallel ``(indices, values)``.

        Default: densify and call :meth:`apply`.  Sparse transforms
        override this with an ``O(s * nnz)`` path (Theorem 3, item 5).
        """
        x = np.zeros(self.input_dim)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.input_dim):
            raise ValueError("sparse indices outside input dimension")
        np.add.at(x, indices, np.asarray(values, dtype=np.float64))
        return self.apply(x)

    # -- streaming ----------------------------------------------------------

    @property
    def update_cost(self) -> int:
        """Number of sketch coordinates touched by one coordinate update."""
        return self.output_dim

    def coordinate_embedding(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(rows, values)`` with ``S e_index = sum values[r] e_rows[r]``.

        A streaming sketch absorbs the update ``(index, delta)`` by adding
        ``delta * values`` at ``rows`` — ``O(s)`` for sparse transforms.
        """
        index = check_index(index, self.input_dim)
        column = self.column_block(np.array([index]))[:, 0]
        rows = np.nonzero(column)[0]
        return rows, column[rows]

    # -- materialisation & sensitivity --------------------------------------

    def column_block(self, indices) -> np.ndarray:
        """Columns ``S[:, indices]`` as a dense ``(k, len(indices))`` array.

        Default implementation applies the transform to basis vectors;
        this is the ``O(dk)`` initialisation cost that Section 2.1.1
        attributes to exact sensitivity computation.
        """
        indices = np.asarray(indices, dtype=np.int64)
        basis = np.zeros((indices.size, self.input_dim))
        basis[np.arange(indices.size), indices] = 1.0
        return self.apply(basis).T

    def to_dense(self) -> np.ndarray:
        """Materialise ``S`` as a dense ``(k, d)`` array (test-sized only)."""
        return self.column_block(np.arange(self.input_dim))

    def sensitivity(self, p: float, block_size: int = 256) -> float:
        """Exact ``l_p``-sensitivity: ``max_j ||S e_j||_p`` (Definition 3).

        Subclasses with closed-form sensitivities (e.g. the SJLT's
        ``Delta_1 = sqrt(s)``, ``Delta_2 = 1``) override this to avoid
        the ``O(dk)`` scan.
        """
        return exact_sensitivity(self, p, block_size=block_size)

    @property
    def has_closed_form_sensitivity(self) -> bool:
        """Whether :meth:`sensitivity` avoids the ``O(dk)`` initialisation."""
        return type(self).sensitivity is not LinearTransform.sensitivity

    # -- helpers -------------------------------------------------------------

    def _as_batch(self, x) -> tuple[np.ndarray, bool]:
        return as_batch(x, self.input_dim, "x")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(input_dim={self.input_dim}, "
            f"output_dim={self.output_dim}, seed={self.seed})"
        )


class CooProjector:
    """Batched multiplication by a sparse ``(k, m)`` matrix given in COO form.

    The shared engine behind the sparse transforms' ``_apply_batch``:
    duplicate ``(row, col)`` entries are summed, matching the scatter-add
    semantics of the per-row ``bincount`` paths.  Uses ``scipy.sparse``
    (one CSR matmul per batch) when available and falls back to a
    chunked ``bincount`` scatter otherwise, so there is no hard scipy
    dependency.
    """

    def __init__(self, rows, cols, values, output_dim: int, input_dim: int) -> None:
        self.output_dim = int(output_dim)
        self.input_dim = int(input_dim)
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if not rows.shape == cols.shape == values.shape:
            raise ValueError("rows, cols and values must be parallel arrays")
        self._matrix = None
        self._coo = None
        if _scipy_sparse is not None:
            # stored transposed, (m, k): right-multiplying a C-ordered
            # batch is measurably faster than ``(S @ X.T).T`` because
            # scipy then walks the dense operand contiguously
            self._matrix = _scipy_sparse.csr_matrix(
                (values, (cols, rows)), shape=(self.input_dim, self.output_dim)
            )
        else:
            self._coo = (rows, cols, values)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Map ``(n, m)`` rows through the matrix -> ``(n, k)`` rows."""
        if self._matrix is not None:
            return np.ascontiguousarray(X @ self._matrix)
        rows, cols, values = self._coo
        out = np.zeros((X.shape[0], self.output_dim))
        if X.shape[0] == 0 or values.size == 0:
            return out
        chunk = max(1, _SCATTER_BUFFER // values.size)
        for start in range(0, X.shape[0], chunk):
            block = X[start : start + chunk]
            m = block.shape[0]
            contributions = block[:, cols] * values[np.newaxis, :]
            offsets = rows[np.newaxis, :] + self.output_dim * np.arange(m)[:, np.newaxis]
            out[start : start + m] = np.bincount(
                offsets.ravel(),
                weights=contributions.ravel(),
                minlength=m * self.output_dim,
            ).reshape(m, self.output_dim)
        return out


def exact_sensitivity(transform: LinearTransform, p: float, block_size: int = 256) -> float:
    """Compute ``max_j ||S e_j||_p`` by scanning columns in blocks.

    This is the paper's ``O(dk)`` initialisation step (Section 2.1.1);
    EXP-SENS measures its cost and validates closed forms against it.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    worst = 0.0
    for start in range(0, transform.input_dim, block_size):
        stop = min(start + block_size, transform.input_dim)
        block = transform.column_block(np.arange(start, stop))
        if np.isinf(p):
            norms = np.abs(block).max(axis=0)
        else:
            norms = (np.abs(block) ** p).sum(axis=0) ** (1.0 / p)
        worst = max(worst, float(norms.max()))
    return worst
