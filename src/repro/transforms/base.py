"""The linear-transform abstraction every JL projection implements.

A transform is a random ``k x d`` matrix ``S`` with the Length Preserving
Property (Definition 4): ``E[||Sx||^2] = ||x||^2``.  The privacy analysis
only needs two more things from it: its exact ``l_p``-sensitivities
(Definition 3: the maximum column ``p``-norm) and, for streaming, the
embedding of a single coordinate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_batch, check_index


class LinearTransform(ABC):
    """A random linear map ``S : R^d -> R^k`` satisfying LPP.

    Subclasses must be deterministic functions of their ``seed`` so that
    distributed parties sharing the seed construct identical transforms.
    """

    #: Short identifier used by the factory and in experiment tables.
    name: str = "abstract"

    def __init__(self, input_dim: int, output_dim: int, seed: int) -> None:
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        if output_dim < 1:
            raise ValueError(f"output_dim must be >= 1, got {output_dim}")
        self.input_dim = int(input_dim)
        self.output_dim = int(output_dim)
        self.seed = int(seed)

    # -- projection ---------------------------------------------------------

    @abstractmethod
    def apply(self, x) -> np.ndarray:
        """Project ``x`` (a ``(d,)`` vector or ``(n, d)`` batch) to ``R^k``."""

    def apply_sparse(self, indices, values) -> np.ndarray:
        """Project a sparse vector given as parallel ``(indices, values)``.

        Default: densify and call :meth:`apply`.  Sparse transforms
        override this with an ``O(s * nnz)`` path (Theorem 3, item 5).
        """
        x = np.zeros(self.input_dim)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.input_dim):
            raise ValueError("sparse indices outside input dimension")
        np.add.at(x, indices, np.asarray(values, dtype=np.float64))
        return self.apply(x)

    # -- streaming ----------------------------------------------------------

    @property
    def update_cost(self) -> int:
        """Number of sketch coordinates touched by one coordinate update."""
        return self.output_dim

    def coordinate_embedding(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(rows, values)`` with ``S e_index = sum values[r] e_rows[r]``.

        A streaming sketch absorbs the update ``(index, delta)`` by adding
        ``delta * values`` at ``rows`` — ``O(s)`` for sparse transforms.
        """
        index = check_index(index, self.input_dim)
        column = self.column_block(np.array([index]))[:, 0]
        rows = np.nonzero(column)[0]
        return rows, column[rows]

    # -- materialisation & sensitivity --------------------------------------

    def column_block(self, indices) -> np.ndarray:
        """Columns ``S[:, indices]`` as a dense ``(k, len(indices))`` array.

        Default implementation applies the transform to basis vectors;
        this is the ``O(dk)`` initialisation cost that Section 2.1.1
        attributes to exact sensitivity computation.
        """
        indices = np.asarray(indices, dtype=np.int64)
        basis = np.zeros((indices.size, self.input_dim))
        basis[np.arange(indices.size), indices] = 1.0
        return self.apply(basis).T

    def to_dense(self) -> np.ndarray:
        """Materialise ``S`` as a dense ``(k, d)`` array (test-sized only)."""
        return self.column_block(np.arange(self.input_dim))

    def sensitivity(self, p: float, block_size: int = 256) -> float:
        """Exact ``l_p``-sensitivity: ``max_j ||S e_j||_p`` (Definition 3).

        Subclasses with closed-form sensitivities (e.g. the SJLT's
        ``Delta_1 = sqrt(s)``, ``Delta_2 = 1``) override this to avoid
        the ``O(dk)`` scan.
        """
        return exact_sensitivity(self, p, block_size=block_size)

    @property
    def has_closed_form_sensitivity(self) -> bool:
        """Whether :meth:`sensitivity` avoids the ``O(dk)`` initialisation."""
        return type(self).sensitivity is not LinearTransform.sensitivity

    # -- helpers -------------------------------------------------------------

    def _as_batch(self, x) -> tuple[np.ndarray, bool]:
        return as_batch(x, self.input_dim, "x")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(input_dim={self.input_dim}, "
            f"output_dim={self.output_dim}, seed={self.seed})"
        )


def exact_sensitivity(transform: LinearTransform, p: float, block_size: int = 256) -> float:
    """Compute ``max_j ||S e_j||_p`` by scanning columns in blocks.

    This is the paper's ``O(dk)`` initialisation step (Section 2.1.1);
    EXP-SENS measures its cost and validates closed forms against it.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    worst = 0.0
    for start in range(0, transform.input_dim, block_size):
        stop = min(start + block_size, transform.input_dim)
        block = transform.column_block(np.arange(start, stop))
        if np.isinf(p):
            norms = np.abs(block).max(axis=0)
        else:
            norms = (np.abs(block) ** p).sum(axis=0) ** (1.0 / p)
        worst = max(worst, float(norms.max()))
    return worst
