"""The i.i.d. normally distributed JL transform (Indyk & Motwani).

This is the transform used by Kenthapadi et al.: entries drawn i.i.d.
``N(0, 1/k)`` so that ``E[||Px||^2] = ||x||^2`` exactly (LPP) and
``Var[||Pz||^2] = 2/k * ||z||^4`` (chi-squared concentration), matching
Theorem 2's variance expression.

Its columns are dense Gaussian vectors, so the ``l2``-sensitivity is only
*concentrated around* 1 — Note 1 of the paper.  Exact calibration
therefore requires the ``O(dk)`` column scan implemented in
:func:`repro.transforms.base.exact_sensitivity`; this very cost is one of
the paper's arguments for the SJLT.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import prg
from repro.transforms.base import LinearTransform


class GaussianTransform(LinearTransform):
    """Dense i.i.d. ``N(0, 1/k)`` projection matrix."""

    name = "gaussian"

    def __init__(self, input_dim: int, output_dim: int, seed: int) -> None:
        super().__init__(input_dim, output_dim, seed)
        rng = prg.derive_rng(seed, "gaussian-transform", input_dim, output_dim)
        scale = 1.0 / math.sqrt(output_dim)
        self._matrix = scale * rng.standard_normal((output_dim, input_dim))

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        return X @ self._matrix.T

    def column_block(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return self._matrix[:, indices]

    def to_dense(self) -> np.ndarray:
        return self._matrix.copy()

    def sensitivity_tail_bound(self, threshold: float = 2.0) -> float:
        """Kenthapadi Note 1: bound on ``Pr[Delta_2 > threshold]``.

        For ``k > 2 ln d + 2 ln(1/delta')`` the ``l2``-sensitivity exceeds
        2 with probability at most ``delta'``; solving for ``delta'``
        gives this bound for general thresholds via the chi-squared tail
        ``Pr[chi^2_k > t^2 k] <= (t^2 e^{1-t^2})^{k/2}`` union-bounded
        over the ``d`` columns.
        """
        if threshold <= 1.0:
            raise ValueError(f"threshold must exceed 1, got {threshold}")
        t_sq = threshold**2
        log_tail = 0.5 * self.output_dim * (math.log(t_sq) + 1.0 - t_sq)
        return min(1.0, self.input_dim * math.exp(log_tail))
