"""The Dasgupta-Kumar-Sarlos (DKS) sparse JL transform.

Section 2.1 discusses the DKS construction [14] whose sparsity
``s = Omega~(alpha^-1 log^2(1/beta))`` Kane & Nelson later improved.
We implement the hashed variant: each column receives ``s`` signed
entries at rows drawn *with replacement*, so entries can collide within
a column (the net entry is the signed sum).  LPP still holds exactly,
but column norms — and thus sensitivities — are random, which is exactly
why the paper's block SJLT is preferable for private calibration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import prg
from repro.transforms.base import CooProjector, LinearTransform


class DKSTransform(LinearTransform):
    """Sparse JL with ``s`` signed entries per column, drawn with replacement."""

    name = "dks"

    def __init__(self, input_dim: int, output_dim: int, sparsity: int, seed: int) -> None:
        super().__init__(input_dim, output_dim, seed)
        if not 1 <= sparsity <= output_dim:
            raise ValueError(f"sparsity must lie in [1, {output_dim}], got {sparsity}")
        self.sparsity = int(sparsity)
        rng = prg.derive_rng(seed, "dks-transform", input_dim, output_dim, sparsity)
        # rows/signs have shape (s, d): entry r of column j lands at
        # rows[r, j] with sign signs[r, j].
        self._rows = rng.integers(0, output_dim, size=(sparsity, input_dim))
        self._signs = (1.0 - 2.0 * rng.integers(0, 2, size=(sparsity, input_dim))).astype(
            np.float64
        )
        self._scale = 1.0 / math.sqrt(sparsity)
        self._projector: CooProjector | None = None

    @property
    def update_cost(self) -> int:
        return self.sparsity

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        if self._projector is None:
            cols = np.broadcast_to(np.arange(self.input_dim), self._rows.shape)
            # within-column row collisions sum their signed entries,
            # matching the with-replacement construction
            self._projector = CooProjector(
                self._rows, cols, self._scale * self._signs, self.output_dim, self.input_dim
            )
        return self._projector(X)

    def apply_sparse(self, indices, values) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.input_dim):
            raise ValueError("sparse indices outside input dimension")
        rows = self._rows[:, indices].ravel()
        contributions = (self._signs[:, indices] * values[np.newaxis, :]).ravel()
        return self._scale * np.bincount(
            rows, weights=contributions, minlength=self.output_dim
        )

    def coordinate_embedding(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < self.input_dim:
            raise ValueError(f"index must lie in [0, {self.input_dim}), got {index}")
        rows = self._rows[:, index]
        values = self._scale * self._signs[:, index]
        return rows.copy(), values.copy()

    def column_block(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        block = np.zeros((self.output_dim, indices.size))
        for out_col, j in enumerate(indices):
            np.add.at(block[:, out_col], self._rows[:, j], self._scale * self._signs[:, j])
        return block
