"""The Sparser Johnson-Lindenstrauss Transform (Kane & Nelson).

Section 6.1 of the paper: for ``k = Theta(alpha^-2 log(1/beta))`` and
sparsity ``s = O(alpha^-1 log(1/beta))``, the block construction (c)
uses hash functions ``h_1..h_s : [d] -> [k/s]`` and sign functions
``phi_1..phi_s : [d] -> {-1,+1}`` from ``O(log(1/beta))``-wise
independent families and sets

    S[(i, r), j] = phi_r(j) * 1[h_r(j) = i] / sqrt(s).

Every column has *exactly* ``s`` entries of magnitude ``1/sqrt(s)``, so
the sensitivities are deterministic closed forms:

    Delta_1 = sqrt(s),   Delta_2 = 1,   Delta_p = s^(1/p - 1/2).

That determinism is the paper's key structural advantage over the
i.i.d. Gaussian transform: noise can be calibrated exactly with no
``O(dk)`` initialisation and no failure probability hidden in delta.

The graph construction (b) — ``s`` distinct rows per column chosen
uniformly — is implemented as well; we sample it with a seeded PRG
(full independence) since limited-independence without-replacement
sampling has no clean vectorised form (substitution documented in
DESIGN.md; the variance analysis only uses <= 4-wise moments, which
full independence trivially satisfies).
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import prg
from repro.hashing.kwise import KWiseHash, SignHash
from repro.transforms.base import CooProjector, LinearTransform

#: Precompute hash tables when ``s * d`` is at most this many entries.
_PRECOMPUTE_LIMIT = 1 << 22

_CONSTRUCTIONS = ("block", "graph")


class SJLT(LinearTransform):
    """Kane-Nelson sparser JL transform with exact closed-form sensitivity.

    Parameters
    ----------
    input_dim, output_dim:
        Shape of the projection (``d`` and ``k``).
    sparsity:
        Non-zeros per column ``s``; must divide ``output_dim`` for the
        block construction.
    seed:
        Public seed; identical seeds yield identical transforms.
    construction:
        ``"block"`` (paper construction (c), the default) or ``"graph"``
        (construction (b)).
    independence:
        Independence ``t`` of the polynomial hash families (block
        construction only).  The paper requires ``t = O(log(1/beta))``;
        the default 8 covers every 4th-moment argument in the analysis.
    precompute:
        ``True``/``False``/``"auto"`` — whether to materialise the
        ``(s, d)`` row/sign tables.  Lazy mode recomputes hashes per
        call, trading time for ``O(1)`` memory in ``d``.
    """

    name = "sjlt"

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        sparsity: int,
        seed: int,
        construction: str = "block",
        independence: int = 8,
        precompute="auto",
    ) -> None:
        super().__init__(input_dim, output_dim, seed)
        if construction not in _CONSTRUCTIONS:
            raise ValueError(f"construction must be one of {_CONSTRUCTIONS}, got {construction!r}")
        if not 1 <= sparsity <= output_dim:
            raise ValueError(f"sparsity must lie in [1, {output_dim}], got {sparsity}")
        if construction == "block" and output_dim % sparsity:
            raise ValueError(
                f"block construction needs sparsity | output_dim, got "
                f"s={sparsity}, k={output_dim}"
            )
        if independence < 2:
            raise ValueError(f"independence must be >= 2, got {independence}")
        self.sparsity = int(sparsity)
        self.construction = construction
        self.independence = int(independence)
        self._scale = 1.0 / math.sqrt(self.sparsity)

        if precompute == "auto":
            precompute = input_dim * sparsity <= _PRECOMPUTE_LIMIT
        self._rows: np.ndarray | None = None
        self._sign_table: np.ndarray | None = None
        self._hashes: list[KWiseHash] = []
        self._sign_hashes: list[SignHash] = []
        self._projector: CooProjector | None = None

        if construction == "block":
            block_size = output_dim // sparsity
            self._block_size = block_size
            for r in range(sparsity):
                self._hashes.append(
                    KWiseHash(independence, block_size, prg.derive_rng(seed, "sjlt-h", r))
                )
                self._sign_hashes.append(
                    SignHash(independence, prg.derive_rng(seed, "sjlt-phi", r))
                )
            if precompute:
                rows, signs = self._hash_tables(np.arange(input_dim))
                self._rows, self._sign_table = rows, signs
        else:
            self._block_size = 0
            rows, signs = _sample_graph_tables(
                input_dim, output_dim, sparsity, prg.derive_rng(seed, "sjlt-graph")
            )
            self._rows, self._sign_table = rows, signs

    # -- table construction ---------------------------------------------------

    def _hash_tables(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate block-construction hashes at ``indices`` -> ``(s, m)`` tables."""
        rows = np.empty((self.sparsity, indices.size), dtype=np.int64)
        signs = np.empty((self.sparsity, indices.size), dtype=np.float64)
        for r in range(self.sparsity):
            rows[r] = r * self._block_size + self._hashes[r](indices)
            signs[r] = self._sign_hashes[r](indices)
        return rows, signs

    def _tables_for(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._rows is not None:
            return self._rows[:, indices], self._sign_table[:, indices]
        return self._hash_tables(indices)

    def _full_tables(self) -> tuple[np.ndarray, np.ndarray]:
        if self._rows is not None:
            return self._rows, self._sign_table
        return self._hash_tables(np.arange(self.input_dim))

    # -- projection ------------------------------------------------------------

    @property
    def update_cost(self) -> int:
        return self.sparsity

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        return self._batch_projector()(X)

    def _batch_projector(self) -> CooProjector:
        """The whole transform as one sparse matmul (single hash pass).

        Cached when the hash tables are precomputed; rebuilt per call in
        lazy mode, whose memory contract is transient ``O(s d)`` — the
        same as the tables the old per-row path materialised.
        """
        if self._projector is not None:
            return self._projector
        rows, signs = self._full_tables()
        cols = np.broadcast_to(np.arange(self.input_dim), rows.shape)
        projector = CooProjector(
            rows, cols, self._scale * signs, self.output_dim, self.input_dim
        )
        if self._rows is not None:
            self._projector = projector
        return projector

    def apply_sparse(self, indices, values) -> np.ndarray:
        """Project a sparse vector in ``O(s * nnz + k)`` (Theorem 3, item 5)."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape or indices.ndim != 1:
            raise ValueError("indices and values must be parallel 1-d arrays")
        if indices.size and (indices.min() < 0 or indices.max() >= self.input_dim):
            raise ValueError("sparse indices outside input dimension")
        rows, signs = self._tables_for(indices)
        contributions = (signs * values[np.newaxis, :]).ravel()
        sketch = np.bincount(rows.ravel(), weights=contributions, minlength=self.output_dim)
        return self._scale * sketch

    def coordinate_embedding(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``s`` rows and values of column ``index`` — an ``O(s)`` update."""
        if not 0 <= index < self.input_dim:
            raise ValueError(f"index must lie in [0, {self.input_dim}), got {index}")
        rows, signs = self._tables_for(np.array([index]))
        return rows[:, 0].copy(), self._scale * signs[:, 0]

    def column_block(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        rows, signs = self._tables_for(indices)
        block = np.zeros((self.output_dim, indices.size))
        cols = np.broadcast_to(np.arange(indices.size), rows.shape)
        np.add.at(block, (rows.ravel(), cols.ravel()), self._scale * signs.ravel())
        return block

    # -- sensitivity -------------------------------------------------------------

    def sensitivity(self, p: float, block_size: int = 256) -> float:
        """Closed form ``Delta_p = s^(1/p - 1/2)`` (Section 6.2.3).

        Exact for both constructions because every column has exactly
        ``s`` non-zero entries of magnitude ``1/sqrt(s)``.
        """
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if np.isinf(p):
            return self._scale
        return float(self.sparsity) ** (1.0 / p - 0.5)


def _sample_graph_tables(
    input_dim: int, output_dim: int, sparsity: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``s`` *distinct* rows per column (construction (b)) by rejection.

    Columns with duplicate rows are redrawn wholesale; with
    ``s^2 / (2k) < 1/2`` the expected number of rounds is O(1).
    """
    rows = rng.integers(0, output_dim, size=(sparsity, input_dim))
    for _ in range(200):
        sorted_rows = np.sort(rows, axis=0)
        collided = (np.diff(sorted_rows, axis=0) == 0).any(axis=0)
        if not collided.any():
            break
        rows[:, collided] = rng.integers(0, output_dim, size=(sparsity, int(collided.sum())))
    else:  # pragma: no cover - astronomically unlikely for valid (s, k)
        raise RuntimeError("graph construction failed to avoid collisions; is s close to k?")
    signs = (1.0 - 2.0 * rng.integers(0, 2, size=(sparsity, input_dim))).astype(np.float64)
    return rows.astype(np.int64), signs
