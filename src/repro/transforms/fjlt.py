"""The Fast Johnson-Lindenstrauss Transform (Ailon & Chazelle).

Section 5.1 of the paper: ``Phi = P H D`` where

* ``D`` is a random diagonal of signs,
* ``H`` is the normalised Hadamard matrix (applied in ``O(d log d)`` via
  the FWHT),
* ``P`` is a sparse ``k x d`` matrix whose entries are ``N(0, 1/q)``
  with probability ``q = min(Theta(log^2(1/beta)/d), 1)`` and zero
  otherwise.

``E[Phi_ij^2] = 1``, so the *normalised* map ``Phi / sqrt(k)`` satisfies
LPP; this class applies the normalised map by default so it slots into
the generic estimator of Lemma 3 unchanged.

Input dimensions that are not powers of two are zero-padded (standard
FJLT practice; padding coordinates are identically zero so neither LPP
nor the sensitivities are affected).
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import prg
from repro.theory.bounds import fjlt_density
from repro.transforms.base import CooProjector, LinearTransform
from repro.transforms.hadamard import fwht, next_power_of_two


class FJLT(LinearTransform):
    """Normalised FJLT ``Phi / sqrt(k)`` with sparse Gaussian projection."""

    name = "fjlt"

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        seed: int,
        density: float | None = None,
        beta: float = 0.05,
        normalized: bool = True,
    ) -> None:
        super().__init__(input_dim, output_dim, seed)
        self.padded_dim = next_power_of_two(input_dim)
        if density is None:
            density = fjlt_density(self.padded_dim, beta)
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must lie in (0, 1], got {density}")
        self.density = float(density)
        self.normalized = bool(normalized)

        rng = prg.derive_rng(seed, "fjlt", input_dim, output_dim)
        self._diagonal_signs = (
            1.0 - 2.0 * rng.integers(0, 2, size=self.padded_dim)
        ).astype(np.float64)
        self._p_rows, self._p_cols, self._p_values = _sample_sparse_gaussian(
            output_dim, self.padded_dim, self.density, rng
        )
        self._projector: CooProjector | None = None

    @property
    def nnz(self) -> int:
        """Number of non-zero entries in the sparse projection ``P``."""
        return self._p_values.size

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        transformed = self._hadamard_stage(X)
        if self._projector is None:
            self._projector = CooProjector(
                self._p_rows, self._p_cols, self._p_values, self.output_dim, self.padded_dim
            )
        out = self._projector(transformed)
        if self.normalized:
            out /= math.sqrt(self.output_dim)
        return out

    def _hadamard_stage(self, batch: np.ndarray) -> np.ndarray:
        """Compute ``H D x`` for a batch, with zero padding to ``padded_dim``."""
        if batch.shape[1] == self.padded_dim:
            # power-of-two input: no padding needed, and the sign
            # multiply is the single copy (the input stays untouched)
            padded = batch * self._diagonal_signs[np.newaxis, :]
        else:
            padded = np.zeros((batch.shape[0], self.padded_dim))
            padded[:, : self.input_dim] = batch
            padded *= self._diagonal_signs[np.newaxis, :]
        return fwht(padded, normalized=True)

    def theoretical_apply_cost(self) -> float:
        """Model cost ``d log d + nnz(P)`` of one apply (Lemma 5)."""
        return self.padded_dim * math.log2(max(self.padded_dim, 2)) + self.nnz


def _sample_sparse_gaussian(
    k: int, d: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the sparse matrix ``P``: each entry ``N(0, 1/q)`` w.p. ``q``.

    Sampled row by row (count ~ Binomial(d, q), positions without
    replacement) to keep memory at ``O(nnz)`` instead of ``O(kd)``.
    """
    rows, cols = [], []
    for i in range(k):
        count = int(rng.binomial(d, density))
        if count == 0:
            continue
        rows.append(np.full(count, i, dtype=np.int64))
        cols.append(rng.choice(d, size=count, replace=False).astype(np.int64))
    if rows:
        row_arr = np.concatenate(rows)
        col_arr = np.concatenate(cols)
    else:  # degenerate but legal: an all-zero P
        row_arr = np.empty(0, dtype=np.int64)
        col_arr = np.empty(0, dtype=np.int64)
    values = rng.normal(0.0, 1.0 / math.sqrt(density), size=row_arr.size)
    return row_arr, col_arr, values
