"""Achlioptas' database-friendly JL transforms (binary coins).

Section 2.1.1 cites [1] (Achlioptas 2003): entries ``+-1/sqrt(k)`` with
probability 1/2 each ("dense" mode), or ``{+sqrt(3/k), 0, -sqrt(3/k)}``
with probabilities ``{1/6, 2/3, 1/6}`` ("sparse" mode).  Both satisfy
LPP exactly, and — unlike the Gaussian transform — have *deterministic*
bounded entries, so their sensitivities concentrate tightly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import prg
from repro.transforms.base import LinearTransform


class AchlioptasTransform(LinearTransform):
    """Random-sign JL projection with exactly length-preserving columns."""

    name = "achlioptas"

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        seed: int,
        sparse: bool = False,
    ) -> None:
        super().__init__(input_dim, output_dim, seed)
        self.sparse = bool(sparse)
        rng = prg.derive_rng(seed, "achlioptas-transform", input_dim, output_dim, sparse)
        if self.sparse:
            scale = math.sqrt(3.0 / output_dim)
            draws = rng.random((output_dim, input_dim))
            matrix = np.zeros((output_dim, input_dim))
            matrix[draws < 1.0 / 6.0] = scale
            matrix[draws > 5.0 / 6.0] = -scale
            self._matrix = matrix
        else:
            scale = 1.0 / math.sqrt(output_dim)
            signs = rng.integers(0, 2, size=(output_dim, input_dim))
            self._matrix = scale * (1.0 - 2.0 * signs)

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        return X @ self._matrix.T

    def column_block(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return self._matrix[:, indices]

    def to_dense(self) -> np.ndarray:
        return self._matrix.copy()

    def sensitivity(self, p: float, block_size: int = 256) -> float:
        """Closed form for the dense mode; exact scan for the sparse mode.

        Dense mode columns have all ``k`` entries of magnitude
        ``1/sqrt(k)``: ``Delta_p = k^(1/p) / sqrt(k)`` exactly.
        """
        if self.sparse:
            return super().sensitivity(p, block_size)
        k = self.output_dim
        if np.isinf(p):
            return 1.0 / math.sqrt(k)
        return k ** (1.0 / p) / math.sqrt(k)
