"""Johnson-Lindenstrauss transforms (the projection substrate).

All transforms satisfy the Length Preserving Property of Definition 4
and share the :class:`repro.transforms.base.LinearTransform` interface;
:func:`create_transform` builds one by name.
"""

from __future__ import annotations

from repro.transforms.achlioptas import AchlioptasTransform
from repro.transforms.base import LinearTransform, exact_sensitivity
from repro.transforms.dks import DKSTransform
from repro.transforms.fjlt import FJLT
from repro.transforms.gaussian import GaussianTransform
from repro.transforms.hadamard import (
    fwht,
    hadamard_matrix,
    is_power_of_two,
    next_power_of_two,
)
from repro.transforms.sjlt import SJLT

#: Registry of transform names understood by :func:`create_transform`.
TRANSFORMS = {
    "gaussian": GaussianTransform,
    "achlioptas": AchlioptasTransform,
    "dks": DKSTransform,
    "sjlt": SJLT,
    "fjlt": FJLT,
}


def create_transform(name: str, input_dim: int, output_dim: int, seed: int, **kwargs):
    """Construct a transform by registry name.

    Sparse transforms (``sjlt``, ``dks``) accept/require ``sparsity``;
    the ``fjlt`` accepts ``density``/``beta``; see each class for the
    full parameter list.
    """
    try:
        cls = TRANSFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown transform {name!r}; available: {sorted(TRANSFORMS)}"
        ) from None
    return cls(input_dim, output_dim, seed=seed, **kwargs)


__all__ = [
    "FJLT",
    "SJLT",
    "TRANSFORMS",
    "AchlioptasTransform",
    "DKSTransform",
    "GaussianTransform",
    "LinearTransform",
    "create_transform",
    "exact_sensitivity",
    "fwht",
    "hadamard_matrix",
    "is_power_of_two",
    "next_power_of_two",
]
