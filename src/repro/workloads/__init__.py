"""Synthetic workload generators.

The paper has no empirical section, so reproducing its claims requires
workloads with *controlled* ground truth: pairs at an exact Euclidean
distance, neighbouring inputs at exact ``l1`` distance 1, sparse and
binary vectors, Zipf-distributed documents and histogram update streams
(the intro motivates document comparison, nearest-neighbour search and
data streams).
"""

from repro.workloads.documents import DocumentCorpus, make_corpus
from repro.workloads.generators import (
    binary_pair,
    clustered_points,
    gaussian_vector,
    histogram_vector,
    neighboring_pair,
    pair_at_distance,
    sparse_vector,
    unit_vector,
)
from repro.workloads.streams import UpdateStream, materialize_stream

__all__ = [
    "DocumentCorpus",
    "UpdateStream",
    "binary_pair",
    "clustered_points",
    "gaussian_vector",
    "histogram_vector",
    "make_corpus",
    "materialize_stream",
    "neighboring_pair",
    "pair_at_distance",
    "sparse_vector",
    "unit_vector",
]
