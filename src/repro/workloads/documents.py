"""Synthetic bag-of-words corpora for the document-comparison scenario.

The paper's introduction lists document comparison among the motivating
applications of JL sketches.  We generate Zipf-distributed term counts
(the classic empirical law for natural-language vocabularies) so the
example and benchmarks exercise realistic sparse, skewed vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DocumentCorpus:
    """A corpus of term-count vectors plus the topic each doc was drawn from."""

    counts: np.ndarray  # shape (n_docs, vocab_size), float64 counts
    topics: np.ndarray  # shape (n_docs,), int topic labels

    @property
    def n_docs(self) -> int:
        return self.counts.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.counts.shape[1]

    def tfidf(self) -> np.ndarray:
        """Smoothed tf-idf weighting of the raw counts."""
        tf = self.counts / np.maximum(self.counts.sum(axis=1, keepdims=True), 1.0)
        df = (self.counts > 0).sum(axis=0)
        idf = np.log((1.0 + self.n_docs) / (1.0 + df)) + 1.0
        return tf * idf

    def pairwise_sq_distances(self) -> np.ndarray:
        """Exact squared Euclidean distances between all documents."""
        sq = (self.counts**2).sum(axis=1)
        gram = self.counts @ self.counts.T
        return np.maximum(sq[:, None] + sq[None, :] - 2.0 * gram, 0.0)


def make_corpus(
    n_docs: int,
    vocab_size: int,
    doc_length: int,
    rng: np.random.Generator,
    n_topics: int = 4,
    zipf_a: float = 1.3,
    topic_shift: float = 0.35,
) -> DocumentCorpus:
    """Generate a topic-structured Zipf corpus.

    Each topic permutes the head of the global Zipf vocabulary, so
    documents of the same topic are closer in Euclidean distance than
    documents of different topics — exactly the structure the
    nearest-neighbour example needs to be meaningful.
    """
    if n_docs < 1 or vocab_size < 2 or doc_length < 1 or n_topics < 1:
        raise ValueError("n_docs, doc_length, n_topics must be >= 1 and vocab_size >= 2")
    check_positive(topic_shift, "topic_shift")
    if zipf_a <= 1.0:
        raise ValueError(f"zipf_a must be > 1, got {zipf_a}")

    base_rank = np.arange(1, vocab_size + 1, dtype=np.float64)
    base_probs = base_rank**-zipf_a
    base_probs /= base_probs.sum()

    head = max(2, int(topic_shift * vocab_size))
    topic_probs = []
    for _ in range(n_topics):
        probs = base_probs.copy()
        permutation = rng.permutation(head)
        probs[:head] = probs[:head][permutation]
        topic_probs.append(probs / probs.sum())

    counts = np.zeros((n_docs, vocab_size))
    topics = rng.integers(0, n_topics, size=n_docs)
    for i, topic in enumerate(topics):
        words = rng.choice(vocab_size, size=doc_length, p=topic_probs[topic])
        np.add.at(counts[i], words, 1.0)
    return DocumentCorpus(counts=counts, topics=topics)
