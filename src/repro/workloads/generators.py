"""Vector generators with controlled ground truth.

Every generator takes an explicit ``rng`` (a ``numpy.random.Generator``)
so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def unit_vector(d: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random unit vector in ``R^d``."""
    _check_dim(d)
    while True:
        v = rng.standard_normal(d)
        norm = np.linalg.norm(v)
        if norm > 1e-12:
            return v / norm


def gaussian_vector(d: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """An i.i.d. ``N(0, scale^2)`` vector."""
    _check_dim(d)
    check_positive(scale, "scale")
    return scale * rng.standard_normal(d)


def pair_at_distance(
    d: int,
    distance: float,
    rng: np.random.Generator,
    base_scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, y)`` with ``||x - y||_2`` equal to ``distance`` exactly.

    ``x`` is a random Gaussian vector; ``y = x + distance * u`` for a
    random unit direction ``u``.  Having exact ground truth lets the
    variance experiments compare Monte-Carlo estimates against the
    theorem formulas without JL error in the reference value.
    """
    check_positive(distance, "distance")
    x = gaussian_vector(d, rng, base_scale)
    y = x + distance * unit_vector(d, rng)
    return x, y


def neighboring_pair(
    d: int,
    rng: np.random.Generator,
    mode: str = "unit_l1",
) -> tuple[np.ndarray, np.ndarray]:
    """Return neighbouring inputs ``||x - x'||_1 <= 1`` (Definition 1).

    ``mode="unit_l1"`` perturbs along a random signed convex combination
    of basis vectors (worst case for the sensitivity definition);
    ``mode="bit_flip"`` flips one coordinate of a binary vector
    (attribute-level privacy for histograms).
    """
    _check_dim(d)
    if mode == "unit_l1":
        x = gaussian_vector(d, rng)
        weights = rng.dirichlet(np.ones(min(d, 4)))
        signs = rng.choice([-1.0, 1.0], size=weights.size)
        direction = np.zeros(d)
        positions = rng.choice(d, size=weights.size, replace=False)
        direction[positions] = signs * weights
        return x, x + direction
    if mode == "bit_flip":
        x = rng.integers(0, 2, size=d).astype(np.float64)
        y = x.copy()
        flip = int(rng.integers(0, d))
        y[flip] = 1.0 - y[flip]
        return x, y
    raise ValueError(f"unknown mode {mode!r}; expected 'unit_l1' or 'bit_flip'")


def sparse_vector(
    d: int,
    nnz: int,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """A vector with exactly ``nnz`` non-zero Gaussian coordinates."""
    _check_dim(d)
    if not 1 <= nnz <= d:
        raise ValueError(f"nnz must lie in [1, {d}], got {nnz}")
    x = np.zeros(d)
    support = rng.choice(d, size=nnz, replace=False)
    x[support] = scale * rng.standard_normal(nnz)
    return x


def binary_pair(
    d: int,
    hamming: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary vectors at exact Hamming distance (squared l2 == Hamming)."""
    _check_dim(d)
    if not 0 <= hamming <= d:
        raise ValueError(f"hamming must lie in [0, {d}], got {hamming}")
    x = rng.integers(0, 2, size=d).astype(np.float64)
    y = x.copy()
    positions = rng.choice(d, size=hamming, replace=False)
    y[positions] = 1.0 - y[positions]
    return x, y


def histogram_vector(
    d: int,
    n_events: int,
    rng: np.random.Generator,
    zipf_a: float = 1.5,
) -> np.ndarray:
    """A histogram of ``n_events`` Zipf-distributed events over ``d`` bins.

    Matches the paper's user-level privacy example: one user changes the
    histogram by at most 1 in ``l1``.
    """
    _check_dim(d)
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    if zipf_a <= 1.0:
        raise ValueError(f"zipf_a must be > 1, got {zipf_a}")
    counts = np.zeros(d)
    if n_events:
        bins = np.minimum(rng.zipf(zipf_a, size=n_events) - 1, d - 1)
        np.add.at(counts, bins, 1.0)
    return counts


def clustered_points(
    d: int,
    n_points: int,
    n_clusters: int,
    rng: np.random.Generator,
    separation: float = 10.0,
    spread: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A Gaussian-mixture workload for the clustering application.

    Returns ``(points, labels, centers)``: ``n_points`` vectors drawn
    from ``n_clusters`` spherical Gaussians whose centers sit at
    pairwise distance about ``separation * sqrt(2)``.  The intro of the
    paper lists clustering among the JL applications; this generator
    gives the private-clustering example ground truth to score against.
    """
    _check_dim(d)
    if n_points < 1 or n_clusters < 1:
        raise ValueError("n_points and n_clusters must be >= 1")
    check_positive(separation, "separation")
    check_positive(spread, "spread")
    centers = separation * np.stack([unit_vector(d, rng) for _ in range(n_clusters)])
    labels = rng.integers(0, n_clusters, size=n_points)
    points = centers[labels] + spread * rng.standard_normal((n_points, d))
    return points, labels, centers


def _check_dim(d: int) -> None:
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
