"""Update streams for the streaming-sketch experiments (Theorem 3, item 4).

A stream is a sequence of ``(index, delta)`` coordinate updates; the
SJLT sketch can absorb each in ``O(s)`` time.  ``UpdateStream`` produces
seeded, replayable streams; ``materialize_stream`` folds a stream into
the equivalent dense vector so tests can assert streaming == batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class UpdateStream:
    """A replayable stream of ``(index, delta)`` updates.

    Parameters
    ----------
    dim:
        Dimension of the underlying vector.
    n_updates:
        Number of events in the stream.
    seed:
        Seed for the event sequence (replaying yields identical events).
    zipf_a:
        Skew of the index distribution; heavier heads model realistic
        item-frequency streams.
    deletions:
        Fraction of events that are deletions (negative deltas), making
        the stream a turnstile stream.
    """

    dim: int
    n_updates: int
    seed: int = 0
    zipf_a: float = 1.4
    deletions: float = 0.0

    def __post_init__(self) -> None:
        if self.dim < 1 or self.n_updates < 0:
            raise ValueError("dim must be >= 1 and n_updates >= 0")
        if self.zipf_a <= 1.0:
            raise ValueError(f"zipf_a must be > 1, got {self.zipf_a}")
        if not 0.0 <= self.deletions <= 1.0:
            raise ValueError(f"deletions must lie in [0, 1], got {self.deletions}")

    def __iter__(self) -> Iterator[tuple[int, float]]:
        rng = np.random.default_rng(self.seed)
        indices = np.minimum(rng.zipf(self.zipf_a, size=self.n_updates) - 1, self.dim - 1)
        signs = np.where(rng.random(self.n_updates) < self.deletions, -1.0, 1.0)
        for index, sign in zip(indices, signs):
            yield int(index), float(sign)

    def __len__(self) -> int:
        return self.n_updates


def materialize_stream(stream, dim: int) -> np.ndarray:
    """Fold a stream of ``(index, delta)`` events into a dense vector."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    x = np.zeros(dim)
    for index, delta in stream:
        if not 0 <= index < dim:
            raise ValueError(f"stream index {index} outside [0, {dim})")
        x[index] += delta
    return x
