"""Baselines the paper compares against (all built from scratch here)."""

from repro.baselines.kenthapadi import KenthapadiSketcher
from repro.baselines.mir import CroppedSecondMoment
from repro.baselines.nonprivate import NonPrivateJL

__all__ = ["CroppedSecondMoment", "KenthapadiSketcher", "NonPrivateJL"]
