"""Non-private JL distance estimation (the no-noise reference).

Used by the experiments to separate JL distortion from noise-induced
error: the private estimators' variance decomposes as
``Var[||Sz||^2] + noise terms`` (Lemma 3), and this baseline measures
the first summand directly.
"""

from __future__ import annotations

import numpy as np

from repro.transforms import create_transform
from repro.utils.validation import as_float_vector


class NonPrivateJL:
    """Plain JL sketching: ``||Sx - Sy||^2`` estimates ``||x - y||^2``."""

    def __init__(self, transform_name: str, input_dim: int, output_dim: int, seed: int, **kwargs):
        self.transform = create_transform(
            transform_name, input_dim, output_dim, seed=seed, **kwargs
        )

    def sketch(self, x) -> np.ndarray:
        return self.transform.apply(as_float_vector(x, "x"))

    def estimate_sq_distance(self, sketch_x: np.ndarray, sketch_y: np.ndarray) -> float:
        diff = np.asarray(sketch_x) - np.asarray(sketch_y)
        return float(np.dot(diff, diff))
