"""The Mir et al. cropped-second-moment baseline (Section 2.2).

Mir, Muthukrishnan, Nikolov & Wright analyse, for integer input
``x in Z^d`` and crop threshold ``tau``, the *cropped second moment*
``F2_tau(x) = sum_i min(x_i^2, tau)`` and give a ``2 eps``-DP estimator
with additive error ``O_eps(tau sqrt(d))`` with high probability.

We implement two honest variants:

* ``central`` — a single scalar release with Laplace noise calibrated
  to the query's global sensitivity (``<= 2 sqrt(tau) + 1`` for a unit
  ``l1`` change): error ``O(sqrt(tau)/eps)``, the best a trusted
  curator can do;
* ``local`` — each cropped coordinate perturbed independently (the
  pan-private / randomized-response regime Mir et al. work in): summing
  ``d`` Laplace(tau/eps) noises yields additive error with standard
  deviation ``sqrt(2 d) tau / eps = O_eps(tau sqrt(d))``, reproducing
  their error scaling.

The paper's point — "we see an improvement when x and y are sparse"
since the sketch error depends on ``||x - y||^2`` and ``sqrt(k) <
sqrt(d)`` — is checked in EXP-LB.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dp.mechanisms import PrivacyGuarantee
from repro.hashing import prg
from repro.utils.validation import check_positive

_MODES = ("central", "local")


class CroppedSecondMoment:
    """Differentially private cropped second moment for integer vectors."""

    def __init__(self, tau: float, epsilon: float, mode: str = "local") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.tau = check_positive(tau, "tau")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.mode = mode
        self.guarantee = PrivacyGuarantee(epsilon)

    def exact(self, x) -> float:
        """The non-private query ``sum_i min(x_i^2, tau)``."""
        x = self._as_integer_vector(x)
        return float(np.minimum(x.astype(np.float64) ** 2, self.tau).sum())

    def estimate(self, x, rng=None) -> float:
        """A private estimate of the cropped second moment."""
        x = self._as_integer_vector(x)
        generator = prg.as_generator(rng)
        cropped = np.minimum(x.astype(np.float64) ** 2, self.tau)
        if self.mode == "central":
            sensitivity = 2.0 * math.sqrt(self.tau) + 1.0
            return float(cropped.sum() + generator.laplace(0.0, sensitivity / self.epsilon))
        noise = generator.laplace(0.0, self.tau / self.epsilon, size=cropped.size)
        return float((cropped + noise).sum())

    def error_scale(self, dim: int) -> float:
        """Standard deviation of the additive error.

        ``O(sqrt(tau)/eps)`` centrally; ``O(tau sqrt(d)/eps)`` locally —
        the ``O_eps(tau sqrt(d))`` the paper quotes.
        """
        if self.mode == "central":
            return math.sqrt(2.0) * (2.0 * math.sqrt(self.tau) + 1.0) / self.epsilon
        return math.sqrt(2.0 * dim) * self.tau / self.epsilon

    @staticmethod
    def _as_integer_vector(x) -> np.ndarray:
        arr = np.asarray(x)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-d vector, got shape {arr.shape}")
        rounded = np.round(np.asarray(arr, dtype=np.float64))
        if not np.allclose(arr, rounded):
            raise ValueError("the cropped second moment is defined for integer vectors")
        return rounded.astype(np.int64)
