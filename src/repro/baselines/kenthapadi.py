"""The Kenthapadi et al. (2013) baseline: i.i.d. Gaussian JL + Gaussian noise.

Implements Theorems 1 and 2 as stated in the paper, including both
sensitivity regimes the paper discusses in Section 2.1.1:

* ``sensitivity_mode="exact"`` — compute ``Delta_2`` exactly in an
  ``O(dk)`` initialisation step (the fix suggested in Note 1), then
  calibrate ``sigma = Delta_2/eps * sqrt(2 ln(1.25/delta))`` (Lemma 2);
* ``sensitivity_mode="assumed"`` — assume ``Delta_2 <= assumed_bound``
  (the original construction's whp assumption) and accept that privacy
  silently fails for the low-probability high-sensitivity draws — the
  exact flaw Note 2 warns about, reproduced here so EXP-SENS can
  measure how often the assumption is violated;
* ``legacy_sigma=True`` — Theorem 1's original calibration
  ``sigma >= 4/eps * sqrt(log(1/delta))`` with its ``eps < ln(1/delta)``
  side condition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.variance import kenthapadi_variance
from repro.dp.mechanisms import PrivacyGuarantee, classical_gaussian_sigma
from repro.hashing import prg
from repro.transforms.gaussian import GaussianTransform
from repro.utils.timing import Timer
from repro.utils.validation import as_float_vector, check_positive, check_probability

_SENSITIVITY_MODES = ("exact", "assumed")


class KenthapadiSketcher:
    """End-to-end private distance sketching per Kenthapadi et al."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        epsilon: float,
        delta: float,
        seed: int = 0,
        sensitivity_mode: str = "exact",
        assumed_bound: float = 1.0,
        legacy_sigma: bool = False,
    ) -> None:
        if sensitivity_mode not in _SENSITIVITY_MODES:
            raise ValueError(
                f"sensitivity_mode must be one of {_SENSITIVITY_MODES}, got {sensitivity_mode!r}"
            )
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_probability(delta, "delta")
        self.transform = GaussianTransform(input_dim, output_dim, seed)
        self.sensitivity_mode = sensitivity_mode

        with Timer() as timer:
            if sensitivity_mode == "exact":
                self.l2_sensitivity = self.transform.sensitivity(2)
            else:
                self.l2_sensitivity = check_positive(assumed_bound, "assumed_bound")
        #: The O(dk) initialisation cost of Section 2.1.1 (zero when assumed).
        self.initialization_seconds = timer.elapsed

        if legacy_sigma:
            if not epsilon < math.log(1.0 / delta):
                raise ValueError(
                    "Theorem 1 requires eps < ln(1/delta) for the legacy calibration"
                )
            self.sigma = 4.0 / epsilon * math.sqrt(math.log(1.0 / delta))
        else:
            self.sigma = classical_gaussian_sigma(self.l2_sensitivity, epsilon, delta)
        self.guarantee = PrivacyGuarantee(epsilon, delta)

    @property
    def output_dim(self) -> int:
        return self.transform.output_dim

    @property
    def input_dim(self) -> int:
        return self.transform.input_dim

    def sketch(self, x, noise_rng=None) -> np.ndarray:
        """Release ``Px + eta`` with ``eta ~ N(0, sigma^2)^k``."""
        x = as_float_vector(x, "x")
        generator = prg.as_generator(noise_rng)
        return self.transform.apply(x) + generator.normal(0.0, self.sigma, self.output_dim)

    def estimate_sq_distance(self, sketch_x: np.ndarray, sketch_y: np.ndarray) -> float:
        """Theorem 2's unbiased estimator ``||u - v||^2 - 2 k sigma^2``."""
        diff = np.asarray(sketch_x) - np.asarray(sketch_y)
        return float(np.dot(diff, diff)) - 2.0 * self.output_dim * self.sigma**2

    def theoretical_variance(self, dist_sq: float) -> float:
        """Theorem 2: ``2/k ||z||^4 + 8 sigma^2 ||z||^2 + 8 sigma^4 k``."""
        return kenthapadi_variance(self.output_dim, self.sigma, dist_sq)

    def privacy_holds(self) -> bool:
        """Whether the calibration actually covers this draw's sensitivity.

        Always true in exact mode; in assumed mode this is the event
        whose failure Note 2 says destroys privacy for certain inputs.
        """
        if self.sensitivity_mode == "exact":
            return True
        return self.transform.sensitivity(2) <= self.l2_sensitivity
