"""repro — differentially private Euclidean distance sketches.

A production-quality reproduction of *"Improved Differentially Private
Euclidean Distance Approximation"* (Nina Mesing Stausholm, PODS 2021):
private Johnson-Lindenstrauss sketches from which squared Euclidean
distances, norms and inner products can be estimated without revealing
the underlying vectors.

Quickstart::

    import numpy as np
    from repro import SketchConfig, PrivateSketcher

    config = SketchConfig(input_dim=4096, epsilon=1.0)   # pure DP, SJLT
    sketcher = PrivateSketcher(config)
    sx = sketcher.sketch(x)       # party holding x
    sy = sketcher.sketch(y)       # party holding y
    d2 = sketcher.estimate_sq_distance(sx, sy)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced claim.
"""

from repro.core import (
    EnsembleSketch,
    EnsembleSketcher,
    MechanismChoice,
    Party,
    PrivateNeighborIndex,
    PrivateSketch,
    PrivateSketcher,
    SketchBatch,
    SketchConfig,
    SketchingSession,
    StreamingSketch,
    choose_noise_name,
    cross_sq_distances,
    estimate_distance,
    estimate_distance_matrix,
    estimate_inner_product,
    estimate_sq_distance,
    estimate_sq_norm,
    pairwise_sq_distances,
    sq_norms,
)
from repro.dp import PrivacyAccountant, PrivacyGuarantee
from repro.serving import (
    CrossQuery,
    DistanceClient,
    DistanceService,
    ExecutionPolicy,
    MaintenancePolicy,
    NormsQuery,
    PairwiseQuery,
    QueryResult,
    QueryStats,
    RadiusQuery,
    ReleaseCache,
    RouterService,
    RoutingSpec,
    ShardedSketchStore,
    StorageSpec,
    StoreMaintainer,
    TopKQuery,
    compact_store,
    merge_stores,
)
from repro.transforms import create_transform

__version__ = "1.0.0"


def __getattr__(name):
    # lazy for the same reason as repro.serving: keep the
    # `python -m repro.serving.server` entry point import-clean
    if name == "SketchQueryServer":
        from repro.serving.server import SketchQueryServer

        return SketchQueryServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CrossQuery",
    "DistanceClient",
    "DistanceService",
    "NormsQuery",
    "PairwiseQuery",
    "QueryResult",
    "QueryStats",
    "RadiusQuery",
    "ReleaseCache",
    "RouterService",
    "RoutingSpec",
    "SketchQueryServer",
    "TopKQuery",
    "EnsembleSketch",
    "EnsembleSketcher",
    "ExecutionPolicy",
    "MaintenancePolicy",
    "MechanismChoice",
    "Party",
    "PrivacyAccountant",
    "PrivateNeighborIndex",
    "PrivacyGuarantee",
    "PrivateSketch",
    "PrivateSketcher",
    "ShardedSketchStore",
    "StorageSpec",
    "StoreMaintainer",
    "SketchBatch",
    "SketchConfig",
    "SketchingSession",
    "StreamingSketch",
    "__version__",
    "choose_noise_name",
    "compact_store",
    "create_transform",
    "cross_sq_distances",
    "estimate_distance",
    "estimate_distance_matrix",
    "estimate_inner_product",
    "estimate_sq_distance",
    "estimate_sq_norm",
    "merge_stores",
    "pairwise_sq_distances",
    "sq_norms",
]
