"""Lightweight timing helpers for the experiment harness.

``pytest-benchmark`` handles the benchmark suite; these helpers exist for
the in-library experiments (Section 7 timing comparison) which need to
report runtimes in ascii tables without a pytest session.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context manager measuring wall-clock time in seconds."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def median_runtime(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    A small number of warmup calls is performed first so one-time numpy
    allocation and caching costs do not pollute the measurement.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])
