"""Input validation helpers used across the library.

All public entry points validate their arguments eagerly so failures
surface with a clear message at the call site instead of deep inside a
numpy broadcast.
"""

from __future__ import annotations

import numbers

import numpy as np


def as_float_vector(x, name: str = "x") -> np.ndarray:
    """Coerce ``x`` into a 1-d float64 array.

    Accepts any sequence or array of numbers.  Raises ``ValueError`` for
    empty input, non-1-d input, or non-finite entries.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def as_float_matrix(x, dim: int, name: str = "X") -> np.ndarray:
    """Coerce ``x`` into a C-contiguous ``(n, dim)`` float64 matrix.

    Accepts any 2-d sequence or array of numbers — any float dtype, any
    memory layout (Fortran-ordered and strided views are copied).  A
    zero-row matrix is legal (batch APIs treat it as "nothing to do").
    Raises ``ValueError`` for non-2-d input, a row dimension other than
    ``dim``, or non-finite entries.
    """
    arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    if arr.ndim != 2:
        raise ValueError(
            f"{name} must be 2-dimensional (one row per vector), got shape {arr.shape}"
        )
    if arr.shape[1] != dim:
        raise ValueError(f"{name} has row dimension {arr.shape[1]}, expected {dim}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def as_batch(x, dim: int, name: str = "x") -> tuple[np.ndarray, bool]:
    """Coerce ``x`` into a 2-d batch of vectors of dimension ``dim``.

    Returns ``(batch, was_single)`` where ``was_single`` indicates the
    input was a single vector (so callers can squeeze the result back).
    """
    arr = np.asarray(x, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a vector or a batch of vectors, got shape {arr.shape}")
    if arr.shape[1] != dim:
        raise ValueError(f"{name} has dimension {arr.shape[1]}, expected {dim}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr, single


def check_positive(value, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive real number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return value


def check_probability(value, name: str, allow_zero: bool = False) -> float:
    """Validate a probability in ``(0, 1)`` (or ``[0, 1)`` when ``allow_zero``)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    lower_ok = value >= 0 if allow_zero else value > 0
    if not (lower_ok and value < 1):
        bracket = "[0, 1)" if allow_zero else "(0, 1)"
        raise ValueError(f"{name} must lie in {bracket}, got {value}")
    return value


def check_unit_range(value, name: str) -> float:
    """Validate a parameter in the open interval ``(0, 1/2)`` (JL alpha/beta)."""
    value = check_probability(value, name)
    if value >= 0.5:
        raise ValueError(f"{name} must be < 1/2 (Johnson-Lindenstrauss regime), got {value}")
    return value


def check_index(index, dim: int, name: str = "index") -> int:
    """Validate an integer coordinate index into ``[0, dim)``."""
    if not isinstance(index, numbers.Integral) or isinstance(index, bool):
        raise TypeError(f"{name} must be an integer, got {type(index).__name__}")
    index = int(index)
    if not 0 <= index < dim:
        raise ValueError(f"{name} must lie in [0, {dim}), got {index}")
    return index
