"""Shared utilities: input validation, ascii tables and timing helpers."""

from repro.utils.tables import Table, format_table
from repro.utils.timing import Timer, median_runtime
from repro.utils.validation import (
    as_batch,
    as_float_vector,
    check_positive,
    check_probability,
    check_unit_range,
)

__all__ = [
    "Table",
    "Timer",
    "as_batch",
    "as_float_vector",
    "check_positive",
    "check_probability",
    "check_unit_range",
    "format_table",
    "median_runtime",
]
