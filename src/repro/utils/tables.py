"""Minimal ascii table rendering for experiment output.

The experiment harness prints paper-style tables; this module keeps the
formatting logic in one place so benches, examples and the CLI all agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A simple column-ordered table accumulating dict rows."""

    headers: list[str]
    rows: list[dict] = field(default_factory=list)
    title: str = ""

    def add_row(self, **values) -> None:
        unknown = set(values) - set(self.headers)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; headers are {self.headers}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        if name not in self.headers:
            raise KeyError(f"no column {name!r}; headers are {self.headers}")
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(headers: list[str], rows: list[dict], title: str = "") -> str:
    """Render ``rows`` (dicts keyed by header) as an aligned ascii table."""
    cells = [[_format_cell(row.get(h, "")) for h in headers] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
