"""Server-side LRU cache of released result envelopes.

**Why caching a DP release is safe.**  Every sketch this system serves
was privatised exactly once, at release time: the noise that protects
it was sampled when the data holder called
:meth:`~repro.core.sketch.PrivateSketcher.sketch` and the privacy
budget was spent then, by the accountant.  ``execute()`` is a
*deterministic post-processing* of those already-published sketches —
no query ever samples fresh randomness — so executing the identical
query against the identical store state yields a byte-identical result
envelope.  By the post-processing property of differential privacy,
re-serving that identical envelope reveals nothing beyond the first
serving and therefore **costs no additional privacy budget**.  A cache
hit and a recompute are indistinguishable to the analyst, bit for bit.

(The contrast is instructive: an *interactive* mechanism that adds
fresh noise per query — e.g. the generalized binary-tree mechanism of
arXiv 2504.03354, or DP all-pairs-distance releases in the style of
arXiv 2203.16476 — must deduplicate repeated queries precisely to
*avoid* spending budget again; there, answer reuse is a privacy
optimisation.  Here noise is baked into the stored sketches, so reuse
is purely a performance optimisation — but both exploit the same
structure: released quantities are reusable.)

**Keying.**  :class:`ReleaseCache` is a plain bounded LRU mapping an
opaque, hashable key to the encoded result-envelope bytes.  The HTTP
frontend keys entries by ``(endpoint path, request body bytes,
store-state token)`` where the token is ``(rows, config digest,
storage)``: the wire codec is canonical (sorted keys, fixed float
encoding), so equal queries encode to equal bytes, and any append to
the store changes the row count and thereby invalidates every prior
key without explicit eviction.  Entries are bounded both by count and
by total payload bytes.

The cache is thread-safe; hit/miss/eviction counters are exposed via
:meth:`ReleaseCache.stats` (the server reports them in ``/healthz``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default retained-payload budget: generous for ranking envelopes
#: (hundreds of bytes each), conservative for matrix results.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class ReleaseCache:
    """A bounded, thread-safe LRU of encoded result envelopes.

    Parameters
    ----------
    max_entries:
        Maximum number of cached envelopes; least-recently-used entries
        are evicted first.  Must be >= 1.
    max_bytes:
        Maximum total payload bytes retained.  A single value larger
        than the budget is simply not cached (storing it would evict
        everything else for one entry).
    """

    def __init__(
        self, max_entries: int = 1024, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, bytes] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key) -> bytes | None:
        """The cached envelope for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value: bytes) -> None:
        """Insert ``key -> value``, evicting LRU entries to stay bounded."""
        if len(value) > self.max_bytes:
            return  # one oversized envelope must not flush the whole cache
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = value
            self._bytes += len(value)
            while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for observability: entries, bytes, hits, misses, evictions."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
