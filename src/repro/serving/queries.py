"""Typed query objects: the algebra the serving layer answers.

The query-release framing of the metric literature (Huang & Roth,
"Exploiting Metric Structure for Efficient Private Query Release") is a
small *algebra* of distance queries answered from private state.  This
module is that algebra as data: each query kind is a frozen dataclass
that validates its own parameters at construction, and every backend —
the local :class:`~repro.serving.service.DistanceService`, the HTTP
:class:`~repro.serving.client.DistanceClient`, and any future
low-precision or multi-process engine — answers the same objects
through one ``execute(query)`` entry point.

Queries are *data, not behaviour*: they carry no reference to a store
or service, so the same object can be executed locally, serialised over
the wire (:mod:`repro.serving.wire`), replayed, or logged.  Parameter
validation (``k >= 1``, ``radius_sq >= 0``, integer indices) happens in
``__post_init__`` so a malformed query fails where it is built — at the
client — rather than deep inside a backend.  Validation *against a
store* (compatibility, empty-store rules) stays with the backend, which
is the only party that knows the store.

Every execution returns a :class:`QueryResult`: the payload plus a
:class:`QueryStats` record of what the backend actually did — shards
visited and pruned by the norm-bound prefilter, rows scanned, wall
time.  The stats make the prefilter's work-skipping observable without
monkeypatching estimators, and let a remote client see server-side cost.

Payload shapes by query kind (identical local and remote):

=================  ==========================================================
query              ``QueryResult.payload``
=================  ==========================================================
:class:`TopKQuery`     one ranking per query row: ``list[list[(label, est)]]``
:class:`RadiusQuery`   hits in ascending order: ``list[(label, est)]``
:class:`CrossQuery`    ``(n_queries, n_stored)`` ``np.ndarray``
:class:`PairwiseQuery` ``(len(indices), len(indices))`` ``np.ndarray``
:class:`NormsQuery`    ``(n_stored,)`` ``np.ndarray`` of squared-norm estimates
=================  ==========================================================

Ranking payloads (top-k, radius) report estimates clamped at zero
through :func:`repro.core.estimators.clamp_sq_estimates` — see that
function for the one documented owner of the clamping rule.  Matrix
payloads (cross, pairwise, norms) stay *unbiased* and may be negative.
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass

from repro.serving.routing import RoutingSpec

#: The union of query dataclasses — kept in one tuple so dispatchers and
#: codecs enumerate the algebra from a single place.
__all__ = [
    "CrossQuery",
    "NormsQuery",
    "PairwiseQuery",
    "QUERY_TYPES",
    "QueryResult",
    "QueryStats",
    "RadiusQuery",
    "RoutingSpec",
    "TopKQuery",
]


def _check_routing(routing) -> None:
    if routing is not None and not isinstance(routing, RoutingSpec):
        raise ValueError(
            f"routing must be a RoutingSpec or None, got {routing!r}"
        )


@dataclass(frozen=True, eq=False)
class TopKQuery:
    """The ``k`` stored entries closest to each row of ``queries``.

    ``queries`` is a released :class:`~repro.core.sketch.PrivateSketch`
    or :class:`~repro.core.sketch.SketchBatch`; the payload is one
    ranking per row (a single sketch yields a one-entry list), each a
    list of ``(label, clamped squared-distance estimate)`` pairs in
    ascending distance order, ties broken by insertion order.

    ``routing`` optionally carries a
    :class:`~repro.serving.routing.RoutingSpec`: ``nprobe=N`` trades
    recall for speed by visiting only the ``N`` nearest-centroid
    shards; the default ``None`` (and ``RoutingSpec()``) keeps results
    exact.  See :mod:`repro.serving.routing` for the contract.
    """

    #: kind tags are the wire names; they never change once released
    kind = "top_k"

    queries: object
    k: int = 1
    routing: RoutingSpec | None = None

    def __post_init__(self) -> None:
        if isinstance(self.k, bool) or not isinstance(self.k, numbers.Integral):
            raise ValueError(f"top must be an integer, got {self.k!r}")
        object.__setattr__(self, "k", int(self.k))  # np.int64 -> JSON-safe int
        if self.k < 1:
            raise ValueError(f"top must be >= 1, got {self.k}")
        _check_routing(self.routing)


@dataclass(frozen=True, eq=False)
class RadiusQuery:
    """All stored entries within squared distance ``radius_sq`` of ``query``.

    ``query`` must be a single sketch (one row); the payload is a list
    of ``(label, clamped estimate)`` hits in ascending distance order.
    The radius cut is applied to the *raw* debiased estimates, then the
    reported estimates are clamped — so membership is exactly the
    legacy rule and displayed values are never negative.
    """

    kind = "radius"

    query: object
    radius_sq: float
    routing: RoutingSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "radius_sq", float(self.radius_sq))
        if not self.radius_sq >= 0:  # rejects NaN too
            raise ValueError(f"radius_sq must be >= 0, got {self.radius_sq}")
        _check_routing(self.routing)


@dataclass(frozen=True, eq=False)
class CrossQuery:
    """The full ``(n_queries, n_stored)`` unbiased distance-estimate matrix."""

    kind = "cross"

    queries: object


@dataclass(frozen=True, eq=False)
class PairwiseQuery:
    """All-pairs unbiased estimates among the stored rows at ``indices``.

    Entry ``(i, j)`` of the payload estimates the distance between
    stored rows ``indices[i]`` and ``indices[j]``, zero diagonal by
    convention.  Negative indices address from the end, as in the
    legacy ``pairwise_submatrix``.
    """

    kind = "pairwise"

    indices: tuple

    def __post_init__(self) -> None:
        try:
            items = tuple(self.indices)
        except TypeError as exc:
            raise ValueError(
                f"indices must be a sequence of integers, got {self.indices!r}"
            ) from exc
        indices = []
        for i in items:
            # int() would silently truncate 1.9 to row 1; only exactly
            # integral values (5, np.int64(5), 5.0) are accepted
            if isinstance(i, bool) or not isinstance(i, numbers.Real):
                raise ValueError(f"indices must be a sequence of integers, got {i!r}")
            if not isinstance(i, numbers.Integral) and not float(i).is_integer():
                raise ValueError(f"indices must be a sequence of integers, got {i!r}")
            indices.append(int(i))
        object.__setattr__(self, "indices", tuple(indices))


@dataclass(frozen=True, eq=False)
class NormsQuery:
    """Unbiased squared-norm estimates for every stored row.

    Answered entirely from the store's cached per-shard norms (no
    distance block is computed), debiased by ``m E[eta^2]`` — the
    squared-norm analogue of the distance correction.
    """

    kind = "norms"


QUERY_TYPES = (TopKQuery, RadiusQuery, CrossQuery, PairwiseQuery, NormsQuery)


@dataclass(frozen=True)
class QueryStats:
    """What one execution actually did, for observability and tests.

    ``shards_pruned`` counts shards skipped without computing their
    distance block — by the norm-bound prefilter, or (for pairwise
    gathers) because no requested row lives in them; ``shards_visited``
    counts the shards whose block (or cached norms) was actually
    consumed — the two always sum to the snapshot's shard count.
    ``rows_scanned`` is the number of distinct stored rows whose
    values or cached norms fed the answer (pruned rows are never
    scanned).  ``elapsed_seconds`` is backend wall time: for a remote
    execution it is the *server-side* time, so a client can separate
    network cost from compute cost.

    ``shards_routed`` counts the shards the centroid-routing stage
    skipped — by the exact centroid-ball bound, or because an
    ``nprobe`` spec left them unprobed.  Routed shards are a subset of
    ``shards_pruned`` (they were skipped without computing a block), so
    the visited + pruned == total invariant is unchanged; the counter
    separates the routing stage's work-skipping from the norm
    prefilter's.
    """

    shards_visited: int = 0
    shards_pruned: int = 0
    shards_routed: int = 0
    rows_scanned: int = 0
    rows_total: int = 0
    elapsed_seconds: float = 0.0

    @property
    def shards_total(self) -> int:
        return self.shards_visited + self.shards_pruned

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True, eq=False)
class QueryResult:
    """One executed query: the payload plus its :class:`QueryStats`.

    ``payload`` has the kind-specific shape tabulated in the module
    docstring; ``stats`` is always present (remote backends carry the
    server's stats across the wire verbatim).
    """

    payload: object
    stats: QueryStats
