"""LSM-style background maintenance for on-disk sketch stores.

Two disk-to-disk rewrites — :func:`compact_store` and
:func:`merge_stores` — stream shard rows through the bounded block
iterators of :mod:`repro.serving.serialization`, so peak memory is
O(one block) no matter how large the store is: nothing is ever loaded,
or even memory-mapped, in full.  Both drop tombstoned rows physically
(budgets stay spent — the DP semantics of deletion are documented once,
in :mod:`repro.serving.store`).

:func:`compact_store` is *generational*: generation ``N+1`` is written
into a sibling ``gen-NNNNN`` directory inside the store root, published
by atomically replacing ``manifest.json`` once every shard is fully
written and digest-verified, and older generations are pruned — except
the immediately previous one, which in-flight readers may still be
lazily attaching.  A crash at any point leaves the old generation
loadable: staging directories and published-but-unreferenced generation
directories are orphans the next ``compact_store`` removes (the
manifest is the single source of truth for which generation is live).

:class:`MaintenancePolicy` turns the quickstart's manual
build-then-shrink workflow into an automatic rule — a hot full-precision
write tier is compacted (tombstones dropped, partial shards repacked)
and demoted to a cold quantised read tier once row/byte thresholds are
crossed — and :class:`StoreMaintainer` runs that policy from a
background thread.  A :class:`~repro.serving.server.SketchQueryServer`
watching the manifest picks each new generation up without a restart.

Like every operation downstream of release, maintenance is pure
post-processing: no rewrite, re-encode, demotion or deletion here
touches the privacy accountant.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import threading
import time
from pathlib import Path

import numpy as np

from repro.serving.routing import (
    DEFAULT_TRAIN_SAMPLE,
    ShardRouting,
    assign_rows,
    default_cluster_count,
    inflate_radius,
    kmeans_centroids,
)
from repro.serving.serialization import (
    DEFAULT_BLOCK_ROWS,
    ROUTING_BLOB_NAME,
    BatchInfo,
    StreamingBatchWriter,
    iter_batch_rows,
    read_batch_info,
    write_routing_blob,
)
from repro.serving.storage import StorageSpec
from repro.serving.store import (
    _MANIFEST_NAME,
    _MANIFEST_VERSION,
    _SHARD_PATTERN,
    _drop_dead,
    _is_positional,
    _swap_into_place,
    read_manifest,
)
from repro.core import estimators

_GENERATION_PATTERN = "gen-{:05d}"


def _generation_dirs(root: Path) -> list[Path]:
    return sorted(p for p in root.glob("gen-*") if p.is_dir())


def _clean_orphans(root: Path, live_dir: str) -> list[str]:
    """Remove crash leftovers: staging dirs and unreferenced generations.

    The manifest is the source of truth — any ``gen-*`` directory it
    does not reference was published (or half-written) by a run that
    died before (or while) replacing the manifest, and is unreachable.
    Returns the removed names, for observability and the crash tests.
    """
    removed = []
    for orphan in root.glob(".gen-*.staging-*"):
        shutil.rmtree(orphan, ignore_errors=True)
        removed.append(orphan.name)
    for gen_dir in _generation_dirs(root):
        if gen_dir.name != live_dir:
            shutil.rmtree(gen_dir, ignore_errors=True)
            removed.append(gen_dir.name)
    return removed


def _source_shards(root: Path, manifest: dict) -> list[BatchInfo]:
    shard_dir = root / manifest.get("shards_dir", "")
    return [
        read_batch_info(shard_dir / _SHARD_PATTERN.format(i))
        for i in range(manifest["n_shards"])
    ]


def _survivor_labels(
    infos: list[BatchInfo], tombstones: np.ndarray
) -> list | None:
    """Labels of the untombstoned rows, or ``None`` when all positional.

    ``None`` lets the writer elide labels entirely (they regenerate
    from row offsets on load), which keeps big-store headers small —
    exactly the rule :meth:`ShardedSketchStore.save` applies.  Any
    explicit label, or any tombstone (survivors of a deletion keep
    their old identities, which no longer match their new positions),
    forces the labels to be materialised and stored.
    """
    labels: list = []
    explicit = tombstones.size > 0
    start = 0
    for info in infos:
        shard_labels = info.labels or range(start, start + info.n_rows)
        if info.labels and not _is_positional(tuple(info.labels), start):
            explicit = True
        labels.extend(shard_labels)
        start += info.n_rows
    if not explicit:
        return None
    if tombstones.size:
        keep = np.delete(np.arange(len(labels), dtype=np.intp), tombstones)
        labels = [labels[i] for i in keep]
    return labels


def _global_scale(
    infos: list[BatchInfo], tombstones: np.ndarray, block_rows: int
) -> float:
    """One int8 step covering every live row (an extra streaming pass).

    The in-memory path derives one scale per shard as rows arrive; a
    disk-to-disk rewrite cannot know a future block's peak, so it spends
    one cheap read pass finding the store-wide peak instead and encodes
    every output shard with that single step.  The step is recorded per
    shard as usual, so readers are oblivious to the difference.
    """
    peak = 0.0
    offset = 0
    for info in infos:
        spec = info.storage_spec
        for block in _iter_live(info, tombstones, offset, block_rows):
            decoded = np.asarray(spec.decode(block, info.scale), dtype=np.float64)
            if decoded.size:
                block_peak = float(np.max(np.abs(decoded)))
                if not np.isfinite(block_peak):
                    raise ValueError("int8 storage requires finite sketch values")
                peak = max(peak, block_peak)
        offset += info.n_rows
    return StorageSpec.int8_step(peak)


def _iter_live(
    info: BatchInfo, tombstones: np.ndarray, offset: int, block_rows: int
):
    """One shard's raw code blocks with tombstoned rows dropped.

    ``tombstones`` holds *global* row indices; ``offset`` is the shard's
    global start.  Uses the serialization layer's buffered block reader,
    so the stored digest is verified as the shard drains.
    """
    lo, hi = np.searchsorted(tombstones, (offset, offset + info.n_rows))
    dead = tombstones[lo:hi] - offset
    local = 0
    for block in iter_batch_rows(info, block_rows):
        n = block.shape[0]
        if dead.size:
            block = _drop_dead(block, local, dead)
        local += n
        yield block


class _ShardRoller:
    """Streams re-encoded blocks into capacity-sized output shards.

    Owns the open :class:`StreamingBatchWriter`, splits incoming blocks
    at shard boundaries, slices each output shard's labels out of the
    survivor list (``None`` elides them), and aborts every partial file
    on error — the staging directory is all-or-nothing.
    """

    def __init__(self, staging, template, spec, scale, capacity, labels):
        self._staging = Path(staging)
        self._template = template
        self._spec = spec
        self._scale = scale
        self._capacity = capacity
        self._labels = labels
        self._writer: StreamingBatchWriter | None = None
        self._shard_rows = 0
        self.n_shards = 0
        self.n_rows = 0

    def _open(self) -> StreamingBatchWriter:
        if self._writer is None:
            self._writer = StreamingBatchWriter(
                self._staging / _SHARD_PATTERN.format(self.n_shards),
                self._template,
                storage=self._spec,
                scale=self._scale,
            )
            self._shard_rows = 0
        return self._writer

    def _roll(self) -> None:
        self._writer.commit()
        self._writer = None
        self.n_shards += 1

    def append(self, codes: np.ndarray) -> None:
        while codes.shape[0]:
            writer = self._open()
            take = min(self._capacity - self._shard_rows, codes.shape[0])
            labels = (
                ()
                if self._labels is None
                else self._labels[self.n_rows : self.n_rows + take]
            )
            writer.append(codes[:take], labels)
            codes = codes[take:]
            self._shard_rows += take
            self.n_rows += take
            if self._shard_rows == self._capacity:
                self._roll()

    def seal(self) -> None:
        """Commit the current partial shard so the next append opens a new one.

        The cluster-boundary primitive of a clustered rewrite — the
        disk-side analogue of ``ShardedSketchStore._seal_tail`` — so
        every output shard holds rows of exactly one cluster.
        """
        if self._writer is not None:
            self._roll()

    def finish(self) -> None:
        """Commit the tail shard (a zero-row one if nothing was written:
        every store needs at least one shard to carry its metadata).

        When the last append landed exactly on a capacity boundary the
        tail was already rolled — opening another writer here would add
        a spurious zero-row shard, which the partial-shard policy would
        then flag forever.
        """
        if self._writer is not None or self.n_shards == 0:
            self._open()
            self._roll()

    def abort(self) -> None:
        if self._writer is not None:
            self._writer.abort()
            self._writer = None


def _stream_shards(
    infos: list[BatchInfo],
    tombstones: np.ndarray,
    roller: _ShardRoller,
    out_spec: StorageSpec,
    scale: float | None,
    block_rows: int,
) -> None:
    """Pump every live row of ``infos`` through the roller, re-encoding.

    Same-spec float storage passes codes through verbatim (no decode
    round trip — surviving rows stay bit-identical on disk); anything
    else decodes to float64 and re-encodes, exactly like the in-memory
    path.  ``int8`` always re-encodes: output shards straddle source
    shards whose scales differ.
    """
    offset = 0
    for info in infos:
        in_spec = info.storage_spec
        passthrough = in_spec.name == out_spec.name and not out_spec.quantised
        for block in _iter_live(info, tombstones, offset, block_rows):
            if not block.shape[0]:
                continue
            if passthrough:
                roller.append(block)
            else:
                decoded = np.asarray(
                    in_spec.decode(block, info.scale), dtype=np.float64
                )
                roller.append(out_spec.encode(decoded, scale))
        offset += info.n_rows


def _iter_live_decoded(
    infos: list[BatchInfo], tombstones: np.ndarray, block_rows: int
):
    """Every live row of the store as decoded float64 blocks, in order."""
    offset = 0
    for info in infos:
        spec = info.storage_spec
        for block in _iter_live(info, tombstones, offset, block_rows):
            if block.shape[0]:
                yield np.asarray(spec.decode(block, info.scale), dtype=np.float64)
        offset += info.n_rows


def _sample_live_rows(
    infos: list[BatchInfo],
    tombstones: np.ndarray,
    block_rows: int,
    target: int = DEFAULT_TRAIN_SAMPLE,
) -> np.ndarray:
    """Deterministic stride sample of live rows — k-means training data.

    The same every-``step``-th-live-row rule as the in-memory
    ``_sample_live``, so an in-memory and a disk-to-disk clustered
    compact of the same rows train on the same sample.
    """
    total = sum(info.n_rows for info in infos) - int(tombstones.size)
    step = max(1, total // max(target, 1))
    sample, seen = [], 0
    for block in _iter_live_decoded(infos, tombstones, block_rows):
        idx = np.arange(seen, seen + block.shape[0])
        take = block[idx % step == 0]
        if take.shape[0]:
            sample.append(take)
        seen += block.shape[0]
    return np.concatenate(sample)


def _stream_clustered(
    infos: list[BatchInfo],
    tombstones: np.ndarray,
    roller: _ShardRoller,
    out_spec: StorageSpec,
    scale: float | None,
    block_rows: int,
    centroids: np.ndarray,
    base_labels: list,
    permuted: list,
) -> None:
    """Pump live rows through the roller cluster-by-cluster, re-encoding.

    One streaming pass per cluster, recomputing the (deterministic)
    assignment per block instead of materialising it — peak memory stays
    O(block) however many rows the store holds.  ``permuted`` is the
    label list the roller slices from; it is extended here, just ahead
    of each append, with the labels of the rows being appended, so the
    roller's positional slicing always finds them present.
    """
    for j in range(centroids.shape[0]):
        pos = 0
        for decoded in _iter_live_decoded(infos, tombstones, block_rows):
            member = assign_rows(decoded, centroids) == j
            if member.any():
                permuted.extend(base_labels[i] for i in np.flatnonzero(member) + pos)
                roller.append(out_spec.encode(decoded[member], scale))
            pos += decoded.shape[0]
        roller.seal()  # shard boundaries align with cluster boundaries


def _staged_routing(
    staging: Path,
    n_shards: int,
    block_rows: int,
    *,
    generation: int,
    n_clusters: int,
    seed: int,
) -> ShardRouting:
    """The routing table of a freshly staged clustered generation.

    Two streaming passes per staged shard — mean, then max distance —
    over the shard's *decoded* values (what queries will scan, so a
    quantised rewrite's rounding is inside the ball by construction),
    finished with the same :func:`~repro.serving.routing.inflate_radius`
    margin the in-memory builder applies.
    """
    centroids, radii, sizes = [], [], []
    for i in range(n_shards):
        info = read_batch_info(staging / _SHARD_PATTERN.format(i))
        spec = info.storage_spec
        total, count = None, 0
        for block in iter_batch_rows(info, block_rows):
            decoded = np.asarray(spec.decode(block, info.scale), dtype=np.float64)
            total = decoded.sum(axis=0) + (0.0 if total is None else total)
            count += decoded.shape[0]
        if count == 0:
            raise ValueError("cannot build routing over an empty shard")
        centroid = total / count
        max_sq = 0.0
        for block in iter_batch_rows(info, block_rows):
            decoded = np.asarray(spec.decode(block, info.scale), dtype=np.float64)
            diff = decoded - centroid[np.newaxis, :]
            max_sq = max(max_sq, float(np.max(np.einsum("ij,ij->i", diff, diff))))
        centroids.append(centroid)
        radii.append(
            inflate_radius(float(np.sqrt(max_sq)), float(np.linalg.norm(centroid)))
        )
        sizes.append(count)
    return ShardRouting(
        centroids=np.asarray(centroids, dtype=np.float64),
        radii=np.asarray(radii, dtype=np.float64),
        shard_sizes=tuple(sizes),
        generation=generation,
        n_clusters=n_clusters,
        seed=seed,
    )


def _resolve_clusters(routing, live_rows: int, capacity: int) -> int | None:
    """Resolve a ``routing`` argument, mirroring the in-memory rule."""
    if routing is None or routing is False:
        return None
    if live_rows == 0:
        raise ValueError("cannot build routing over an empty store")
    if routing is True:
        return default_cluster_count(live_rows, capacity)
    clusters = int(routing)
    if clusters < 1:
        raise ValueError(f"routing cluster count must be >= 1, got {clusters}")
    return clusters


def compact_store(
    path: str | os.PathLike,
    *,
    storage: StorageSpec | str | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    routing: bool | int | None = None,
    routing_seed: int = 0,
) -> dict:
    """Rewrite an on-disk store as its next generation, disk-to-disk.

    Streams every live row of the store at ``path`` into capacity-sized
    shards inside a new ``gen-NNNNN`` sibling directory — tombstoned
    rows are physically dropped, ``storage=...`` re-encodes along the
    way (the hot-f8-to-cold-f4/int8 demotion) — then atomically
    publishes the new generation by replacing ``manifest.json``.  Peak
    memory is O(``block_rows``): source shards are read in bounded
    buffered blocks (never mapped), written shards stream through a
    temp file, and each source block's digest chain is verified before
    the generation can publish.

    Readers are never broken: a store loaded (even ``mmap=True``, even
    mid-query) before the publish keeps serving its old generation —
    the previous generation's files are retained for exactly this
    reason, while generations older than that, and any crash orphans
    (staging dirs, published-but-unreferenced generations), are pruned.
    A long-running :class:`~repro.serving.server.SketchQueryServer`
    notices the manifest's new generation and hot-swaps.

    ``routing=True`` makes the rewrite *clustered*: rows are k-means
    clustered (``routing=N`` picks the cluster count; ``True`` means
    :func:`~repro.serving.routing.default_cluster_count`) and written
    cluster-by-cluster with sealed shard boundaries between clusters,
    and the generation is published with a centroid routing table the
    query plane uses for sub-linear shard selection (see
    :mod:`repro.serving.routing`).  Still O(block) memory: one extra
    streaming pass per cluster plus two per staged shard.  The default
    ``None`` keeps the order-preserving rewrite — which also drops any
    existing routing entry, since the layout it described is gone.

    Returns a summary dict (``generation``, ``rows``,
    ``tombstones_dropped``, ``shards``, ``storage``, ``routing``,
    ``pruned``).
    """
    root = Path(path)
    manifest = read_manifest(root)
    pruned = _clean_orphans(root, manifest.get("shards_dir", ""))
    infos = _source_shards(root, manifest)
    tombstones = np.asarray(
        sorted(manifest.get("tombstones", ())), dtype=np.intp
    )
    out_spec = (
        StorageSpec.parse(storage)
        if storage is not None
        else StorageSpec.parse(manifest.get("storage", "f8"))
    )
    capacity = manifest["shard_capacity"]
    live_rows = int(manifest["n_rows"]) - int(tombstones.size)
    clusters = _resolve_clusters(routing, live_rows, capacity)
    generation = int(manifest.get("generation", 0)) + 1
    gen_name = _GENERATION_PATTERN.format(generation)
    staging = root / f".{gen_name}.staging-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    labels = _survivor_labels(infos, tombstones)
    if clusters is not None:
        # the clustered order is a permutation, so positions no longer
        # encode identities: labels must be materialised and permuted
        base_labels = labels if labels is not None else list(range(live_rows))
        labels = []  # filled in cluster order by _stream_clustered
    scale = (
        _global_scale(infos, tombstones, block_rows)
        if out_spec.quantised
        else None
    )
    roller = _ShardRoller(
        staging, infos[0].meta, out_spec, scale, capacity, labels
    )
    routing_entry = None
    try:
        if clusters is not None:
            centroids = kmeans_centroids(
                _sample_live_rows(infos, tombstones, block_rows),
                clusters,
                seed=routing_seed,
            )
            _stream_clustered(
                infos, tombstones, roller, out_spec, scale, block_rows,
                centroids, base_labels, labels,
            )
            roller.finish()
            table = _staged_routing(
                staging, roller.n_shards, block_rows,
                generation=generation,
                n_clusters=int(centroids.shape[0]),
                seed=routing_seed,
            )
            digest = write_routing_blob(
                staging / ROUTING_BLOB_NAME,
                table.to_payload(),
                table.centroids,
                table.radii,
            )
            routing_entry = {
                "file": ROUTING_BLOB_NAME,
                "sha256": digest,
                "n_clusters": int(centroids.shape[0]),
                "generation": generation,
            }
        else:
            _stream_shards(infos, tombstones, roller, out_spec, scale, block_rows)
            roller.finish()
    except BaseException:
        roller.abort()
        shutil.rmtree(staging, ignore_errors=True)
        raise
    os.replace(staging, root / gen_name)
    new_manifest = {
        "manifest_version": _MANIFEST_VERSION,
        "shard_capacity": capacity,
        "n_shards": roller.n_shards,
        "n_rows": roller.n_rows,
        "storage": out_spec.name,
        "config_digest": manifest["config_digest"],
        "generation": generation,
        "shards_dir": gen_name,
    }
    if routing_entry is not None:
        new_manifest["routing"] = routing_entry
    _publish_manifest(root, new_manifest)
    # prune everything older than {new, previous}: readers attached to
    # the just-replaced generation may still be lazily mapping its files
    previous = manifest.get("shards_dir", "")
    for gen_dir in _generation_dirs(root):
        if gen_dir.name not in (gen_name, previous):
            shutil.rmtree(gen_dir, ignore_errors=True)
            pruned.append(gen_dir.name)
    if previous:
        # the previous generation was itself a gen dir, so any flat
        # shard files at the root are at least two generations stale
        for stale in root.glob("shard-*.skb"):
            stale.unlink()
            pruned.append(stale.name)
    return {
        "path": os.fspath(root),
        "generation": generation,
        "rows": roller.n_rows,
        "tombstones_dropped": int(tombstones.size),
        "shards": roller.n_shards,
        "storage": out_spec.name,
        "routing": None if clusters is None else clusters,
        "pruned": pruned,
    }


def _publish_manifest(root: Path, manifest: dict) -> None:
    """Atomically replace the store's manifest (tmp file + rename)."""
    import json

    tmp = root / f".{_MANIFEST_NAME}.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, root / _MANIFEST_NAME)


def merge_stores(
    *sources: str | os.PathLike,
    dest: str | os.PathLike,
    storage: StorageSpec | str | None = None,
    shard_capacity: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> dict:
    """Fuse on-disk stores into a new store directory, disk-to-disk.

    The directory-to-directory form of
    :meth:`ShardedSketchStore.merge`: rows keep their per-store order,
    stores concatenate in argument order, tombstoned rows are dropped on
    the way through, and nothing larger than one block is ever held in
    memory.  The same storage rule applies — mixing specs is rejected
    with the specs named unless ``storage=...`` re-encodes everything —
    and all sources must share one public configuration.  ``dest`` is
    written with the save path's staging-then-swap idiom, so a crash
    never leaves a partial store there.
    """
    if not sources:
        raise ValueError("merge_stores needs at least one source store")
    roots = [Path(source) for source in sources]
    manifests = [read_manifest(root) for root in roots]
    specs = sorted({m.get("storage", "f8") for m in manifests})
    if storage is None:
        if len(specs) > 1:
            raise ValueError(
                f"cannot merge stores with different storage specs "
                f"({', '.join(specs)}): their error envelopes differ; pass "
                f"storage=... to re-encode the merged store into one spec"
            )
        storage = specs[0]
    out_spec = StorageSpec.parse(storage)
    per_source = [_source_shards(root, m) for root, m in zip(roots, manifests)]
    template = per_source[0][0].meta
    for infos in per_source[1:]:
        estimators.check_compatible(template, infos[0].meta)
    capacity = (
        max(m["shard_capacity"] for m in manifests)
        if shard_capacity is None
        else shard_capacity
    )
    # concatenate the per-store survivor labels, re-eliding only if
    # every source was positional and tombstone-free
    all_labels: list | None = []
    for manifest, infos in zip(manifests, per_source):
        tombstones = np.asarray(
            sorted(manifest.get("tombstones", ())), dtype=np.intp
        )
        source_labels = _survivor_labels(infos, tombstones)
        if source_labels is None:
            live = manifest["n_rows"] - int(tombstones.size)
            source_labels = list(range(live))
        all_labels.extend(source_labels)
    if _is_positional(tuple(all_labels), 0):
        all_labels = None

    dest_root = Path(dest)
    dest_root.parent.mkdir(parents=True, exist_ok=True)
    staging = dest_root.with_name(f".{dest_root.name}.saving-{os.getpid()}")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    scale = None
    if out_spec.quantised:
        peak_scale = 0.0
        for manifest, infos in zip(manifests, per_source):
            tombstones = np.asarray(
                sorted(manifest.get("tombstones", ())), dtype=np.intp
            )
            peak_scale = max(
                peak_scale, _global_scale(infos, tombstones, block_rows)
            )
        scale = peak_scale
    roller = _ShardRoller(staging, template, out_spec, scale, capacity, all_labels)
    try:
        for manifest, infos in zip(manifests, per_source):
            tombstones = np.asarray(
                sorted(manifest.get("tombstones", ())), dtype=np.intp
            )
            _stream_shards(infos, tombstones, roller, out_spec, scale, block_rows)
        roller.finish()
        _publish_manifest(
            staging,
            {
                "manifest_version": _MANIFEST_VERSION,
                "shard_capacity": capacity,
                "n_shards": roller.n_shards,
                "n_rows": roller.n_rows,
                "storage": out_spec.name,
                "config_digest": manifests[0]["config_digest"],
                "generation": 0,
            },
        )
        _swap_into_place(staging, dest_root)
    except BaseException:
        roller.abort()
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return {
        "path": os.fspath(dest_root),
        "rows": roller.n_rows,
        "shards": roller.n_shards,
        "storage": out_spec.name,
        "sources": [os.fspath(root) for root in roots],
    }


@dataclasses.dataclass(frozen=True)
class MaintenancePolicy:
    """When, and into what, an on-disk store should be compacted.

    The tiering rule: stores are *written* hot (full-precision ``f8``
    appends, tombstones accumulating) and *read* cold (compact,
    optionally quantised, tombstone-free).  :meth:`plan` looks at a
    store's manifest plus its on-disk byte size and answers with the
    ``compact_store`` keyword arguments that would restore health, or
    ``None`` when the store is already healthy:

    * ``min_tombstones`` — compact once at least this many rows are
      tombstoned (they cost scan time and disk until dropped).
    * ``max_partial_shards`` — compact when the shard count exceeds the
      minimum needed for the row count by more than this (partial
      shards accumulate as appended batches straddle capacity).
    * ``cold_rows`` / ``cold_bytes`` — demote a hot-tier store to
      ``cold_storage`` once it holds at least this many rows / bytes
      (``None`` disables the threshold; demotion triggers only from
      the hot spec, so an already-cold store is not re-encoded again).
    * ``routed`` — make every compaction a *clustered* rewrite
      (``compact_store(..., routing=True)``), so the store always
      carries a fresh centroid routing table.  A store whose manifest
      already has routing is re-clustered on compaction regardless, so
      maintenance never silently strips an operator-built table.

    A manifest that carries routing is exempt from the partial-shard
    trigger: a clustered layout legitimately ends every cluster on a
    partial shard, and "repacking" those would just tear the clustering
    down and rebuild it forever.

    Pure function of observable state — the policy itself never touches
    the store, so it is trivially testable and safe to evaluate from
    any thread.
    """

    cold_storage: str = "f4"
    hot_storage: str = "f8"
    min_tombstones: int = 1
    max_partial_shards: int = 1
    cold_rows: int | None = None
    cold_bytes: int | None = None
    routed: bool = False

    def plan(self, manifest: dict, *, nbytes: int | None = None) -> dict | None:
        """The ``compact_store`` kwargs this store needs, or ``None``."""
        rows = manifest["n_rows"]
        tombstones = len(manifest.get("tombstones", ()))
        capacity = manifest["shard_capacity"]
        current = manifest.get("storage", "f8")
        has_routing = bool(manifest.get("routing"))
        reasons = []
        if tombstones >= self.min_tombstones > 0:
            reasons.append(f"{tombstones} tombstoned rows")
        min_shards = max(1, -(-(rows - tombstones) // capacity))
        if (
            manifest["n_shards"] > min_shards + self.max_partial_shards - 1
            and not has_routing
        ):
            reasons.append(
                f"{manifest['n_shards']} shards for {rows} rows "
                f"(minimum {min_shards})"
            )
        demote = current == self.hot_storage and (
            (self.cold_rows is not None and rows >= self.cold_rows)
            or (
                self.cold_bytes is not None
                and nbytes is not None
                and nbytes >= self.cold_bytes
            )
        )
        if demote:
            reasons.append(f"demote {current} -> {self.cold_storage}")
        if not reasons:
            return None
        return {
            "storage": self.cold_storage if demote else None,
            "routing": True if (self.routed or has_routing) else None,
            "reason": "; ".join(reasons),
        }


def _store_nbytes(root: Path, manifest: dict) -> int:
    shard_dir = root / manifest.get("shards_dir", "")
    return sum(
        (shard_dir / _SHARD_PATTERN.format(i)).stat().st_size
        for i in range(manifest["n_shards"])
    )


class StoreMaintainer:
    """Runs a :class:`MaintenancePolicy` over a store dir, in background.

    Between queries — the thread sleeps ``interval`` seconds, wakes,
    reads the manifest, asks the policy, and calls
    :func:`compact_store` when the policy says so.  Everything happens
    disk-to-disk in this process; serving processes watching the
    manifest (``SketchQueryServer(watch_interval=...)``) pick the new
    generation up live.  One maintainer per store directory — the
    generational publish is not multi-writer safe (the usual one-writer
    contract of the store).

    Errors are recorded on :attr:`last_error` and the loop keeps going:
    a transient failure (say, disk full) must not kill maintenance
    forever.  :attr:`history` keeps each completed action's summary.
    Use as a context manager, or :meth:`close` explicitly.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        policy: MaintenancePolicy | None = None,
        *,
        interval: float = 5.0,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ) -> None:
        self.path = Path(path)
        self.policy = MaintenancePolicy() if policy is None else policy
        self.interval = float(interval)
        self.block_rows = block_rows
        self.history: list[dict] = []
        self.last_error: Exception | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def run_once(self) -> dict | None:
        """One policy evaluation; compacts if needed, returns the summary."""
        manifest = read_manifest(self.path)
        action = self.policy.plan(
            manifest, nbytes=_store_nbytes(self.path, manifest)
        )
        if action is None:
            return None
        summary = compact_store(
            self.path,
            storage=action["storage"],
            routing=action.get("routing"),
            block_rows=self.block_rows,
        )
        summary["reason"] = action["reason"]
        summary["at"] = time.time()
        self.history.append(summary)
        return summary

    def rebuild_routing(
        self, clusters: bool | int = True, *, seed: int = 0
    ) -> dict:
        """Force a clustered rewrite now, refreshing the routing table.

        The recovery path after appends or deletes have invalidated a
        store's routing (the query plane falls back to unrouted scans
        until the table matches the layout again): one
        :func:`compact_store` call with ``routing=clusters``, recorded
        in :attr:`history` like any policy-driven action.
        """
        summary = compact_store(
            self.path,
            routing=clusters,
            routing_seed=seed,
            block_rows=self.block_rows,
        )
        summary["reason"] = "rebuild routing"
        summary["at"] = time.time()
        self.history.append(summary)
        return summary

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
                self.last_error = None
            except Exception as exc:  # keep maintaining despite transient errors
                self.last_error = exc

    def start(self) -> "StoreMaintainer":
        if self._thread is not None:
            raise RuntimeError("maintainer already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-maintainer", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "StoreMaintainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
